//! The paper's running example end to end: load the music-metadata
//! table, explode it (Figure 1), select the genre and writer sub-arrays
//! (Figure 2), and build writer×genre graphs under all seven operator
//! pairs (Figures 3 and 5).
//!
//! ```text
//! cargo run --example music_graph
//! ```

use aarray_algebra::pairs::{MaxMin, MaxPlus, MaxTimes, MinMax, MinPlus, MinTimes, PlusTimes};
use aarray_algebra::values::nn::NN;
use aarray_algebra::values::tropical::{trop, Tropical};
use aarray_core::adjacency_array_unchecked;
use aarray_d4m::music::{music_e1, music_e1_weighted, music_e2, music_incidence, music_table};

fn main() {
    let table = music_table();
    println!(
        "music table: {} tracks × {} fields, {} incidences",
        table.len(),
        table.fields().len(),
        table.incidence_count()
    );

    // Figure 1: the exploded sparse view E.
    let e = music_incidence();
    println!(
        "exploded E: {}×{} with {} ones (Figure 1)",
        e.shape().0,
        e.shape().1,
        e.nnz()
    );

    // Figure 2: sub-array selection with D4M range syntax.
    let e1 = music_e1();
    let e2 = music_e2();
    println!("\nE1 = E(:, 'Genre|A : Genre|Z'):\n{}", e1.to_grid());
    println!("E2 = E(:, 'Writer|A : Writer|Z'):\n{}", e2.to_grid());

    // Figure 3: one construction, seven algebras.
    println!("=== Figure 3: A = E1ᵀ ⊕.⊗ E2, unit weights ===");
    let show = |name: &str, grid: String| println!("--- {} ---\n{}", name, grid);

    show(
        "+.×",
        adjacency_array_unchecked(&e1, &e2, &PlusTimes::<NN>::new()).to_grid(),
    );
    show(
        "max.×",
        adjacency_array_unchecked(&e1, &e2, &MaxTimes::<NN>::new()).to_grid(),
    );
    show(
        "min.×",
        adjacency_array_unchecked(&e1, &e2, &MinTimes::<NN>::new()).to_grid(),
    );
    let tp = MaxPlus::<Tropical>::new();
    let e1t = e1.map_prune(&tp, |v| trop(v.get()));
    let e2t = e2.map_prune(&tp, |v| trop(v.get()));
    show(
        "max.+",
        adjacency_array_unchecked(&e1t, &e2t, &tp).to_grid(),
    );
    show(
        "min.+",
        adjacency_array_unchecked(&e1, &e2, &MinPlus::<NN>::new()).to_grid(),
    );
    show(
        "max.min",
        adjacency_array_unchecked(&e1, &e2, &MaxMin::<NN>::new()).to_grid(),
    );
    show(
        "min.max",
        adjacency_array_unchecked(&e1, &e2, &MinMax::<NN>::new()).to_grid(),
    );

    // Figures 4/5: re-weight E1 and watch the algebras diverge.
    let w = music_e1_weighted();
    println!(
        "=== Figure 4: weighted E1 (Electronic 1, Pop 2, Rock 3) ===\n{}",
        w.to_grid()
    );
    println!("=== Figure 5: A = E1ᵀ ⊕.⊗ E2, weighted ===");
    show(
        "+.× (aggregates all edges)",
        adjacency_array_unchecked(&w, &e2, &PlusTimes::<NN>::new()).to_grid(),
    );
    show(
        "max.min (selects extremal edges)",
        adjacency_array_unchecked(&w, &e2, &MaxMin::<NN>::new()).to_grid(),
    );
    show(
        "min.max",
        adjacency_array_unchecked(&w, &e2, &MinMax::<NN>::new()).to_grid(),
    );
}
