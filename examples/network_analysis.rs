//! A larger end-to-end pipeline: generate a synthetic power-law graph,
//! build its adjacency array from incidence arrays (the kernels pick
//! serial or row-parallel automatically), and run semiring algorithms
//! on the result —
//! BFS (`∨.∧`), shortest paths (`min.+`), widest paths (`max.min`).
//!
//! ```text
//! cargo run --release --example network_analysis
//! ```

use aarray_algebra::pairs::{MinPlus, OrAnd, PlusTimes};
use aarray_algebra::values::nat::Nat;
use aarray_algebra::values::nn::nn;
use aarray_core::{adjacency_array, theorem::pattern_diff};
use aarray_graph::algorithms::{bfs_levels, closed_wedge_count, out_degrees, sssp_min_plus};
use aarray_graph::generators::{erdos_renyi_weighted, rmat};
use std::time::Instant;

fn main() {
    // 1. An R-MAT graph (Graph500 parameters) — heavy-tailed degrees.
    let scale = 10u32;
    let edges = 16 * (1usize << scale);
    let t0 = Instant::now();
    let g = rmat(scale, edges, (0.57, 0.19, 0.19, 0.05), 42);
    println!(
        "generated R-MAT scale {}: {} vertices touched, {} edges in {:?}",
        scale,
        g.vertex_count(),
        g.edge_count(),
        t0.elapsed()
    );

    // 2. Incidence arrays and the adjacency construction.
    let pair = PlusTimes::<Nat>::new();
    let t0 = Instant::now();
    let (eout, ein) = g.incidence_arrays(&pair);
    println!(
        "incidence arrays: {:?} each, built in {:?}",
        eout.shape(),
        t0.elapsed()
    );

    let t0 = Instant::now();
    let a = adjacency_array(&eout, &ein, &pair);
    println!(
        "adjacency array: {} distinct edges (from {} incidences) in {:?}",
        a.nnz(),
        g.edge_count(),
        t0.elapsed()
    );

    // Theorem II.1 made observable: the pattern equals the edge set.
    let diff = pattern_diff(&a, g.edge_pattern());
    assert!(diff.is_exact(), "compliant pair ⇒ exact adjacency pattern");
    println!("pattern check: exact (Theorem II.1 sufficiency)");

    // 3. Degree profile and wedge census via semiring ops.
    let deg = out_degrees(&a);
    let max_deg = deg.values().max().copied().unwrap_or(0);
    println!(
        "max out-degree: {} (mean {:.2})",
        max_deg,
        a.nnz() as f64 / a.shape().0 as f64
    );
    let t0 = Instant::now();
    println!(
        "closed wedges: {} in {:?}",
        closed_wedge_count(&a),
        t0.elapsed()
    );

    // 4. BFS over the Boolean view.
    let bpair = OrAnd::new();
    let ab = adjacency_array(
        &eout.map_prune(&bpair, |v| v.0 > 0),
        &ein.map_prune(&bpair, |v| v.0 > 0),
        &bpair,
    );
    let source = ab.row_keys().key(0).to_string();
    let t0 = Instant::now();
    let levels = bfs_levels(&ab, &source);
    let max_level = levels.values().max().copied().unwrap_or(0);
    println!(
        "BFS from {}: reached {} vertices, eccentricity {}, in {:?}",
        source,
        levels.len(),
        max_level,
        t0.elapsed()
    );

    // 5. Shortest paths on a weighted graph under min.+.
    let wpair = MinPlus::<aarray_algebra::values::nn::NN>::new();
    let wg = erdos_renyi_weighted(500, 4000, 10.0, 7);
    let (weo, wei) = wg.incidence_arrays(&wpair);
    let wa = adjacency_array(&weo, &wei, &wpair);
    let src = wa.row_keys().key(0).to_string();
    let t0 = Instant::now();
    let dist = sssp_min_plus(&wa, &src);
    let reachable = dist.len();
    let farthest = dist
        .values()
        .cloned()
        .fold(nn(0.0), |a, b| if b > a { b } else { a });
    println!(
        "min.+ SSSP from {}: {} reachable, farthest distance {}, in {:?}",
        src,
        reachable,
        farthest,
        t0.elapsed()
    );
}
