//! A tour of value systems: which satisfy Theorem II.1, which do not,
//! and what goes wrong when they don't — the paper's examples and
//! non-examples, live.
//!
//! ```text
//! cargo run --example semiring_gallery
//! ```

use aarray_algebra::counterexample::{
    annihilator_gadget, classify_pattern, eval_gadget, zero_divisor_gadget, zero_sum_gadget,
};
use aarray_algebra::prelude::*;
use aarray_algebra::properties::{check_pair_exhaustive, check_pair_sampled};

fn main() {
    println!("### Compliant structures (Theorem II.1 holds) ###\n");

    // ℝ≥0 with arithmetic +, × — the everyday case.
    println!("{}\n", check_pair_sampled(&PlusTimes::<NN>::new(), 400, 1));
    // Linearly ordered sets with max/min (the paper's §III family),
    // exhaustively proven on a finite chain…
    println!("{}\n", check_pair_exhaustive(&MaxMin::<Chain<9>>::new()));
    // …and sampled on alphanumeric strings, answering the question the
    // paper's introduction opens with.
    println!("{}\n", check_pair_sampled(&MaxMin::<BStr>::new(), 400, 2));
    // Tropical max.+ with zero = -∞.
    println!(
        "{}\n",
        check_pair_sampled(&MaxPlus::<Tropical>::new(), 400, 3)
    );
    // The Boolean semiring {0, 1}.
    println!("{}\n", check_pair_exhaustive(&OrAnd::new()));
    // And a non-arithmetic surprise: gcd.lcm over ℕ.
    println!("{}\n", check_pair_sampled(&GcdLcm::new(), 400, 4));

    println!("### Non-examples (and their counterexample gadgets) ###\n");

    // Rings are not zero-sum-free: ℤ/6, exhaustively refuted.
    let zn_pair = PlusTimes::<Zn<6>>::new();
    println!("{}\n", check_pair_exhaustive(&zn_pair));

    // Lemma II.2 in action: parallel edges a→b with weights 2 and 4
    // cancel mod 6, so the product loses the edge.
    let g = zero_sum_gadget(Zn::<6>::new(2), Zn::<6>::new(4), zn_pair.one());
    let prod = eval_gadget(
        &g,
        &zn_pair.zero(),
        |a, b| zn_pair.plus(a, b),
        |a, b| zn_pair.times(a, b),
    );
    println!(
        "{} → {:?}\n",
        g.description,
        classify_pattern(&g, &prod, &zn_pair.zero())
    );

    // Lemma II.3: zero divisors 2·3 ≡ 0 erase a self-loop.
    let g = zero_divisor_gadget(Zn::<6>::new(2), Zn::<6>::new(3));
    let prod = eval_gadget(
        &g,
        &zn_pair.zero(),
        |a, b| zn_pair.plus(a, b),
        |a, b| zn_pair.times(a, b),
    );
    println!(
        "{} → {:?}\n",
        g.description,
        classify_pattern(&g, &prod, &zn_pair.zero())
    );

    // Non-trivial Boolean algebras have zero divisors: the power set of
    // a 3-element universe under ∪.∩, exhaustively refuted.
    println!(
        "{}\n",
        check_pair_exhaustive(&UnionIntersect::<PowerSet<3>>::new())
    );

    // Lemma II.4 needs a ⊗ whose zero fails to annihilate. None of the
    // library's ops is that broken, so demonstrate with an ad-hoc ⊗
    // (max-by-residue on ℤ/6, whose "zero" 0 is max's identity, not an
    // annihilator).
    let v = Zn::<6>::new(2);
    let g = annihilator_gadget(v);
    let plus = |a: &Zn<6>, b: &Zn<6>| zn_pair.plus(a, b);
    let times = |a: &Zn<6>, b: &Zn<6>| if a.get() >= b.get() { *a } else { *b };
    let prod = eval_gadget(&g, &Zn::<6>::new(0), plus, times);
    println!(
        "{} (⊗ = max-by-residue) → {:?}",
        g.description,
        classify_pattern(&g, &prod, &Zn::<6>::new(0))
    );
    println!("\nEvery verdict above matches the paper's Section III analysis.");
}
