//! Quickstart: build a small graph's incidence arrays, construct its
//! adjacency array with two different operator pairs, and inspect the
//! results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use aarray_core::prelude::*;

fn main() {
    // A little citation graph: papers cite papers. Each edge gets a
    // unique key (the paper's edge set K) and a weight on each side.
    let pair = PlusTimes::<Nat>::new();

    // Eout : K × Kout — nonzero where the edge leaves the vertex.
    let eout = AArray::from_triples(
        &pair,
        [
            ("cite1", "paperA", Nat(1)),
            ("cite2", "paperA", Nat(1)),
            ("cite3", "paperB", Nat(1)),
            ("cite4", "paperB", Nat(1)),
        ],
    );
    // Ein : K × Kin — nonzero where the edge enters the vertex.
    let ein = AArray::from_triples(
        &pair,
        [
            ("cite1", "paperB", Nat(1)),
            ("cite2", "paperC", Nat(1)),
            ("cite3", "paperC", Nat(1)),
            ("cite4", "paperC", Nat(1)),
        ],
    );

    // The paper's headline operation: A = Eᵀout ⊕.⊗ Ein. The compiler
    // verifies the pair satisfies Theorem II.1 (zero-sum-free, no zero
    // divisors, annihilating zero) — try an i64 `+.×` pair here and it
    // will not compile.
    let a = adjacency_array(&eout, &ein, &pair);
    println!(
        "adjacency array under +.× (counts citations):\n{}",
        a.to_grid()
    );
    assert_eq!(a.get("paperB", "paperC"), Some(&Nat(2)));

    // Same arrays, different algebra: max.min tracks the "widest" edge.
    let mm = MaxMin::<Nat>::new();
    let eout_w = eout.map_with_keys(&mm, |k, _, _| if k == "cite3" { Nat(5) } else { Nat(1) });
    let a_mm = adjacency_array(&eout_w, &ein, &mm);
    println!("adjacency array under max.min:\n{}", a_mm.to_grid());

    // The reverse graph falls out of the other product (Corollary III.1).
    let rev = reverse_adjacency_array(&eout, &ein, &pair);
    println!(
        "reverse-graph adjacency (who is cited by whom):\n{}",
        rev.to_grid()
    );
    assert_eq!(rev.get("paperC", "paperB"), Some(&Nat(2)));

    // Runtime-checked construction refuses non-compliant data. ℤ's +.×
    // is not zero-sum-free; two opposite-weight parallel edges erase
    // each other, and the checker catches it before that happens.
    let zpair: PlusTimes<i64> = PlusTimes::new();
    let bad_eout = AArray::from_triples(&zpair, [("e1", "x", 3i64), ("e2", "x", -3i64)]);
    let bad_ein = AArray::from_triples(&zpair, [("e1", "y", 1i64), ("e2", "y", 1i64)]);
    match adjacency_array_checked(&bad_eout, &bad_ein, &zpair) {
        Ok(_) => unreachable!("ℤ must be rejected"),
        Err(e) => println!("checked construction refused ℤ data, as it must:\n  {}", e),
    }
}
