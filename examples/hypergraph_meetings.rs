//! Hypergraphs through incidence arrays: a meeting connects *sets* of
//! people — something an adjacency array cannot represent directly,
//! but an incidence array expresses with one row per meeting. The
//! Theorem II.1 product then materializes the pairwise communication
//! graph (speakers × listeners), with the algebra controlling how
//! parallel meetings combine.
//!
//! ```text
//! cargo run --example hypergraph_meetings
//! ```

use aarray_algebra::pairs::{MaxMin, PlusTimes};
use aarray_algebra::values::nat::Nat;
use aarray_core::adjacency_array;
use aarray_graph::hypergraph::HyperGraph;
use aarray_graph::metrics::graph_metrics;

fn main() {
    let w = |name: &str, weight: u64| (name.to_string(), Nat(weight));

    // Three meetings; presenters are sources, audiences are targets.
    let mut h = HyperGraph::new();
    h.add_edge(
        "standup",
        vec![w("alice", 1)],
        vec![w("bob", 1), w("carol", 1), w("dave", 1)],
    );
    h.add_edge(
        "design_review",
        vec![w("bob", 1), w("carol", 1)],
        vec![w("alice", 1), w("dave", 1), w("erin", 1)],
    );
    h.add_edge("one_on_one", vec![w("alice", 1)], vec![w("bob", 1)]);

    println!(
        "hypergraph: {} meetings over {} people",
        h.edge_count(),
        h.vertex_count()
    );

    // Incidence arrays: one row per meeting, several nonzeros per row.
    let pair = PlusTimes::<Nat>::new();
    let (eout, ein) = h.incidence_arrays(&pair);
    println!(
        "\nEout (who presents in which meeting):\n{}",
        eout.to_grid()
    );
    println!("Ein (who attends which meeting):\n{}", ein.to_grid());

    // The communication graph: A(a, b) = number of meetings where a
    // presented to b. Each hyperedge contributes a full sources×targets
    // block — the expansion the edge-list representation would have to
    // materialize by hand.
    let a = adjacency_array(&eout, &ein, &pair);
    println!(
        "communication graph under +.× (meeting counts):\n{}",
        a.to_grid()
    );
    assert_eq!(a.get("alice", "bob"), Some(&Nat(2))); // standup + 1:1
    assert_eq!(a.get("bob", "erin"), Some(&Nat(1))); // design review
    assert_eq!(a.get("erin", "alice"), None); // erin never presents

    // Existence-only view via max.min on the same incidence data.
    let mm = MaxMin::<Nat>::new();
    let exists = adjacency_array(&eout, &ein, &mm);
    assert_eq!(exists.get("alice", "bob"), Some(&Nat(1)));
    println!("metrics: {}", graph_metrics(&a));
}
