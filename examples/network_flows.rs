//! Network-flow analytics: the full D4M pipeline on the second bundled
//! dataset — explode flow logs, project src×dst talker graphs under
//! several algebras, and run the analysis stack on the result.
//!
//! ```text
//! cargo run --example network_flows
//! ```

use aarray_algebra::pairs::{MaxMin, PlusTimes};
use aarray_algebra::values::nn::NN;
use aarray_core::KeySelect;
use aarray_d4m::flows::{flow_incidence, flow_table};
use aarray_graph::bipartite::project;
use aarray_graph::metrics::graph_metrics;

fn main() {
    let table = flow_table();
    println!(
        "flow table: {} flows × {} fields ({} incidences)",
        table.len(),
        table.fields().len(),
        table.incidence_count()
    );

    // Explode: each field|value pair becomes a column (Figure 1's move,
    // different domain).
    let e = flow_incidence();
    println!(
        "exploded E: {:?}, {} entries\n{}",
        e.shape(),
        e.nnz(),
        e.to_grid()
    );

    // Talker graph: who sends to whom, correlated through shared flows.
    let pt = PlusTimes::<NN>::new();
    let src = KeySelect::Prefix("SrcIP|".into());
    let dst = KeySelect::Prefix("DstIP|".into());
    let talkers = project(&e, &src, &dst, &pt);
    println!(
        "talker graph under +.× (flow counts):\n{}",
        talkers.to_grid()
    );

    // Same projection, max.min algebra: pure existence (all weights 1).
    let mm = MaxMin::<NN>::new();
    let exists = project(&e, &src, &dst, &mm);
    println!(
        "talker graph under max.min (existence):\n{}",
        exists.to_grid()
    );
    assert_eq!(
        talkers.nnz(),
        exists.nnz(),
        "same pattern, different values"
    );

    // Top talkers per source via the query API.
    println!("busiest destination per source:");
    for (src, dst, flows) in talkers.row_argmax() {
        println!("  {} → {} ({} flows)", src, dst, flows);
    }

    // Service mix: port × protocol co-occurrence.
    let services = project(
        &e,
        &KeySelect::Prefix("Port|".into()),
        &KeySelect::Prefix("Proto|".into()),
        &pt,
    );
    println!("\nport × protocol co-occurrence:\n{}", services.to_grid());

    // The src→dst relation as a graph object: strip the field prefixes
    // so both sides live in one IP key space, then run graph metrics.
    let ip_graph = talkers.map_with_keys(&pt, |_, _, v| *v);
    let renamed = aarray_core::AArray::from_triples(
        &pt,
        ip_graph
            .iter()
            .map(|(s, d, v)| {
                (
                    s.trim_start_matches("SrcIP|").to_string(),
                    d.trim_start_matches("DstIP|").to_string(),
                    *v,
                )
            })
            .collect::<Vec<_>>(),
    );
    // Square it over the union of both key sets.
    let square = renamed.ewise_add(
        &aarray_core::AArray::empty(
            renamed.row_keys().union(renamed.col_keys()),
            renamed.row_keys().union(renamed.col_keys()),
        ),
        &pt,
    );
    println!("talker-graph metrics: {}", graph_metrics(&square));
}
