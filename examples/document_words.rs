//! Section III's escape hatch: set-valued arrays under `∪.∩`.
//!
//! The pair has zero divisors (disjoint sets), so Theorem II.1 does not
//! bless it — yet on *structured* document×word data the product
//! `EᵀE` is still a valid adjacency array whose entries list the words
//! shared by each pair of documents. This example builds such a corpus,
//! shows the conservative checker refusing, and the exact post-hoc
//! verifier accepting.
//!
//! ```text
//! cargo run --example document_words
//! ```

use aarray_algebra::pairs::UnionIntersect;
use aarray_algebra::values::wordset::WordSet;
use aarray_core::{adjacency_array_checked, adjacency_array_unchecked};
use aarray_graph::structured::{has_sharing_structure, shared_word_array, Document};

fn main() {
    // A toy corpus. Documents share vocabulary along topic lines.
    let docs = vec![
        Document::new("graphs101", ["vertex", "edge", "adjacency", "matrix"]),
        Document::new("linalg", ["matrix", "vector", "eigenvalue"]),
        Document::new("databases", ["table", "key", "schema", "matrix"]),
        Document::new("networks", ["vertex", "edge", "packet"]),
    ];

    // E(i, j) = the words documents i and j share (Section III's
    // structured incidence array).
    let e = shared_word_array(&docs);
    println!("E — shared-word incidence array:\n{}", e.to_grid());
    assert!(
        has_sharing_structure(&e),
        "construction guarantees the sharing structure"
    );

    let pair = UnionIntersect::<WordSet>::new();

    // The population-level check refuses: some products genuinely
    // intersect disjoint non-empty sets…
    match adjacency_array_checked(&e, &e, &pair) {
        Err(err) => println!("conservative check refuses (as expected):\n  {}\n", err),
        Ok(_) => println!("note: this corpus happens to pass even the conservative check\n"),
    }

    // …but the sharing structure makes the product exactly right for
    // the *word-sharing graph*: every term E(x,k) ∩ E(k,y) is a subset
    // of E(x,y), and the diagonal term restores all of it, so EᵀE = E.
    // The product is the adjacency array of that graph, with the shared
    // words as entries — the paper's Section III claim, made precise.
    let ete = adjacency_array_unchecked(&e, &e, &pair);
    assert_eq!(ete, e, "EᵀE = E on structured corpora (idempotence)");
    println!(
        "EᵀE under ∪.∩ — documents connected by shared words (= E itself):\n{}",
        ete.to_grid()
    );

    // The entries list shared words, exactly as the paper describes.
    let gl = ete.get("graphs101", "linalg").expect("share 'matrix'");
    assert!(gl.contains("matrix"));
    println!("graphs101 ↔ linalg share: {}", gl);
    let gn = ete.get("graphs101", "networks").expect("share vertex/edge");
    assert!(gn.contains("vertex") && gn.contains("edge"));
    println!("graphs101 ↔ networks share: {}", gn);
}
