//! Probabilistic graphs on the unit interval: the same incidence data
//! under the Viterbi pair (`max.×` — most probable single connection)
//! and the noisy-or pair (`probor.×` — probability that at least one
//! connection fires). Both satisfy Theorem II.1 on `[0, 1]`, so both
//! constructions are compile-time safe.
//!
//! ```text
//! cargo run --example probabilistic_links
//! ```

use aarray_algebra::pairs::{ProbOrTimes, Viterbi};
use aarray_algebra::values::unit::unit;
use aarray_core::prelude::*;

fn main() {
    // Sensors observe targets with per-observation confidence. Each
    // observation is an edge: sensor → target, weighted by detection
    // probability on both incidence sides (source reliability ×
    // measurement confidence).
    let viterbi = Viterbi::new();
    let eout = AArray::from_triples(
        &viterbi,
        [
            ("obs1", "sensorA", unit(0.9)),
            ("obs2", "sensorA", unit(0.6)),
            ("obs3", "sensorB", unit(0.8)),
            ("obs4", "sensorB", unit(0.5)),
        ],
    );
    let ein = AArray::from_triples(
        &viterbi,
        [
            ("obs1", "target1", unit(0.7)),
            ("obs2", "target1", unit(0.9)),
            ("obs3", "target1", unit(0.4)),
            ("obs4", "target2", unit(1.0)),
        ],
    );

    // Viterbi: the strongest single observation linking sensor→target.
    let best = adjacency_array(&eout, &ein, &viterbi);
    println!("max.× (best single observation):\n{}", best.to_grid());
    // sensorA→target1: max(0.9·0.7, 0.6·0.9) = max(0.63, 0.54) = 0.63.
    assert_eq!(best.get("sensorA", "target1"), Some(&unit(0.63)));

    // Noisy-or: probability that at least one observation fires.
    let fused = adjacency_array(&eout, &ein, &ProbOrTimes::new());
    println!(
        "probor.× (fused detection probability):\n{}",
        fused.to_grid()
    );
    // 0.63 ⊕ₚ 0.54 = 0.63 + 0.54 − 0.63·0.54 = 0.8298.
    let p = fused.get("sensorA", "target1").unwrap().get();
    assert!((p - 0.8298).abs() < 1e-12, "{}", p);

    // Same pattern, different fusion semantics — the paper's point:
    // the algebra is a parameter of graph construction.
    assert_eq!(best.nnz(), fused.nnz());
    println!("fused ≥ best everywhere (noisy-or dominates single-shot):");
    for (s, t, v) in fused.iter() {
        let b = best.get(s, t).unwrap();
        assert!(v >= b);
        println!("  {} → {}: best {} / fused {}", s, t, b, v);
    }
}
