//! Offline stub of the `criterion` crate covering the API surface this
//! workspace's benches use: `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Timing is a single warmup pass plus a fixed number of measured
//! iterations with `std::time::Instant`, printing mean wall-clock per
//! iteration — no statistical analysis, outlier detection, or HTML
//! reports. Good enough to smoke-run benches offline and compare
//! orders of magnitude; swap the real crate back for publishable
//! numbers (see `stubs/README.md`).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measured iterations per benchmark (`CRITERION_STUB_ITERS` env
/// override; default 10).
fn measured_iters() -> u64 {
    std::env::var("CRITERION_STUB_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Top-level benchmark manager.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted and ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare the work per iteration (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, f);
        self
    }

    /// Run a benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(&mut self, id: impl Display, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, |b| f(b, input));
        self
    }

    /// Finish the group (no-op beyond a newline).
    pub fn finish(self) {}
}

fn run_bench<F>(label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // One warmup invocation, then the measured invocation.
    let mut warmup = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);
    let iters = measured_iters();
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / iters as f64;
    println!("  {label}: {:.3} ms/iter ({iters} iters)", per_iter * 1e3);
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it the configured number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Work performed per iteration, for throughput reporting (ignored).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Prevent the optimizer from discarding `value`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let input = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("len", 3), &input, |b, v| {
            b.iter(|| v.len())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }
}
