//! Offline placeholder for the `serde` crate.
//!
//! The workspace's serde support (`aarray-algebra/serde`,
//! `aarray-core/serde`) is **off by default**, so default builds and
//! the tier-1 test suite never compile against this crate's items —
//! cargo only needs the package to exist to resolve the dependency
//! graph offline. Enabling those features requires swapping the real
//! `serde` back in (see `stubs/README.md`); this placeholder
//! intentionally defines no items so a misconfigured build fails
//! loudly at compile time rather than silently mis-serializing.
