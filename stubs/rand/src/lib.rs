//! Offline stub of the `rand` crate covering exactly the API surface
//! this workspace uses: `RngCore` (object-safe), the `Rng` extension
//! trait with `gen` / `gen_range`, `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng`.
//!
//! The generator is SplitMix64 — deterministic and statistically fine
//! for test-data generation, but **not** the ChaCha12 generator of the
//! real `rand::rngs::StdRng`, so seeded streams differ from upstream.
//! The workspace only relies on determinism, never on the exact
//! stream. See `stubs/README.md` for how to swap the real crate back.

/// The core of a random number generator (object-safe subset).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable from the "standard" distribution (uniform over the
/// type's natural domain; `[0, 1)` for floats).
pub trait SampleStandard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {
        $(impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`]. The element type is a trait
/// parameter (as in the real `rand`) so the caller's expected output
/// type flows back into untyped integer literals like `0..4`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),+) => {
        $(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % width) as i128) as $t
                }
            }
        )+
    };
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),+) => {
        $(impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as SampleStandard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        })+
    };
}
impl_range_float!(f32, f64);

/// Convenience extension methods, blanket-implemented for every
/// [`RngCore`] (including `&mut dyn RngCore`).
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as SampleStandard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only the `seed_from_u64` entry point the
/// workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64, not
    /// ChaCha12 — seeded streams differ from upstream `rand`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Sebastiano Vigna).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-8..8);
            assert!((-8..8).contains(&w));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&y));
            let z = rng.gen_range(2..=2u8);
            assert_eq!(z, 2);
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(2);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v: u64 = dyn_rng.gen();
        let w = dyn_rng.gen_range(0..10u8);
        let _ = v;
        assert!(w < 10);
        let mut buf = [0u8; 13];
        dyn_rng.fill_bytes(&mut buf);
    }
}
