//! Offline stub of the `proptest` crate covering the API surface this
//! workspace uses: the `proptest!` macro, `prop_assert*` macros,
//! `Strategy` with `prop_map` / `prop_flat_map`, `Just`, `prop_oneof!`,
//! and `prop::collection::{vec, btree_set}`.
//!
//! Differences from the real crate: deterministic seeding per test
//! case index (no OS entropy), **no shrinking** of failing inputs, and
//! a default of 64 cases per property (override with the
//! `PROPTEST_CASES` environment variable). Failures panic with the
//! sampled case index so a run can be reproduced by reading the code.
//! See `stubs/README.md` for swapping the real crate back.

pub mod strategy;

pub mod collection;

/// The deterministic RNG handed to [`strategy::Strategy::sample`].
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor (used by the `proptest!` macro).
    pub fn seed_from_u64(state: u64) -> Self {
        TestRng { state }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `0..bound` (`bound > 0`).
    pub fn next_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_index: empty bound");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Number of cases each property runs (`PROPTEST_CASES` env override;
/// default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// What `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Run-one-property plumbing used by the `proptest!` macro expansion.
pub fn run_property<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    // Stable per-test seed: hash of the test name, so distinct
    // properties explore distinct streams but reruns are identical.
    let mut seed = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    let n = cases();
    for i in 0..n {
        let mut rng = TestRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        if let Err(msg) = case(&mut rng) {
            panic!(
                "proptest property '{}' failed at case {}/{} (deterministic seed — rerun reproduces): {}",
                name, i, n, msg
            );
        }
    }
}

/// `proptest! { #[test] fn name(x in strategy, ...) { body } ... }`
///
/// Expands each property into a plain `#[test]` that samples the
/// strategies [`cases`] times and panics on the first failure.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(clippy::redundant_closure_call)]
                $crate::run_property(stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                    let __proptest_result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __proptest_result
                });
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!(a, b)` / with trailing format args.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq!({}, {}): {:?} != {:?}",
                stringify!($a), stringify!($b), __l, __r
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// `prop_assert_ne!(a, b)` / with trailing format args.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_ne!({}, {}): both are {:?}",
                stringify!($a), stringify!($b), __l
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// `prop_oneof![s1, s2, ...]` — uniform choice among strategies of a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::from_vec(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0..10usize, 5u64..9), c in 1..=3i32) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((1..=3).contains(&c));
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec((0..4usize, 0..100u64), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            let doubled = (0..3u8).prop_map(|x| x * 2).sample(&mut crate::TestRng::seed_from_u64(1));
            prop_assert!(doubled % 2 == 0);
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(0u64), 1u64..10, Just(u64::MAX)]) {
            prop_assert!(x == 0 || x == u64::MAX || (1..10).contains(&x));
        }

        #[test]
        fn flat_map_dependent_sizes(v in (1..=5usize).prop_flat_map(|n| prop::collection::vec(0..10u8, n..=n))) {
            prop_assert!((1..=5).contains(&v.len()));
        }

        #[test]
        fn btree_set_collects(s in prop::collection::btree_set(0..6u32, 1..5)) {
            prop_assert!(!s.is_empty());
            prop_assert!(s.len() < 6);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_index() {
        crate::run_property("always_fails", |_rng| Err("nope".to_string()));
    }
}
