//! Value-generation strategies: the stub's [`Strategy`] trait plus the
//! combinators the workspace uses (`Just`, ranges, tuples, `prop_map`,
//! `prop_flat_map`, `prop_oneof!`'s [`OneOf`]).

use crate::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then build a dependent strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Like the real proptest, a `&str` is a regex strategy producing
/// matching `String`s. The stub understands a pragmatic subset:
/// concatenations of literal characters (with `\` escapes) and
/// character classes `[a-z0-9_]`, each optionally quantified with
/// `{m}`, `{m,n}`, `?`, `+`, or `*` (unbounded quantifiers capped at
/// 8 repetitions).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_regex_subset(self, rng)
    }
}

fn sample_regex_subset(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One piece: a character class or a (possibly escaped) literal.
        let piece: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed [ in regex strategy {:?}", pattern));
                let body = &chars[i + 1..close];
                i = close + 1;
                let mut set = Vec::new();
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in regex strategy {:?}", pattern);
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(body[j]);
                        j += 1;
                    }
                }
                assert!(
                    !set.is_empty(),
                    "empty class in regex strategy {:?}",
                    pattern
                );
                set
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (lo, hi) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i + 1)
                        .unwrap_or_else(|| panic!("unclosed {{ in regex strategy {:?}", pattern));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse::<usize>().expect("bad {m,n}"),
                            n.trim().parse::<usize>().expect("bad {m,n}"),
                        ),
                        None => {
                            let m = body.trim().parse::<usize>().expect("bad {m}");
                            (m, m)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        let n = lo + rng.next_index(hi - lo + 1);
        for _ in 0..n {
            out.push(piece[rng.next_index(piece.len())]);
        }
    }
    out
}

/// Box a strategy behind `dyn Strategy` (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Build from the macro-collected options (must be non-empty).
    pub fn from_vec(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof!: no options");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_index(self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),+) => {
        $(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % width) as i128) as $t
                }
            }
        )+
    };
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "strategy range is empty");
        self.start + (rng.next_unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
