//! Collection strategies: `vec` and `btree_set` with a [`SizeRange`]
//! accepted from `usize`, `Range<usize>`, or `RangeInclusive<usize>`.

use crate::strategy::Strategy;
use crate::TestRng;
use std::collections::BTreeSet;

/// Inclusive bounds for a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            self.lo + rng.next_index(self.hi - self.lo + 1)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<E>` with length drawn from `size`.
pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`vec`].
pub struct VecStrategy<E> {
    element: E,
    size: SizeRange,
}

impl<E: Strategy> Strategy for VecStrategy<E> {
    type Value = Vec<E::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<E::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeSet<E>` with target size drawn from `size`.
///
/// Like the real proptest, the set may come out smaller than the drawn
/// size when the element strategy's domain is too narrow to produce
/// enough distinct values; a bounded number of redraws is attempted.
pub fn btree_set<E>(element: E, size: impl Into<SizeRange>) -> BTreeSetStrategy<E>
where
    E: Strategy,
    E::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`btree_set`].
pub struct BTreeSetStrategy<E> {
    element: E,
    size: SizeRange,
}

impl<E> Strategy for BTreeSetStrategy<E>
where
    E: Strategy,
    E::Value: Ord,
{
    type Value = BTreeSet<E::Value>;
    fn sample(&self, rng: &mut TestRng) -> BTreeSet<E::Value> {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        let max_attempts = 4 * n.max(1);
        while out.len() < n && attempts < max_attempts {
            out.insert(self.element.sample(rng));
            attempts += 1;
        }
        out
    }
}
