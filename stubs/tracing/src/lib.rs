//! Offline stub of the `tracing` crate covering the span surface this
//! workspace uses: named spans carrying `key = value` fields, entered
//! guards, and a pluggable [`Subscriber`] that observes span
//! enter/exit events (thread-local scoped via
//! [`subscriber::with_default`] or process-global via
//! [`subscriber::set_global_default`]).
//!
//! Divergences from upstream `tracing` 0.1: no levels, no events, no
//! `Dispatch`/`Registry` machinery, and fields are eagerly formatted to
//! `String` at span creation **only when a subscriber is installed** —
//! with no subscriber a span is a name and an empty vec, so the
//! disabled-path cost stays negligible. The `span!` macro takes
//! `span!("name", field = value, ...)` (no `Level` argument). See
//! `stubs/README.md` for swapping the real crate back.

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

/// A formatted `key = value` span field.
pub type Field = (&'static str, String);

/// Observer of span lifecycle events.
pub trait Subscriber: Send + Sync {
    /// A span was entered, with its name and formatted fields.
    fn enter_span(&self, name: &'static str, fields: &[Field]);

    /// A previously entered span was exited (guard dropped).
    fn exit_span(&self, _name: &'static str) {}
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<dyn Subscriber>>> = const { RefCell::new(None) };
}

static GLOBAL: OnceLock<Arc<dyn Subscriber>> = OnceLock::new();

fn current() -> Option<Arc<dyn Subscriber>> {
    if let Some(local) = LOCAL.with(|l| l.borrow().clone()) {
        return Some(local);
    }
    GLOBAL.get().cloned()
}

/// Whether any subscriber (thread-local or global) is installed —
/// span constructors skip field formatting entirely when not.
pub fn subscriber_installed() -> bool {
    LOCAL.with(|l| l.borrow().is_some()) || GLOBAL.get().is_some()
}

/// Subscriber installation, mirroring `tracing::subscriber`.
pub mod subscriber {
    use super::*;

    /// Install `sub` as the process-global default. Returns `Err` if a
    /// global default is already set (matching upstream semantics).
    pub fn set_global_default(sub: Arc<dyn Subscriber>) -> Result<(), SetGlobalDefaultError> {
        GLOBAL.set(sub).map_err(|_| SetGlobalDefaultError(()))
    }

    /// A global default was already installed.
    #[derive(Debug)]
    pub struct SetGlobalDefaultError(());

    impl std::fmt::Display for SetGlobalDefaultError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("a global default subscriber has already been set")
        }
    }

    impl std::error::Error for SetGlobalDefaultError {}

    /// Run `f` with `sub` as this thread's default subscriber,
    /// restoring the previous default afterwards.
    pub fn with_default<R>(sub: Arc<dyn Subscriber>, f: impl FnOnce() -> R) -> R {
        let prev = LOCAL.with(|l| l.borrow_mut().replace(sub));
        struct Restore(Option<Arc<dyn Subscriber>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                LOCAL.with(|l| *l.borrow_mut() = prev);
            }
        }
        let _restore = Restore(prev);
        f()
    }
}

/// A named span carrying formatted fields. Created by [`span!`] or
/// [`Span::new`]; observable once [`Span::entered`].
#[derive(Debug, Clone)]
pub struct Span {
    name: &'static str,
    fields: Vec<Field>,
}

impl Span {
    /// Build a span from a name and pre-formatted fields.
    pub fn new(name: &'static str, fields: Vec<Field>) -> Self {
        Span { name, fields }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The span's formatted fields.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Enter the span: the current subscriber (if any) observes the
    /// enter now and the exit when the returned guard drops.
    pub fn entered(self) -> EnteredSpan {
        let sub = current();
        if let Some(s) = &sub {
            s.enter_span(self.name, &self.fields);
        }
        EnteredSpan {
            name: self.name,
            sub,
        }
    }
}

/// Guard for an entered [`Span`]; notifies the subscriber on drop.
#[must_use = "dropping the guard immediately exits the span"]
pub struct EnteredSpan {
    name: &'static str,
    sub: Option<Arc<dyn Subscriber>>,
}

impl Drop for EnteredSpan {
    fn drop(&mut self) {
        if let Some(s) = &self.sub {
            s.exit_span(self.name);
        }
    }
}

/// `span!("name", key = value, ...)` — build a [`Span`]. Fields are
/// formatted with `Display` only if a subscriber is installed.
#[macro_export]
macro_rules! span {
    ($name:literal $(, $k:ident = $v:expr)* $(,)?) => {{
        let fields = if $crate::subscriber_installed() {
            vec![$((stringify!($k), format!("{}", $v))),*]
        } else {
            Vec::new()
        };
        $crate::Span::new($name, fields)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    type SpanLog = Vec<(String, Vec<(String, String)>)>;

    #[derive(Default)]
    struct Capture {
        log: Mutex<SpanLog>,
    }

    impl Subscriber for Capture {
        fn enter_span(&self, name: &'static str, fields: &[Field]) {
            self.log.lock().unwrap().push((
                name.to_string(),
                fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            ));
        }
    }

    #[test]
    fn with_default_captures_spans_and_fields() {
        let cap = Arc::new(Capture::default());
        subscriber::with_default(cap.clone(), || {
            let _g = span!("work", n = 3, label = "abc").entered();
        });
        let log = cap.log.lock().unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].0, "work");
        assert_eq!(log[0].1[0], ("n".to_string(), "3".to_string()));
        assert_eq!(log[0].1[1], ("label".to_string(), "abc".to_string()));
    }

    #[test]
    fn no_subscriber_skips_field_formatting() {
        // Outside with_default (and with no global set in this test
        // binary before this point… set_global_default is one-shot, so
        // just rely on the local scope): fields stay empty.
        let s = span!("idle", n = 1);
        if !subscriber_installed() {
            assert!(s.fields().is_empty());
        }
        let _ = s.entered();
    }
}
