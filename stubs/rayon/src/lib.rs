//! Offline stub of the `rayon` crate covering the API surface this
//! workspace uses, executing everything **sequentially** on the
//! calling thread.
//!
//! The workspace's parallel kernels are row-partitioned with per-row
//! fold order identical to the serial kernels, so sequential execution
//! is *semantically identical* — only the wall-clock speedup on
//! multi-core hosts is lost. `current_num_threads()` reports 1 by
//! default (so auto-parallel heuristics correctly skip fan-out), and
//! reports the configured size inside `ThreadPool::install`, which
//! lets tests exercise the "parallel" dispatch branch
//! deterministically. See `stubs/README.md` for swapping the real
//! crate back.

use std::cell::Cell;

thread_local! {
    static POOL_THREADS: Cell<usize> = const { Cell::new(1) };
}

/// Number of threads in the current pool (1 unless inside
/// [`ThreadPool::install`]).
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|c| c.get())
}

/// Run two closures "in parallel" (sequentially here).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Set the pool size (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Never fails in the stub.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            1
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (unreachable in stub)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "thread pool" that runs closures on the calling thread while
/// reporting its configured size via [`current_num_threads`].
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Execute `op` in the pool's scope.
    pub fn install<O, R>(&self, op: O) -> R
    where
        O: FnOnce() -> R + Send,
        R: Send,
    {
        let prev = POOL_THREADS.with(|c| c.replace(self.num_threads));
        let out = op();
        POOL_THREADS.with(|c| c.set(prev));
        out
    }

    /// The configured pool size.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Sequential stand-ins for rayon's parallel iterator traits.
pub mod iter {
    /// A "parallel" iterator: a thin wrapper over a [`Iterator`].
    pub struct ParIter<I> {
        inner: I,
    }

    /// Conversion into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// Concrete iterator produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Convert self.
        fn into_par_iter(self) -> ParIter<Self::Iter>;
    }

    /// Conversion into a parallel iterator over references.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type (a reference).
        type Item: 'a;
        /// Concrete iterator produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate references "in parallel".
        fn par_iter(&'a self) -> ParIter<Self::Iter>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter {
                inner: self.into_iter(),
            }
        }
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Item = <&'a C as IntoIterator>::Item;
        type Iter = <&'a C as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> ParIter<Self::Iter> {
            ParIter {
                inner: self.into_iter(),
            }
        }
    }

    impl<I: Iterator> ParIter<I> {
        /// Map each element.
        pub fn map<F, R>(self, f: F) -> ParIter<std::iter::Map<I, F>>
        where
            F: FnMut(I::Item) -> R,
        {
            ParIter {
                inner: self.inner.map(f),
            }
        }

        /// Map with per-"thread" scratch state (one state total here).
        pub fn map_init<INIT, T, F, R>(
            self,
            init: INIT,
            mut f: F,
        ) -> ParIter<impl Iterator<Item = R>>
        where
            INIT: Fn() -> T,
            F: FnMut(&mut T, I::Item) -> R,
        {
            let mut state = init();
            ParIter {
                inner: self.inner.map(move |item| f(&mut state, item)),
            }
        }

        /// Filter elements.
        pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
        where
            F: FnMut(&I::Item) -> bool,
        {
            ParIter {
                inner: self.inner.filter(f),
            }
        }

        /// Clone referenced elements.
        pub fn cloned<'a, T>(self) -> ParIter<std::iter::Cloned<I>>
        where
            I: Iterator<Item = &'a T>,
            T: Clone + 'a,
        {
            ParIter {
                inner: self.inner.cloned(),
            }
        }

        /// Left-to-right reduction (sequential, so no associativity is
        /// actually required — the real rayon needs it).
        pub fn reduce_with<F>(self, f: F) -> Option<I::Item>
        where
            F: FnMut(I::Item, I::Item) -> I::Item,
        {
            self.inner.reduce(f)
        }

        /// Fold-equivalent of rayon's `reduce` with identity.
        pub fn reduce<ID, F>(self, identity: ID, f: F) -> I::Item
        where
            ID: Fn() -> I::Item,
            F: FnMut(I::Item, I::Item) -> I::Item,
        {
            self.inner.fold(identity(), f)
        }

        /// Sum the elements.
        pub fn sum<S>(self) -> S
        where
            S: std::iter::Sum<I::Item>,
        {
            self.inner.sum()
        }

        /// Collect into a container.
        pub fn collect<C>(self) -> C
        where
            C: FromIterator<I::Item>,
        {
            self.inner.collect()
        }

        /// Consume with a side-effecting closure.
        pub fn for_each<F>(self, f: F)
        where
            F: FnMut(I::Item),
        {
            self.inner.for_each(f)
        }
    }
}

/// What `use rayon::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_serial() {
        let v: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_threads_state() {
        let v: Vec<usize> = (0..5usize)
            .into_par_iter()
            .map_init(
                || 100usize,
                |s, x| {
                    *s += 1;
                    *s + x
                },
            )
            .collect();
        assert_eq!(v, vec![101, 103, 105, 107, 109]);
    }

    #[test]
    fn par_iter_over_slice() {
        let data = [1u64, 2, 3];
        let s: u64 = data.par_iter().cloned().reduce_with(|a, b| a + b).unwrap();
        assert_eq!(s, 6);
    }

    #[test]
    fn install_scopes_thread_count() {
        assert_eq!(super::current_num_threads(), 1);
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let inside = pool.install(super::current_num_threads);
        assert_eq!(inside, 2);
        assert_eq!(super::current_num_threads(), 1);
    }
}
