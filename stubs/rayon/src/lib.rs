//! Offline stub of the `rayon` crate covering the API surface this
//! workspace uses, backed by a **real work-stealing thread pool** built
//! on `std::thread` + mutex-guarded deques (no external dependencies).
//!
//! A pool of size `N` spawns `N − 1` worker threads; the submitting
//! thread participates as the `N`-th executor while it waits (it steals
//! and runs pending chunks instead of blocking). A pool of size ≤ 1
//! spawns no threads at all and runs everything inline on the caller,
//! which makes the single-core / `AARRAY_NUM_THREADS=1` configuration
//! bit-and-timing-identical to the old sequential stub.
//!
//! **Work distribution.** Parallel stages split their input into
//! contiguous chunks (about 4 × threads, so stragglers rebalance).
//! Chunks are placed round-robin onto per-worker deques; a worker pops
//! its own deque LIFO (cache-warm) and steals from other deques FIFO
//! (oldest first, the classic Chase–Lev discipline, here with plain
//! mutexed `VecDeque`s — contention is per-chunk, not per-row, so the
//! lock cost is noise). Sleeping workers park on a ticket semaphore
//! (`Mutex<u64>` + `Condvar`); every pushed chunk adds a ticket, every
//! woken worker does a full own-then-steal scan, so no chunk can be
//! stranded in a deque while workers sleep.
//!
//! **Determinism.** Chunks may execute on any thread in any order, but
//! every result lands in its input-indexed slot and chunk-carried state
//! (`map_init`) is per-chunk, folded left-to-right inside the chunk.
//! The workspace's kernels are row-partitioned with per-row fold order
//! identical to the serial kernels, so outputs are bit-identical to
//! sequential execution for **any** operations — no associativity or
//! commutativity is assumed. `reduce`/`reduce_with` reassociate only at
//! chunk boundaries, deterministically (chunk results combine in chunk
//! order), which is a strictly smaller reassociation than real rayon's.
//!
//! **Panics** in any chunk are caught, the first one is stashed, the
//! region still drains (so the pool is reusable), and the panic resumes
//! on the submitting thread — matching real rayon's propagation.
//!
//! `current_num_threads()` reports the innermost [`ThreadPool::install`]
//! scope on the current thread, the owning pool's size on a worker
//! thread, and otherwise the global pool's size (from the warn-once
//! `AARRAY_NUM_THREADS` env knob, defaulting to
//! `std::thread::available_parallelism()`). See `stubs/README.md` for
//! swapping the real crate back.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

thread_local! {
    /// Stack of pools entered via [`ThreadPool::install`] on this
    /// thread (innermost last).
    static CURRENT_POOL: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
    /// Non-zero on pool worker threads: the owning pool's size. Doubles
    /// as the "am I a worker?" flag that makes nested parallel stages
    /// run inline instead of deadlocking on their own pool.
    static WORKER_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Chunks executed by the worker that owned their deque slot vs.
/// chunks taken by a different thread vs. chunks run inline on the
/// submitting thread because no pool could help (size ≤ 1, or a nested
/// region on a worker thread). Drained by [`take_task_stats`].
static TASKS_LOCAL: AtomicU64 = AtomicU64::new(0);
static TASKS_STOLEN: AtomicU64 = AtomicU64::new(0);
static TASKS_INLINE: AtomicU64 = AtomicU64::new(0);

/// Drain the `(executed-locally, stolen, inline)` chunk counters
/// accumulated since the last call (atomic swap-to-zero, so concurrent
/// drains never double-count). Inline chunks ran on the submitting
/// thread without ever entering a deque — distinct from `local`, which
/// counts chunks a pool worker executed from its own slot. **Stub
/// extension** — not part of real rayon's API; the workspace's obs
/// bridge is the only caller and is documented in `stubs/README.md`
/// for the swap-back procedure.
pub fn take_task_stats() -> (u64, u64, u64) {
    (
        TASKS_LOCAL.swap(0, Ordering::Relaxed),
        TASKS_STOLEN.swap(0, Ordering::Relaxed),
        TASKS_INLINE.swap(0, Ordering::Relaxed),
    )
}

/// Number of threads in the current pool: the innermost `install`
/// scope, else the owning pool on a worker thread, else the global
/// pool (sized by `AARRAY_NUM_THREADS` / `available_parallelism`).
pub fn current_num_threads() -> usize {
    if let Some(n) = CURRENT_POOL.with(|s| s.borrow().last().map(|r| r.size)) {
        return n;
    }
    let w = WORKER_THREADS.with(|c| c.get());
    if w > 0 {
        return w;
    }
    global_registry().size
}

fn in_worker() -> bool {
    WORKER_THREADS.with(|c| c.get()) > 0
}

/// Pool size for the implicit global pool: `AARRAY_NUM_THREADS` when
/// set to a positive integer, otherwise (including `0` = auto) the
/// host's available parallelism. Unparsable values warn once to stderr
/// and fall back to auto.
fn default_pool_size() -> usize {
    static WARNED: AtomicBool = AtomicBool::new(false);
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match std::env::var("AARRAY_NUM_THREADS") {
        Err(_) => auto,
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(0) => auto,
            Ok(n) => n,
            Err(_) => {
                if !WARNED.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "warning: AARRAY_NUM_THREADS={raw:?} is not a \
                         non-negative integer; using {auto} threads"
                    );
                }
                auto
            }
        },
    }
}

fn global_registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new(default_pool_size())))
}

/// The registry to fan out on from the current thread, or `None` when
/// fan-out cannot help (pool size ≤ 1, or we *are* a pool worker and
/// nested fan-out would run inline anyway).
fn active_registry() -> Option<Arc<Registry>> {
    if in_worker() {
        return None;
    }
    let reg = CURRENT_POOL
        .with(|s| s.borrow().last().cloned())
        .unwrap_or_else(|| global_registry().clone());
    if reg.size <= 1 || reg.handles.is_empty() {
        None
    } else {
        Some(reg)
    }
}

// ---------------------------------------------------------------------
// The pool.
// ---------------------------------------------------------------------

/// One queued chunk of a region. Jobs only ever live in the deque they
/// were placed on, so an own-deque pop is "local" and anything else is
/// a steal.
struct Job {
    region: Arc<Region>,
    chunk: usize,
}

/// A batch of chunks submitted together: the chunk body, a completion
/// latch, and the first caught panic (resumed on the submitter).
struct Region {
    /// Lifetime-erased chunk body. Sound because [`Registry::run_region`]
    /// blocks until `done == total`, after which `run` is never invoked
    /// again — the erased borrow outlives every call through it.
    run: &'static (dyn Fn(usize) + Sync),
    total: usize,
    done: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    complete: Mutex<bool>,
    cv: Condvar,
}

struct Shared {
    /// One deque per worker thread. Owners pop the back (LIFO), thieves
    /// and the submitter pop the front (FIFO).
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Ticket semaphore: an upper bound on pending chunks. Workers
    /// consume a ticket per wake and then scan everything, so a spare
    /// ticket costs one empty scan and a missing wake is impossible
    /// (tickets are added strictly after their chunks are visible).
    tickets: Mutex<u64>,
    cond: Condvar,
    shutdown: AtomicBool,
    next_home: AtomicUsize,
}

impl Shared {
    /// Pop the oldest chunk from any deque except `skip` (use
    /// `usize::MAX` to scan all of them).
    fn steal(&self, skip: usize) -> Option<Job> {
        for (w, dq) in self.deques.iter().enumerate() {
            if w == skip {
                continue;
            }
            if let Some(job) = dq.lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }
}

/// Run one chunk, routing its panic (if any) to the region and tripping
/// the completion latch when it is the last one.
fn execute(job: Job, stolen: bool) {
    let result = catch_unwind(AssertUnwindSafe(|| (job.region.run)(job.chunk)));
    if let Err(payload) = result {
        let mut slot = job.region.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    if stolen {
        TASKS_STOLEN.fetch_add(1, Ordering::Relaxed);
    } else {
        TASKS_LOCAL.fetch_add(1, Ordering::Relaxed);
    }
    // AcqRel: the last increment acquires every finished chunk's writes
    // before the submitter observes the latch.
    let done = job.region.done.fetch_add(1, Ordering::AcqRel) + 1;
    if done == job.region.total {
        let mut c = job.region.complete.lock().unwrap();
        *c = true;
        job.region.cv.notify_all();
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize, pool_size: usize) {
    WORKER_THREADS.with(|c| c.set(pool_size));
    loop {
        // Drain: own deque newest-first, then steal oldest-first.
        loop {
            let own = shared.deques[me].lock().unwrap().pop_back();
            if let Some(job) = own {
                execute(job, false);
                continue;
            }
            match shared.steal(me) {
                Some(job) => execute(job, true),
                None => break,
            }
        }
        // Sleep until a ticket arrives (or shutdown).
        let mut t = shared.tickets.lock().unwrap();
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if *t > 0 {
                *t -= 1;
                break;
            }
            t = shared.cond.wait(t).unwrap();
        }
    }
}

/// A pool's shared state plus its worker handles. Dropping the registry
/// signals shutdown and joins every worker.
struct Registry {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    size: usize,
}

impl Registry {
    fn new(size: usize) -> Registry {
        let workers = size.saturating_sub(1);
        let shared = Arc::new(Shared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            tickets: Mutex::new(0),
            cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_home: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("aarray-pool-{w}"))
                    .spawn(move || worker_loop(shared, w, size))
                    .expect("spawn pool worker")
            })
            .collect();
        Registry {
            shared,
            handles,
            size,
        }
    }

    /// Fan `total` chunks out to the workers and help execute until all
    /// are done; resume the first chunk panic, if any, on this thread.
    fn run_region(&self, total: usize, f: &(dyn Fn(usize) + Sync)) {
        // Erase the borrow's lifetime so jobs can hold it. Sound: this
        // function does not return until every chunk has executed, and
        // `run` is never called after the latch trips.
        let run: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let region = Arc::new(Region {
            run,
            total,
            done: AtomicUsize::new(0),
            panic: Mutex::new(None),
            complete: Mutex::new(false),
            cv: Condvar::new(),
        });
        let nd = self.shared.deques.len();
        for chunk in 0..total {
            let home = self.shared.next_home.fetch_add(1, Ordering::Relaxed) % nd;
            self.shared.deques[home].lock().unwrap().push_back(Job {
                region: region.clone(),
                chunk,
            });
        }
        {
            let mut t = self.shared.tickets.lock().unwrap();
            *t += total as u64;
        }
        self.shared.cond.notify_all();

        // Submitter-helps: execute pending chunks (ours or anyone's)
        // instead of blocking; park on the latch only when every deque
        // is empty — at that point all our chunks are held by threads
        // that will trip the latch.
        loop {
            if *region.complete.lock().unwrap() {
                break;
            }
            match self.shared.steal(usize::MAX) {
                Some(job) => execute(job, true),
                None => {
                    let mut c = region.complete.lock().unwrap();
                    while !*c {
                        c = region.cv.wait(c).unwrap();
                    }
                    break;
                }
            }
        }
        let payload = region.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cond.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Number of chunks for an `n`-item parallel stage: ~4 per thread so
/// uneven chunks rebalance by stealing, capped at one item per chunk.
/// A 1-thread pool gets exactly one chunk — inline execution with the
/// exact sequential state-threading of the old stub.
fn chunk_count(n: usize) -> usize {
    let t = current_num_threads();
    if t <= 1 || n <= 1 {
        1
    } else {
        (t * 4).min(n)
    }
}

/// `k` contiguous `(lo, hi)` ranges covering `0..n`, sizes differing by
/// at most one.
fn chunk_bounds(n: usize, k: usize) -> Vec<(usize, usize)> {
    let base = n / k;
    let extra = n % k;
    let mut bounds = Vec::with_capacity(k);
    let mut lo = 0;
    for c in 0..k {
        let hi = lo + base + usize::from(c < extra);
        bounds.push((lo, hi));
        lo = hi;
    }
    bounds
}

/// Run `f(chunk_index)` for every chunk in `0..total`, on the active
/// pool when one can help, inline otherwise. Panics propagate to the
/// caller either way.
fn run_region(total: usize, f: &(dyn Fn(usize) + Sync)) {
    if total == 0 {
        return;
    }
    match active_registry() {
        Some(reg) => reg.run_region(total, f),
        None => {
            for chunk in 0..total {
                f(chunk);
            }
            TASKS_INLINE.fetch_add(total as u64, Ordering::Relaxed);
        }
    }
}

/// Raw-pointer capsule so disjoint chunk ranges of one buffer can be
/// written from several threads. Safety rests on the ranges being
/// disjoint, which [`chunk_bounds`] guarantees.
struct SyncPtr<T>(*mut T);
unsafe impl<T> Send for SyncPtr<T> {}
unsafe impl<T> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// Accessor (rather than field access) so closures capture the
    /// `Sync` wrapper, not the raw pointer inside it.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// The parallel engine every iterator stage lowers to: move each item
/// through `f` (with per-chunk `init` state) into the same slot of the
/// output vector. Order-preserving by construction. On a chunk panic
/// the not-yet-processed items and the produced outputs leak (no double
/// drop, no uninitialized drop) and the panic resumes on the caller.
fn par_transform<T, S, R>(
    items: Vec<T>,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, T) -> R + Sync,
) -> Vec<R>
where
    T: Send,
    R: Send,
{
    let n = items.len();
    let k = chunk_count(n);
    if k <= 1 {
        // The single chunk runs right here on the submitting thread;
        // it never enters a deque, so it counts as inline work.
        if n > 0 {
            TASKS_INLINE.fetch_add(1, Ordering::Relaxed);
        }
        let mut state = init();
        return items.into_iter().map(|x| f(&mut state, x)).collect();
    }
    let bounds = chunk_bounds(n, k);
    let mut src = items;
    let mut out: Vec<std::mem::MaybeUninit<R>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit slots need no initialization; every slot is
    // written exactly once below before the vec is reinterpreted.
    unsafe { out.set_len(n) };
    let src_ptr = SyncPtr(src.as_mut_ptr());
    let out_ptr = SyncPtr(out.as_mut_ptr());
    // The chunks take ownership of the elements; stop the source vec
    // from dropping them (on panic the unclaimed ones leak, never
    // double-free).
    unsafe { src.set_len(0) };
    run_region(k, &|chunk| {
        let (lo, hi) = bounds[chunk];
        let mut state = init();
        for i in lo..hi {
            // SAFETY: chunk ranges are disjoint; each source slot is
            // read once and each output slot written once.
            unsafe {
                let x = std::ptr::read(src_ptr.get().add(i));
                std::ptr::write(
                    out_ptr.get().add(i),
                    std::mem::MaybeUninit::new(f(&mut state, x)),
                );
            }
        }
    });
    // SAFETY: run_region returned normally, so all n slots are
    // initialized; MaybeUninit<R> and R share layout.
    let (ptr, len, cap) = (out.as_mut_ptr(), out.len(), out.capacity());
    std::mem::forget(out);
    unsafe { Vec::from_raw_parts(ptr as *mut R, len, cap) }
}

/// Split a vec into `k` contiguous chunks (sizes as [`chunk_bounds`]).
fn split_chunks<T>(mut items: Vec<T>, k: usize) -> Vec<Vec<T>> {
    let bounds = chunk_bounds(items.len(), k);
    let mut chunks = Vec::with_capacity(k);
    for c in (0..k).rev() {
        chunks.push(items.split_off(bounds[c].0));
    }
    chunks.reverse();
    chunks
}

/// Run two closures in parallel (as a 2-chunk region on the active
/// pool; inline when no pool can help). A panic in either closure
/// propagates after both slots have settled.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let fa = Mutex::new(Some(a));
    let fb = Mutex::new(Some(b));
    let ra: Mutex<Option<RA>> = Mutex::new(None);
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    run_region(2, &|chunk| {
        if chunk == 0 {
            let f = fa.lock().unwrap().take().expect("join slot a runs once");
            *ra.lock().unwrap() = Some(f());
        } else {
            let f = fb.lock().unwrap().take().expect("join slot b runs once");
            *rb.lock().unwrap() = Some(f());
        }
    });
    (
        ra.into_inner().unwrap().expect("join slot a completed"),
        rb.into_inner().unwrap().expect("join slot b completed"),
    )
}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Set the pool size (0 = automatic: `AARRAY_NUM_THREADS`, else
    /// the host's available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool, spawning its workers. Never fails in the stub.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_pool_size()
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            registry: Arc::new(Registry::new(n)),
        })
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (unreachable in stub)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A real pool of `size − 1` worker threads plus the installing thread.
/// Workers are joined when the pool is dropped.
pub struct ThreadPool {
    registry: Arc<Registry>,
}

impl ThreadPool {
    /// Execute `op` with this pool as the current one: parallel stages
    /// inside fan out to this pool's workers and
    /// [`current_num_threads`] reports its size.
    pub fn install<O, R>(&self, op: O) -> R
    where
        O: FnOnce() -> R + Send,
        R: Send,
    {
        CURRENT_POOL.with(|s| s.borrow_mut().push(self.registry.clone()));
        struct Guard;
        impl Drop for Guard {
            fn drop(&mut self) {
                CURRENT_POOL.with(|s| {
                    s.borrow_mut().pop();
                });
            }
        }
        let _guard = Guard;
        op()
    }

    /// The configured pool size.
    pub fn current_num_threads(&self) -> usize {
        self.registry.size
    }
}

/// Rayon-shaped parallel iterators over materialized items. Stages that
/// do per-item work (`map`, `map_init`, `for_each`, reductions) execute
/// eagerly on the current pool; cheap shaping stages (`filter`,
/// `collect`, `sum`) run on the caller.
pub mod iter {
    use super::{chunk_count, par_transform, split_chunks};

    /// A parallel iterator: the items it will distribute, in order.
    pub struct ParIter<T: Send> {
        items: Vec<T>,
    }

    /// Conversion into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Convert self.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    /// Conversion into a parallel iterator over references.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type (a reference).
        type Item: Send + 'a;
        /// Iterate references in parallel.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I
    where
        I::Item: Send,
    {
        type Item = I::Item;
        fn into_par_iter(self) -> ParIter<I::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
        <&'a C as IntoIterator>::Item: Send,
    {
        type Item = <&'a C as IntoIterator>::Item;
        fn par_iter(&'a self) -> ParIter<Self::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    impl<T: Send> ParIter<T> {
        /// Map each element (parallel, order-preserving).
        pub fn map<R, F>(self, f: F) -> ParIter<R>
        where
            R: Send,
            F: Fn(T) -> R + Sync + Send,
        {
            ParIter {
                items: par_transform(self.items, || (), |(), x| f(x)),
            }
        }

        /// Map with per-chunk scratch state: `init` runs once per chunk
        /// (≈ rayon's once-per-worker-segment) and the state threads
        /// left-to-right through that chunk's items. With one thread
        /// there is exactly one chunk, i.e. the sequential semantics.
        pub fn map_init<INIT, S, F, R>(self, init: INIT, f: F) -> ParIter<R>
        where
            R: Send,
            INIT: Fn() -> S + Sync + Send,
            F: Fn(&mut S, T) -> R + Sync + Send,
        {
            ParIter {
                items: par_transform(self.items, init, f),
            }
        }

        /// Filter elements (on the caller; predicates are cheap here).
        pub fn filter<F>(self, mut f: F) -> ParIter<T>
        where
            F: FnMut(&T) -> bool,
        {
            ParIter {
                items: self.items.into_iter().filter(|x| f(x)).collect(),
            }
        }

        /// Chunk-wise reduction without identity: chunks fold
        /// left-to-right in parallel, then chunk results fold in chunk
        /// order — deterministic for a fixed thread count.
        pub fn reduce_with<F>(self, f: F) -> Option<T>
        where
            F: Fn(T, T) -> T + Sync + Send,
        {
            let k = chunk_count(self.items.len());
            if k <= 1 {
                if !self.items.is_empty() {
                    super::TASKS_INLINE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                return self.items.into_iter().reduce(f);
            }
            let partials = par_transform(
                split_chunks(self.items, k),
                || (),
                |(), chunk| chunk.into_iter().reduce(&f),
            );
            partials.into_iter().flatten().reduce(f)
        }

        /// Chunk-wise reduction with identity (rayon's `reduce`).
        pub fn reduce<ID, F>(self, identity: ID, f: F) -> T
        where
            ID: Fn() -> T + Sync + Send,
            F: Fn(T, T) -> T + Sync + Send,
        {
            let k = chunk_count(self.items.len());
            if k <= 1 {
                if !self.items.is_empty() {
                    super::TASKS_INLINE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                return self.items.into_iter().fold(identity(), &f);
            }
            let partials = par_transform(
                split_chunks(self.items, k),
                || (),
                |(), chunk| chunk.into_iter().fold(identity(), &f),
            );
            partials.into_iter().fold(identity(), f)
        }

        /// Sum the elements (on the caller; the upstream stages did the
        /// parallel work).
        pub fn sum<S>(self) -> S
        where
            S: std::iter::Sum<T>,
        {
            self.items.into_iter().sum()
        }

        /// Collect into a container, preserving input order.
        pub fn collect<C>(self) -> C
        where
            C: FromIterator<T>,
        {
            self.items.into_iter().collect()
        }

        /// Consume every element with a side-effecting closure
        /// (parallel; effects must tolerate any interleaving).
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(T) + Sync + Send,
        {
            let _: Vec<()> = par_transform(self.items, || (), |(), x| f(x));
        }
    }

    impl<'a, U: Clone + Send + Sync + 'a> ParIter<&'a U> {
        /// Clone referenced elements (parallel, order-preserving).
        pub fn cloned(self) -> ParIter<U> {
            ParIter {
                items: par_transform(self.items, || (), |(), x: &U| x.clone()),
            }
        }
    }
}

/// What `use rayon::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn pool(n: usize) -> super::ThreadPool {
        super::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    }

    #[test]
    fn map_collect_matches_serial() {
        for threads in [1, 2, 4, 8] {
            let v: Vec<usize> =
                pool(threads).install(|| (0..1000usize).into_par_iter().map(|x| x * 2).collect());
            assert_eq!(v, (0..1000).map(|x| x * 2).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn map_init_is_sequential_on_one_thread() {
        // One thread ⇒ one chunk ⇒ one state threaded left-to-right,
        // exactly the old sequential stub's semantics.
        let v: Vec<usize> = pool(1).install(|| {
            (0..5usize)
                .into_par_iter()
                .map_init(
                    || 100usize,
                    |s, x| {
                        *s += 1;
                        *s + x
                    },
                )
                .collect()
        });
        assert_eq!(v, vec![101, 103, 105, 107, 109]);
    }

    #[test]
    fn map_init_state_is_per_chunk_and_output_ordered() {
        // State must reset at chunk boundaries (per-chunk scratch, not
        // one shared accumulator) and outputs must stay input-ordered
        // whatever the execution order.
        for threads in [2, 4, 8] {
            let v: Vec<(usize, usize)> = pool(threads).install(|| {
                (0..100usize)
                    .into_par_iter()
                    .map_init(
                        || 0usize,
                        |seen_in_chunk, x| {
                            *seen_in_chunk += 1;
                            (x, *seen_in_chunk)
                        },
                    )
                    .collect()
            });
            for (i, &(x, seen)) in v.iter().enumerate() {
                assert_eq!(x, i, "order preserved");
                // A fresh chunk state can never have seen more items
                // than the prefix of its own chunk.
                assert!(seen <= i + 1, "state leaked across chunks at {i}");
            }
            // First item of the first chunk always sees a fresh state.
            assert_eq!(v[0].1, 1);
        }
    }

    #[test]
    fn par_iter_over_slice() {
        let data = [1u64, 2, 3];
        let s: u64 = data.par_iter().cloned().reduce_with(|a, b| a + b).unwrap();
        assert_eq!(s, 6);
    }

    #[test]
    fn reductions_match_serial_at_all_pool_sizes() {
        let data: Vec<u64> = (1..=101).collect();
        for threads in [1, 2, 4, 8] {
            let p = pool(threads);
            let max = p.install(|| data.par_iter().cloned().reduce_with(std::cmp::max));
            assert_eq!(max, Some(101));
            let sum = p.install(|| data.par_iter().cloned().reduce(|| 0u64, |a, b| a + b));
            assert_eq!(sum, 101 * 102 / 2);
        }
    }

    #[test]
    fn install_scopes_thread_count_and_nests() {
        let outer = pool(2);
        let inner = pool(3);
        outer.install(|| {
            assert_eq!(super::current_num_threads(), 2);
            inner.install(|| assert_eq!(super::current_num_threads(), 3));
            assert_eq!(super::current_num_threads(), 2);
        });
        assert_eq!(outer.current_num_threads(), 2);
        assert_eq!(inner.current_num_threads(), 3);
    }

    #[test]
    fn join_runs_both_and_returns_in_order() {
        for threads in [1, 4] {
            let (a, b) = pool(threads).install(|| super::join(|| 2 + 2, || "side b"));
            assert_eq!((a, b), (4, "side b"));
        }
    }

    #[test]
    fn join_propagates_panic_from_either_side() {
        let p = pool(4);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| super::join(|| 1, || panic!("right side boom")))
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("right side boom"), "{msg:?}");
        // The pool must survive a panicked region.
        let v: Vec<usize> = p.install(|| (0..10usize).into_par_iter().map(|x| x).collect());
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn par_iter_propagates_worker_panic() {
        let p = pool(4);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| {
                (0..100usize)
                    .into_par_iter()
                    .map(|i| if i == 37 { panic!("row 37 boom") } else { i })
                    .collect::<Vec<_>>()
            })
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("row 37 boom"), "{msg:?}");
        let v: Vec<usize> = p.install(|| (0..10usize).into_par_iter().map(|x| x + 1).collect());
        assert_eq!(v, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_parallel_stages_run_inline_on_workers() {
        // A parallel stage inside a parallel stage must not deadlock:
        // workers run nested regions inline.
        let serial: Vec<usize> = (0..8usize)
            .map(|i| (0..8usize).map(|j| i * 8 + j).sum())
            .collect();
        let nested: Vec<usize> = pool(4).install(|| {
            (0..8usize)
                .into_par_iter()
                .map(|i| (0..8usize).into_par_iter().map(|j| i * 8 + j).sum())
                .collect()
        });
        assert_eq!(nested, serial);
    }

    #[test]
    fn work_actually_lands_on_spawned_workers() {
        // With enough chunks and a blocking submitter, at least one
        // chunk must execute on a thread other than the submitter.
        let submitter = std::thread::current().id();
        let elsewhere = AtomicUsize::new(0);
        pool(4).install(|| {
            (0..64usize).into_par_iter().for_each(|_| {
                if std::thread::current().id() != submitter {
                    elsewhere.fetch_add(1, Ordering::Relaxed);
                }
                // Give other executors a window to claim chunks.
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
        });
        assert!(
            elsewhere.load(Ordering::Relaxed) > 0,
            "no chunk ran off the submitting thread"
        );
    }

    #[test]
    fn task_stats_account_every_chunk() {
        let _ = super::take_task_stats();
        let p = pool(4);
        let v: Vec<usize> = p.install(|| (0..100usize).into_par_iter().map(|x| x).collect());
        assert_eq!(v.len(), 100);
        let (local, stolen, _inline) = super::take_task_stats();
        // 100 items in a 4-thread pool ⇒ 16 chunks, each counted
        // exactly once somewhere (other tests may add, never subtract).
        assert!(local + stolen >= 16, "local={local} stolen={stolen}");
    }

    #[test]
    fn task_stats_count_inline_chunks_separately() {
        let _ = super::take_task_stats();
        let p = pool(1);
        let v: Vec<usize> = p.install(|| (0..10usize).into_par_iter().map(|x| x).collect());
        assert_eq!(v.len(), 10);
        let (_, stolen, inline) = super::take_task_stats();
        // A 1-thread pool never fans out: every chunk runs inline on
        // the submitting thread and nothing can be stolen from it. A
        // concurrent test's 4-thread pool may add local/stolen counts,
        // but inline work is what this region must have produced.
        assert!(inline >= 1, "inline={inline} stolen={stolen}");
    }

    #[test]
    fn region_outputs_are_visible_after_latch() {
        // Hammer the happens-before edge from worker writes to the
        // submitter's read of the output buffer.
        let p = pool(4);
        for round in 0..200usize {
            let v: Vec<usize> = p.install(|| {
                (0..32usize)
                    .into_par_iter()
                    .map(|x| x.wrapping_mul(round + 1))
                    .collect()
            });
            for (i, &got) in v.iter().enumerate() {
                assert_eq!(got, i.wrapping_mul(round + 1));
            }
        }
    }

    #[test]
    fn map_init_under_mutation_heavy_contention() {
        // Shared side effects through a mutex stay consistent while the
        // per-chunk state partitions the items exactly.
        let log = Mutex::new(Vec::new());
        pool(8).install(|| {
            (0..500usize).into_par_iter().for_each(|x| {
                log.lock().unwrap().push(x);
            });
        });
        let mut seen = log.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
    }
}
