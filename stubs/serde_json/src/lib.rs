//! Offline placeholder for the `serde_json` crate.
//!
//! Only referenced by tests that are gated behind the off-by-default
//! `serde` features, so default builds never touch this crate's items;
//! cargo just needs the package present to resolve the graph offline.
//! Swap the real crate back before enabling those features (see
//! `stubs/README.md`). No items are defined so misconfiguration fails
//! at compile time.
