//! End-to-end streaming scenario: edges arrive in batches, adjacency
//! accumulates incrementally, and the analysis layer (metrics,
//! components, PageRank, export) consumes the result — the "data
//! processing pipeline" of the paper's abstract, at system level.

use aarray_algebra::pairs::PlusTimes;
use aarray_algebra::values::nat::Nat;
use aarray_core::adjacency_array;
use aarray_graph::components::component_count;
use aarray_graph::export::{to_dot, DotOptions};
use aarray_graph::generators::erdos_renyi;
use aarray_graph::metrics::graph_metrics;
use aarray_graph::pagerank::{pagerank, PageRankOptions};
use aarray_graph::streaming::StreamingAdjacency;

#[test]
fn streamed_construction_feeds_the_analysis_stack() {
    let pair = PlusTimes::<Nat>::new();

    // Ground truth: one-shot construction from the full edge list.
    let g = erdos_renyi(80, 400, 123);
    let (eout, ein) = g.incidence_arrays(&pair);
    let reference = adjacency_array(&eout, &ein, &pair);

    // Stream the same edges in odd-sized batches.
    let mut s = StreamingAdjacency::new(pair, 17);
    for e in g.edges() {
        s.push_edge(e.src.clone(), e.dst.clone(), e.wout, e.win);
    }
    let streamed = s.finish();
    assert_eq!(streamed, reference);

    // Analysis stack runs on the streamed result.
    let m = graph_metrics(&streamed);
    assert_eq!(m.vertices, 80);
    assert!(m.edges <= 400);
    assert_eq!(m.edges, streamed.nnz());

    let comps = component_count(&streamed);
    assert!((1..=80).contains(&comps));

    let pr = pagerank(&streamed, |v| v.0 as f64, PageRankOptions::default());
    let total: f64 = pr.values().sum();
    assert!((total - 1.0).abs() < 1e-8);

    let dot = to_dot(
        &streamed,
        &DotOptions {
            edge_labels: false,
            ..Default::default()
        },
    );
    assert_eq!(dot.matches(" -> ").count(), streamed.nnz());
}

#[test]
fn streaming_batch_size_is_semantically_invisible() {
    let pair = PlusTimes::<Nat>::new();
    let g = erdos_renyi(30, 150, 7);
    let mut results = Vec::new();
    for batch in [1usize, 7, 64, 1000] {
        let mut s = StreamingAdjacency::new(pair, batch);
        for e in g.edges() {
            s.push_edge(e.src.clone(), e.dst.clone(), e.wout, e.win);
        }
        results.push(s.finish());
    }
    for w in results.windows(2) {
        assert_eq!(w[0], w[1]);
    }
}

#[test]
fn incremental_updates_compose_with_queries() {
    // A growing graph queried between batches — the operational mode
    // the paper's "database table → graph" pipeline implies.
    let pair = PlusTimes::<Nat>::new();
    let mut s = StreamingAdjacency::new(pair, 2);
    s.push_edge("alice", "bob", Nat(1), Nat(1));
    s.push_edge("bob", "carol", Nat(1), Nat(1));
    s.flush();

    s.push_edge("carol", "alice", Nat(1), Nat(1));
    s.push_edge("alice", "bob", Nat(1), Nat(1)); // repeat: aggregates
    let a = s.finish();

    assert_eq!(a.get("alice", "bob"), Some(&Nat(2)));
    assert_eq!(graph_metrics(&a).vertices, 3);
    assert_eq!(component_count(&a), 1);
    // Strongest link via query API.
    let top = a.row_argmax();
    assert_eq!(top[0].0, "alice");
    assert_eq!(top[0].2, Nat(2));
}
