//! Property-based tests of Theorem II.1, both directions, plus
//! Corollary III.1 (reverse graphs).
//!
//! *Sufficiency*: for compliant pairs and arbitrary multigraphs, the
//! nonzero pattern of `EᵀoutEin` equals the edge pattern.
//! *Necessity*: for each violated condition, the lemma gadget built
//! from a checker witness breaks the pattern.

use aarray_algebra::counterexample::{
    classify_pattern, eval_gadget, zero_divisor_gadget, zero_sum_gadget, PatternVerdict,
};
use aarray_algebra::pairs::{GcdLcm, MaxMin, MaxPlus, MinMax, MinPlus, PlusTimes};
use aarray_algebra::properties::check_pair_exhaustive;
use aarray_algebra::values::nat::Nat;
use aarray_algebra::values::nn::{nn, NN};
use aarray_algebra::values::tropical::{trop, Tropical};
use aarray_algebra::values::zn::Zn;
use aarray_algebra::{BinaryOp, OpPair, Value};
use aarray_core::theorem::pattern_diff;
use aarray_core::{adjacency_array_unchecked, reverse_adjacency_array};
use aarray_graph::MultiGraph;
use proptest::prelude::*;

/// Strategy: a random multigraph on up to 8 vertices and 20 edges with
/// weights drawn from `values`.
fn arb_graph<V: Value + 'static>(values: Vec<V>) -> impl Strategy<Value = MultiGraph<V>> {
    let value_count = values.len();
    prop::collection::vec(
        (
            0usize..8,
            0usize..8,
            0usize..value_count,
            0usize..value_count,
        ),
        1..20,
    )
    .prop_map(move |edges| {
        let mut g = MultiGraph::new();
        for (i, (s, d, wi, wo)) in edges.into_iter().enumerate() {
            g.add_edge(
                format!("e{:03}", i),
                format!("v{}", s),
                format!("v{}", d),
                values[wi].clone(),
                values[wo].clone(),
            );
        }
        g
    })
}

fn check_sufficiency<V, A, M>(g: &MultiGraph<V>, pair: &OpPair<V, A, M>)
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    let (eout, ein) = g.incidence_arrays(pair);
    let a = adjacency_array_unchecked(&eout, &ein, pair);
    let diff = pattern_diff(&a, g.edge_pattern());
    assert!(
        diff.is_exact(),
        "{}: missing {:?}, phantom {:?}",
        pair.name(),
        diff.missing,
        diff.phantom
    );
}

proptest! {
    #[test]
    fn sufficiency_plus_times_nat(g in arb_graph(vec![Nat(1), Nat(2), Nat(5), Nat(100)])) {
        check_sufficiency(&g, &PlusTimes::<Nat>::new());
    }

    #[test]
    fn sufficiency_max_min_nat(g in arb_graph(vec![Nat(1), Nat(3), Nat(9), Nat(u64::MAX - 1)])) {
        check_sufficiency(&g, &MaxMin::<Nat>::new());
    }

    #[test]
    fn sufficiency_min_max_nat(g in arb_graph(vec![Nat(1), Nat(3), Nat(9)])) {
        check_sufficiency(&g, &MinMax::<Nat>::new());
    }

    #[test]
    fn sufficiency_min_plus_nn(g in arb_graph(vec![nn(0.5), nn(1.0), nn(2.5), nn(1e6)])) {
        check_sufficiency(&g, &MinPlus::<NN>::new());
    }

    #[test]
    fn sufficiency_max_plus_tropical(
        g in arb_graph(vec![trop(-3.0), trop(0.0), trop(1.5), trop(42.0)])
    ) {
        check_sufficiency(&g, &MaxPlus::<Tropical>::new());
    }

    #[test]
    fn sufficiency_gcd_lcm(g in arb_graph(vec![Nat(2), Nat(3), Nat(6), Nat(35)])) {
        check_sufficiency(&g, &GcdLcm::new());
    }

    #[test]
    fn corollary_reverse_graph(g in arb_graph(vec![Nat(1), Nat(2), Nat(7)])) {
        // Corollary III.1: EᵀinEout is the adjacency array of Ḡ.
        let pair = PlusTimes::<Nat>::new();
        let (eout, ein) = g.incidence_arrays(&pair);
        let rev_a = reverse_adjacency_array(&eout, &ein, &pair);
        let diff = pattern_diff(&rev_a, g.reverse().edge_pattern());
        prop_assert!(diff.is_exact());

        // And it equals what you get from the reverse graph's own
        // incidence arrays (the proof's construction: Ēout = Ein …).
        let (reout, rein) = g.reverse().incidence_arrays(&pair);
        let direct = adjacency_array_unchecked(&reout, &rein, &pair);
        prop_assert_eq!(rev_a, direct);
    }

    #[test]
    fn necessity_zero_sums_break_patterns(v in 1u64..6, w in 1u64..6) {
        // In ℤ/6, whenever v + w ≡ 0 the Lemma II.2 gadget loses its
        // edge; otherwise the gadget stays exact for these inputs
        // (products with 1 cannot hit other failure modes).
        let pair = PlusTimes::<Zn<6>>::new();
        let g = zero_sum_gadget(Zn::<6>::new(v), Zn::<6>::new(w), pair.one());
        let prod = eval_gadget(&g, &pair.zero(), |a, b| pair.plus(a, b), |a, b| pair.times(a, b));
        let verdict = classify_pattern(&g, &prod, &pair.zero());
        if (v + w) % 6 == 0 {
            prop_assert_eq!(verdict, PatternVerdict::MissingEdge { at: (0, 0) });
        } else {
            prop_assert_eq!(verdict, PatternVerdict::Adjacency);
        }
    }

    #[test]
    fn necessity_zero_divisors_break_patterns(v in 1u64..6, w in 1u64..6) {
        let pair = PlusTimes::<Zn<6>>::new();
        let g = zero_divisor_gadget(Zn::<6>::new(v), Zn::<6>::new(w));
        let prod = eval_gadget(&g, &pair.zero(), |a, b| pair.plus(a, b), |a, b| pair.times(a, b));
        let verdict = classify_pattern(&g, &prod, &pair.zero());
        if (v * w) % 6 == 0 {
            prop_assert_eq!(verdict, PatternVerdict::MissingEdge { at: (0, 0) });
        } else {
            prop_assert_eq!(verdict, PatternVerdict::Adjacency);
        }
    }
}

#[test]
fn necessity_witnesses_feed_gadgets() {
    // The exhaustive checker's witnesses, plugged into the lemma
    // gadgets, must produce pattern failures — closing the loop from
    // refutation to broken construction.
    let pair = PlusTimes::<Zn<6>>::new();
    let report = check_pair_exhaustive(&pair);

    let w = report.zero_sum_free.unwrap_err();
    let g = zero_sum_gadget(w.a, w.b.unwrap(), pair.one());
    let prod = eval_gadget(
        &g,
        &pair.zero(),
        |a, b| pair.plus(a, b),
        |a, b| pair.times(a, b),
    );
    assert!(matches!(
        classify_pattern(&g, &prod, &pair.zero()),
        PatternVerdict::MissingEdge { .. }
    ));

    let w = report.no_zero_divisors.unwrap_err();
    let g = zero_divisor_gadget(w.a, w.b.unwrap());
    let prod = eval_gadget(
        &g,
        &pair.zero(),
        |a, b| pair.plus(a, b),
        |a, b| pair.times(a, b),
    );
    assert!(matches!(
        classify_pattern(&g, &prod, &pair.zero()),
        PatternVerdict::MissingEdge { .. }
    ));
}

#[test]
fn zn_cancellation_breaks_real_arrays_not_just_gadgets() {
    // Necessity demonstrated at the AArray level: a ℤ/6 graph with
    // cancelling parallel edges loses the edge from EᵀoutEin.
    let pair = PlusTimes::<Zn<6>>::new();
    let mut g: MultiGraph<Zn<6>> = MultiGraph::new();
    g.add_edge("e1", "a", "b", Zn::<6>::new(2), Zn::<6>::new(1));
    g.add_edge("e2", "a", "b", Zn::<6>::new(4), Zn::<6>::new(1));
    let (eout, ein) = g.incidence_arrays(&pair);
    let a = adjacency_array_unchecked(&eout, &ein, &pair);
    let diff = pattern_diff(&a, g.edge_pattern());
    assert_eq!(diff.missing.len(), 1);
}

#[test]
fn structured_wordset_corpora_are_idempotent_under_union_intersect() {
    // Randomized Section III check. For a shared-word array
    // `E(i, j) = words(i) ∩ words(j)`, the sharing structure forces
    // every product term `E(x, k) ∩ E(k, y) ⊆ E(x, y)`, and the
    // diagonal term `E(x, x) ∩ E(x, y) = E(x, y)` restores the whole
    // set — so `EᵀE = E` exactly: the product *is* the adjacency array
    // of the word-sharing graph, with the shared words as entries
    // ("the array produced will contain as entries a list of words
    // shared by those two documents"). Note this is a *different*
    // graph than the Boolean two-hop reachability pattern; ∪.∩'s zero
    // divisors erase two-hop pairs that share no words directly, which
    // is exactly why the pair fails the general criteria.
    use aarray_graph::structured::{has_sharing_structure, shared_word_array, Document};
    use rand::{Rng, SeedableRng};
    let pair =
        aarray_algebra::pairs::UnionIntersect::<aarray_algebra::values::wordset::WordSet>::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    for trial in 0..25 {
        let vocab: Vec<String> = (0..10).map(|i| format!("w{}", i)).collect();
        let docs: Vec<Document> = (0..6)
            .map(|d| {
                let k = rng.gen_range(1..5usize);
                Document::new(
                    format!("d{}", d),
                    (0..k).map(|_| vocab[rng.gen_range(0..vocab.len())].clone()),
                )
            })
            .collect();
        let e = shared_word_array(&docs);
        assert!(has_sharing_structure(&e), "trial {}", trial);
        let ete = adjacency_array_unchecked(&e, &e, &pair);
        assert_eq!(
            ete, e,
            "trial {}: EᵀE must equal E on structured corpora",
            trial
        );
    }
}
