//! Adversarial and failure-injection tests: malformed inputs, boundary
//! dimensions, hostile values — the library must fail loudly and
//! precisely, never silently corrupt a pattern.

use aarray_algebra::pairs::{MaxPlus, MinPlus, PlusTimes};
use aarray_algebra::values::nat::Nat;
use aarray_algebra::values::nn::NN;
use aarray_algebra::values::tropical::Tropical;
use aarray_core::{AArray, KeySet};
use aarray_d4m::tsv;
use aarray_sparse::io as sio;
use aarray_sparse::{Coo, Csr};

// --- hostile floats are unrepresentable by construction ---

#[test]
fn nan_and_out_of_domain_floats_cannot_enter() {
    assert!(NN::new(f64::NAN).is_none());
    assert!(NN::new(-1e-300).is_none());
    assert!(Tropical::new(f64::NAN).is_none());
    assert!(Tropical::new(f64::INFINITY).is_none());
    assert!(aarray_algebra::values::unit::Unit::new(f64::NAN).is_none());
    assert!(aarray_algebra::values::unit::Unit::new(1.0 + 1e-9).is_none());
}

#[test]
fn infinity_weights_are_zero_for_min_pairs_and_rejected_as_incidence() {
    // ∞ IS the zero of min.+ on NN; an edge carrying it would be a
    // stored zero, which incidence extraction must reject.
    let pair = MinPlus::<NN>::new();
    let mut g = aarray_graph::MultiGraph::new();
    g.add_edge("e", "a", "b", NN::INF, NN::new(1.0).unwrap());
    let res = std::panic::catch_unwind(|| g.incidence_arrays(&pair));
    assert!(res.is_err(), "∞ incidence under min.+ must panic");

    // The same weight is perfectly legal under max.+ semantics on the
    // tropical carrier (finite there means anything above -∞).
    let tp = MaxPlus::<Tropical>::new();
    let mut g2 = aarray_graph::MultiGraph::new();
    g2.add_edge(
        "e",
        "a",
        "b",
        Tropical::new(0.0).unwrap(),
        Tropical::new(-7.0).unwrap(),
    );
    let (eout, _) = g2.incidence_arrays(&tp);
    assert_eq!(eout.nnz(), 1);
}

// --- malformed serialized inputs ---

#[test]
fn sparse_io_rejects_malformed_documents() {
    let pair = PlusTimes::<Nat>::new();
    let parse = |s: &str| s.parse().ok().map(Nat);
    for (doc, what) in [
        ("", "empty"),
        ("%aarray x y\n", "non-numeric dims"),
        ("%aarray 2\n", "missing dim"),
        ("%aarray 2 2\n1\t1\n", "two fields"),
        ("%aarray 2 2\n5\t0\t1\n", "row out of bounds"),
        ("%aarray 2 2\n0\t9\t1\n", "col out of bounds"),
        ("%aarray 2 2\n0\t0\tzzz\n", "bad value"),
    ] {
        assert!(
            sio::read_triples(doc, &pair, parse).is_err(),
            "should reject: {}",
            what
        );
    }
}

#[test]
fn tsv_rejects_malformed_documents() {
    assert!(tsv::from_tsv("").is_none());
    assert!(tsv::from_tsv("notkey\tA\nr\t1\n").is_none());
    assert!(tsv::from_tsv("key\tA\tB\nr\tonly\n").is_none());
}

// --- corrupt raw parts are caught by validation ---

#[test]
fn validate_catches_out_of_sync_keys() {
    let rows = KeySet::from_iter(["r1", "r2"]);
    let cols = KeySet::from_iter(["c1"]);
    // Storage says 3 rows; key set says 2.
    let csr = Csr::<Nat>::empty(3, 1);
    let res = std::panic::catch_unwind(|| AArray::from_parts(rows, cols, csr));
    assert!(res.is_err(), "from_parts must reject mismatched shapes");
}

#[test]
fn validate_for_pair_catches_smuggled_zeros() {
    // Build under min.+ (zero = ∞), where 0.0 is a legitimate value…
    let mp = MinPlus::<NN>::new();
    let a = AArray::from_triples(&mp, [("r", "c", NN::ZERO)]);
    assert!(a.validate_for_pair(&mp).is_ok());
    // …then audit under +.× (zero = 0): the stored 0 is now an
    // implicit-zero violation.
    let pt = PlusTimes::<NN>::new();
    assert!(a.validate_for_pair(&pt).is_err());
}

// --- boundary dimensions ---

#[test]
fn zero_sized_arrays_flow_through_every_operation() {
    let pair = PlusTimes::<Nat>::new();
    let empty = AArray::<Nat>::empty(KeySet::empty(), KeySet::empty());
    assert_eq!(empty.nnz(), 0);
    assert_eq!(empty.transpose().shape(), (0, 0));
    let sel = empty.select_cols_str(":");
    assert_eq!(sel.shape(), (0, 0));
    let sum = empty.ewise_add(&empty, &pair);
    assert_eq!(sum.nnz(), 0);
    let prod = empty.matmul(&empty, &pair);
    assert_eq!(prod.shape(), (0, 0));
    assert!(empty.validate().is_ok());
    assert_eq!(empty.stats().nnz, 0);
}

#[test]
fn single_cell_universe() {
    let pair = PlusTimes::<Nat>::new();
    let a = AArray::from_triples(&pair, [("k", "k", Nat(1))]);
    let sq = a.transpose().matmul(&a, &pair);
    assert_eq!(sq.get("k", "k"), Some(&Nat(1)));
}

// --- saturation boundaries ---

#[test]
fn saturating_arithmetic_cannot_wrap_onto_zero() {
    // The catastrophic failure mode would be MAX+1 → 0, silently
    // deleting an edge. Saturation pins at ⊤ instead; the entry
    // survives.
    let pair = PlusTimes::<Nat>::new();
    let eout = AArray::from_triples(
        &pair,
        [("e1", "a", Nat(u64::MAX)), ("e2", "a", Nat(u64::MAX))],
    );
    let ein = AArray::from_triples(&pair, [("e1", "b", Nat(1)), ("e2", "b", Nat(1))]);
    let a = aarray_core::adjacency_array(&eout, &ein, &pair);
    assert_eq!(a.get("a", "b"), Some(&Nat::TOP));
}

// --- hostile keys ---

#[test]
fn keys_with_separators_and_unicode_survive() {
    let pair = PlusTimes::<Nat>::new();
    let weird = [
        ("key with spaces", "col|with|pipes", Nat(1)),
        ("ключ", "colonne:à:deux-points", Nat(2)),
        ("", "empty-row-key-is-legal", Nat(3)),
    ];
    let a = AArray::from_triples(&pair, weird);
    assert_eq!(a.get("ключ", "colonne:à:deux-points"), Some(&Nat(2)));
    assert_eq!(a.get("", "empty-row-key-is-legal"), Some(&Nat(3)));
    assert!(a.validate().is_ok());
    // Range selection treats them as plain strings.
    let sel = a.select_cols_str("col|a : col|z");
    assert_eq!(sel.col_keys().len(), 1);
}

// --- COO bounds are the first line of defence ---

#[test]
fn coo_rejects_out_of_bounds_immediately() {
    let mut coo = Coo::<Nat>::new(2, 2);
    assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        coo.push(0, 2, Nat(1));
    }))
    .is_err());
}
