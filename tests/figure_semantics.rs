//! The paper's Section IV synopsis, property-tested: what each operator
//! pair *computes* when correlating unit/column-weighted incidence
//! arrays — "`+.×` computes the strength of all connections…", "the
//! other semirings select extremal edges", "the pattern of edges … is
//! generally preserved for various semirings".
//!
//! Random track×genre and track×writer arrays play the role of `E1`,
//! `E2`; the reference quantities are computed by brute force.

use aarray_algebra::pairs::{MaxMin, MaxTimes, MinMax, MinPlus, MinTimes, PlusTimes};
use aarray_algebra::values::nn::{nn, NN};
use aarray_core::{adjacency_array_unchecked, AArray};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

const TRACKS: usize = 12;
const GENRES: usize = 4;
const WRITERS: usize = 6;

type Incidences = (Vec<(usize, usize)>, Vec<(usize, usize)>);

/// Strategy: random (track→genre, track→writer) incidence patterns,
/// at least one of each.
fn arb_incidences() -> impl Strategy<Value = Incidences> {
    (
        prop::collection::btree_set((0..TRACKS, 0..GENRES), 1..30),
        prop::collection::btree_set((0..TRACKS, 0..WRITERS), 1..40),
    )
        .prop_map(|(g, w)| (g.into_iter().collect(), w.into_iter().collect()))
}

fn genre_key(g: usize) -> String {
    format!("Genre|{:02}", g)
}

fn writer_key(w: usize) -> String {
    format!("Writer|{:02}", w)
}

/// Column weight for the "Figure 4" variant: genre g gets weight g+1.
fn genre_weight(g: usize) -> f64 {
    (g + 1) as f64
}

fn build_arrays(inc: &Incidences, weighted: bool) -> (AArray<NN>, AArray<NN>) {
    let pair = PlusTimes::<NN>::new();
    let e1 = AArray::from_triples(
        &pair,
        inc.0.iter().map(|&(t, g)| {
            let v = if weighted { genre_weight(g) } else { 1.0 };
            (format!("t{:03}", t), genre_key(g), nn(v))
        }),
    );
    let e2 = AArray::from_triples(
        &pair,
        inc.1
            .iter()
            .map(|&(t, w)| (format!("t{:03}", t), writer_key(w), nn(1.0))),
    );
    (e1, e2)
}

/// Brute-force: connecting tracks per (genre, writer).
fn connections(inc: &Incidences) -> BTreeMap<(usize, usize), usize> {
    let mut m = BTreeMap::new();
    for &(t, g) in &inc.0 {
        for &(t2, w) in &inc.1 {
            if t == t2 {
                *m.entry((g, w)).or_insert(0) += 1;
            }
        }
    }
    m
}

proptest! {
    #[test]
    fn plus_times_counts_connections(inc in arb_incidences()) {
        let (e1, e2) = build_arrays(&inc, false);
        let a = adjacency_array_unchecked(&e1, &e2, &PlusTimes::<NN>::new());
        let expect = connections(&inc);
        prop_assert_eq!(a.nnz(), expect.len());
        for (&(g, w), &count) in &expect {
            prop_assert_eq!(
                a.get(&genre_key(g), &writer_key(w)),
                Some(&nn(count as f64)),
                "({}, {})", g, w
            );
        }
    }

    #[test]
    fn pattern_is_identical_across_all_pairs(inc in arb_incidences()) {
        // "The pattern of edges resulting from array multiplication of
        // incidence arrays is generally preserved for various
        // semirings."
        let (e1, e2) = build_arrays(&inc, true);
        let pattern = |a: &AArray<NN>| -> BTreeSet<(String, String)> {
            a.iter().map(|(r, c, _)| (r.to_string(), c.to_string())).collect()
        };
        let reference = pattern(&adjacency_array_unchecked(&e1, &e2, &PlusTimes::<NN>::new()));
        prop_assert_eq!(pattern(&adjacency_array_unchecked(&e1, &e2, &MaxTimes::<NN>::new())), reference.clone());
        prop_assert_eq!(pattern(&adjacency_array_unchecked(&e1, &e2, &MinTimes::<NN>::new())), reference.clone());
        prop_assert_eq!(pattern(&adjacency_array_unchecked(&e1, &e2, &MinPlus::<NN>::new())), reference.clone());
        prop_assert_eq!(pattern(&adjacency_array_unchecked(&e1, &e2, &MaxMin::<NN>::new())), reference.clone());
        prop_assert_eq!(pattern(&adjacency_array_unchecked(&e1, &e2, &MinMax::<NN>::new())), reference);
    }

    #[test]
    fn extremal_pairs_select_the_predicted_weights(inc in arb_incidences()) {
        // With column-constant E1 weights (genre g ↦ g+1) and unit E2 —
        // exactly Figure 4/5's setup — the synopsis predicts closed
        // forms per entry (w := weight of the genre):
        //   max.× / min.×:  w·1 = w
        //   min.+:          w + 1
        //   max.min:        min(w, 1) = 1
        //   min.max:        max(w, 1) = w
        let (e1, e2) = build_arrays(&inc, true);
        let pt = adjacency_array_unchecked(&e1, &e2, &PlusTimes::<NN>::new());

        let maxx = adjacency_array_unchecked(&e1, &e2, &MaxTimes::<NN>::new());
        let minx = adjacency_array_unchecked(&e1, &e2, &MinTimes::<NN>::new());
        let minp = adjacency_array_unchecked(&e1, &e2, &MinPlus::<NN>::new());
        let maxmin = adjacency_array_unchecked(&e1, &e2, &MaxMin::<NN>::new());
        let minmax = adjacency_array_unchecked(&e1, &e2, &MinMax::<NN>::new());

        for (g_key, w_key, _) in pt.iter() {
            let g: usize = g_key.trim_start_matches("Genre|").parse().unwrap();
            let w = genre_weight(g);
            prop_assert_eq!(maxx.get(g_key, w_key), Some(&nn(w)));
            prop_assert_eq!(minx.get(g_key, w_key), Some(&nn(w)));
            prop_assert_eq!(minp.get(g_key, w_key), Some(&nn(w + 1.0)));
            prop_assert_eq!(maxmin.get(g_key, w_key), Some(&nn(1.0)));
            prop_assert_eq!(minmax.get(g_key, w_key), Some(&nn(w)));
        }
    }

    #[test]
    fn weighting_e1_never_changes_max_min(inc in arb_incidences()) {
        // "For the max.min semiring, Figure 3 and Figure 5 have the
        // same adjacency array because E2 is unchanged" — generalized:
        // with unit E2, max.min ignores any E1 re-weighting ≥ 1.
        let (unit_e1, e2) = build_arrays(&inc, false);
        let (weighted_e1, _) = build_arrays(&inc, true);
        let pair = MaxMin::<NN>::new();
        prop_assert_eq!(
            adjacency_array_unchecked(&unit_e1, &e2, &pair),
            adjacency_array_unchecked(&weighted_e1, &e2, &pair)
        );
    }

    #[test]
    fn plus_times_scales_linearly_in_column_weights(inc in arb_incidences()) {
        // Figure 5's +.× rows are the Figure 3 rows multiplied by the
        // genre weight — because ⊗ = × distributes the column-constant
        // factor out of the ⊕-sum.
        let (unit_e1, e2) = build_arrays(&inc, false);
        let (weighted_e1, _) = build_arrays(&inc, true);
        let pair = PlusTimes::<NN>::new();
        let base = adjacency_array_unchecked(&unit_e1, &e2, &pair);
        let scaled = adjacency_array_unchecked(&weighted_e1, &e2, &pair);
        for (g_key, w_key, v) in base.iter() {
            let g: usize = g_key.trim_start_matches("Genre|").parse().unwrap();
            let expect = nn(v.get() * genre_weight(g));
            prop_assert_eq!(scaled.get(g_key, w_key), Some(&expect));
        }
    }
}
