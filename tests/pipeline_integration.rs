//! Cross-crate pipeline tests: generators → incidence → adjacency →
//! algorithms; kernel-variant agreement; baseline agreement; element-
//! wise composition.

use aarray_algebra::pairs::{MaxMin, OrAnd, PlusTimes};
use aarray_algebra::values::nat::Nat;
use aarray_core::{adjacency_array, theorem::pattern_diff};
use aarray_graph::algorithms::{bfs_levels, out_degrees};
use aarray_graph::direct_adjacency;
use aarray_graph::generators::{complete, cycle, erdos_renyi, music_like, path, rmat};
use aarray_sparse::{spgemm_parallel, spgemm_with, Accumulator};

#[test]
fn random_graphs_construct_exact_patterns() {
    let pair = PlusTimes::<Nat>::new();
    for seed in 0..5 {
        let g = erdos_renyi(60, 300, seed);
        let (eout, ein) = g.incidence_arrays(&pair);
        let a = adjacency_array(&eout, &ein, &pair);
        assert!(
            pattern_diff(&a, g.edge_pattern()).is_exact(),
            "seed {}",
            seed
        );
        // Baseline agreement.
        assert_eq!(a, direct_adjacency(&g, &pair), "seed {}", seed);
    }
}

#[test]
fn rmat_pipeline_with_lattice_pair() {
    let pair = MaxMin::<Nat>::new();
    let g = rmat(8, 2_000, (0.57, 0.19, 0.19, 0.05), 11);
    let (eout, ein) = g.incidence_arrays(&pair);
    let a = adjacency_array(&eout, &ein, &pair);
    assert!(pattern_diff(&a, g.edge_pattern()).is_exact());
    assert_eq!(a, direct_adjacency(&g, &pair));
}

#[test]
fn all_accumulators_and_parallel_agree_on_real_workload() {
    let pair = PlusTimes::<Nat>::new();
    let g = erdos_renyi(200, 2_000, 77);
    let (eout, ein) = g.incidence_arrays(&pair);
    let at = eout.csr().transpose();
    let reference = spgemm_with(&at, ein.csr(), &pair, Accumulator::Spa);
    for acc in [Accumulator::Hash, Accumulator::Esc] {
        assert_eq!(
            spgemm_with(&at, ein.csr(), &pair, acc),
            reference,
            "{:?}",
            acc
        );
    }
    for acc in [Accumulator::Spa, Accumulator::Hash, Accumulator::Esc] {
        assert_eq!(
            spgemm_parallel(&at, ein.csr(), &pair, acc),
            reference,
            "par {:?}",
            acc
        );
    }
}

#[test]
fn music_like_bipartite_correlation() {
    // The Figure 3 computation shape on generated data: genre×writer
    // correlation through shared tracks.
    let pair = PlusTimes::<Nat>::new();
    let g = music_like(500, 4, 30, 5);
    let (eout, _) = g.incidence_arrays(&pair);
    let e1 = eout.select_cols_str("Genre|*");
    let e2 = eout.select_cols_str("Writer|*");
    let a = e1.transpose().matmul(&e2, &pair);
    assert_eq!(a.shape().0, e1.shape().1);
    assert_eq!(a.shape().1, e2.shape().1);
    // Total correlation mass = Σ (genre_deg(track) × writer_deg(track)).
    let mass: u64 = a.csr().values().iter().map(|v| v.0).sum();
    let mut expect = 0u64;
    for r in 0..e1.shape().0 {
        expect += (e1.csr().row_nnz(r) * e2.csr().row_nnz(r)) as u64;
    }
    assert_eq!(mass, expect);
}

#[test]
fn bfs_agrees_with_classic_families() {
    let pair = PlusTimes::<Nat>::new();
    let bpair = OrAnd::new();
    for (g, diameter) in [(path(10), 9usize), (cycle(8), 7)] {
        let (eout, ein) = g.incidence_arrays(&pair);
        let ab = adjacency_array(
            &eout.map_prune(&bpair, |v| v.0 > 0),
            &ein.map_prune(&bpair, |v| v.0 > 0),
            &bpair,
        );
        let src = ab.row_keys().key(0).to_string();
        let levels = bfs_levels(&ab, &src);
        assert_eq!(levels.values().max().copied().unwrap(), diameter);
    }
}

#[test]
fn complete_graph_degrees() {
    let pair = PlusTimes::<Nat>::new();
    let g = complete(6);
    let (eout, ein) = g.incidence_arrays(&pair);
    let a = adjacency_array(&eout, &ein, &pair);
    for (_, d) in out_degrees(&a) {
        assert_eq!(d, 5);
    }
}

#[test]
fn elementwise_composes_with_construction() {
    // Build adjacency from two edge batches separately, then ⊕ them —
    // must equal building from the union batch.
    let pair = PlusTimes::<Nat>::new();
    let mut g_all = aarray_graph::MultiGraph::new();
    let mut g1 = aarray_graph::MultiGraph::new();
    let mut g2 = aarray_graph::MultiGraph::new();
    let edges = [
        ("e1", "a", "b"),
        ("e2", "b", "c"),
        ("e3", "a", "b"),
        ("e4", "c", "a"),
    ];
    for (i, (k, s, d)) in edges.iter().enumerate() {
        g_all.add_edge(*k, *s, *d, Nat(1), Nat(1));
        if i % 2 == 0 {
            g1.add_edge(*k, *s, *d, Nat(1), Nat(1));
        } else {
            g2.add_edge(*k, *s, *d, Nat(1), Nat(1));
        }
    }
    // Ensure identical vertex sets so shapes align.
    for v in ["a", "b", "c"] {
        g1.add_vertex(v);
        g2.add_vertex(v);
    }
    let (eo, ei) = g_all.incidence_arrays(&pair);
    let whole = adjacency_array(&eo, &ei, &pair);
    let (eo1, ei1) = g1.incidence_arrays(&pair);
    let (eo2, ei2) = g2.incidence_arrays(&pair);
    let parts =
        adjacency_array(&eo1, &ei1, &pair).ewise_add(&adjacency_array(&eo2, &ei2, &pair), &pair);
    assert_eq!(whole, parts);
}

#[test]
fn kron_expands_graph_products() {
    // Kronecker of two path-graph adjacency arrays = grid-diagonal
    // moves, the classic graph-product construction.
    let pair = PlusTimes::<Nat>::new();
    let g = path(3);
    let (eout, ein) = g.incidence_arrays(&pair);
    let a = adjacency_array(&eout, &ein, &pair);
    let k = aarray_sparse::kron::kron(a.csr(), a.csr(), &pair);
    assert_eq!((k.nrows(), k.ncols()), (9, 9));
    assert_eq!(k.nnz(), 4); // 2 edges × 2 edges
}

#[test]
fn transpose_of_product_vs_reverse_product() {
    // Section III: (AB)ᵀ = BᵀAᵀ requires ⊗ commutativity. For the
    // commutative pairs used here the identity holds on real data.
    let pair = PlusTimes::<Nat>::new();
    let g = erdos_renyi(30, 120, 9);
    let (eout, ein) = g.incidence_arrays(&pair);
    let forward_t = adjacency_array(&eout, &ein, &pair).transpose();
    let reverse = aarray_core::reverse_adjacency_array(&eout, &ein, &pair);
    assert_eq!(forward_t, reverse);
}
