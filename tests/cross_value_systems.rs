//! The same graph, many value sets: the paper's thesis is that one
//! multiplication syntax constructs adjacency arrays over any compliant
//! algebra. These tests run a fixed graph through every compliant value
//! system in the library and check that (a) the pattern is always the
//! same, and (b) the values are what each algebra dictates.

use aarray_algebra::pairs::{GcdLcm, MaxMin, MaxPlus, MinMax, MinPlus, OrAnd, PlusTimes};
use aarray_algebra::values::bstr::BStr;
use aarray_algebra::values::chain::Chain;
use aarray_algebra::values::nat::Nat;
use aarray_algebra::values::nn::{nn, NN};
use aarray_algebra::values::tropical::{trop, Tropical};
use aarray_algebra::{BinaryOp, OpPair, Value};
use aarray_core::{adjacency_array, theorem::pattern_diff, AArray};
use aarray_graph::MultiGraph;
use std::collections::BTreeSet;

/// The shared test graph: two parallel edges a→b, a chain b→c, and a
/// self-loop at c.
fn graph_edges() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        ("e1", "a", "b"),
        ("e2", "a", "b"),
        ("e3", "b", "c"),
        ("e4", "c", "c"),
    ]
}

fn build<V: Value, A: BinaryOp<V>, M: BinaryOp<V>>(
    pair: &OpPair<V, A, M>,
    weights: &[V; 4],
) -> (MultiGraph<V>, AArray<V>)
where
    OpPair<V, A, M>: aarray_algebra::AdjacencyCompatible,
{
    let mut g = MultiGraph::new();
    for ((k, s, d), w) in graph_edges().into_iter().zip(weights.iter()) {
        g.add_edge(k, s, d, w.clone(), w.clone());
    }
    let (eout, ein) = g.incidence_arrays(pair);
    let a = adjacency_array(&eout, &ein, pair);
    (g, a)
}

fn expected_pattern() -> BTreeSet<(String, String)> {
    [("a", "b"), ("b", "c"), ("c", "c")]
        .into_iter()
        .map(|(s, d)| (s.to_string(), d.to_string()))
        .collect()
}

#[test]
fn nat_plus_times() {
    let pair = PlusTimes::<Nat>::new();
    let (g, a) = build(&pair, &[Nat(2), Nat(3), Nat(5), Nat(7)]);
    assert!(pattern_diff(&a, g.edge_pattern()).is_exact());
    assert_eq!(a.get("a", "b"), Some(&Nat(2 * 2 + 3 * 3)));
    assert_eq!(a.get("b", "c"), Some(&Nat(25)));
    assert_eq!(a.get("c", "c"), Some(&Nat(49)));
}

#[test]
fn nn_min_plus() {
    let pair = MinPlus::<NN>::new();
    let (g, a) = build(&pair, &[nn(2.0), nn(3.0), nn(5.0), nn(7.0)]);
    assert!(pattern_diff(&a, g.edge_pattern()).is_exact());
    // min(2+2, 3+3) = 4.
    assert_eq!(a.get("a", "b"), Some(&nn(4.0)));
}

#[test]
fn tropical_max_plus() {
    let pair = MaxPlus::<Tropical>::new();
    let (g, a) = build(&pair, &[trop(2.0), trop(3.0), trop(-5.0), trop(0.5)]);
    assert!(pattern_diff(&a, g.edge_pattern()).is_exact());
    // max(2+2, 3+3) = 6; negative weights are fine in this algebra.
    assert_eq!(a.get("a", "b"), Some(&trop(6.0)));
    assert_eq!(a.get("b", "c"), Some(&trop(-10.0)));
}

#[test]
fn boolean_semiring() {
    let pair = OrAnd::new();
    let (g, a) = build(&pair, &[true, true, true, true]);
    assert!(pattern_diff(&a, g.edge_pattern()).is_exact());
    for (_, _, v) in a.iter() {
        assert!(*v);
    }
}

#[test]
fn chain_lattice() {
    type C = Chain<10>;
    let c = |v: u32| C::new(v).unwrap();
    let pair = MaxMin::<C>::new();
    let (g, a) = build(&pair, &[c(2), c(5), c(9), c(1)]);
    assert!(pattern_diff(&a, g.edge_pattern()).is_exact());
    // max(min(2,2), min(5,5)) = 5.
    assert_eq!(a.get("a", "b"), Some(&c(5)));
}

#[test]
fn strings_max_min_the_intro_question() {
    // The paper's opening puzzle: alphanumeric strings with ⊕ = max,
    // ⊗ = min — yes, it constructs adjacency arrays.
    let pair = MaxMin::<BStr>::new();
    let w = |s: &str| BStr::word(s);
    let (g, a) = build(&pair, &[w("alpha"), w("delta"), w("kappa"), w("omega")]);
    assert!(pattern_diff(&a, g.edge_pattern()).is_exact());
    // max(min(alpha,alpha), min(delta,delta)) = delta.
    assert_eq!(a.get("a", "b"), Some(&w("delta")));
    assert_eq!(a.get("c", "c"), Some(&w("omega")));
}

#[test]
fn strings_min_max_dual() {
    let pair = MinMax::<BStr>::new();
    let w = |s: &str| BStr::word(s);
    let (g, a) = build(&pair, &[w("alpha"), w("delta"), w("kappa"), w("omega")]);
    assert!(pattern_diff(&a, g.edge_pattern()).is_exact());
    assert_eq!(a.get("a", "b"), Some(&w("alpha")));
}

#[test]
fn gcd_lcm_number_theory() {
    let pair = GcdLcm::new();
    let (g, a) = build(&pair, &[Nat(4), Nat(6), Nat(9), Nat(10)]);
    assert!(pattern_diff(&a, g.edge_pattern()).is_exact());
    // gcd(lcm(4,4), lcm(6,6)) = gcd(4, 6) = 2.
    assert_eq!(a.get("a", "b"), Some(&Nat(2)));
    assert_eq!(a.get("b", "c"), Some(&Nat(9)));
}

#[test]
fn all_compliant_systems_agree_on_pattern() {
    // One assertion to rule them all: every algebra above produced the
    // same nonzero pattern from the same graph.
    let expected = expected_pattern();

    let patterns: Vec<BTreeSet<(String, String)>> = vec![
        {
            let pair = PlusTimes::<Nat>::new();
            let (_, a) = build(&pair, &[Nat(2), Nat(3), Nat(5), Nat(7)]);
            a.iter()
                .map(|(r, c, _)| (r.to_string(), c.to_string()))
                .collect()
        },
        {
            let pair = OrAnd::new();
            let (_, a) = build(&pair, &[true, true, true, true]);
            a.iter()
                .map(|(r, c, _)| (r.to_string(), c.to_string()))
                .collect()
        },
        {
            let pair = MaxMin::<BStr>::new();
            let (_, a) = build(
                &pair,
                &[
                    BStr::word("x"),
                    BStr::word("y"),
                    BStr::word("z"),
                    BStr::word("q"),
                ],
            );
            a.iter()
                .map(|(r, c, _)| (r.to_string(), c.to_string()))
                .collect()
        },
        {
            let pair = MinPlus::<NN>::new();
            let (_, a) = build(&pair, &[nn(1.0), nn(2.0), nn(3.0), nn(4.0)]);
            a.iter()
                .map(|(r, c, _)| (r.to_string(), c.to_string()))
                .collect()
        },
    ];

    for p in patterns {
        assert_eq!(p, expected);
    }
}

#[test]
fn transpose_identity_fails_without_commutative_times() {
    // Section III: "(AB)ᵀ = BᵀAᵀ may be violated under these criteria…
    // for this matrix transpose property to always hold, ⊗ would have
    // to be commutative." Demonstrate with ⊗ = string concatenation.
    use aarray_algebra::pairs::MaxConcat;
    let pair = MaxConcat::new();
    let w = |s: &str| BStr::word(s);

    let a = AArray::from_triples(&pair, [("r", "k1", w("ab")), ("r", "k2", w("c"))]);
    let b = AArray::from_triples(&pair, [("k1", "s", w("x")), ("k2", "s", w("yz"))]);

    // (AB)(r, s) = max(ab·x, c·yz) = max("abx", "cyz") = "cyz".
    let ab_t = a.matmul(&b, &pair).transpose();
    assert_eq!(ab_t.get("s", "r"), Some(&w("cyz")));

    // (BᵀAᵀ)(s, r) = max(x·ab, yz·c) = max("xab", "yzc") = "yzc".
    let bt_at = b.transpose().matmul(&a.transpose(), &pair);
    assert_eq!(bt_at.get("s", "r"), Some(&w("yzc")));

    assert_ne!(
        ab_t, bt_at,
        "non-commutative ⊗ breaks the transpose identity"
    );

    // With commutative ⊗ the identity holds on the same shapes.
    let mm = MaxMin::<BStr>::new();
    let a2 = AArray::from_triples(&mm, [("r", "k1", w("ab")), ("r", "k2", w("c"))]);
    let b2 = AArray::from_triples(&mm, [("k1", "s", w("x")), ("k2", "s", w("yz"))]);
    assert_eq!(
        a2.matmul(&b2, &mm).transpose(),
        b2.transpose().matmul(&a2.transpose(), &mm)
    );
}

#[test]
fn value_type_conversion_preserves_pattern() {
    // Figure 3's implicit workflow: one stored array, reinterpreted
    // under different algebras via map_prune.
    let pair = PlusTimes::<Nat>::new();
    let (_, a) = build(&pair, &[Nat(2), Nat(3), Nat(5), Nat(7)]);

    let bpair = OrAnd::new();
    let ab = a.map_prune(&bpair, |v| v.0 > 0);
    assert_eq!(ab.nnz(), a.nnz());

    let npair = MinPlus::<NN>::new();
    let an = a.map_prune(&npair, |v| nn(v.0 as f64));
    assert_eq!(an.nnz(), a.nnz());
}
