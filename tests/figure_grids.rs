//! Golden-output tests: the rendered text grids for the paper's
//! figures, checked character-for-character. If the display layer or
//! any value drifts, these fail with a readable diff.

use aarray_algebra::pairs::{MaxMin, MinMax, PlusTimes};
use aarray_algebra::values::nn::NN;
use aarray_core::adjacency_array;
use aarray_d4m::music::{music_e1, music_e1_weighted, music_e2};

/// Normalize trailing spaces per line (the grid pads every row to the
/// full width; goldens are stored trimmed for readability).
fn trim_lines(s: &str) -> String {
    s.lines().map(str::trim_end).collect::<Vec<_>>().join("\n")
}

#[test]
fn figure3_plus_times_grid_golden() {
    let pair = PlusTimes::<NN>::new();
    let a = adjacency_array(&music_e1(), &music_e2(), &pair);
    let golden = [
        "                  Writer|Barrett Rich  Writer|Chad Anderson  Writer|Chloe Chaidez  Writer|Julian Chaidez  Writer|Nicholas Johns",
        "Genre|Electronic                    1                     7                     7                      2                      1",
        "Genre|Pop                                                13                    13                      3",
        "Genre|Rock                                                6                     6                      1",
    ]
    .join("\n");
    assert_eq!(trim_lines(&a.to_grid()), golden);
}

#[test]
fn figure5_plus_times_grid_golden() {
    let pair = PlusTimes::<NN>::new();
    let a = adjacency_array(&music_e1_weighted(), &music_e2(), &pair);
    let golden = [
        "                  Writer|Barrett Rich  Writer|Chad Anderson  Writer|Chloe Chaidez  Writer|Julian Chaidez  Writer|Nicholas Johns",
        "Genre|Electronic                    1                     7                     7                      2                      1",
        "Genre|Pop                                                26                    26                      6",
        "Genre|Rock                                               18                    18                      3",
    ]
    .join("\n");
    assert_eq!(trim_lines(&a.to_grid()), golden);
}

#[test]
fn figure5_min_max_grid_golden() {
    let pair = MinMax::<NN>::new();
    let a = adjacency_array(&music_e1_weighted(), &music_e2(), &pair);
    let golden = [
        "                  Writer|Barrett Rich  Writer|Chad Anderson  Writer|Chloe Chaidez  Writer|Julian Chaidez  Writer|Nicholas Johns",
        "Genre|Electronic                    1                     1                     1                      1                      1",
        "Genre|Pop                                                 2                     2                      2",
        "Genre|Rock                                                3                     3                      3",
    ]
    .join("\n");
    assert_eq!(trim_lines(&a.to_grid()), golden);
}

#[test]
fn figure5_max_min_equals_figure3_grid() {
    // The paper: max.min is unchanged between Figures 3 and 5.
    let pair = MaxMin::<NN>::new();
    let fig3 = adjacency_array(&music_e1(), &music_e2(), &pair);
    let fig5 = adjacency_array(&music_e1_weighted(), &music_e2(), &pair);
    assert_eq!(fig3.to_grid(), fig5.to_grid());
}

#[test]
fn figure2_e1_grid_shape() {
    let e1 = music_e1();
    let grid = e1.to_grid();
    let lines: Vec<&str> = grid.lines().collect();
    // Header + 22 track rows.
    assert_eq!(lines.len(), 23);
    assert!(lines[0].contains("Genre|Electronic"));
    assert!(lines[0].contains("Genre|Rock"));
    // Track rows appear in sorted key order.
    assert!(lines[1].starts_with("031013ktnA1"));
    assert!(lines[22].starts_with("093012ktnA8"));
    // The dual-genre remix rows show two 1s.
    let a4 = lines.iter().find(|l| l.starts_with("093012ktnA4")).unwrap();
    assert_eq!(
        a4.matches('1').count(),
        2 + "093012ktnA4".matches('1').count()
    );
}
