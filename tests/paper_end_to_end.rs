//! End-to-end reproduction of the paper's evaluation (Figures 1–5),
//! asserting the exact printed values — independent of the `repro`
//! binary's code path.

use aarray_algebra::pairs::{MaxMin, MaxPlus, MaxTimes, MinMax, MinPlus, MinTimes, PlusTimes};
use aarray_algebra::values::nn::{nn, NN};
use aarray_algebra::values::tropical::{trop, Tropical};
use aarray_core::{adjacency_array, adjacency_array_unchecked, AArray};
use aarray_d4m::music::{music_e1, music_e1_weighted, music_e2, music_incidence};

const EL: &str = "Genre|Electronic";
const POP: &str = "Genre|Pop";
const ROCK: &str = "Genre|Rock";
const BR: &str = "Writer|Barrett Rich";
const CA: &str = "Writer|Chad Anderson";
const CC: &str = "Writer|Chloe Chaidez";
const JC: &str = "Writer|Julian Chaidez";
const NJ: &str = "Writer|Nicholas Johns";

/// The 11-entry nonzero pattern shared by every panel of Figures 3/5.
fn assert_figure_pattern<V: aarray_algebra::Value>(a: &AArray<V>) {
    assert_eq!(a.nnz(), 11, "all panels have 11 nonzero cells");
    for w in [BR, CA, CC, JC, NJ] {
        assert!(a.get(EL, w).is_some(), "Electronic row is full");
    }
    for w in [CA, CC, JC] {
        assert!(a.get(POP, w).is_some());
        assert!(a.get(ROCK, w).is_some());
    }
    for w in [BR, NJ] {
        assert!(a.get(POP, w).is_none());
        assert!(a.get(ROCK, w).is_none());
    }
}

#[test]
fn figure1_shape_and_density() {
    let e = music_incidence();
    assert_eq!(e.shape(), (22, 31));
    assert_eq!(e.nnz(), 185);
}

#[test]
fn figure2_subarrays() {
    let e = music_incidence();
    let e1 = e.select_cols_str("Genre|A : Genre|Z");
    let e2 = e.select_cols_str("Writer|A : Writer|Z");
    assert_eq!(e1.shape(), (22, 3));
    assert_eq!(e2.shape(), (22, 5));
    // Selection preserves all 22 rows including 093012ktnA8's
    // writer-less row.
    assert_eq!(e2.row_keys().len(), 22);
    assert_eq!(e2.csr().row_nnz(21), 0);
}

#[test]
fn figure3_plus_times_exact_values() {
    let pair = PlusTimes::<NN>::new();
    let a = adjacency_array(&music_e1(), &music_e2(), &pair);
    assert_figure_pattern(&a);
    let expect = [
        (EL, BR, 1.0),
        (EL, CA, 7.0),
        (EL, CC, 7.0),
        (EL, JC, 2.0),
        (EL, NJ, 1.0),
        (POP, CA, 13.0),
        (POP, CC, 13.0),
        (POP, JC, 3.0),
        (ROCK, CA, 6.0),
        (ROCK, CC, 6.0),
        (ROCK, JC, 1.0),
    ];
    for (g, w, v) in expect {
        assert_eq!(a.get(g, w), Some(&nn(v)), "{} / {}", g, w);
    }
}

#[test]
fn figure3_lattice_pairs_all_ones() {
    let e1 = music_e1();
    let e2 = music_e2();
    for (name, a) in [
        ("max.×", adjacency_array(&e1, &e2, &MaxTimes::<NN>::new())),
        ("min.×", adjacency_array(&e1, &e2, &MinTimes::<NN>::new())),
        ("max.min", adjacency_array(&e1, &e2, &MaxMin::<NN>::new())),
        ("min.max", adjacency_array(&e1, &e2, &MinMax::<NN>::new())),
    ] {
        assert_figure_pattern(&a);
        for (_, _, v) in a.iter() {
            assert_eq!(v, &nn(1.0), "{}: all values are 1", name);
        }
    }
}

#[test]
fn figure3_additive_pairs_all_twos() {
    let e1 = music_e1();
    let e2 = music_e2();
    let a = adjacency_array(&e1, &e2, &MinPlus::<NN>::new());
    assert_figure_pattern(&a);
    for (_, _, v) in a.iter() {
        assert_eq!(v, &nn(2.0));
    }

    let tp = MaxPlus::<Tropical>::new();
    let a = adjacency_array(
        &e1.map_prune(&tp, |v| trop(v.get())),
        &e2.map_prune(&tp, |v| trop(v.get())),
        &tp,
    );
    assert_figure_pattern(&a);
    for (_, _, v) in a.iter() {
        assert_eq!(v, &trop(2.0));
    }
}

#[test]
fn figure5_plus_times_exact_values() {
    let pair = PlusTimes::<NN>::new();
    let a = adjacency_array(&music_e1_weighted(), &music_e2(), &pair);
    assert_figure_pattern(&a);
    let expect = [
        (EL, BR, 1.0),
        (EL, CA, 7.0),
        (EL, CC, 7.0),
        (EL, JC, 2.0),
        (EL, NJ, 1.0),
        (POP, CA, 26.0),
        (POP, CC, 26.0),
        (POP, JC, 6.0),
        (ROCK, CA, 18.0),
        (ROCK, CC, 18.0),
        (ROCK, JC, 3.0),
    ];
    for (g, w, v) in expect {
        assert_eq!(a.get(g, w), Some(&nn(v)), "{} / {}", g, w);
    }
}

#[test]
fn figure5_additive_pairs_row_plus_one() {
    // max.+/min.+: Electronic 1+1=2, Pop 2+1=3, Rock 3+1=4.
    let w = music_e1_weighted();
    let e2 = music_e2();
    let a = adjacency_array(&w, &e2, &MinPlus::<NN>::new());
    assert_figure_pattern(&a);
    for (g, expect) in [(EL, 2.0), (POP, 3.0), (ROCK, 4.0)] {
        for writer in [CA, CC, JC] {
            assert_eq!(a.get(g, writer), Some(&nn(expect)), "min.+ {}", g);
        }
    }

    let tp = MaxPlus::<Tropical>::new();
    let at = adjacency_array(
        &w.map_prune(&tp, |v| trop(v.get())),
        &e2.map_prune(&tp, |v| trop(v.get())),
        &tp,
    );
    for (g, expect) in [(EL, 2.0), (POP, 3.0), (ROCK, 4.0)] {
        for writer in [CA, CC, JC] {
            assert_eq!(at.get(g, writer), Some(&trop(expect)), "max.+ {}", g);
        }
    }
}

#[test]
fn figure5_max_min_unchanged_but_min_max_shows_weights() {
    // The paper: "For the max.min semiring, Figure 3 and Figure 5 have
    // the same adjacency array because E2 is unchanged."
    let w = music_e1_weighted();
    let e1 = music_e1();
    let e2 = music_e2();
    let pair = MaxMin::<NN>::new();
    assert_eq!(
        adjacency_array(&w, &e2, &pair),
        adjacency_array(&e1, &e2, &pair)
    );

    // "In contrast, for the min.max semiring … the ⊗ operator selects
    // the larger non-zero values from E1."
    let a = adjacency_array(&w, &e2, &MinMax::<NN>::new());
    for (g, expect) in [(EL, 1.0), (POP, 2.0), (ROCK, 3.0)] {
        for writer in [CA, CC, JC] {
            assert_eq!(a.get(g, writer), Some(&nn(expect)), "min.max {}", g);
        }
    }
}

#[test]
fn figure5_multiplicative_pairs_show_weights() {
    let w = music_e1_weighted();
    let e2 = music_e2();
    for (name, a) in [
        ("max.×", adjacency_array(&w, &e2, &MaxTimes::<NN>::new())),
        ("min.×", adjacency_array(&w, &e2, &MinTimes::<NN>::new())),
    ] {
        assert_figure_pattern(&a);
        for (g, expect) in [(EL, 1.0), (POP, 2.0), (ROCK, 3.0)] {
            for writer in [CA, CC, JC] {
                assert_eq!(a.get(g, writer), Some(&nn(expect)), "{} {}", name, g);
            }
        }
    }
}

#[test]
fn figure_pipeline_from_raw_table() {
    // The whole path: table → explode → select → transpose-multiply,
    // without any of the pre-baked helpers.
    let table = aarray_d4m::music::music_table();
    let e = table.explode();
    let e1 = e.select_cols_str("Genre|A : Genre|Z");
    let e2 = e.select_cols_str("Writer|A : Writer|Z");
    let pair = PlusTimes::<NN>::new();
    let a = e1.transpose().matmul(&e2, &pair);
    assert_eq!(a.get(POP, CA), Some(&nn(13.0)));
    assert_eq!(a.row_keys().keys(), &[EL, POP, ROCK]);
    assert_eq!(a.col_keys().keys(), &[BR, CA, CC, JC, NJ]);
}

#[test]
fn unchecked_and_compile_time_paths_agree() {
    let pair = PlusTimes::<NN>::new();
    let e1 = music_e1();
    let e2 = music_e2();
    assert_eq!(
        adjacency_array(&e1, &e2, &pair),
        adjacency_array_unchecked(&e1, &e2, &pair)
    );
}
