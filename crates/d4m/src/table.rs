//! A dense database-style table with string row keys, named fields,
//! and multi-valued cells — the "spreadsheet or database table" the
//! paper's incidence arrays come from.

use std::collections::BTreeSet;

/// One table row: a key and one (possibly empty, possibly multi-)
/// value list per field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// The row key (e.g. a track id like `031013ktnA1`).
    pub key: String,
    /// Values per field, parallel to [`Table::fields`].
    pub cells: Vec<Vec<String>>,
}

/// A dense table: ordered field names and rows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    fields: Vec<String>,
    rows: Vec<Row>,
}

impl Table {
    /// New table with the given field names.
    pub fn new<I, S>(fields: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            fields: fields.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; `cells` must have one entry per field.
    pub fn push_row<S: Into<String>>(&mut self, key: S, cells: Vec<Vec<String>>) {
        assert_eq!(
            cells.len(),
            self.fields.len(),
            "cells must match field count"
        );
        self.rows.push(Row {
            key: key.into(),
            cells,
        });
    }

    /// The field names.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// The rows in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a field by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f == name)
    }

    /// All values appearing in a field, sorted unique.
    pub fn field_values(&self, name: &str) -> Vec<String> {
        let Some(idx) = self.field_index(name) else {
            return Vec::new();
        };
        let set: BTreeSet<String> = self
            .rows
            .iter()
            .flat_map(|r| r.cells[idx].iter().cloned())
            .collect();
        set.into_iter().collect()
    }

    /// Total number of `(row, field, value)` incidences — the nnz of
    /// the exploded view.
    pub fn incidence_count(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.cells.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["Genre", "Writer"]);
        t.push_row(
            "t1",
            vec![vec!["Pop".into()], vec!["Ann".into(), "Bob".into()]],
        );
        t.push_row("t2", vec![vec!["Rock".into()], vec![]]);
        t
    }

    #[test]
    fn construction() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.fields(), &["Genre", "Writer"]);
        assert_eq!(t.rows()[0].key, "t1");
    }

    #[test]
    fn field_queries() {
        let t = sample();
        assert_eq!(t.field_index("Writer"), Some(1));
        assert_eq!(t.field_index("Nope"), None);
        assert_eq!(t.field_values("Genre"), vec!["Pop", "Rock"]);
        assert_eq!(t.field_values("Writer"), vec!["Ann", "Bob"]);
    }

    #[test]
    fn incidence_count_sums_all_values() {
        assert_eq!(sample().incidence_count(), 4);
    }

    #[test]
    #[should_panic(expected = "match field count")]
    fn wrong_cell_count_panics() {
        let mut t = Table::new(["A"]);
        t.push_row("r", vec![vec![], vec![]]);
    }
}
