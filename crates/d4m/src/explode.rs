//! The exploded sparse view of Figure 1: "the column key and the value
//! are concatenated with a separator symbol (in this case `|`)
//! resulting in every unique pair of column and value having its own
//! column in the sparse view. The new value is usually 1 to denote the
//! existence of an entry."

use crate::table::Table;
use aarray_algebra::values::nn::{nn, NN};
use aarray_algebra::{BinaryOp, OpPair, Value};
use aarray_core::{AArray, KeySet};

/// The separator between field name and value in exploded column keys.
pub const SEPARATOR: char = '|';

impl Table {
    /// Explode into a sparse associative array with value `1` at each
    /// `(row, field|value)` incidence — exactly Figure 1's `E`.
    ///
    /// Row keys: every table row (even all-empty ones). Column keys:
    /// every `field|value` pair that occurs.
    ///
    /// ```
    /// use aarray_d4m::Table;
    /// let mut t = Table::new(["Genre"]);
    /// t.push_row("track1", vec![vec!["Pop".into(), "Rock".into()]]);
    /// let e = t.explode();
    /// assert_eq!(e.col_keys().keys(), &["Genre|Pop", "Genre|Rock"]);
    /// assert_eq!(e.nnz(), 2);
    /// ```
    pub fn explode(&self) -> AArray<NN> {
        let pair: OpPair<NN, aarray_algebra::ops::Plus, aarray_algebra::ops::Times> = OpPair::new();
        self.explode_with(&pair, |_, _, _| nn(1.0))
    }

    /// Generalized explode: choose the operator pair (for zero pruning
    /// and duplicate combination) and a value function
    /// `(row_key, field, value) → V`.
    pub fn explode_with<V, A, M>(
        &self,
        pair: &OpPair<V, A, M>,
        value_fn: impl Fn(&str, &str, &str) -> V,
    ) -> AArray<V>
    where
        V: Value,
        A: BinaryOp<V>,
        M: BinaryOp<V>,
    {
        let row_keys = KeySet::from_iter(self.rows().iter().map(|r| r.key.clone()));
        let mut col_keys: Vec<String> = Vec::new();
        let mut triples: Vec<(String, String, V)> = Vec::new();
        for row in self.rows() {
            for (fi, field) in self.fields().iter().enumerate() {
                for value in &row.cells[fi] {
                    let col = format!("{}{}{}", field, SEPARATOR, value);
                    triples.push((
                        row.key.clone(),
                        col.clone(),
                        value_fn(&row.key, field, value),
                    ));
                    col_keys.push(col);
                }
            }
        }
        let col_keys = KeySet::from_iter(col_keys);
        AArray::from_triples_with_keys(pair, row_keys, col_keys, triples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarray_algebra::pairs::MaxMin;
    use aarray_algebra::values::nat::Nat;

    fn sample() -> Table {
        let mut t = Table::new(["Genre", "Writer"]);
        t.push_row(
            "t1",
            vec![vec!["Pop".into()], vec!["Ann".into(), "Bob".into()]],
        );
        t.push_row("t2", vec![vec!["Rock".into()], vec![]]);
        t
    }

    #[test]
    fn explode_shapes_and_values() {
        let e = sample().explode();
        assert_eq!(e.shape(), (2, 4));
        assert_eq!(e.nnz(), 4);
        assert_eq!(e.get("t1", "Genre|Pop"), Some(&nn(1.0)));
        assert_eq!(e.get("t1", "Writer|Bob"), Some(&nn(1.0)));
        assert_eq!(e.get("t2", "Genre|Rock"), Some(&nn(1.0)));
        assert_eq!(e.get("t2", "Writer|Ann"), None);
    }

    #[test]
    fn column_keys_are_sorted_field_value_pairs() {
        let e = sample().explode();
        assert_eq!(
            e.col_keys().keys(),
            &["Genre|Pop", "Genre|Rock", "Writer|Ann", "Writer|Bob"]
        );
    }

    #[test]
    fn explode_with_custom_values() {
        let pair = MaxMin::<Nat>::new();
        let e = sample().explode_with(
            &pair,
            |_, field, _| {
                if field == "Genre" {
                    Nat(3)
                } else {
                    Nat(1)
                }
            },
        );
        assert_eq!(e.get("t1", "Genre|Pop"), Some(&Nat(3)));
        assert_eq!(e.get("t1", "Writer|Ann"), Some(&Nat(1)));
    }

    #[test]
    fn empty_rows_are_kept() {
        let mut t = Table::new(["F"]);
        t.push_row("empty", vec![vec![]]);
        t.push_row("full", vec![vec!["x".into()]]);
        let e = t.explode();
        assert_eq!(e.shape(), (2, 1));
        assert_eq!(e.nnz(), 1);
        assert!(e.row_keys().contains("empty"));
    }
}
