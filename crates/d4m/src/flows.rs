//! A second complete dataset: synthetic network-flow records, the
//! other canonical D4M workload (the D4M papers' running examples are
//! music metadata and network traffic logs). Unlike the music table
//! this one is generated, but it is fixed and deterministic, so tests
//! can assert exact values.
//!
//! Schema: one row per flow, fields `SrcIP`, `DstIP`, `Proto`, `Port`,
//! `Bytes`. Exploding gives the incidence array; selecting the
//! `SrcIP|*` and `DstIP|*` column families and correlating through
//! shared flows yields the talker graph.

use crate::table::Table;
use aarray_algebra::values::nn::NN;
use aarray_core::AArray;

const FLOWS: &[(&str, &str, &str, &str, &str, &str)] = &[
    // (flow id, src, dst, proto, port, bytes-bucket)
    ("f0001", "10.0.0.1", "10.0.0.9", "tcp", "443", "10k"),
    ("f0002", "10.0.0.1", "10.0.0.9", "tcp", "443", "100k"),
    ("f0003", "10.0.0.2", "10.0.0.9", "tcp", "80", "1k"),
    ("f0004", "10.0.0.2", "10.0.0.7", "udp", "53", "1k"),
    ("f0005", "10.0.0.3", "10.0.0.7", "udp", "53", "1k"),
    ("f0006", "10.0.0.3", "10.0.0.9", "tcp", "443", "10k"),
    ("f0007", "10.0.0.1", "10.0.0.7", "udp", "53", "1k"),
    ("f0008", "10.0.0.4", "10.0.0.9", "tcp", "22", "100k"),
    ("f0009", "10.0.0.4", "10.0.0.2", "tcp", "22", "10k"),
    ("f0010", "10.0.0.9", "10.0.0.1", "tcp", "443", "1k"),
    ("f0011", "10.0.0.5", "10.0.0.9", "tcp", "80", "10k"),
    ("f0012", "10.0.0.5", "10.0.0.9", "tcp", "80", "10k"),
    ("f0013", "10.0.0.5", "10.0.0.7", "udp", "53", "1k"),
    ("f0014", "10.0.0.2", "10.0.0.5", "tcp", "8080", "100k"),
    ("f0015", "10.0.0.3", "10.0.0.5", "tcp", "8080", "10k"),
    ("f0016", "10.0.0.9", "10.0.0.4", "tcp", "22", "1k"),
];

/// The flow table (16 rows × 5 fields).
pub fn flow_table() -> Table {
    let mut t = Table::new(["SrcIP", "DstIP", "Proto", "Port", "Bytes"]);
    for &(id, src, dst, proto, port, bytes) in FLOWS {
        t.push_row(
            id,
            vec![
                vec![src.to_string()],
                vec![dst.to_string()],
                vec![proto.to_string()],
                vec![port.to_string()],
                vec![bytes.to_string()],
            ],
        );
    }
    t
}

/// The exploded flow incidence array (16 × distinct `field|value`
/// columns, one 1 per cell).
pub fn flow_incidence() -> AArray<NN> {
    flow_table().explode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarray_algebra::pairs::PlusTimes;
    use aarray_algebra::values::nn::nn;
    use aarray_core::KeySelect;

    #[test]
    fn table_shape() {
        let t = flow_table();
        assert_eq!(t.len(), 16);
        assert_eq!(t.fields().len(), 5);
        assert_eq!(t.incidence_count(), 80); // 5 single-valued fields
    }

    #[test]
    fn explode_shape() {
        let e = flow_incidence();
        assert_eq!(e.shape().0, 16);
        assert_eq!(e.nnz(), 80);
        // Distinct columns: 6 src + 6 dst + 2 proto + 5 ports + 3 bytes.
        assert_eq!(e.shape().1, 22);
    }

    #[test]
    fn talker_graph_via_projection() {
        // Src×Dst correlation through shared flows = the talker graph
        // with flow counts — the Figure 3 computation on flow data.
        let e = flow_incidence();
        let pair = PlusTimes::<NN>::new();
        let a = aarray_graph_free_project(&e, &pair);
        assert_eq!(a.get("SrcIP|10.0.0.1", "DstIP|10.0.0.9"), Some(&nn(2.0)));
        assert_eq!(a.get("SrcIP|10.0.0.5", "DstIP|10.0.0.9"), Some(&nn(2.0)));
        assert_eq!(a.get("SrcIP|10.0.0.9", "DstIP|10.0.0.1"), Some(&nn(1.0)));
        assert_eq!(a.get("SrcIP|10.0.0.7", "DstIP|10.0.0.9"), None);
    }

    // d4m cannot depend on aarray-graph (layering), so inline the
    // projection here: E(:, Src)ᵀ ⊕.⊗ E(:, Dst).
    fn aarray_graph_free_project(e: &AArray<NN>, pair: &PlusTimes<NN>) -> AArray<NN> {
        let src = e.select(&KeySelect::All, &KeySelect::Prefix("SrcIP|".into()));
        let dst = e.select(&KeySelect::All, &KeySelect::Prefix("DstIP|".into()));
        src.transpose().matmul(&dst, pair)
    }

    #[test]
    fn port_service_correlation() {
        // Port×Proto co-occurrence: DNS is udp/53, web is tcp/{80,443}.
        let e = flow_incidence();
        let pair = PlusTimes::<NN>::new();
        let ports = e.select(&KeySelect::All, &KeySelect::Prefix("Port|".into()));
        let protos = e.select(&KeySelect::All, &KeySelect::Prefix("Proto|".into()));
        let a = ports.transpose().matmul(&protos, &pair);
        assert_eq!(a.get("Port|53", "Proto|udp"), Some(&nn(4.0)));
        assert_eq!(a.get("Port|53", "Proto|tcp"), None);
        assert_eq!(a.get("Port|443", "Proto|tcp"), Some(&nn(4.0)));
    }
}
