//! TSV round-tripping for tables — D4M's interchange format.
//!
//! Layout: first line `key<TAB>field1<TAB>field2…`; each further line
//! one row; multi-valued cells join their values with `;`.

use crate::table::Table;

/// Serialize to TSV.
pub fn to_tsv(table: &Table) -> String {
    let mut out = String::new();
    out.push_str("key");
    for f in table.fields() {
        out.push('\t');
        out.push_str(f);
    }
    out.push('\n');
    for row in table.rows() {
        out.push_str(&row.key);
        for cell in &row.cells {
            out.push('\t');
            out.push_str(&cell.join(";"));
        }
        out.push('\n');
    }
    out
}

/// Parse from TSV. Returns `None` on a malformed header or ragged rows.
pub fn from_tsv(text: &str) -> Option<Table> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let mut cols = header.split('\t');
    if cols.next()? != "key" {
        return None;
    }
    let fields: Vec<&str> = cols.collect();
    let mut table = Table::new(fields.iter().copied());
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let key = parts.next()?;
        let cells: Vec<Vec<String>> = parts
            .map(|cell| {
                if cell.is_empty() {
                    Vec::new()
                } else {
                    cell.split(';').map(str::to_string).collect()
                }
            })
            .collect();
        if cells.len() != fields.len() {
            return None;
        }
        table.push_row(key, cells);
    }
    Some(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["Genre", "Writer"]);
        t.push_row(
            "t1",
            vec![vec!["Pop".into()], vec!["Ann".into(), "Bob".into()]],
        );
        t.push_row("t2", vec![vec!["Rock".into()], vec![]]);
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let text = to_tsv(&t);
        let back = from_tsv(&text).expect("roundtrip parses");
        assert_eq!(back, t);
    }

    #[test]
    fn serialized_form() {
        let text = to_tsv(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "key\tGenre\tWriter");
        assert_eq!(lines[1], "t1\tPop\tAnn;Bob");
        assert_eq!(lines[2], "t2\tRock\t");
    }

    #[test]
    fn rejects_bad_header() {
        assert!(from_tsv("nope\tA\nr\t1\n").is_none());
    }

    #[test]
    fn rejects_ragged_rows() {
        assert!(from_tsv("key\tA\tB\nr\tonly_one\n").is_none());
    }

    #[test]
    fn empty_lines_skipped() {
        let t = from_tsv("key\tA\nr\tx\n\n").expect("parses");
        assert_eq!(t.len(), 1);
    }
}
