//! # aarray-d4m
//!
//! The D4M table layer: dense string tables, the *exploded* sparse view
//! of Figure 1 (each `field|value` pair becomes its own column with
//! value 1), TSV I/O, and the paper's music-metadata dataset
//! reconstructed from Figures 1–5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod explode;
pub mod flows;
pub mod music;
pub mod table;
pub mod tsv;

pub use explode::SEPARATOR;
pub use table::Table;
