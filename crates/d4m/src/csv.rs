//! CSV parsing for tables — RFC-4180-style quoting, multi-values via
//! `;` inside a cell, as exported by common spreadsheet tools.

use crate::table::Table;

/// Errors from [`from_csv`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CsvError {
    /// The header row is missing or does not start with `key`.
    BadHeader,
    /// A quoted field never closes.
    UnterminatedQuote {
        /// 1-based line number where the field started.
        line: usize,
    },
    /// A row has a different field count than the header.
    RaggedRow {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader => write!(f, "header must start with `key`"),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quote at line {}", line)
            }
            CsvError::RaggedRow { line } => write!(f, "wrong field count at line {}", line),
        }
    }
}

impl std::error::Error for CsvError {}

/// Split one CSV record into fields, honouring double-quote escaping.
fn split_record(line: &str, lineno: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    loop {
        match chars.next() {
            None => {
                if in_quotes {
                    return Err(CsvError::UnterminatedQuote { line: lineno });
                }
                fields.push(cur);
                return Ok(fields);
            }
            Some('"') if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            Some('"') if cur.is_empty() && !in_quotes => in_quotes = true,
            Some(',') if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            Some(ch) => cur.push(ch),
        }
    }
}

/// Parse a CSV document into a [`Table`]. The first column must be
/// named `key`; remaining columns become fields. Cells split into
/// multi-values on `;`; empty cells become empty value lists.
pub fn from_csv(text: &str) -> Result<Table, CsvError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::BadHeader)?;
    let header_fields = split_record(header, 1)?;
    if header_fields.first().map(String::as_str) != Some("key") {
        return Err(CsvError::BadHeader);
    }
    let fields: Vec<String> = header_fields[1..].to_vec();
    let mut table = Table::new(fields.iter().cloned());

    for (i, line) in lines {
        if line.is_empty() {
            continue;
        }
        let record = split_record(line, i + 1)?;
        if record.len() != fields.len() + 1 {
            return Err(CsvError::RaggedRow { line: i + 1 });
        }
        let key = record[0].clone();
        let cells: Vec<Vec<String>> = record[1..]
            .iter()
            .map(|cell| {
                if cell.is_empty() {
                    Vec::new()
                } else {
                    cell.split(';').map(str::to_string).collect()
                }
            })
            .collect();
        table.push_row(key, cells);
    }
    Ok(table)
}

/// Serialize a table to CSV, quoting fields that need it.
pub fn to_csv(table: &Table) -> String {
    fn quote(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::from("key");
    for f in table.fields() {
        out.push(',');
        out.push_str(&quote(f));
    }
    out.push('\n');
    for row in table.rows() {
        out.push_str(&quote(&row.key));
        for cell in &row.cells {
            out.push(',');
            out.push_str(&quote(&cell.join(";")));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parse() {
        let t = from_csv("key,Genre,Writer\nt1,Pop,Ann;Bob\nt2,Rock,\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0].cells[1], vec!["Ann", "Bob"]);
        assert!(t.rows()[1].cells[1].is_empty());
    }

    #[test]
    fn quoted_fields_with_commas() {
        let t = from_csv("key,Label\nt1,\"Big, Bad Records\"\n").unwrap();
        assert_eq!(t.rows()[0].cells[0], vec!["Big, Bad Records"]);
    }

    #[test]
    fn escaped_quotes() {
        let t = from_csv("key,Name\nt1,\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.rows()[0].cells[0], vec!["say \"hi\""]);
    }

    #[test]
    fn roundtrip_with_quoting() {
        let mut t = Table::new(["Label"]);
        t.push_row("t1", vec![vec!["Big, Bad \"Records\"".into()]]);
        let text = to_csv(&t);
        let back = from_csv(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn errors() {
        assert_eq!(from_csv(""), Err(CsvError::BadHeader));
        assert_eq!(from_csv("nope,A\n"), Err(CsvError::BadHeader));
        assert_eq!(
            from_csv("key,A\nr1,\"unclosed\n"),
            Err(CsvError::UnterminatedQuote { line: 2 })
        );
        assert_eq!(
            from_csv("key,A,B\nr1,only\n"),
            Err(CsvError::RaggedRow { line: 2 })
        );
    }

    #[test]
    fn csv_feeds_the_explode_pipeline() {
        let t = from_csv("key,Genre,Writer\nt1,Pop,Ann;Bob\n").unwrap();
        let e = t.explode();
        assert_eq!(e.nnz(), 3);
        assert!(e.get("t1", "Writer|Bob").is_some());
    }
}
