//! The paper's music-metadata dataset (Figures 1, 2, 4), reconstructed.
//!
//! The paper uses a 22-track table of metadata for the band Kitten
//! (plus remixers Bandayde and Kastle), exploded into a 22 × 31
//! incidence array `E` with 185 stored ones. The reconstruction below
//! is pinned by the published figures:
//!
//! * the 31 column keys are printed in Figure 1 verbatim (including the
//!   date column literally printed as `Date|2010-06-30`);
//! * the per-row nonzero counts are visible in Figure 1
//!   (9,9,7, 8×5, 9,8,8,8,9,8, 9,9,10,9,9,9,9,6);
//! * the Genre and Writer incidences (`E1`, `E2`) are fully determined
//!   by Figure 2 row patterns together with the exact adjacency values
//!   printed in Figures 3 and 5 — the test module re-derives all of
//!   them;
//! * fields not constrained by any figure (which label/release/date a
//!   track carries) are assigned from the public release history so
//!   every printed column is used; changing them cannot affect any
//!   reproduced number, because Figures 2–5 only involve Genre and
//!   Writer columns.

use crate::table::Table;
use aarray_algebra::values::nn::NN;
use aarray_core::AArray;

/// Writer name constants (Figure 1's five `Writer|…` columns).
pub const WRITERS: [&str; 5] = [
    "Barrett Rich",
    "Chad Anderson",
    "Chloe Chaidez",
    "Julian Chaidez",
    "Nicholas Johns",
];

/// Genre constants (Figure 1's three `Genre|…` columns).
pub const GENRES: [&str; 3] = ["Electronic", "Pop", "Rock"];

struct TrackSpec {
    key: &'static str,
    artists: &'static [&'static str],
    date: &'static str,
    genres: &'static [&'static str],
    label: &'static str,
    release: &'static str,
    kind: &'static [&'static str], // Type; empty slice = no entry
    writers: &'static [&'static str],
}

const BR: &str = "Barrett Rich";
const CA: &str = "Chad Anderson";
const CC: &str = "Chloe Chaidez";
const JC: &str = "Julian Chaidez";
const NJ: &str = "Nicholas Johns";

const TRACKS: &[TrackSpec] = &[
    TrackSpec {
        key: "031013ktnA1",
        artists: &["Kitten"],
        date: "2013-10-03",
        genres: &["Rock"],
        label: "Elektra Records",
        release: "Japanese Eyes",
        kind: &["Single"],
        writers: &[CA, CC, JC],
    },
    TrackSpec {
        key: "053013ktnA1",
        artists: &["Kitten", "Kastle"],
        date: "2013-05-30",
        genres: &["Electronic"],
        label: "Elektra Records",
        release: "Like A Stranger",
        kind: &["Single"],
        writers: &[BR, NJ],
    },
    TrackSpec {
        key: "053013ktnA2",
        artists: &["Kitten"],
        date: "2013-05-30",
        genres: &["Electronic"],
        label: "Elektra Records",
        release: "Kill The Light",
        kind: &["Single"],
        writers: &[JC],
    },
    TrackSpec {
        key: "063012ktnA1",
        artists: &["Kitten"],
        date: "2010-06-30",
        genres: &["Rock"],
        label: "The Control Group",
        release: "Cut It Out/Sugar",
        kind: &["EP"],
        writers: &[CA, CC],
    },
    TrackSpec {
        key: "063012ktnA2",
        artists: &["Kitten"],
        date: "2010-06-30",
        genres: &["Rock"],
        label: "The Control Group",
        release: "Cut It Out/Sugar",
        kind: &["EP"],
        writers: &[CA, CC],
    },
    TrackSpec {
        key: "063012ktnA3",
        artists: &["Kitten"],
        date: "2010-06-30",
        genres: &["Rock"],
        label: "The Control Group",
        release: "Cut It Out/Sugar",
        kind: &["EP"],
        writers: &[CA, CC],
    },
    TrackSpec {
        key: "063012ktnA4",
        artists: &["Kitten"],
        date: "2010-06-30",
        genres: &["Rock"],
        label: "The Control Group",
        release: "Cut It Out/Sugar",
        kind: &["EP"],
        writers: &[CA, CC],
    },
    TrackSpec {
        key: "063012ktnA5",
        artists: &["Kitten"],
        date: "2010-06-30",
        genres: &["Rock"],
        label: "The Control Group",
        release: "Cut It Out/Sugar",
        kind: &["EP"],
        writers: &[CA, CC],
    },
    TrackSpec {
        key: "082812ktnA1",
        artists: &["Kitten"],
        date: "2012-08-28",
        genres: &["Pop"],
        label: "Atlantic",
        release: "Cut It Out",
        kind: &["EP"],
        writers: &[CA, CC, JC],
    },
    TrackSpec {
        key: "082812ktnA2",
        artists: &["Kitten"],
        date: "2012-08-28",
        genres: &["Pop"],
        label: "Atlantic",
        release: "Cut It Out",
        kind: &["EP"],
        writers: &[CA, CC],
    },
    TrackSpec {
        key: "082812ktnA3",
        artists: &["Kitten"],
        date: "2012-08-28",
        genres: &["Pop"],
        label: "Atlantic",
        release: "Cut It Out",
        kind: &["EP"],
        writers: &[CA, CC],
    },
    TrackSpec {
        key: "082812ktnA4",
        artists: &["Kitten"],
        date: "2012-08-28",
        genres: &["Pop"],
        label: "Atlantic",
        release: "Cut It Out",
        kind: &["EP"],
        writers: &[CA, CC],
    },
    TrackSpec {
        key: "082812ktnA5",
        artists: &["Kitten"],
        date: "2012-08-28",
        genres: &["Pop"],
        label: "Atlantic",
        release: "Cut It Out",
        kind: &["EP"],
        writers: &[CA, CC, JC],
    },
    TrackSpec {
        key: "082812ktnA6",
        artists: &["Kitten"],
        date: "2012-08-28",
        genres: &["Pop"],
        label: "Atlantic",
        release: "Cut It Out",
        kind: &["EP"],
        writers: &[CA, CC],
    },
    TrackSpec {
        key: "093012ktnA1",
        artists: &["Kitten"],
        date: "2012-09-16",
        genres: &["Electronic", "Pop"],
        label: "Free",
        release: "Cut It Out Remixes",
        kind: &["LP"],
        writers: &[CA, CC],
    },
    TrackSpec {
        key: "093012ktnA2",
        artists: &["Bandayde"],
        date: "2012-09-16",
        genres: &["Electronic", "Pop"],
        label: "Free",
        release: "Cut It Out Remixes",
        kind: &["LP"],
        writers: &[CA, CC],
    },
    TrackSpec {
        key: "093012ktnA3",
        artists: &["Kitten"],
        date: "2012-09-16",
        genres: &["Electronic", "Pop"],
        label: "Free",
        release: "Cut It Out Remixes",
        kind: &["LP"],
        writers: &[CA, CC, JC],
    },
    TrackSpec {
        key: "093012ktnA4",
        artists: &["Kitten"],
        date: "2012-09-16",
        genres: &["Electronic", "Pop"],
        label: "Free",
        release: "Cut It Out Remixes",
        kind: &["LP"],
        writers: &[CA, CC],
    },
    TrackSpec {
        key: "093012ktnA5",
        artists: &["Kitten"],
        date: "2012-09-16",
        genres: &["Electronic", "Pop"],
        label: "Free",
        release: "Cut It Out Remixes",
        kind: &["LP"],
        writers: &[CA, CC],
    },
    TrackSpec {
        key: "093012ktnA6",
        artists: &["Kitten"],
        date: "2012-09-16",
        genres: &["Electronic", "Pop"],
        label: "Free",
        release: "Cut It Out Remixes",
        kind: &["LP"],
        writers: &[CA, CC],
    },
    TrackSpec {
        key: "093012ktnA7",
        artists: &["Kitten"],
        date: "2012-09-16",
        genres: &["Electronic", "Pop"],
        label: "Free",
        release: "Cut It Out Remixes",
        kind: &["LP"],
        writers: &[CA, CC],
    },
    TrackSpec {
        key: "093012ktnA8",
        artists: &["Kitten"],
        date: "2013-09-30",
        genres: &["Electronic", "Pop"],
        label: "Free",
        release: "Yesterday",
        kind: &[],
        writers: &[],
    },
];

/// The music table (22 rows × 7 fields).
pub fn music_table() -> Table {
    let mut t = Table::new([
        "Artist", "Date", "Genre", "Label", "Release", "Type", "Writer",
    ]);
    for spec in TRACKS {
        let cell = |vals: &[&str]| vals.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        t.push_row(
            spec.key,
            vec![
                cell(spec.artists),
                vec![spec.date.to_string()],
                cell(spec.genres),
                vec![spec.label.to_string()],
                vec![spec.release.to_string()],
                cell(spec.kind),
                cell(spec.writers),
            ],
        );
    }
    t
}

/// Figure 1's exploded incidence array `E` (22 × 31, 185 stored ones).
pub fn music_incidence() -> AArray<NN> {
    music_table().explode()
}

/// Figure 2's `E1 = E(:, 'Genre|A : Genre|Z')` (22 × 3).
pub fn music_e1() -> AArray<NN> {
    music_incidence().select_cols_str("Genre|A : Genre|Z")
}

/// Figure 2's `E2 = E(:, 'Writer|A : Writer|Z')` (22 × 5).
pub fn music_e2() -> AArray<NN> {
    music_incidence().select_cols_str("Writer|A : Writer|Z")
}

/// Figure 4's re-weighted `E1`: Electronic entries keep value 1, Pop
/// entries become 2, Rock entries become 3.
pub fn music_e1_weighted() -> AArray<NN> {
    use aarray_algebra::pairs::PlusTimes;
    use aarray_algebra::values::nn::nn;
    let pair = PlusTimes::<NN>::new();
    music_e1().map_with_keys(&pair, |_, col, v| match col {
        "Genre|Pop" => nn(2.0),
        "Genre|Rock" => nn(3.0),
        _ => *v,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarray_algebra::values::nn::nn;

    #[test]
    fn figure1_dimensions() {
        let e = music_incidence();
        assert_eq!(e.shape(), (22, 31), "Figure 1 is a 22×31 exploded array");
        assert_eq!(e.nnz(), 185);
    }

    #[test]
    fn figure1_column_keys_exact() {
        let e = music_incidence();
        let expected = [
            "Artist|Bandayde",
            "Artist|Kastle",
            "Artist|Kitten",
            "Date|2010-06-30",
            "Date|2012-08-28",
            "Date|2012-09-16",
            "Date|2013-05-30",
            "Date|2013-09-30",
            "Date|2013-10-03",
            "Genre|Electronic",
            "Genre|Pop",
            "Genre|Rock",
            "Label|Atlantic",
            "Label|Elektra Records",
            "Label|Free",
            "Label|The Control Group",
            "Release|Cut It Out",
            "Release|Cut It Out Remixes",
            "Release|Cut It Out/Sugar",
            "Release|Japanese Eyes",
            "Release|Kill The Light",
            "Release|Like A Stranger",
            "Release|Yesterday",
            "Type|EP",
            "Type|LP",
            "Type|Single",
            "Writer|Barrett Rich",
            "Writer|Chad Anderson",
            "Writer|Chloe Chaidez",
            "Writer|Julian Chaidez",
            "Writer|Nicholas Johns",
        ];
        assert_eq!(e.col_keys().keys(), &expected);
    }

    #[test]
    fn figure1_per_row_nonzero_counts() {
        let e = music_incidence();
        // Counts read off Figure 1, row by row in key order.
        let expected = [
            9, // 031013ktnA1
            9, 7, // 053013ktnA1..2
            8, 8, 8, 8, 8, // 063012ktnA1..5
            9, 8, 8, 8, 9, 8, // 082812ktnA1..6
            9, 9, 10, 9, 9, 9, 9, 6, // 093012ktnA1..8
        ];
        for (r, want) in expected.iter().enumerate() {
            assert_eq!(
                e.csr().row_nnz(r),
                *want,
                "row {} ({})",
                r,
                e.row_keys().key(r)
            );
        }
    }

    #[test]
    fn figure2_e1_pattern() {
        let e1 = music_e1();
        assert_eq!(e1.shape(), (22, 3));
        assert_eq!(e1.nnz(), 30); // 14 single-genre rows + 8 dual-genre rows × 2
        assert_eq!(e1.get("031013ktnA1", "Genre|Rock"), Some(&nn(1.0)));
        assert_eq!(e1.get("053013ktnA1", "Genre|Electronic"), Some(&nn(1.0)));
        assert_eq!(e1.get("093012ktnA4", "Genre|Electronic"), Some(&nn(1.0)));
        assert_eq!(e1.get("093012ktnA4", "Genre|Pop"), Some(&nn(1.0)));
        assert_eq!(e1.get("082812ktnA2", "Genre|Pop"), Some(&nn(1.0)));
        assert_eq!(e1.get("082812ktnA2", "Genre|Rock"), None);
    }

    #[test]
    fn figure2_e2_pattern() {
        let e2 = music_e2();
        assert_eq!(e2.shape(), (22, 5));
        assert_eq!(e2.nnz(), 45);
        // Figure 2 row writer-counts.
        let expected = [
            3, // 031013ktnA1
            2, 1, // 053013
            2, 2, 2, 2, 2, // 063012
            3, 2, 2, 2, 3, 2, // 082812
            2, 2, 3, 2, 2, 2, 2, 0, // 093012
        ];
        for (r, want) in expected.iter().enumerate() {
            assert_eq!(e2.csr().row_nnz(r), *want, "row {}", e2.row_keys().key(r));
        }
    }

    #[test]
    fn figure4_weighted_e1() {
        let w = music_e1_weighted();
        assert_eq!(w.get("031013ktnA1", "Genre|Rock"), Some(&nn(3.0)));
        assert_eq!(w.get("082812ktnA1", "Genre|Pop"), Some(&nn(2.0)));
        assert_eq!(w.get("053013ktnA1", "Genre|Electronic"), Some(&nn(1.0)));
        assert_eq!(w.get("093012ktnA8", "Genre|Pop"), Some(&nn(2.0)));
        assert_eq!(w.nnz(), 30);
    }

    #[test]
    fn every_column_category_is_populated() {
        let t = music_table();
        assert_eq!(t.field_values("Artist").len(), 3);
        assert_eq!(t.field_values("Date").len(), 6);
        assert_eq!(t.field_values("Genre").len(), 3);
        assert_eq!(t.field_values("Label").len(), 4);
        assert_eq!(t.field_values("Release").len(), 7);
        assert_eq!(t.field_values("Type").len(), 3);
        assert_eq!(t.field_values("Writer").len(), 5);
        assert_eq!(t.incidence_count(), 185);
    }
}
