//! Property-based tests for the table layer: TSV round-trips and
//! explode invariants.

use aarray_d4m::tsv::{from_tsv, to_tsv};
use aarray_d4m::Table;
use proptest::prelude::*;

/// Random tables with safe cell content (no tabs/semicolons/newlines —
/// the format's reserved characters).
fn arb_table() -> impl Strategy<Value = Table> {
    let cell_value = "[a-z]{1,6}";
    (1usize..5).prop_flat_map(move |nfields| {
        let fields: Vec<String> = (0..nfields).map(|f| format!("F{}", f)).collect();
        prop::collection::vec(
            prop::collection::vec(prop::collection::vec(cell_value, 0..3), nfields..=nfields),
            1..10,
        )
        .prop_map(move |rows| {
            let mut t = Table::new(fields.clone());
            for (i, cells) in rows.into_iter().enumerate() {
                t.push_row(format!("row{:04}", i), cells);
            }
            t
        })
    })
}

proptest! {
    #[test]
    fn tsv_roundtrip(t in arb_table()) {
        let text = to_tsv(&t);
        let back = from_tsv(&text).expect("own output must parse");
        prop_assert_eq!(back, t);
    }

    #[test]
    fn explode_nnz_counts_incidences_without_duplicates(t in arb_table()) {
        // Duplicate (row, field|value) incidences combine into one
        // stored entry; distinct incidences each get one.
        let e = t.explode();
        let mut distinct = std::collections::BTreeSet::new();
        for row in t.rows() {
            for (fi, field) in t.fields().iter().enumerate() {
                for v in &row.cells[fi] {
                    distinct.insert((row.key.clone(), format!("{}|{}", field, v)));
                }
            }
        }
        prop_assert_eq!(e.nnz(), distinct.len());
        prop_assert_eq!(e.row_keys().len(), t.len());
    }

    #[test]
    fn explode_entries_locate_their_cells(t in arb_table()) {
        let e = t.explode();
        for row in t.rows() {
            for (fi, field) in t.fields().iter().enumerate() {
                for v in &row.cells[fi] {
                    let col = format!("{}|{}", field, v);
                    prop_assert!(
                        e.get(&row.key, &col).is_some(),
                        "missing {} / {}",
                        row.key,
                        col
                    );
                }
            }
        }
    }

    #[test]
    fn field_values_cover_exploded_columns(t in arb_table()) {
        let e = t.explode();
        let mut expected_cols = std::collections::BTreeSet::new();
        for f in t.fields() {
            for v in t.field_values(f) {
                expected_cols.insert(format!("{}|{}", f, v));
            }
        }
        let actual: std::collections::BTreeSet<String> =
            e.col_keys().keys().iter().cloned().collect();
        prop_assert_eq!(actual, expected_cols);
    }
}
