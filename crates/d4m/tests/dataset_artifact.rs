//! The shipped dataset artifact `data/music.tsv` must stay in sync
//! with the embedded reconstruction — users loading the file get
//! byte-for-byte the array the figures were verified against.

use aarray_d4m::music::music_table;
use aarray_d4m::tsv::{from_tsv, to_tsv};

fn artifact_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../data/music.tsv")
}

#[test]
fn artifact_matches_embedded_dataset() {
    let text = std::fs::read_to_string(artifact_path()).expect("data/music.tsv present");
    let loaded = from_tsv(&text).expect("artifact parses");
    assert_eq!(
        loaded,
        music_table(),
        "regenerate with to_tsv(&music_table())"
    );
}

#[test]
fn artifact_is_canonical_serialization() {
    let text = std::fs::read_to_string(artifact_path()).expect("data/music.tsv present");
    assert_eq!(text, to_tsv(&music_table()));
}

#[test]
fn artifact_explodes_to_figure1() {
    let text = std::fs::read_to_string(artifact_path()).expect("data/music.tsv present");
    let e = from_tsv(&text).unwrap().explode();
    assert_eq!(e.shape(), (22, 31));
    assert_eq!(e.nnz(), 185);
}
