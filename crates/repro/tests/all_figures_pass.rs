//! Every figure regenerator must report a match with the paper.

use aarray_repro::figures;

#[test]
fn figure1_passes() {
    figures::figure1().expect("Figure 1 must match the paper");
}

#[test]
fn figure2_passes() {
    figures::figure2().expect("Figure 2 must match the paper");
}

#[test]
fn figure3_passes() {
    let out = figures::figure3().expect("Figure 3 must match the paper");
    // All seven operator pairs appear (possibly stacked, as the paper
    // stacks identical panels).
    for pair in [
        "+.×", "max.×", "min.×", "max.+", "min.+", "max.min", "min.max",
    ] {
        assert!(out.contains(pair), "missing {}", pair);
    }
    // Figure 3 stacks everything but +.× and the additive pairs.
    assert!(out.contains("stacked"), "identical panels should stack");
}

#[test]
fn figure4_passes() {
    figures::figure4().expect("Figure 4 must match the paper");
}

#[test]
fn figure5_passes() {
    figures::figure5().expect("Figure 5 must match the paper");
}

#[test]
fn stats_pass() {
    figures::stats().expect("pipeline statistics must match");
}

#[test]
fn theorem_demonstrations_pass() {
    figures::theorem().expect("theorem demonstrations must hold");
}

#[test]
fn taxonomy_passes() {
    figures::taxonomy().expect("taxonomy verdicts must match Section III");
}

#[test]
fn wordsets_pass() {
    figures::wordsets().expect("document×word demonstration must hold");
}
