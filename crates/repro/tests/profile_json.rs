//! `--profile-json` capture for the Figure 3/5 workloads.
//!
//! Single `#[test]` on purpose: the capture buffer is process-global
//! (like the counter registry), so an isolated integration-test
//! process keeps the fragment count exact.

use aarray_repro::figures;

#[test]
fn profile_json_captures_stage_tables_and_counter_deltas() {
    figures::set_profile_json_capture(true);
    figures::figure3().expect("figure 3 must verify");
    figures::figure5().expect("figure 5 must verify");
    let doc = figures::take_profile_json().expect("capture was enabled");

    // Schema envelope.
    assert!(
        doc.starts_with(&format!(
            "{{\"schema_version\":{}",
            aarray_obs::REPORT_SCHEMA_VERSION
        )),
        "{}",
        doc
    );
    assert!(doc.contains("\"kind\":\"repro-profile\""), "{}", doc);

    // One fragment per profiled figure, each with both plans' stage
    // tables and the figure's counter delta.
    assert!(doc.contains("\"figure\":\"fig3\""), "{}", doc);
    assert!(doc.contains("\"figure\":\"fig5\""), "{}", doc);
    assert_eq!(doc.matches("\"maxplus_plan\":{").count(), 2, "{}", doc);
    assert_eq!(
        doc.matches("\"transpose\":{\"calls\":1").count(),
        4,
        "{}",
        doc
    );
    // Each figure runs 3 fused traversals; deltas elide zero counters.
    assert!(doc.contains("\"fused.traversals\":3"), "{}", doc);
    assert!(
        !doc.contains("\"fused.hash\""),
        "zero deltas elided: {}",
        doc
    );

    // Structural sanity: balanced braces/brackets (the emitters are
    // hand-rolled against the empty serde_json stub).
    let opens = doc.matches('{').count() + doc.matches('[').count();
    let closes = doc.matches('}').count() + doc.matches(']').count();
    assert_eq!(opens, closes, "{}", doc);

    // The buffer drains on take; a second take yields an empty list.
    let empty = figures::take_profile_json().expect("capture still on");
    assert!(empty.contains("\"profiles\":[]"), "{}", empty);
    figures::set_profile_json_capture(false);
    assert!(figures::take_profile_json().is_none());
}
