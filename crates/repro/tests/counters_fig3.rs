//! Counter-registry acceptance check for the Figure 3 workload.
//!
//! This file deliberately holds a single `#[test]`: cargo gives each
//! integration-test file its own process, so with one test the
//! process-global registry sees only this workload and the expected
//! kernel-selection counts can be asserted exactly.

use aarray_obs::{snapshot, Counter};
use aarray_repro::figures;

#[test]
fn figure3_counter_deltas_match_the_planned_workload() {
    let before = snapshot();
    figures::figure3().expect("figure 3 must verify");
    let delta = snapshot().since(&before);

    // Three numeric traversals: the fused six-lane pass, the +.×
    // cross-check, and the tropical max.+ pass — 6 + 1 + 1 lanes.
    assert_eq!(delta.get(Counter::FusedTraversals), 3, "{}", delta);
    assert_eq!(delta.get(Counter::FusedLanes), 8, "{}", delta);

    // Two plans (NN and tropical) ⇒ two symbolic misses; the
    // cross-check re-executes the warm NN plan ⇒ at least one hit.
    assert_eq!(delta.get(Counter::PlanSymbolicMiss), 2, "{}", delta);
    assert!(delta.get(Counter::PlanSymbolicHit) >= 1, "{}", delta);

    // Both plans own a transpose built exactly once; every traversal
    // of a transpose-plan reuses it (2 on the NN plan + 1 tropical).
    assert_eq!(delta.get(Counter::PlanTransposeBuilt), 2, "{}", delta);
    assert_eq!(delta.get(Counter::PlanTransposeReused), 3, "{}", delta);

    // The music arrays are tiny: every dispatch must stay serial.
    assert_eq!(delta.get(Counter::DispatchSerial), 3, "{}", delta);
    assert_eq!(delta.get(Counter::DispatchParallel), 0, "{}", delta);

    // The fused path defaults to the SPA accumulator everywhere.
    assert_eq!(delta.get(Counter::FusedSpa), 3, "{}", delta);
    assert_eq!(delta.get(Counter::FusedHash), 0, "{}", delta);

    assert!(delta.get(Counter::FlopsTotal) > 0, "{}", delta);
}
