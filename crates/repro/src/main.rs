//! `repro` — regenerate every figure of *Constructing Adjacency Arrays
//! from Incidence Arrays* and check the printed values.
//!
//! ```text
//! repro [fig1|fig2|fig3|fig4|fig5|stats|theorem|taxonomy|wordsets|all]
//!       [--save <dir>] [--profile] [--profile-json <path>] [--incremental]
//!       [--trace-out <path>]
//! ```
//!
//! Each figure command prints the paper-style grid(s) and a PASS/FAIL
//! verdict against the values printed in the paper. With `--save <dir>`
//! each section's output is additionally written to
//! `<dir>/<section>.txt`. With `--profile`, Figure 3/5 additionally
//! print per-stage plan timing tables (align / transpose / symbolic /
//! numeric per pass) and the counter-registry delta for the figure
//! (zero-delta entries elided). With `--profile-json <path>`, the same
//! stage profiles and counter deltas are written to `<path>` as one
//! schema-versioned JSON document (machine twin of `--profile`; both
//! flags compose). With `--incremental`, `fig3` (and `all`) also
//! replay the figure through the streaming incremental-maintenance
//! path and cross-check it against the batch rebuild. With
//! `--trace-out <path>`, the run's flight-recorder journal is drained
//! at exit and written as Chrome-trace/Perfetto JSON (the same export
//! `obsctl trace` produces). Exit status is nonzero if any
//! verification fails.

use aarray_repro::figures;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut arg = "all".to_string();
    let mut save_dir: Option<std::path::PathBuf> = None;
    let mut profile_json: Option<std::path::PathBuf> = None;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut incremental = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--save" {
            match it.next() {
                Some(d) => save_dir = Some(d.into()),
                None => {
                    eprintln!("--save needs a directory");
                    return ExitCode::from(2);
                }
            }
        } else if a == "--incremental" {
            incremental = true;
        } else if a == "--profile" {
            figures::set_profile(true);
        } else if a == "--profile-json" {
            match it.next() {
                Some(p) => {
                    profile_json = Some(p.into());
                    figures::set_profile_json_capture(true);
                }
                None => {
                    eprintln!("--profile-json needs a file path");
                    return ExitCode::from(2);
                }
            }
        } else if a == "--trace-out" {
            match it.next() {
                Some(p) => trace_out = Some(p.into()),
                None => {
                    eprintln!("--trace-out needs a file path");
                    return ExitCode::from(2);
                }
            }
        } else {
            arg = a;
        }
    }
    if let Some(dir) = &save_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {:?}: {}", dir, e);
            return ExitCode::from(2);
        }
    }
    let mut failures = 0usize;

    let mut run = |name: &str, f: fn() -> Result<String, String>| {
        println!("================================================================");
        println!("{}", name);
        println!("================================================================");
        let result = f();
        let body = match &result {
            Ok(out) | Err(out) => out.clone(),
        };
        if let Some(dir) = &save_dir {
            let slug: String = name
                .chars()
                .map(|c| {
                    if c.is_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect::<String>()
                .split('_')
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join("_");
            let path = dir.join(format!("{}.txt", slug));
            if let Err(e) = std::fs::write(&path, &body) {
                eprintln!("cannot write {:?}: {}", path, e);
            }
        }
        match result {
            Ok(out) => {
                println!("{}", out);
                println!("[PASS] {}", name);
            }
            Err(msg) => {
                println!("{}", msg);
                println!("[FAIL] {}", name);
                failures += 1;
            }
        }
        println!();
    };

    const FIG3_INCR: &str = "Figure 3: incremental maintenance cross-check";
    match arg.as_str() {
        "fig1" => run("Figure 1: exploded incidence array E", figures::figure1),
        "fig2" => run("Figure 2: sub-arrays E1, E2", figures::figure2),
        "fig3" => {
            run("Figure 3: adjacency arrays, unit weights", figures::figure3);
            if incremental {
                run(FIG3_INCR, figures::figure3_incremental);
            }
        }
        "fig4" => run("Figure 4: re-weighted E1", figures::figure4),
        "fig5" => run("Figure 5: adjacency arrays, weighted", figures::figure5),
        "stats" => run("Pipeline array statistics", figures::stats),
        "theorem" => run("Theorem II.1: property reports & gadgets", figures::theorem),
        "taxonomy" => run(
            "Section III: semiring laws vs Theorem II.1",
            figures::taxonomy,
        ),
        "wordsets" => run(
            "Section III: document×word arrays under ∪.∩",
            figures::wordsets,
        ),
        "all" => {
            run("Figure 1: exploded incidence array E", figures::figure1);
            run("Figure 2: sub-arrays E1, E2", figures::figure2);
            run("Figure 3: adjacency arrays, unit weights", figures::figure3);
            if incremental {
                run(FIG3_INCR, figures::figure3_incremental);
            }
            run("Figure 4: re-weighted E1", figures::figure4);
            run("Figure 5: adjacency arrays, weighted", figures::figure5);
            run("Pipeline array statistics", figures::stats);
            run("Theorem II.1: property reports & gadgets", figures::theorem);
            run(
                "Section III: semiring laws vs Theorem II.1",
                figures::taxonomy,
            );
            run(
                "Section III: document×word arrays under ∪.∩",
                figures::wordsets,
            );
        }
        other => {
            eprintln!(
                "unknown command {:?}; use fig1..fig5, theorem, taxonomy, wordsets, or all",
                other
            );
            return ExitCode::from(2);
        }
    }

    if let Some(path) = &profile_json {
        let doc = figures::take_profile_json().unwrap_or_default();
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("cannot write {:?}: {}", path, e);
            return ExitCode::from(2);
        }
        println!("profile JSON written to {}", path.display());
    }

    if let Some(path) = &trace_out {
        let snap = aarray_obs::journal().snapshot();
        if let Err(e) = std::fs::write(path, snap.to_chrome_trace()) {
            eprintln!("cannot write {:?}: {}", path, e);
            return ExitCode::from(2);
        }
        println!(
            "chrome trace written to {} ({} event(s), {} dropped by wraparound)",
            path.display(),
            snap.events.len(),
            snap.dropped
        );
    }

    if failures == 0 {
        println!("all checks passed");
        ExitCode::SUCCESS
    } else {
        println!("{} check(s) FAILED", failures);
        ExitCode::FAILURE
    }
}
