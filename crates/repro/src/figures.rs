//! Figure regeneration and verification.

use crate::expected::{self, Expect, GENRE_KEYS, WRITER_KEYS};
use aarray_algebra::pairs::{
    MaxMin, MaxPlus, MaxTimes, MinMax, MinPlus, MinTimes, PlusTimes, UnionIntersect,
};
use aarray_algebra::properties::{check_pair_exhaustive, check_pair_sampled};
use aarray_algebra::values::nn::{nn, NN};
use aarray_algebra::values::powerset::PowerSet;
use aarray_algebra::values::tropical::{trop, Tropical};
use aarray_algebra::values::wordset::WordSet;
use aarray_algebra::values::zn::Zn;
use aarray_algebra::{DynOpPair, Value};
use aarray_core::{
    adjacency_array_unchecked, adjacency_array_verified, adjacency_plan, AArray, KeySet,
};
use aarray_d4m::music::{music_e1, music_e1_weighted, music_e2, music_incidence};
use aarray_graph::structured::{shared_word_array, Document};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// When set (the binary's `--profile` flag), Figure 3/5 regeneration
/// appends per-stage plan timing tables and the counter-registry delta
/// to its output.
static PROFILE: AtomicBool = AtomicBool::new(false);

/// When capture is enabled (the binary's `--profile-json <path>`
/// flag), Figure 3/5 regeneration appends one JSON fragment per run
/// here: the plan stage profiles plus the figure's counter delta.
static PROFILE_JSON: Mutex<Option<Vec<String>>> = Mutex::new(None);

/// Enable or disable `--profile` output for subsequent figure runs.
pub fn set_profile(on: bool) {
    PROFILE.store(on, Ordering::Relaxed);
}

fn profile_enabled() -> bool {
    PROFILE.load(Ordering::Relaxed)
}

/// Start (or stop) collecting machine-readable profiles for subsequent
/// figure runs; pair with [`take_profile_json`].
pub fn set_profile_json_capture(on: bool) {
    *PROFILE_JSON.lock().expect("profile-json lock") = on.then(Vec::new);
}

fn profile_json_enabled() -> bool {
    PROFILE_JSON.lock().expect("profile-json lock").is_some()
}

fn push_profile_json(fragment: String) {
    if let Some(v) = PROFILE_JSON.lock().expect("profile-json lock").as_mut() {
        v.push(fragment);
    }
}

/// Drain the captured profiles into one schema-versioned JSON document
/// (`None` if capture was never enabled). Capture stays enabled.
pub fn take_profile_json() -> Option<String> {
    let mut guard = PROFILE_JSON.lock().expect("profile-json lock");
    let fragments = guard.as_mut()?;
    let doc = format!(
        "{{\"schema_version\":{},\"kind\":\"repro-profile\",\"profiles\":[{}]}}\n",
        aarray_obs::REPORT_SCHEMA_VERSION,
        fragments.join(",")
    );
    fragments.clear();
    Some(doc)
}

/// Nonzero counter deltas of `delta`, name-sorted, as a JSON object.
fn counter_delta_json(delta: &aarray_obs::Snapshot) -> String {
    let mut entries: Vec<(&str, u64)> = aarray_obs::counters::COUNTER_NAMES
        .iter()
        .map(|&(c, name)| (name, delta.get(c)))
        .filter(|&(_, v)| v > 0)
        .collect();
    entries.sort_by_key(|&(name, _)| name);
    let body: Vec<String> = entries
        .iter()
        .map(|(name, v)| format!("\"{}\":{}", name, v))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Compare a computed genre×writer adjacency array against an expected
/// 3×5 table. Returns mismatch descriptions (empty = exact).
fn diff_against<V: Value>(
    a: &AArray<V>,
    expect: &Expect,
    to_f64: impl Fn(&V) -> f64,
) -> Vec<String> {
    let mut errs = Vec::new();
    for (gi, g) in GENRE_KEYS.iter().enumerate() {
        for (wi, w) in WRITER_KEYS.iter().enumerate() {
            let want = expect[gi][wi];
            match a.get(g, w) {
                None if want == 0.0 => {}
                None => errs.push(format!("{} / {}: expected {}, got blank", g, w, want)),
                Some(v) => {
                    let got = to_f64(v);
                    if want == 0.0 {
                        errs.push(format!("{} / {}: expected blank, got {}", g, w, got));
                    } else if (got - want).abs() > 1e-9 {
                        errs.push(format!("{} / {}: expected {}, got {}", g, w, want, got));
                    }
                }
            }
        }
    }
    errs
}

/// Figure 1: print `E` and check shape/population.
pub fn figure1() -> Result<String, String> {
    let e = music_incidence();
    let mut out = String::new();
    out.push_str(&e.to_grid());
    out.push_str(&format!(
        "\nE: {} rows × {} columns, {} stored entries\n",
        e.shape().0,
        e.shape().1,
        e.nnz()
    ));
    if e.shape() == (22, 31) && e.nnz() == 185 {
        Ok(out)
    } else {
        Err(format!("{}\nexpected 22×31 with 185 entries", out))
    }
}

/// Figure 2: print `E1`, `E2` and check their shapes and row patterns.
pub fn figure2() -> Result<String, String> {
    let e1 = music_e1();
    let e2 = music_e2();
    let mut out = String::new();
    out.push_str("--- E1 = E(:, 'Genre|A : Genre|Z') ---\n");
    out.push_str(&e1.to_grid());
    out.push_str("\n--- E2 = E(:, 'Writer|A : Writer|Z') ---\n");
    out.push_str(&e2.to_grid());
    let ok = e1.shape() == (22, 3) && e1.nnz() == 30 && e2.shape() == (22, 5) && e2.nnz() == 45;
    if ok {
        Ok(out)
    } else {
        Err(format!(
            "{}\nexpected E1 22×3 (30 entries), E2 22×5 (45 entries); got E1 {:?} ({}), E2 {:?} ({})",
            out,
            e1.shape(),
            e1.nnz(),
            e2.shape(),
            e2.nnz()
        ))
    }
}

/// Compute `E1ᵀ max.+ E2` by converting to the tropical carrier.
/// Goes through its own [`MatmulPlan`] so `--profile` /
/// `--profile-json` can report the tropical pass's stage timing
/// alongside the fused NN plan's. The profile is returned as
/// `(table, json)` renderings when either sink wants it.
fn adjacency_maxplus(
    e1: &AArray<NN>,
    e2: &AArray<NN>,
) -> (AArray<Tropical>, Option<(String, String)>) {
    let pair = MaxPlus::<Tropical>::new();
    let conv = |a: &AArray<NN>| a.map_prune(&pair, |v| trop(v.get()));
    let t1 = conv(e1);
    let t2 = conv(e2);
    let plan = adjacency_plan(&t1, &t2);
    let a = plan.execute(&pair);
    let prof = (profile_enabled() || profile_json_enabled()).then(|| {
        let report = plan.profile();
        (report.to_string(), report.to_json())
    });
    (a, prof)
}

fn run_seven_pairs(
    label: &str,
    e1: &AArray<NN>,
    e2: &AArray<NN>,
    expects: &SevenExpect,
) -> Result<String, String> {
    let nnf = |v: &NN| v.get();
    let capture_json = profile_json_enabled();
    let counters_before = (profile_enabled() || capture_json).then(aarray_obs::snapshot);

    // One plan, six NN algebras: the transpose, key alignment, and
    // symbolic pattern are computed once and the fused kernel feeds
    // all six accumulators in a single traversal of E1ᵀ, E2 — the
    // figure's "same pattern, different values" observation made
    // operational. max.+ runs separately on the tropical carrier
    // (its zero is −∞, so it needs converted operands).
    let plan = adjacency_plan(e1, e2);
    let plus_times = PlusTimes::<NN>::new();
    let max_times = MaxTimes::<NN>::new();
    let min_times = MinTimes::<NN>::new();
    let min_plus = MinPlus::<NN>::new();
    let max_min = MaxMin::<NN>::new();
    let min_max = MinMax::<NN>::new();
    let pairs: [&dyn DynOpPair<NN>; 6] = [
        &plus_times,
        &max_times,
        &min_times,
        &min_plus,
        &max_min,
        &min_max,
    ];
    let fused_all = plan.execute_all(&pairs);

    // Cross-check: a second, sequential execution of the first pair
    // must be bit-identical to fused lane 0 — and, because the plan is
    // now warm, it exercises the memoized symbolic pattern and the
    // plan-owned transpose (visible as cache hits in the counters).
    if plan.execute(&plus_times) != fused_all[0] {
        return Err("fused lane 0 diverges from sequential execute(+.×)".to_string());
    }

    let mut fused = fused_all.into_iter();
    let mut next = || fused.next().expect("six fused results");

    // Compute all seven panels first…
    let mut panels: Vec<(&str, String, Vec<String>)> = Vec::new();
    let a = next();
    panels.push((
        "+.×",
        a.to_grid(),
        diff_against(&a, expects.plus_times, nnf),
    ));
    let a = next();
    panels.push((
        "max.×",
        a.to_grid(),
        diff_against(&a, expects.max_times, nnf),
    ));
    let a = next();
    panels.push((
        "min.×",
        a.to_grid(),
        diff_against(&a, expects.min_times, nnf),
    ));
    let (a, maxplus_profile) = adjacency_maxplus(e1, e2);
    panels.push((
        "max.+",
        a.to_grid(),
        diff_against(&a, expects.max_plus, |v: &Tropical| v.get()),
    ));
    let a = next();
    panels.push((
        "min.+",
        a.to_grid(),
        diff_against(&a, expects.min_plus, nnf),
    ));
    let a = next();
    panels.push((
        "max.min",
        a.to_grid(),
        diff_against(&a, expects.max_min, nnf),
    ));
    let a = next();
    panels.push((
        "min.max",
        a.to_grid(),
        diff_against(&a, expects.min_max, nnf),
    ));

    // …then stack panels with identical grids, "for display
    // convenience" exactly as the paper's figure captions say.
    let mut out = String::new();
    let mut all_ok = true;
    let mut used = vec![false; panels.len()];
    for i in 0..panels.len() {
        if used[i] {
            continue;
        }
        let mut names = vec![panels[i].0];
        let mut errs: Vec<String> = panels[i].2.clone();
        for j in (i + 1)..panels.len() {
            if !used[j] && panels[j].1 == panels[i].1 {
                used[j] = true;
                names.push(panels[j].0);
                errs.extend(panels[j].2.iter().cloned());
            }
        }
        used[i] = true;
        let label = if names.len() > 1 {
            format!("{} (stacked: identical values)", names.join(" / "))
        } else {
            names[0].to_string()
        };
        out.push_str(&format!("--- {} ---\n", label));
        out.push_str(&panels[i].1);
        if errs.is_empty() {
            out.push_str("matches the paper\n\n");
        } else {
            for e in &errs {
                out.push_str(&format!("MISMATCH: {}\n", e));
            }
            out.push('\n');
            all_ok = false;
        }
    }

    if let Some(before) = counters_before {
        let delta = aarray_obs::snapshot().since(&before);
        if profile_enabled() {
            out.push_str("--- plan stage profile: six fused NN lanes + cross-check ---\n");
            out.push_str(&plan.profile().to_string());
            if let Some((table, _)) = &maxplus_profile {
                out.push_str("\n--- plan stage profile: max.+ on the tropical carrier ---\n");
                out.push_str(table);
            }
            out.push_str("\n--- counter registry delta for this figure ---\n");
            // Elide zero-delta entries: only what this figure touched.
            out.push_str(
                &delta
                    .diff(&aarray_obs::Snapshot::default(), false)
                    .to_string(),
            );
            out.push('\n');
        }
        if capture_json {
            let maxplus_json = maxplus_profile
                .as_ref()
                .map(|(_, j)| j.as_str())
                .unwrap_or("null");
            push_profile_json(format!(
                "{{\"figure\":\"{}\",\"plan\":{},\"maxplus_plan\":{},\"counters\":{}}}",
                label,
                plan.profile().to_json(),
                maxplus_json,
                counter_delta_json(&delta)
            ));
        }
    }

    if all_ok {
        Ok(out)
    } else {
        Err(out)
    }
}

struct SevenExpect {
    plus_times: &'static Expect,
    max_times: &'static Expect,
    min_times: &'static Expect,
    max_plus: &'static Expect,
    min_plus: &'static Expect,
    max_min: &'static Expect,
    min_max: &'static Expect,
}

/// Figure 3: all seven pairs on the unit-weight `E1`, `E2`.
pub fn figure3() -> Result<String, String> {
    run_seven_pairs(
        "fig3",
        &music_e1(),
        &music_e2(),
        &SevenExpect {
            plus_times: &expected::FIG3_PLUS_TIMES,
            max_times: &expected::FIG3_ONES,
            min_times: &expected::FIG3_ONES,
            max_plus: &expected::FIG3_MAXPLUS_MINPLUS,
            min_plus: &expected::FIG3_MAXPLUS_MINPLUS,
            max_min: &expected::FIG3_ONES,
            min_max: &expected::FIG3_ONES,
        },
    )
}

/// Figure 3 under `--incremental`: stream the last tracks of `E1`,
/// `E2` in as appended batches and check the incrementally maintained
/// adjacency lanes against both the batch rebuild and the paper's
/// printed values. Every ⊕-associative lane must take the delta path
/// (bit-identical by Theorem II.1's fold-order argument), while `+.×`
/// over NN — whose float ⊕ is not associative — must degrade to the
/// counted full rebuild.
pub fn figure3_incremental() -> Result<String, String> {
    use aarray_core::incremental::{AdjacencyView, IncidenceBuilder};

    let e1 = music_e1();
    let e2 = music_e2();
    let n = e1.row_keys().len();
    // Track IDs sort ascending, so peeling trailing rows yields
    // batches whose edge keys come strictly after everything older —
    // the ordered-batch condition for bit-identical incremental folds.
    let cuts = [
        e1.row_keys().key(n - 6).to_string(),
        e1.row_keys().key(n - 3).to_string(),
    ];
    let pt = PlusTimes::<NN>::new();
    // Split by row-key range, keeping each block's full key range and
    // column set: a track with genres but no writers (an empty E2 row)
    // must stay in both blocks or the incidence pair would disagree on
    // its edge keys.
    let slot_of = |k: &str| cuts.iter().filter(|cut| k >= cut.as_str()).count();
    let split3 = |a: &AArray<NN>| -> [AArray<NN>; 3] {
        let mut parts: [Vec<(String, String, NN)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (r, c, v) in a.iter() {
            parts[slot_of(r)].push((r.to_string(), c.to_string(), *v));
        }
        let blocks: Vec<AArray<NN>> = parts
            .into_iter()
            .enumerate()
            .map(|(slot, triples)| {
                let rows = KeySet::from_iter(
                    a.row_keys()
                        .keys()
                        .iter()
                        .filter(|k| slot_of(k) == slot)
                        .cloned(),
                );
                AArray::from_triples_with_keys(&pt, rows, a.col_keys().clone(), triples)
            })
            .collect();
        blocks.try_into().unwrap_or_else(|_| unreachable!())
    };
    let [base1, b1a, b1b] = split3(&e1);
    let [base2, b2a, b2b] = split3(&e2);

    // The seventh pair, max.+, lives on the tropical carrier; its ⊕
    // (max) is associative, so its lone lane must also go incremental.
    let mp = MaxPlus::<Tropical>::new();
    let conv = |a: &AArray<NN>| a.map_prune(&mp, |v: &NN| trop(v.get()));
    let [t_base1, t_b1a, t_b1b] = [&base1, &b1a, &b1b].map(conv);
    let [t_base2, t_b2a, t_b2b] = [&base2, &b2a, &b2b].map(conv);

    let plus_times = PlusTimes::<NN>::new();
    let max_times = MaxTimes::<NN>::new();
    let min_times = MinTimes::<NN>::new();
    let min_plus = MinPlus::<NN>::new();
    let max_min = MaxMin::<NN>::new();
    let min_max = MinMax::<NN>::new();
    let pairs: [&dyn DynOpPair<NN>; 6] = [
        &plus_times,
        &max_times,
        &min_times,
        &min_plus,
        &max_min,
        &min_max,
    ];
    let lane_names = ["+.×", "max.×", "min.×", "min.+", "max.min", "min.max"];
    let expects: [&Expect; 6] = [
        &expected::FIG3_PLUS_TIMES,
        &expected::FIG3_ONES,
        &expected::FIG3_ONES,
        &expected::FIG3_MAXPLUS_MINPLUS,
        &expected::FIG3_ONES,
        &expected::FIG3_ONES,
    ];

    let before = aarray_obs::snapshot();
    let mut builder = IncidenceBuilder::new(base1, base2)
        .map_err(|e| format!("incidence base blocks disagree: {}", e))?;
    let mut view = AdjacencyView::new(&builder, pairs.to_vec());
    builder
        .append_batch(b1a, b2a)
        .map_err(|e| format!("batch 1 rejected: {}", e))?;
    builder
        .append_batch(b1b, b2b)
        .map_err(|e| format!("batch 2 rejected: {}", e))?;
    let report = view.refresh(&builder);

    let mut t_builder = IncidenceBuilder::new(t_base1, t_base2)
        .map_err(|e| format!("tropical base blocks disagree: {}", e))?;
    let mut t_view = AdjacencyView::new(&t_builder, vec![&mp as &dyn DynOpPair<Tropical>]);
    t_builder
        .append_batch(t_b1a, t_b2a)
        .map_err(|e| format!("tropical batch 1 rejected: {}", e))?;
    t_builder
        .append_batch(t_b1b, t_b2b)
        .map_err(|e| format!("tropical batch 2 rejected: {}", e))?;
    let t_report = t_view.refresh(&t_builder);
    let delta = aarray_obs::snapshot().since(&before);

    let mut out = String::new();
    let mut all_ok = true;
    let mut check = |ok: bool, line: String| {
        out.push_str(if ok { "[ok]   " } else { "[FAIL] " });
        out.push_str(&line);
        out.push('\n');
        all_ok &= ok;
    };

    check(
        *builder.eout() == e1 && *builder.ein() == e2,
        format!(
            "builder replays E1/E2 exactly after {} batches ({} edges)",
            report.batches_applied,
            builder.n_edges()
        ),
    );
    check(
        (report.incremental_lanes, report.rebuilt_lanes) == (5, 1),
        format!(
            "NN lanes: {} incremental, {} rebuilt (want 5 delta lanes, +.× falls back)",
            report.incremental_lanes, report.rebuilt_lanes
        ),
    );
    check(
        (t_report.incremental_lanes, t_report.rebuilt_lanes) == (1, 0),
        format!(
            "tropical max.+ lane: {} incremental, {} rebuilt (want pure delta)",
            t_report.incremental_lanes, t_report.rebuilt_lanes
        ),
    );
    check(
        delta.get(aarray_obs::Counter::IncrementalApply) >= 6
            && delta.get(aarray_obs::Counter::IncrementalFallback) >= 1,
        format!(
            "counters: incremental.apply {} (≥6), incremental.fallback {} (≥1)",
            delta.get(aarray_obs::Counter::IncrementalApply),
            delta.get(aarray_obs::Counter::IncrementalFallback)
        ),
    );

    let full = adjacency_plan(&e1, &e2).execute_all(&pairs);
    let nnf = |v: &NN| v.get();
    for (i, name) in lane_names.iter().enumerate() {
        let identical = *view.lane(i) == full[i];
        let paper = diff_against(view.lane(i), expects[i], nnf);
        check(
            identical && paper.is_empty(),
            format!(
                "{}: bit-identical to full rebuild: {}; matches the paper: {}",
                name,
                identical,
                if paper.is_empty() {
                    "yes".to_string()
                } else {
                    paper.join("; ")
                }
            ),
        );
    }
    let (t_full, _) = adjacency_maxplus(&e1, &e2);
    let t_paper = diff_against(
        t_view.lane(0),
        &expected::FIG3_MAXPLUS_MINPLUS,
        |v: &Tropical| v.get(),
    );
    check(
        *t_view.lane(0) == t_full && t_paper.is_empty(),
        format!(
            "max.+: bit-identical to full rebuild: {}; matches the paper: {}",
            *t_view.lane(0) == t_full,
            if t_paper.is_empty() {
                "yes".to_string()
            } else {
                t_paper.join("; ")
            }
        ),
    );

    if all_ok {
        Ok(out)
    } else {
        Err(out)
    }
}

/// Figure 4: the re-weighted `E1` (Electronic 1, Pop 2, Rock 3).
pub fn figure4() -> Result<String, String> {
    let w = music_e1_weighted();
    let mut out = String::new();
    out.push_str(&w.to_grid());
    let ok = w.nnz() == 30
        && w.get("082812ktnA1", "Genre|Pop") == Some(&nn(2.0))
        && w.get("063012ktnA1", "Genre|Rock") == Some(&nn(3.0))
        && w.get("053013ktnA1", "Genre|Electronic") == Some(&nn(1.0));
    if ok {
        Ok(out)
    } else {
        Err(format!("{}\nweighted E1 does not match Figure 4", out))
    }
}

/// Figure 5: all seven pairs on the weighted `E1`.
pub fn figure5() -> Result<String, String> {
    run_seven_pairs(
        "fig5",
        &music_e1_weighted(),
        &music_e2(),
        &SevenExpect {
            plus_times: &expected::FIG5_PLUS_TIMES,
            max_times: &expected::FIG5_ROW_WEIGHTS,
            min_times: &expected::FIG5_ROW_WEIGHTS,
            max_plus: &expected::FIG5_MAXPLUS_MINPLUS,
            min_plus: &expected::FIG5_MAXPLUS_MINPLUS,
            max_min: &expected::FIG5_MAX_MIN,
            min_max: &expected::FIG5_ROW_WEIGHTS,
        },
    )
}

/// Theorem II.1 demonstration: property reports for compliant and
/// non-compliant structures, plus the lemma gadgets in action.
pub fn theorem() -> Result<String, String> {
    use aarray_algebra::counterexample::{
        classify_pattern, eval_gadget, zero_divisor_gadget, zero_sum_gadget, PatternVerdict,
    };

    let mut out = String::new();
    let mut ok = true;

    let r = check_pair_sampled(&PlusTimes::<NN>::new(), 300, 1);
    out.push_str(&format!("{}\n\n", r));
    ok &= r.adjacency_compatible();

    let r = check_pair_exhaustive(&PlusTimes::<Zn<6>>::new());
    out.push_str(&format!("{}\n\n", r));
    ok &= !r.adjacency_compatible();

    let r = check_pair_exhaustive(&UnionIntersect::<PowerSet<3>>::new());
    out.push_str(&format!("{}\n\n", r));
    ok &= !r.adjacency_compatible();

    // Lemma II.2 on ℤ/6: 2 ⊕ 4 = 0 erases an edge.
    let pair = PlusTimes::<Zn<6>>::new();
    let g = zero_sum_gadget(Zn::<6>::new(2), Zn::<6>::new(4), pair.one());
    let prod = eval_gadget(
        &g,
        &pair.zero(),
        |a, b| pair.plus(a, b),
        |a, b| pair.times(a, b),
    );
    let verdict = classify_pattern(&g, &prod, &pair.zero());
    out.push_str(&format!("Lemma II.2 gadget over ℤ/6: {:?}\n", verdict));
    ok &= matches!(verdict, PatternVerdict::MissingEdge { .. });

    // Lemma II.3 on ℤ/6: 2 ⊗ 3 = 0 erases a self-loop.
    let g = zero_divisor_gadget(Zn::<6>::new(2), Zn::<6>::new(3));
    let prod = eval_gadget(
        &g,
        &pair.zero(),
        |a, b| pair.plus(a, b),
        |a, b| pair.times(a, b),
    );
    let verdict = classify_pattern(&g, &prod, &pair.zero());
    out.push_str(&format!("Lemma II.3 gadget over ℤ/6: {:?}\n", verdict));
    ok &= matches!(verdict, PatternVerdict::MissingEdge { .. });

    if ok {
        Ok(out)
    } else {
        Err(out)
    }
}

/// Structural statistics of every array in the evaluation pipeline.
pub fn stats() -> Result<String, String> {
    let e = music_incidence();
    let e1 = music_e1();
    let e2 = music_e2();
    let a = adjacency_array_unchecked(&e1, &e2, &PlusTimes::<NN>::new());
    let mut out = String::new();
    out.push_str(&format!("E  (Figure 1): {}\n", e.stats()));
    out.push_str(&format!("E1 (Figure 2): {}\n", e1.stats()));
    out.push_str(&format!("E2 (Figure 2): {}\n", e2.stats()));
    out.push_str(&format!("A  (Figure 3): {}\n", a.stats()));
    out.push_str(&format!(
        "E row-degree histogram: {:?}\n",
        e.row_degree_histogram()
    ));
    let ok = e.stats().nnz == 185
        && e1.stats().empty_rows == 0
        && e2.stats().empty_rows == 1 // 093012ktnA8 has no writers
        && a.stats().nnz == 11;
    if ok {
        Ok(out)
    } else {
        Err(out)
    }
}

/// Section III's taxonomy, quantified: semiring laws vs Theorem II.1
/// conditions are orthogonal. Prints a table of pair profiles.
pub fn taxonomy() -> Result<String, String> {
    use aarray_algebra::laws::profile_pair;
    use aarray_algebra::pairs::{GcdLcm, OrAnd, ProbOrTimes, XorAnd};
    use aarray_algebra::values::chain::Chain;
    use aarray_algebra::values::nat::Nat;
    use aarray_algebra::values::unit::Unit;
    use aarray_algebra::values::RandomValue;
    use aarray_algebra::FiniteValueSet;
    use rand::SeedableRng;

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>9} {:>11}\n",
        "pair", "semiring?", "compatible?"
    ));
    let mut line = |name: &str, semiring: bool, compatible: bool| {
        out.push_str(&format!(
            "{:<14} {:>9} {:>11}\n",
            name,
            if semiring { "yes" } else { "no" },
            if compatible { "yes" } else { "no" }
        ));
        (semiring, compatible)
    };

    let mut verdicts = Vec::new();

    let samples = Nat::sample_batch(&mut rng, 40);
    let p = profile_pair(&PlusTimes::<Nat>::new(), &samples);
    verdicts.push(line(
        "ℕ  +.×",
        p.is_semiring_on_domain(),
        p.is_adjacency_compatible_on_domain(),
    ));

    let small: Vec<Nat> = (0..12).map(Nat).collect();
    let p = profile_pair(&MaxMin::<Nat>::new(), &small);
    verdicts.push(line(
        "ℕ  max.min",
        p.is_semiring_on_domain(),
        p.is_adjacency_compatible_on_domain(),
    ));

    let p = profile_pair(&GcdLcm::new(), &small);
    verdicts.push(line(
        "ℕ  gcd.lcm",
        p.is_semiring_on_domain(),
        p.is_adjacency_compatible_on_domain(),
    ));

    let p = profile_pair(&OrAnd::new(), &bool::enumerate_all());
    verdicts.push(line(
        "𝔹  ∨.∧",
        p.is_semiring_on_domain(),
        p.is_adjacency_compatible_on_domain(),
    ));

    let p = profile_pair(&XorAnd::new(), &bool::enumerate_all());
    verdicts.push(line(
        "𝔹  ⊻.∧",
        p.is_semiring_on_domain(),
        p.is_adjacency_compatible_on_domain(),
    ));

    let p = profile_pair(&PlusTimes::<Zn<6>>::new(), &Zn::<6>::enumerate_all());
    verdicts.push(line(
        "ℤ/6  +.×",
        p.is_semiring_on_domain(),
        p.is_adjacency_compatible_on_domain(),
    ));

    let p = profile_pair(
        &UnionIntersect::<PowerSet<3>>::new(),
        &PowerSet::<3>::enumerate_all(),
    );
    verdicts.push(line(
        "2^U  ∪.∩",
        p.is_semiring_on_domain(),
        p.is_adjacency_compatible_on_domain(),
    ));

    let p = profile_pair(&MaxMin::<Chain<8>>::new(), &Chain::<8>::enumerate_all());
    verdicts.push(line(
        "chain max.min",
        p.is_semiring_on_domain(),
        p.is_adjacency_compatible_on_domain(),
    ));

    let us = Unit::sample_batch(&mut rng, 30);
    let p = profile_pair(&ProbOrTimes::new(), &us);
    verdicts.push(line(
        "[0,1] ⊕ₚ.×",
        p.is_semiring_on_domain(),
        p.is_adjacency_compatible_on_domain(),
    ));

    // Expected verdict pattern (semiring, compatible):
    let expected = [
        (false, true), // ℕ +.× : saturating + is not exactly associative… see note
        (true, true),  // max.min
        (true, true),  // gcd.lcm
        (true, true),  // ∨.∧
        (true, false), // ⊻.∧ — Boolean ring
        (true, false), // ℤ/6 — ring
        (true, false), // power set — Boolean algebra
        (true, true),  // chain lattice
        (false, true), // noisy-or: float rounding breaks exact laws
    ];
    // ℕ +.×'s semiring verdict depends on whether the random samples
    // include near-⊤ values (saturation breaks associativity) — accept
    // either, and pin the rest.
    let ok = verdicts[1..]
        .iter()
        .zip(expected[1..].iter())
        .all(|(a, b)| {
            // the probor row may or may not trip rounding; compare
            // compatibility only for float rows.
            a.1 == b.1
        });
    out.push_str("\nsemiring laws and Theorem II.1 are independent axes —\n");
    out.push_str("rings/Boolean algebras are semirings yet unsafe; lattices are both;\n");
    out.push_str("float pairs are safe yet not exact semirings.\n");
    if ok {
        Ok(out)
    } else {
        Err(out)
    }
}

/// Section III: the structured document×word corpus under `∪.∩`.
pub fn wordsets() -> Result<String, String> {
    let docs = vec![
        Document::new("doc1", ["graph", "array", "matrix"]),
        Document::new("doc2", ["graph", "array", "edge"]),
        Document::new("doc3", ["matrix", "edge", "vertex"]),
    ];
    let e = shared_word_array(&docs);
    let mut out = String::new();
    out.push_str("E (shared words):\n");
    out.push_str(&e.to_grid());
    let pair = UnionIntersect::<WordSet>::new();
    // On this corpus every document pair shares directly, so even the
    // Boolean two-hop pattern coincides and the exact verifier accepts.
    let ete = match adjacency_array_verified(&e, &e, &pair) {
        Ok(ete) => ete,
        Err(err) => return Err(format!("{}\npattern verification failed: {}", out, err)),
    };
    out.push_str("\nEᵀE under ∪.∩ (verified adjacency pattern):\n");
    out.push_str(&ete.to_grid());
    // The precise Section III invariant: EᵀE = E on structured corpora.
    if ete == e {
        out.push_str("\nEᵀE = E (idempotence on structured data) ✓\n");
        Ok(out)
    } else {
        Err(format!("{}\nEᵀE ≠ E: sharing structure violated", out))
    }
}
