//! Library interface of the reproduction harness: each figure
//! regenerator returns `Ok(rendered output)` when the regenerated
//! values match the paper, `Err(output with MISMATCH lines)` otherwise.
//! The `repro` binary wraps these; the crate's tests assert they all
//! pass.

pub mod expected;
pub mod figures;
