//! The adjacency values printed in Figures 3 and 5, transcribed from
//! the paper.
//!
//! Rows: `Genre|Electronic`, `Genre|Pop`, `Genre|Rock`. Columns:
//! `Writer|Barrett Rich`, `Writer|Chad Anderson`, `Writer|Chloe
//! Chaidez`, `Writer|Julian Chaidez`, `Writer|Nicholas Johns`.
//! `0.0` denotes a blank (unstored) cell.

/// Genre row keys in display order.
pub const GENRE_KEYS: [&str; 3] = ["Genre|Electronic", "Genre|Pop", "Genre|Rock"];

/// Writer column keys in display order.
pub const WRITER_KEYS: [&str; 5] = [
    "Writer|Barrett Rich",
    "Writer|Chad Anderson",
    "Writer|Chloe Chaidez",
    "Writer|Julian Chaidez",
    "Writer|Nicholas Johns",
];

/// A 3×5 expected table.
pub type Expect = [[f64; 5]; 3];

/// Figure 3 (unit-weight `E1`), `+.×`.
pub const FIG3_PLUS_TIMES: Expect = [
    [1.0, 7.0, 7.0, 2.0, 1.0],
    [0.0, 13.0, 13.0, 3.0, 0.0],
    [0.0, 6.0, 6.0, 1.0, 0.0],
];

/// Figure 3, `max.+` and `min.+` (stacked in the paper: same values).
pub const FIG3_MAXPLUS_MINPLUS: Expect = [
    [2.0, 2.0, 2.0, 2.0, 2.0],
    [0.0, 2.0, 2.0, 2.0, 0.0],
    [0.0, 2.0, 2.0, 2.0, 0.0],
];

/// Figure 3, `max.×`, `min.×`, `max.min`, `min.max` (all ones).
pub const FIG3_ONES: Expect = [
    [1.0, 1.0, 1.0, 1.0, 1.0],
    [0.0, 1.0, 1.0, 1.0, 0.0],
    [0.0, 1.0, 1.0, 1.0, 0.0],
];

/// Figure 5 (weighted `E1`: Electronic 1, Pop 2, Rock 3), `+.×`.
pub const FIG5_PLUS_TIMES: Expect = [
    [1.0, 7.0, 7.0, 2.0, 1.0],
    [0.0, 26.0, 26.0, 6.0, 0.0],
    [0.0, 18.0, 18.0, 3.0, 0.0],
];

/// Figure 5, `max.+` and `min.+`.
pub const FIG5_MAXPLUS_MINPLUS: Expect = [
    [2.0, 2.0, 2.0, 2.0, 2.0],
    [0.0, 3.0, 3.0, 3.0, 0.0],
    [0.0, 4.0, 4.0, 4.0, 0.0],
];

/// Figure 5, `max.min` (unchanged from Figure 3: `E2` still has ones).
pub const FIG5_MAX_MIN: Expect = FIG3_ONES;

/// Figure 5, `min.max`, `max.×`, and `min.×` (row weights surface).
pub const FIG5_ROW_WEIGHTS: Expect = [
    [1.0, 1.0, 1.0, 1.0, 1.0],
    [0.0, 2.0, 2.0, 2.0, 0.0],
    [0.0, 3.0, 3.0, 3.0, 0.0],
];
