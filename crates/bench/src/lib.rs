//! Shared workload builders for the benchmark targets.
//!
//! The figure benches need *track-indexed* incidence arrays (rows =
//! entities, columns = `field|value` attributes), i.e. the shape of the
//! paper's `E` — not the edge-indexed arrays a [`aarray_graph`]
//! multigraph produces (whose `E1ᵀE2` products over edge keys are
//! empty, because one edge touches one attribute). These builders scale
//! Figure 1's shape up deterministically.

use aarray_algebra::pairs::PlusTimes;
use aarray_algebra::values::nn::{nn, NN};
use aarray_core::AArray;
use aarray_d4m::Table;

/// A synthetic music-shaped table: `n` rows, each with 1–2 genres (of
/// `genres`) and 1–3 writers (of `writers`), plus the other Figure 1
/// fields. Deterministic in `seed`.
pub fn synthetic_music_table(n: usize, genres: usize, writers: usize, seed: u64) -> Table {
    let mut t = Table::new([
        "Artist", "Date", "Genre", "Label", "Release", "Type", "Writer",
    ]);
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = |m: usize| {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((x >> 33) as usize) % m
    };
    for i in 0..n {
        let n_g = 1 + next(2);
        let mut gs: Vec<String> = (0..n_g).map(|_| format!("G{:03}", next(genres))).collect();
        gs.sort();
        gs.dedup();
        let n_w = 1 + next(3);
        let mut ws: Vec<String> = (0..n_w).map(|_| format!("W{:05}", next(writers))).collect();
        ws.sort();
        ws.dedup();
        t.push_row(
            format!("track{:07}", i),
            vec![
                vec![format!("Artist{:03}", next(64))],
                vec![format!("2020-{:02}-{:02}", next(12) + 1, next(28) + 1)],
                gs,
                vec![format!("Label{:02}", next(24))],
                vec![format!("Release{:04}", next(500))],
                vec!["Single".to_string()],
                ws,
            ],
        );
    }
    t
}

/// The Figure 2 analogue at scale: `(E1, E2)` — track×genre and
/// track×writer incidence arrays selected from the exploded synthetic
/// table.
pub fn synthetic_e1_e2(
    n: usize,
    genres: usize,
    writers: usize,
    seed: u64,
) -> (AArray<NN>, AArray<NN>) {
    let e = synthetic_music_table(n, genres, writers, seed).explode();
    let e1 = e.select_cols_str("Genre|*");
    let e2 = e.select_cols_str("Writer|*");
    (e1, e2)
}

/// Sanity value so benches can assert non-degeneracy cheaply.
pub fn product_nnz_lower_bound(e1: &AArray<NN>, e2: &AArray<NN>) -> usize {
    let pair = PlusTimes::<NN>::new();
    let a = e1.transpose().matmul(e2, &pair);
    assert!(
        a.nnz() > 0,
        "degenerate workload: E1ᵀE2 is empty ({}×{} · {}×{})",
        e1.shape().0,
        e1.shape().1,
        e2.shape().0,
        e2.shape().1
    );
    let _ = nn(1.0);
    a.nnz()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_table_shape() {
        let t = synthetic_music_table(100, 8, 50, 42);
        assert_eq!(t.len(), 100);
        assert!(t.incidence_count() >= 100 * 7);
        // Deterministic.
        assert_eq!(t, synthetic_music_table(100, 8, 50, 42));
    }

    #[test]
    fn e1_e2_are_track_indexed_and_product_is_nonempty() {
        let (e1, e2) = synthetic_e1_e2(200, 6, 40, 7);
        assert_eq!(e1.shape().0, 200);
        assert!(e1.shape().1 <= 6);
        assert!(e2.shape().1 <= 40);
        // Shared row keys (tracks) make the correlation non-degenerate.
        let nnz = product_nnz_lower_bound(&e1, &e2);
        assert!(nnz >= 6);
    }
}
