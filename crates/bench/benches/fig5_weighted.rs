//! Figure 5 regeneration cost: the weighted multiply across all seven
//! pairs. Values differ from Figure 3 but the pattern work is
//! identical — the paper's point that one syntax serves many algebras.

use aarray_algebra::pairs::{MaxMin, MaxPlus, MinMax, MinPlus, PlusTimes};
use aarray_algebra::values::nn::NN;
use aarray_algebra::values::tropical::{trop, Tropical};
use aarray_core::adjacency_array_unchecked;
use aarray_d4m::music::{music_e1_weighted, music_e2};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_weighted");
    let e1 = music_e1_weighted();
    let e2 = music_e2();

    group.bench_function("plus_times", |b| {
        let p = PlusTimes::<NN>::new();
        b.iter(|| adjacency_array_unchecked(&e1, &e2, &p))
    });
    group.bench_function("max_plus_tropical", |b| {
        let p = MaxPlus::<Tropical>::new();
        let e1t = e1.map_prune(&p, |v| trop(v.get()));
        let e2t = e2.map_prune(&p, |v| trop(v.get()));
        b.iter(|| adjacency_array_unchecked(&e1t, &e2t, &p))
    });
    group.bench_function("min_plus", |b| {
        let p = MinPlus::<NN>::new();
        b.iter(|| adjacency_array_unchecked(&e1, &e2, &p))
    });
    group.bench_function("max_min", |b| {
        let p = MaxMin::<NN>::new();
        b.iter(|| adjacency_array_unchecked(&e1, &e2, &p))
    });
    group.bench_function("min_max", |b| {
        let p = MinMax::<NN>::new();
        b.iter(|| adjacency_array_unchecked(&e1, &e2, &p))
    });
    // End-to-end: reweight + multiply (the full Figure 4 → Figure 5
    // pipeline).
    group.bench_function("reweight_then_multiply", |b| {
        let p = PlusTimes::<NN>::new();
        b.iter(|| {
            let w = aarray_d4m::music::music_e1_weighted();
            adjacency_array_unchecked(&w, &e2, &p)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
