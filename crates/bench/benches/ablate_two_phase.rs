//! Ablation: one-phase SpGEMM vs two-phase (symbolic + numeric), and
//! the Figure 3 reuse scenario — one symbolic pass amortized over all
//! seven numeric multiplies.

use aarray_algebra::pairs::{MaxMin, MaxTimes, MinMax, MinPlus, MinTimes, PlusTimes};
use aarray_algebra::values::nat::Nat;
use aarray_algebra::values::nn::NN;
use aarray_graph::generators::erdos_renyi;
use aarray_sparse::symbolic::{spgemm_numeric, spgemm_symbolic};
use aarray_sparse::{spgemm, Csr};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn nn_pairs_inputs(tracks: usize) -> (Csr<NN>, Csr<NN>) {
    let (e1, e2) = aarray_bench::synthetic_e1_e2(tracks, 8, 100, 3);
    // Track-indexed inputs: E1ᵀ rows are genres, columns are tracks,
    // shared with E2's rows — a non-degenerate correlation.
    (e1.csr().transpose(), e2.csr().clone())
}

fn bench_two_phase(c: &mut Criterion) {
    let pair = PlusTimes::<Nat>::new();
    let mut group = c.benchmark_group("ablate_two_phase");

    for &(n, m) in &[(2_000usize, 10_000usize), (10_000, 80_000)] {
        let g = erdos_renyi(n, m, 55);
        let (eout, ein) = g.incidence_arrays(&pair);
        let a = eout.csr().transpose();
        let b = ein.csr().clone();

        group.bench_with_input(
            BenchmarkId::new("one_phase", format!("n{}_m{}", n, m)),
            &(&a, &b),
            |bch, (a, b)| bch.iter(|| spgemm(a, b, &pair)),
        );
        group.bench_with_input(
            BenchmarkId::new("two_phase_full", format!("n{}_m{}", n, m)),
            &(&a, &b),
            |bch, (a, b)| {
                bch.iter(|| {
                    let sym = spgemm_symbolic(a, b);
                    spgemm_numeric(&sym, a, b, &pair)
                })
            },
        );
        let sym = spgemm_symbolic(&a, &b);
        group.bench_with_input(
            BenchmarkId::new("numeric_only", format!("n{}_m{}", n, m)),
            &(&a, &b),
            |bch, (a, b)| bch.iter(|| spgemm_numeric(&sym, a, b, &pair)),
        );
    }

    // The Figure 3 reuse scenario: seven multiplies of the same pattern.
    let (e1t, e2) = nn_pairs_inputs(5_000);
    group.bench_function("fig3_seven_pairs_one_phase", |b| {
        b.iter(|| {
            let mut total = 0usize;
            total += spgemm(&e1t, &e2, &PlusTimes::<NN>::new()).nnz();
            total += spgemm(&e1t, &e2, &MaxTimes::<NN>::new()).nnz();
            total += spgemm(&e1t, &e2, &MinTimes::<NN>::new()).nnz();
            total += spgemm(&e1t, &e2, &MinPlus::<NN>::new()).nnz();
            total += spgemm(&e1t, &e2, &MaxMin::<NN>::new()).nnz();
            total += spgemm(&e1t, &e2, &MinMax::<NN>::new()).nnz();
            total += spgemm(&e1t, &e2, &PlusTimes::<NN>::new()).nnz();
            total
        })
    });
    group.bench_function("fig3_seven_pairs_shared_symbolic", |b| {
        b.iter(|| {
            let sym = spgemm_symbolic(&e1t, &e2);
            let mut total = 0usize;
            total += spgemm_numeric(&sym, &e1t, &e2, &PlusTimes::<NN>::new()).nnz();
            total += spgemm_numeric(&sym, &e1t, &e2, &MaxTimes::<NN>::new()).nnz();
            total += spgemm_numeric(&sym, &e1t, &e2, &MinTimes::<NN>::new()).nnz();
            total += spgemm_numeric(&sym, &e1t, &e2, &MinPlus::<NN>::new()).nnz();
            total += spgemm_numeric(&sym, &e1t, &e2, &MaxMin::<NN>::new()).nnz();
            total += spgemm_numeric(&sym, &e1t, &e2, &MinMax::<NN>::new()).nnz();
            total += spgemm_numeric(&sym, &e1t, &e2, &PlusTimes::<NN>::new()).nnz();
            total
        })
    });

    group.finish();
}

criterion_group!(benches, bench_two_phase);
criterion_main!(benches);
