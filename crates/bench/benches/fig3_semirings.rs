//! Figure 3 regeneration cost: `A = E1ᵀ ⊕.⊗ E2` across all seven
//! operator pairs, at the paper's size and on scaled music-like data.
//!
//! The paper's observation to preserve: the *pattern* cost is identical
//! across pairs (same nonzero structure); only the value arithmetic
//! differs, so timings should be close.

use aarray_algebra::pairs::{MaxMin, MaxPlus, MaxTimes, MinMax, MinPlus, MinTimes, PlusTimes};
use aarray_algebra::values::nn::NN;
use aarray_algebra::values::tropical::{trop, Tropical};
use aarray_bench::synthetic_e1_e2;
use aarray_core::{adjacency_array_unchecked, AArray};
use aarray_d4m::music::{music_e1, music_e2};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pairs(c: &mut Criterion, group_name: &str, e1: &AArray<NN>, e2: &AArray<NN>) {
    let mut group = c.benchmark_group(group_name);
    group.bench_function("plus_times", |b| {
        let p = PlusTimes::<NN>::new();
        b.iter(|| adjacency_array_unchecked(e1, e2, &p))
    });
    group.bench_function("max_times", |b| {
        let p = MaxTimes::<NN>::new();
        b.iter(|| adjacency_array_unchecked(e1, e2, &p))
    });
    group.bench_function("min_times", |b| {
        let p = MinTimes::<NN>::new();
        b.iter(|| adjacency_array_unchecked(e1, e2, &p))
    });
    group.bench_function("max_plus_tropical", |b| {
        let p = MaxPlus::<Tropical>::new();
        let e1t = e1.map_prune(&p, |v| trop(v.get()));
        let e2t = e2.map_prune(&p, |v| trop(v.get()));
        b.iter(|| adjacency_array_unchecked(&e1t, &e2t, &p))
    });
    group.bench_function("min_plus", |b| {
        let p = MinPlus::<NN>::new();
        b.iter(|| adjacency_array_unchecked(e1, e2, &p))
    });
    group.bench_function("max_min", |b| {
        let p = MaxMin::<NN>::new();
        b.iter(|| adjacency_array_unchecked(e1, e2, &p))
    });
    group.bench_function("min_max", |b| {
        let p = MinMax::<NN>::new();
        b.iter(|| adjacency_array_unchecked(e1, e2, &p))
    });
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    // The paper's exact workload: 22×3 ᵀ × 22×5.
    bench_pairs(c, "fig3_music", &music_e1(), &music_e2());

    // Scaled extension: the same shape of computation on synthetic
    // track × genre / track × writer arrays (track-indexed, so the
    // correlation through shared tracks is non-degenerate).
    for tracks in [1_000usize, 10_000] {
        let (e1, e2) = synthetic_e1_e2(tracks, 8, 100, 7);
        let mut group = c.benchmark_group("fig3_scaled");
        group.bench_with_input(
            BenchmarkId::new("plus_times", tracks),
            &(&e1, &e2),
            |b, (e1, e2)| {
                let p = PlusTimes::<NN>::new();
                b.iter(|| adjacency_array_unchecked(e1, e2, &p))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("max_min", tracks),
            &(&e1, &e2),
            |b, (e1, e2)| {
                let p = MaxMin::<NN>::new();
                b.iter(|| adjacency_array_unchecked(e1, e2, &p))
            },
        );
        group.finish();
    }
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
