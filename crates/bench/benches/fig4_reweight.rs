//! Figure 4 regeneration cost: key-aware re-weighting of an incidence
//! array (`Genre|Pop → 2`, `Genre|Rock → 3`), at the paper's size and
//! scaled.

use aarray_algebra::pairs::PlusTimes;
use aarray_algebra::values::nn::{nn, NN};
use aarray_bench::synthetic_music_table;
use aarray_d4m::music::music_e1;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_reweight(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_reweight");
    let pair = PlusTimes::<NN>::new();

    let e1 = music_e1();
    group.bench_function("music_e1", |b| {
        b.iter(|| {
            e1.map_with_keys(&pair, |_, col, v| match col {
                "Genre|Pop" => nn(2.0),
                "Genre|Rock" => nn(3.0),
                _ => *v,
            })
        })
    });

    for tracks in [1_000usize, 10_000, 100_000] {
        let e = synthetic_music_table(tracks, 8, 100, 11).explode();
        group.bench_with_input(BenchmarkId::new("scaled", tracks), &e, |b, e| {
            b.iter(|| {
                e.map_with_keys(&pair, |_, col, v| {
                    if col.starts_with("Genre|") {
                        nn(2.0)
                    } else {
                        *v
                    }
                })
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_reweight);
criterion_main!(benches);
