//! The tentpole measurement: Figure 3's seven-pair workload executed
//! as seven independent multiplications vs one `MatmulPlan` with a
//! fused multi-semiring numeric pass.
//!
//! Sequential arm: seven `adjacency_array_unchecked` calls (six NN
//! algebras + tropical max.+), each re-running transpose, key
//! alignment, and sparsity discovery. Fused arm: one plan per carrier
//! (transpose + alignment + symbolic pattern once), six NN lanes fed
//! by a single traversal, tropical executed on its own plan. Both arms
//! produce bit-identical arrays — asserted before timing.
//!
//! Writes `BENCH_pr1.json` at the workspace root with the measured
//! speedup, so CI can track the fused-execution win.

use aarray_algebra::pairs::{MaxMin, MaxPlus, MaxTimes, MinMax, MinPlus, MinTimes, PlusTimes};
use aarray_algebra::values::nn::NN;
use aarray_algebra::values::tropical::{trop, Tropical};
use aarray_algebra::DynOpPair;
use aarray_bench::synthetic_e1_e2;
use aarray_core::{adjacency_array_unchecked, adjacency_plan, AArray};
use std::time::Instant;

struct SevenPairs {
    plus_times: PlusTimes<NN>,
    max_times: MaxTimes<NN>,
    min_times: MinTimes<NN>,
    min_plus: MinPlus<NN>,
    max_min: MaxMin<NN>,
    min_max: MinMax<NN>,
    max_plus: MaxPlus<Tropical>,
}

impl SevenPairs {
    fn new() -> Self {
        SevenPairs {
            plus_times: PlusTimes::new(),
            max_times: MaxTimes::new(),
            min_times: MinTimes::new(),
            min_plus: MinPlus::new(),
            max_min: MaxMin::new(),
            min_max: MinMax::new(),
            max_plus: MaxPlus::new(),
        }
    }
}

/// Seven independent products, exactly as `run_seven_pairs` worked
/// before the plan layer existed.
fn sequential(
    e1: &AArray<NN>,
    e2: &AArray<NN>,
    e1t: &AArray<Tropical>,
    e2t: &AArray<Tropical>,
    p: &SevenPairs,
) -> (Vec<AArray<NN>>, AArray<Tropical>) {
    let nn = vec![
        adjacency_array_unchecked(e1, e2, &p.plus_times),
        adjacency_array_unchecked(e1, e2, &p.max_times),
        adjacency_array_unchecked(e1, e2, &p.min_times),
        adjacency_array_unchecked(e1, e2, &p.min_plus),
        adjacency_array_unchecked(e1, e2, &p.max_min),
        adjacency_array_unchecked(e1, e2, &p.min_max),
    ];
    let tropical = adjacency_array_unchecked(e1t, e2t, &p.max_plus);
    (nn, tropical)
}

/// One plan per carrier, six NN lanes in one fused traversal.
fn fused(
    e1: &AArray<NN>,
    e2: &AArray<NN>,
    e1t: &AArray<Tropical>,
    e2t: &AArray<Tropical>,
    p: &SevenPairs,
) -> (Vec<AArray<NN>>, AArray<Tropical>) {
    let pairs: [&dyn DynOpPair<NN>; 6] = [
        &p.plus_times,
        &p.max_times,
        &p.min_times,
        &p.min_plus,
        &p.max_min,
        &p.min_max,
    ];
    let nn = adjacency_plan(e1, e2).execute_all(&pairs);
    let tropical = adjacency_plan(e1t, e2t).execute(&p.max_plus);
    (nn, tropical)
}

fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn main() {
    let tracks = 20_000usize;
    let (e1, e2) = synthetic_e1_e2(tracks, 8, 100, 7);
    let p = SevenPairs::new();
    let e1t = e1.map_prune(&p.max_plus, |v| trop(v.get()));
    let e2t = e2.map_prune(&p.max_plus, |v| trop(v.get()));

    // Bit-identity sanity before timing anything.
    let (seq_nn, seq_trop) = sequential(&e1, &e2, &e1t, &e2t, &p);
    let (fus_nn, fus_trop) = fused(&e1, &e2, &e1t, &e2t, &p);
    assert_eq!(seq_nn, fus_nn, "fused NN lanes must be bit-identical");
    assert_eq!(seq_trop, fus_trop, "tropical lane must be bit-identical");

    let reps = std::env::var("FUSED_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10usize);
    // Warmup once each, then measure.
    let _ = sequential(&e1, &e2, &e1t, &e2t, &p);
    let _ = fused(&e1, &e2, &e1t, &e2t, &p);
    let sequential_ms = time_ms(reps, || sequential(&e1, &e2, &e1t, &e2t, &p));
    let fused_ms = time_ms(reps, || fused(&e1, &e2, &e1t, &e2t, &p));
    let speedup = sequential_ms / fused_ms;

    println!(
        "fused_vs_sequential: {} tracks, 7 pairs, {} reps\n  sequential: {:8.3} ms\n  fused:      {:8.3} ms\n  speedup:    {:.2}x",
        tracks, reps, sequential_ms, fused_ms, speedup
    );

    let json = format!(
        "{{\n  \"bench\": \"fused_vs_sequential\",\n  \"workload\": {{\"tracks\": {}, \"pairs\": 7, \"e1_nnz\": {}, \"e2_nnz\": {}}},\n  \"reps\": {},\n  \"sequential_ms\": {:.3},\n  \"fused_ms\": {:.3},\n  \"speedup\": {:.3}\n}}\n",
        tracks,
        e1.nnz(),
        e2.nnz(),
        reps,
        sequential_ms,
        fused_ms,
        speedup
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr1.json");
    std::fs::write(out, json).expect("write BENCH_pr1.json");
    println!("wrote {}", out);
}
