//! Ablation: SpGEMM accumulator strategy (SPA vs hash vs
//! expand-sort-compress) across output densities.
//!
//! Expectation (DESIGN.md): SPA wins when rows are dense-ish (its
//! scratch is O(ncols) but reset-free), hash wins on very sparse wide
//! outputs, ESC sits between with the best worst-case memory locality.

use aarray_algebra::pairs::PlusTimes;
use aarray_algebra::values::nat::Nat;
use aarray_core::adjacency_array_unchecked;
use aarray_graph::generators::erdos_renyi;
use aarray_sparse::Accumulator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_accumulators(c: &mut Criterion) {
    let pair = PlusTimes::<Nat>::new();
    let mut group = c.benchmark_group("ablate_accumulators");

    // (vertices, edges): sparse → dense products.
    for &(n, m) in &[(2_000usize, 4_000usize), (2_000, 20_000), (500, 20_000)] {
        let g = erdos_renyi(n, m, 99);
        let (eout, ein) = g.incidence_arrays(&pair);
        let eout_t = eout.transpose();
        for acc in [Accumulator::Spa, Accumulator::Hash, Accumulator::Esc] {
            group.bench_with_input(
                BenchmarkId::new(format!("{:?}", acc), format!("n{}_m{}", n, m)),
                &(&eout_t, &ein),
                |b, (eout_t, ein)| b.iter(|| eout_t.matmul_with(ein, &pair, Some(acc))),
            );
        }
    }
    group.finish();

    // Sanity cross-check outside timing: all strategies agree.
    let g = erdos_renyi(300, 2_000, 5);
    let (eout, ein) = g.incidence_arrays(&pair);
    let reference = adjacency_array_unchecked(&eout, &ein, &pair);
    for acc in [Accumulator::Spa, Accumulator::Hash, Accumulator::Esc] {
        let got = eout.transpose().matmul_with(&ein, &pair, Some(acc));
        assert_eq!(got, reference, "{:?} disagrees", acc);
    }
}

criterion_group!(benches, bench_accumulators);
criterion_main!(benches);
