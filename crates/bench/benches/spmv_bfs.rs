//! Downstream cost: semiring vector products and BFS on a constructed
//! adjacency array — the algorithms the paper's pipeline feeds.

use aarray_algebra::pairs::{OrAnd, PlusTimes};
use aarray_algebra::values::nat::Nat;
use aarray_core::adjacency_array;
use aarray_graph::algorithms::bfs_levels;
use aarray_graph::generators::rmat;
use aarray_sparse::spmv::{spmv, spmv_parallel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_spmv_bfs(c: &mut Criterion) {
    let pair = PlusTimes::<Nat>::new();
    let bpair = OrAnd::new();
    let mut group = c.benchmark_group("spmv_bfs");
    group.sample_size(20);

    for scale in [10u32, 12] {
        let m = 16 * (1usize << scale);
        let g = rmat(scale, m, (0.57, 0.19, 0.19, 0.05), 8);
        let (eout, ein) = g.incidence_arrays(&pair);
        let adj = adjacency_array(&eout, &ein, &pair);
        let adj_bool = adjacency_array(
            &eout.map_prune(&bpair, |v| v.0 > 0),
            &ein.map_prune(&bpair, |v| v.0 > 0),
            &bpair,
        );

        let n = adj.shape().1;
        let x: Vec<Option<Nat>> = (0..n).map(|i| (i % 3 == 0).then_some(Nat(1))).collect();
        group.bench_with_input(BenchmarkId::new("spmv_serial", scale), &adj, |b, adj| {
            b.iter(|| spmv(adj.csr(), &x, &pair))
        });
        group.bench_with_input(BenchmarkId::new("spmv_parallel", scale), &adj, |b, adj| {
            b.iter(|| spmv_parallel(adj.csr(), &x, &pair))
        });

        let src = adj_bool.row_keys().key(0).to_string();
        group.bench_with_input(BenchmarkId::new("bfs", scale), &adj_bool, |b, adj| {
            b.iter(|| bfs_levels(adj, &src))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmv_bfs);
criterion_main!(benches);
