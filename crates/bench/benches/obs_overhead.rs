//! Overhead bound for the always-on observability layers.
//!
//! The counter registry and the histogram registry instrument hot
//! paths (kernel entry, dispatch, plan caches, per-row shape metrics)
//! with relaxed-atomic updates that cannot be compiled out. This bench
//! bounds their combined cost on the seven-pair fused workload:
//!
//! 1. run the workload and time it;
//! 2. count the counter-registry updates it performed (one relaxed RMW
//!    each — `add` is one RMW regardless of the amount, so
//!    value-carrying counters like `flops.total` and `fused.lanes`
//!    count once per update, not per unit), the histogram records
//!    (a few RMWs each: bucket + sum + watermarks), and the
//!    flight-recorder journal records (one head claim, a timestamp
//!    read, and five relaxed slot stores under the seqlock), and the
//!    op-ledger completions (token begin + finish: id allocation,
//!    stage derivation over the op's journal window, one seqlocked
//!    16-word record, tail-histogram and label-count RMWs);
//! 3. microbenchmark one counter update, one histogram record, one
//!    journal record, and one ledger completion;
//! 4. bound total overhead as `(counter_updates × ns_per_update +
//!    hist_records × ns_per_record + journal_records ×
//!    ns_per_journal_record + ops × ns_per_op_record) / workload_ns`,
//!    with a 2× safety factor
//!    covering the non-registry instrumentation of the same order
//!    (per-plan stage cells, gauges, memory-accounting adds, the
//!    numeric-pass mutex push, the per-row flop sums computed only for
//!    histogram recording).
//!
//! Asserts the total bound stays ≤ 2% and writes `BENCH_pr2.json` at
//! the workspace root so CI can track it.
//!
//! A second phase repeats the measurement inside a forced 4-thread
//! pool with the flops gate dropped to zero, so every numeric pass
//! takes the row-parallel kernel and the registries are hammered from
//! several threads at once: the ≤ 2% budget must hold under real
//! contention too, and the journal's drop accounting (`recorded`,
//! `dropped`, claimed slots) must stay exact with concurrent writers.
//!
//! A third phase prices the live sampler (`obsctl watch`): one full
//! report capture + frame-ring push, converted to its steady-state
//! cost at the default `AARRAY_OBS_SAMPLE_MS` interval, asserted to
//! keep *total* obs overhead inside the same ≤ 2% budget — and the
//! frame ring's wraparound drop accounting must stay exact.

use aarray_algebra::pairs::{MaxMin, MaxPlus, MaxTimes, MinMax, MinPlus, MinTimes, PlusTimes};
use aarray_algebra::values::nn::NN;
use aarray_algebra::values::tropical::{trop, Tropical};
use aarray_algebra::DynOpPair;
use aarray_bench::synthetic_e1_e2;
use aarray_core::{adjacency_plan, parallel_flops_threshold, set_parallel_flops_threshold, AArray};
use aarray_obs::{
    counters, histograms, journal, oplog, snapshot, Counter, EventKind, Hist, Journal, OpKind,
    OpLog, OpToken, TimeSeriesRing,
};
use rayon::prelude::*;
use std::hint::black_box;
use std::time::Instant;

/// The seven-pair workload: one plan with six fused NN lanes plus the
/// tropical max.+ on its own plan — the Figure 3 shape at bench scale.
fn seven_pairs(e1: &AArray<NN>, e2: &AArray<NN>, e1t: &AArray<Tropical>, e2t: &AArray<Tropical>) {
    let plus_times = PlusTimes::<NN>::new();
    let max_times = MaxTimes::<NN>::new();
    let min_times = MinTimes::<NN>::new();
    let min_plus = MinPlus::<NN>::new();
    let max_min = MaxMin::<NN>::new();
    let min_max = MinMax::<NN>::new();
    let pairs: [&dyn DynOpPair<NN>; 6] = [
        &plus_times,
        &max_times,
        &min_times,
        &min_plus,
        &max_min,
        &min_max,
    ];
    black_box(adjacency_plan(e1, e2).execute_all(&pairs));
    black_box(adjacency_plan(e1t, e2t).execute(&MaxPlus::<Tropical>::new()));
}

fn main() {
    let tracks = 20_000usize;
    let (e1, e2) = synthetic_e1_e2(tracks, 8, 100, 7);
    let mp = MaxPlus::<Tropical>::new();
    let e1t = e1.map_prune(&mp, |v| trop(v.get()));
    let e2t = e2.map_prune(&mp, |v| trop(v.get()));

    let reps = std::env::var("OBS_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10usize);

    // Warmup, then time the workload while counting registry updates.
    seven_pairs(&e1, &e2, &e1t, &e2t);
    let before = snapshot();
    let hists_before = histograms().snapshot_all();
    let journal_cursor = journal().cursor();
    let ops_cursor = oplog().cursor();
    let start = Instant::now();
    for _ in 0..reps {
        seven_pairs(&e1, &e2, &e1t, &e2t);
    }
    let workload_ns = start.elapsed().as_nanos() as f64 / reps as f64;
    let delta = snapshot().since(&before);
    let hist_records: u64 = histograms()
        .snapshot_all()
        .iter()
        .zip(hists_before.iter())
        .map(|(a, b)| a.since(b).count())
        .sum();
    let journal_records = journal().cursor() - journal_cursor;
    let op_records = oplog().cursor() - ops_cursor;

    // Registry RMWs: every counter delta is one update per call except
    // the two value-carrying counters, updated once per traversal.
    let updates =
        delta.total_events() - delta.get(Counter::FlopsTotal) - delta.get(Counter::FusedLanes)
            + 2 * delta.get(Counter::FusedTraversals);
    let updates_per_rep = updates as f64 / reps as f64;
    let hist_records_per_rep = hist_records as f64 / reps as f64;
    let journal_records_per_rep = journal_records as f64 / reps as f64;
    let op_records_per_rep = op_records as f64 / reps as f64;

    // Cost of one relaxed-atomic registry update.
    let iters = 2_000_000u64;
    let t = Instant::now();
    for i in 0..iters {
        counters().add(Counter::FlopsTotal, black_box(i & 1));
    }
    let ns_per_update = t.elapsed().as_nanos() as f64 / iters as f64;

    // Cost of one histogram record (bucket RMW + sum add + watermark
    // CASes against the real registry; varied values so branch
    // prediction doesn't flatter the watermark path).
    let t = Instant::now();
    for i in 0..iters {
        histograms().record(Hist::DispatchFlops, black_box(i & 1023));
    }
    let ns_per_record = t.elapsed().as_nanos() as f64 / iters as f64;

    // Cost of one flight-recorder journal record (head claim +
    // monotonic timestamp + five relaxed stores), measured against a
    // private ring so the drained global journal keeps its workload
    // events; wraparound is the steady state being bounded.
    let ring = Journal::with_capacity(1 << 14);
    let t = Instant::now();
    for i in 0..iters {
        ring.record(EventKind::RowShape, black_box(i), black_box(i & 1023));
    }
    let ns_per_journal_record = t.elapsed().as_nanos() as f64 / iters as f64;

    // Cost of one full op-ledger completion: token begin (id claim,
    // op-scope install, clock read) through finish into a private ring
    // (stage derivation over the op's journal window, seqlocked
    // 16-word record, tail histogram + label count). Ops are ~100×
    // rarer than journal records, so fewer iterations suffice.
    let op_iters = iters / 10;
    let ring = OpLog::with_capacity(1 << 12);
    let t = Instant::now();
    for _ in 0..op_iters {
        black_box(OpToken::begin(OpKind::Matmul).finish_into(&ring));
    }
    let ns_per_op_record = t.elapsed().as_nanos() as f64 / op_iters as f64;

    // 2× safety factor: stage cells, gauges, memory-accounting adds,
    // and the per-execution mutex push are not counted above but cost
    // the same order.
    let overhead_ns = (updates_per_rep * ns_per_update
        + hist_records_per_rep * ns_per_record
        + journal_records_per_rep * ns_per_journal_record
        + op_records_per_rep * ns_per_op_record)
        * 2.0;
    let overhead_pct = overhead_ns / workload_ns * 100.0;

    println!(
        "obs_overhead: {} tracks, 7 pairs, {} reps\n  workload:        {:10.3} ms/rep\n  registry updates:{:10.1} /rep\n  ns/update:       {:10.3} ns\n  hist records:    {:10.1} /rep\n  ns/record:       {:10.3} ns\n  journal records: {:10.1} /rep\n  ns/journal rec:  {:10.3} ns\n  ledger ops:      {:10.1} /rep\n  ns/op record:    {:10.3} ns\n  overhead bound:  {:10.5} % (limit 2%)",
        tracks,
        reps,
        workload_ns / 1e6,
        updates_per_rep,
        ns_per_update,
        hist_records_per_rep,
        ns_per_record,
        journal_records_per_rep,
        ns_per_journal_record,
        op_records_per_rep,
        ns_per_op_record,
        overhead_pct
    );

    assert!(
        overhead_pct <= 2.0,
        "total observability overhead bound {overhead_pct:.5}% exceeds the 2% budget"
    );

    // ── Phase 2: the same bound under real multi-thread contention ──
    //
    // Force a 4-thread pool and drop the flops gate to zero so every
    // numeric pass runs row-parallel: counters, histograms, and the
    // journal now take concurrent relaxed RMWs from several workers.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("4-thread pool");
    let saved_threshold = parallel_flops_threshold();
    set_parallel_flops_threshold(Some(0));

    pool.install(|| seven_pairs(&e1, &e2, &e1t, &e2t)); // warmup
    let before = snapshot();
    let hists_before = histograms().snapshot_all();
    let journal_cursor = journal().cursor();
    let ops_cursor = oplog().cursor();
    let start = Instant::now();
    pool.install(|| {
        for _ in 0..reps {
            seven_pairs(&e1, &e2, &e1t, &e2t);
        }
    });
    let workload_mt_ns = start.elapsed().as_nanos() as f64 / reps as f64;
    let delta = snapshot().since(&before);
    let hist_records_mt: u64 = histograms()
        .snapshot_all()
        .iter()
        .zip(hists_before.iter())
        .map(|(a, b)| a.since(b).count())
        .sum();
    let journal_records_mt = journal().cursor() - journal_cursor;
    let op_records_mt = oplog().cursor() - ops_cursor;
    // Same RMW accounting as phase 1, plus two more value-carrying
    // counters: the pool task tallies are drained into the registry
    // once per plan execution (≤ 2 RMWs each), not once per task, so
    // subtract the task amounts; the handful of real drain RMWs is
    // covered by the 2× safety factor like the gauges.
    let updates_mt =
        delta.total_events() - delta.get(Counter::FlopsTotal) - delta.get(Counter::FusedLanes)
            + 2 * delta.get(Counter::FusedTraversals)
            - delta.get(Counter::PoolTasksLocal)
            - delta.get(Counter::PoolTasksStolen)
            - delta.get(Counter::PoolTasksInline);

    // Contended per-op costs: four workers hammering the same counter
    // cell / histogram / ring. Wall time over total ops is the
    // amortized cost a contended workload actually pays.
    let t = Instant::now();
    pool.install(|| {
        (0..4u64).collect::<Vec<_>>().into_par_iter().for_each(|w| {
            for i in 0..iters / 4 {
                counters().add(Counter::FlopsTotal, black_box((i ^ w) & 1));
            }
        })
    });
    let ns_per_update_mt = t.elapsed().as_nanos() as f64 / iters as f64;

    let t = Instant::now();
    pool.install(|| {
        (0..4u64).collect::<Vec<_>>().into_par_iter().for_each(|_| {
            for i in 0..iters / 4 {
                histograms().record(Hist::DispatchFlops, black_box(i & 1023));
            }
        })
    });
    let ns_per_record_mt = t.elapsed().as_nanos() as f64 / iters as f64;

    // Journal contention doubles as the drop-accounting check: a
    // private ring takes exactly `iters` records from four concurrent
    // writers, so every claim must be accounted as either a live slot
    // or a wraparound drop — nothing lost, nothing double-counted.
    let ring = Journal::with_capacity(1 << 10);
    let t = Instant::now();
    pool.install(|| {
        (0..4u64).collect::<Vec<_>>().into_par_iter().for_each(|w| {
            for i in 0..iters / 4 {
                ring.record(EventKind::RowShape, black_box(i), black_box(w));
            }
        })
    });
    let ns_per_journal_record_mt = t.elapsed().as_nanos() as f64 / iters as f64;
    let snap = ring.snapshot();
    assert_eq!(
        snap.recorded,
        (iters / 4) * 4,
        "journal lost or double-counted a concurrent claim"
    );
    assert_eq!(
        snap.dropped,
        snap.recorded.saturating_sub(snap.capacity),
        "journal drop accounting drifted under contention"
    );
    assert!(
        snap.events.len() as u64 + snap.torn <= snap.capacity,
        "journal surfaced more slots than the ring holds"
    );

    // Ledger contention: four workers completing ops into one private
    // ring. Each completion claims a global id, installs/clears the op
    // scope, and publishes a seqlocked record, so this is the full
    // contended per-op price.
    let ring = OpLog::with_capacity(1 << 10);
    let t = Instant::now();
    pool.install(|| {
        (0..4u64).collect::<Vec<_>>().into_par_iter().for_each(|_| {
            for _ in 0..op_iters / 4 {
                black_box(OpToken::begin(OpKind::Matmul).finish_into(&ring));
            }
        })
    });
    let ns_per_op_record_mt = t.elapsed().as_nanos() as f64 / op_iters as f64;
    let osnap = ring.snapshot();
    assert_eq!(
        osnap.recorded,
        (op_iters / 4) * 4,
        "op ledger lost or double-counted a concurrent completion"
    );
    assert_eq!(
        osnap.dropped,
        osnap.recorded.saturating_sub(osnap.capacity),
        "op ledger drop accounting drifted under contention"
    );

    set_parallel_flops_threshold(Some(saved_threshold));

    let overhead_mt_ns = ((updates_mt as f64 / reps as f64) * ns_per_update_mt
        + (hist_records_mt as f64 / reps as f64) * ns_per_record_mt
        + (journal_records_mt as f64 / reps as f64) * ns_per_journal_record_mt
        + (op_records_mt as f64 / reps as f64) * ns_per_op_record_mt)
        * 2.0;
    let overhead_mt_pct = overhead_mt_ns / workload_mt_ns * 100.0;

    println!(
        "obs_overhead (4-thread pool, flops gate 0):\n  workload:        {:10.3} ms/rep\n  registry updates:{:10.1} /rep\n  ns/update:       {:10.3} ns\n  hist records:    {:10.1} /rep\n  ns/record:       {:10.3} ns\n  journal records: {:10.1} /rep\n  ns/journal rec:  {:10.3} ns\n  ledger ops:      {:10.1} /rep\n  ns/op record:    {:10.3} ns\n  overhead bound:  {:10.5} % (limit 2%)",
        workload_mt_ns / 1e6,
        updates_mt as f64 / reps as f64,
        ns_per_update_mt,
        hist_records_mt as f64 / reps as f64,
        ns_per_record_mt,
        journal_records_mt as f64 / reps as f64,
        ns_per_journal_record_mt,
        op_records_mt as f64 / reps as f64,
        ns_per_op_record_mt,
        overhead_mt_pct
    );
    assert!(
        overhead_mt_pct <= 2.0,
        "contended observability overhead bound {overhead_mt_pct:.5}% exceeds the 2% budget"
    );

    // ── Phase 3: the live sampler stays inside the same budget ──
    //
    // `obsctl watch` runs a background collector that captures one
    // full ObsReport into a frame ring every AARRAY_OBS_SAMPLE_MS.
    // Price one frame (capture + ring push) against a private ring,
    // convert to a steady-state cost at the default interval, and
    // assert the *total* obs overhead — registries + sampler — still
    // fits the ≤ 2% budget. The deliberately tiny ring doubles as the
    // wraparound drop-accounting check.
    let frame_iters = 512u64;
    let ring = TimeSeriesRing::with_capacity(64);
    let t = Instant::now();
    for _ in 0..frame_iters {
        black_box(ring.push_report(aarray_obs::ObsReport::capture()));
    }
    let ns_per_frame = t.elapsed().as_nanos() as f64 / frame_iters as f64;
    // Exact accounting, like the journal: dropped = recorded − capacity.
    let fstats = ring.stats();
    assert_eq!(fstats.recorded, frame_iters, "sampler ring lost a push");
    assert_eq!(
        fstats.dropped,
        fstats.recorded.saturating_sub(fstats.capacity),
        "sampler ring drop accounting drifted under wraparound"
    );
    assert_eq!(
        ring.snapshot().frames.len() as u64,
        fstats.capacity,
        "sampler ring surfaced more frames than its capacity"
    );

    // At the default interval the sampler costs a fixed ns/second no
    // matter what the workload does; express that against one rep's
    // wall time (concurrent with the workload, so this is the upper
    // bound where the sampler steals the workload's only core).
    let samples_per_sec = 1_000.0 / aarray_obs::DEFAULT_SAMPLE_MS as f64;
    let sampler_pct = ns_per_frame * samples_per_sec / 1e9 * 100.0;
    let total_with_sampler_pct = overhead_pct + sampler_pct;
    println!(
        "obs_overhead (sampler at {} ms default interval):\n  ns/frame:        {:10.3} ns\n  sampler cost:    {:10.5} %\n  total w/ sampler:{:10.5} % (limit 2%)",
        aarray_obs::DEFAULT_SAMPLE_MS,
        ns_per_frame,
        sampler_pct,
        total_with_sampler_pct
    );
    assert!(
        total_with_sampler_pct <= 2.0,
        "registries + live sampler bound {total_with_sampler_pct:.5}% exceeds the 2% budget"
    );

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"workload\": {{\"tracks\": {}, \"pairs\": 7, \"e1_nnz\": {}, \"e2_nnz\": {}}},\n  \"reps\": {},\n  \"workload_ms\": {:.3},\n  \"registry_updates_per_rep\": {:.1},\n  \"ns_per_update\": {:.3},\n  \"hist_records_per_rep\": {:.1},\n  \"ns_per_hist_record\": {:.3},\n  \"journal_records_per_rep\": {:.1},\n  \"ns_per_journal_record\": {:.3},\n  \"op_records_per_rep\": {:.1},\n  \"ns_per_op_record\": {:.3},\n  \"overhead_pct\": {:.5},\n  \"overhead_limit_pct\": 2.0,\n  \"contended\": {{\"pool_threads\": 4, \"workload_ms\": {:.3}, \"ns_per_update\": {:.3}, \"ns_per_hist_record\": {:.3}, \"ns_per_journal_record\": {:.3}, \"ns_per_op_record\": {:.3}, \"overhead_pct\": {:.5}}},\n  \"sampler\": {{\"interval_ms\": {}, \"ns_per_frame\": {:.3}, \"sampler_pct\": {:.5}, \"total_with_sampler_pct\": {:.5}}}\n}}\n",
        tracks,
        e1.nnz(),
        e2.nnz(),
        reps,
        workload_ns / 1e6,
        updates_per_rep,
        ns_per_update,
        hist_records_per_rep,
        ns_per_record,
        journal_records_per_rep,
        ns_per_journal_record,
        op_records_per_rep,
        ns_per_op_record,
        overhead_pct,
        workload_mt_ns / 1e6,
        ns_per_update_mt,
        ns_per_record_mt,
        ns_per_journal_record_mt,
        ns_per_op_record_mt,
        overhead_mt_pct,
        aarray_obs::DEFAULT_SAMPLE_MS,
        ns_per_frame,
        sampler_pct,
        total_with_sampler_pct
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr2.json");
    std::fs::write(out, json).expect("write BENCH_pr2.json");
    println!("wrote {}", out);
}
