//! Scaling extension: incidence→adjacency on R-MAT graphs across
//! scales, `+.×` vs `max.min` — does the algebra choice affect
//! construction throughput on power-law inputs?

use aarray_algebra::pairs::{MaxMin, PlusTimes};
use aarray_algebra::values::nat::Nat;
use aarray_core::adjacency_array;
use aarray_graph::generators::rmat;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_scale(c: &mut Criterion) {
    let pt = PlusTimes::<Nat>::new();
    let mm = MaxMin::<Nat>::new();
    let mut group = c.benchmark_group("scale_rmat");
    group.sample_size(15);

    for scale in [8u32, 10, 12, 14] {
        let m = 8 * (1usize << scale);
        let g = rmat(scale, m, (0.57, 0.19, 0.19, 0.05), 42);
        let (eout, ein) = g.incidence_arrays(&pt);
        group.throughput(Throughput::Elements(m as u64));

        group.bench_with_input(
            BenchmarkId::new("plus_times", scale),
            &(&eout, &ein),
            |b, (eout, ein)| b.iter(|| adjacency_array(eout, ein, &pt)),
        );
        group.bench_with_input(
            BenchmarkId::new("max_min", scale),
            &(&eout, &ein),
            |b, (eout, ein)| b.iter(|| adjacency_array(eout, ein, &mm)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
