//! Baseline comparison: adjacency construction via array
//! multiplication (`EᵀoutEin`) vs direct hash-aggregation over the edge
//! list. Both produce identical arrays; the question is who wins and
//! where the crossover falls as graphs grow.

use aarray_algebra::pairs::{MaxMin, PlusTimes};
use aarray_algebra::values::nat::Nat;
use aarray_core::adjacency_array;
use aarray_graph::direct_adjacency;
use aarray_graph::generators::{erdos_renyi, rmat};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_baseline(c: &mut Criterion) {
    let pair = PlusTimes::<Nat>::new();
    let mut group = c.benchmark_group("baseline_direct");
    group.sample_size(20);

    for &(n, m) in &[(1_000usize, 8_000usize), (10_000, 80_000)] {
        let g = erdos_renyi(n, m, 13);
        let (eout, ein) = g.incidence_arrays(&pair);

        group.bench_with_input(
            BenchmarkId::new("spgemm_construction", format!("er_n{}_m{}", n, m)),
            &(&eout, &ein),
            |b, (eout, ein)| b.iter(|| adjacency_array(eout, ein, &pair)),
        );
        group.bench_with_input(
            BenchmarkId::new("spgemm_with_incidence_build", format!("er_n{}_m{}", n, m)),
            &g,
            |b, g| {
                b.iter(|| {
                    let (eout, ein) = g.incidence_arrays(&pair);
                    adjacency_array(&eout, &ein, &pair)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("direct_aggregation", format!("er_n{}_m{}", n, m)),
            &g,
            |b, g| b.iter(|| direct_adjacency(g, &pair)),
        );
    }

    // Skewed-degree graph under a lattice pair.
    let mm = MaxMin::<Nat>::new();
    let g = rmat(12, 65_536, (0.57, 0.19, 0.19, 0.05), 17);
    let (eout, ein) = g.incidence_arrays(&mm);
    group.bench_function("spgemm_rmat12_max_min", |b| {
        b.iter(|| adjacency_array(&eout, &ein, &mm))
    });
    group.bench_function("direct_rmat12_max_min", |b| {
        b.iter(|| direct_adjacency(&g, &mm))
    });

    group.finish();

    // Equality cross-check outside timing.
    let g = erdos_renyi(500, 4_000, 23);
    let (eout, ein) = g.incidence_arrays(&pair);
    assert_eq!(
        adjacency_array(&eout, &ein, &pair),
        direct_adjacency(&g, &pair)
    );
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
