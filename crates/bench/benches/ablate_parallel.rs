//! Ablation: serial vs rayon row-parallel SpGEMM across sizes — where
//! does parallelism start paying? (This calibrates the
//! `PARALLEL_NNZ_THRESHOLD` in `aarray-core::matmul`.)

use aarray_algebra::pairs::PlusTimes;
use aarray_algebra::values::nat::Nat;
use aarray_graph::generators::erdos_renyi;
use aarray_sparse::{spgemm_parallel, spgemm_with, Accumulator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_parallel(c: &mut Criterion) {
    let pair = PlusTimes::<Nat>::new();
    let mut group = c.benchmark_group("ablate_parallel");
    group.sample_size(20);

    for &(n, m) in &[
        (1_000usize, 8_000usize),
        (10_000, 80_000),
        (50_000, 400_000),
    ] {
        let g = erdos_renyi(n, m, 21);
        let (eout, ein) = g.incidence_arrays(&pair);
        let a = eout.csr().transpose();
        let b = ein.csr().clone();

        group.bench_with_input(
            BenchmarkId::new("serial_spa", format!("n{}_m{}", n, m)),
            &(&a, &b),
            |bch, (a, b)| bch.iter(|| spgemm_with(a, b, &pair, Accumulator::Spa)),
        );
        group.bench_with_input(
            BenchmarkId::new("parallel_spa", format!("n{}_m{}", n, m)),
            &(&a, &b),
            |bch, (a, b)| bch.iter(|| spgemm_parallel(a, b, &pair, Accumulator::Spa)),
        );
    }
    group.finish();

    // Determinism cross-check outside timing.
    let g = erdos_renyi(2_000, 16_000, 3);
    let (eout, ein) = g.incidence_arrays(&pair);
    let a = eout.csr().transpose();
    let serial = spgemm_with(&a, ein.csr(), &pair, Accumulator::Spa);
    let parallel = spgemm_parallel(&a, ein.csr(), &pair, Accumulator::Spa);
    assert_eq!(serial, parallel, "parallel kernel must be bit-identical");
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
