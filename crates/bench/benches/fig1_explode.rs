//! Figure 1 regeneration cost: exploding a dense table into the sparse
//! incidence view, at the paper's size and scaled up.

use aarray_d4m::music::music_table;
use aarray_d4m::Table;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A synthetic table with the music table's shape, `n` rows.
fn synthetic_table(n: usize) -> Table {
    let mut t = Table::new([
        "Artist", "Date", "Genre", "Label", "Release", "Type", "Writer",
    ]);
    for i in 0..n {
        t.push_row(
            format!("track{:07}", i),
            vec![
                vec![format!("Artist{}", i % 50)],
                vec![format!("2020-{:02}-{:02}", i % 12 + 1, i % 28 + 1)],
                vec![format!("Genre{}", i % 8), format!("Genre{}", (i + 3) % 8)],
                vec![format!("Label{}", i % 20)],
                vec![format!("Release{}", i % 200)],
                vec!["Single".to_string()],
                vec![
                    format!("Writer{}", i % 100),
                    format!("Writer{}", (i + 7) % 100),
                ],
            ],
        );
    }
    t
}

fn bench_explode(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_explode");

    let music = music_table();
    group.bench_function("music_table_22rows", |b| {
        b.iter(|| {
            let e = music.explode();
            assert_eq!(e.nnz(), 185);
            e
        })
    });

    for n in [100usize, 1_000, 10_000] {
        let t = synthetic_table(n);
        group.bench_with_input(BenchmarkId::new("synthetic", n), &t, |b, t| {
            b.iter(|| t.explode())
        });
    }

    group.finish();
}

criterion_group!(benches, bench_explode);
criterion_main!(benches);
