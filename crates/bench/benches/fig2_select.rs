//! Figure 2 regeneration cost: D4M range selection `E(:, 'a : b')` at
//! the paper's size and on larger exploded arrays.

use aarray_bench::synthetic_music_table;
use aarray_d4m::music::music_incidence;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_select");

    let e = music_incidence();
    group.bench_function("music_genre_range", |b| {
        b.iter(|| {
            let e1 = e.select_cols_str("Genre|A : Genre|Z");
            assert_eq!(e1.shape().1, 3);
            e1
        })
    });
    group.bench_function("music_writer_range", |b| {
        b.iter(|| e.select_cols_str("Writer|A : Writer|Z"))
    });

    // Larger exploded incidence arrays, Figure 1's shape at scale.
    for tracks in [1_000usize, 10_000] {
        let e = synthetic_music_table(tracks, 8, 100, 42).explode();
        group.bench_with_input(
            BenchmarkId::new("synthetic_genre_range", tracks),
            &e,
            |b, e| b.iter(|| e.select_cols_str("Genre|A : Genre|Z")),
        );
        group.bench_with_input(BenchmarkId::new("synthetic_prefix", tracks), &e, |b, e| {
            b.iter(|| e.select_cols_str("Writer|*"))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_select);
criterion_main!(benches);
