//! Sparse array × vector products — the workhorse of the semiring
//! graph algorithms layered on constructed adjacency arrays (BFS,
//! min-plus SSSP).

use crate::csr::Csr;
use aarray_algebra::{BinaryOp, OpPair, Value};
use rayon::prelude::*;

/// A sparse vector: sorted unique indices with parallel values.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseVec<V: Value> {
    len: usize,
    entries: Vec<(u32, V)>,
}

impl<V: Value> SparseVec<V> {
    /// Build from entries (sorted + deduplicated by the constructor,
    /// duplicates combined with `⊕` in insertion order, zeros pruned).
    pub fn new<A, M>(len: usize, mut entries: Vec<(u32, V)>, pair: &OpPair<V, A, M>) -> Self
    where
        A: BinaryOp<V>,
        M: BinaryOp<V>,
    {
        entries.sort_by_key(|&(i, _)| i);
        let mut merged: Vec<(u32, V)> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            assert!((i as usize) < len, "index {} out of bounds ({})", i, len);
            match merged.last_mut() {
                Some((j, prev)) if *j == i => *prev = pair.plus(prev, &v),
                _ => merged.push((i, v)),
            }
        }
        merged.retain(|(_, v)| !pair.is_zero(v));
        SparseVec {
            len,
            entries: merged,
        }
    }

    /// Dimension of the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has no stored entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The stored entries.
    pub fn entries(&self) -> &[(u32, V)] {
        &self.entries
    }

    /// Stored value at `i`.
    pub fn get(&self, i: usize) -> Option<&V> {
        self.entries
            .binary_search_by_key(&(i as u32), |&(j, _)| j)
            .ok()
            .map(|k| &self.entries[k].1)
    }
}

/// `y = A ⊕.⊗ x` where `x` is dense (`Option<V>` cells, `None` = zero).
/// Folds each row in ascending column order, left-associated.
pub fn spmv<V, A, M>(a: &Csr<V>, x: &[Option<V>], pair: &OpPair<V, A, M>) -> Vec<Option<V>>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    assert_eq!(a.ncols(), x.len(), "vector length must equal ncols");
    (0..a.nrows())
        .map(|r| {
            let (cols, vals) = a.row(r);
            let mut acc: Option<V> = None;
            for (&c, v) in cols.iter().zip(vals.iter()) {
                if let Some(xv) = &x[c as usize] {
                    let term = pair.times(v, xv);
                    acc = Some(match acc {
                        None => term,
                        Some(prev) => pair.plus(&prev, &term),
                    });
                }
            }
            acc.filter(|v| !pair.is_zero(v))
        })
        .collect()
}

/// Row-parallel [`spmv`] — bit-identical output (per-row folds are
/// unchanged).
pub fn spmv_parallel<V, A, M>(a: &Csr<V>, x: &[Option<V>], pair: &OpPair<V, A, M>) -> Vec<Option<V>>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    assert_eq!(a.ncols(), x.len(), "vector length must equal ncols");
    (0..a.nrows())
        .into_par_iter()
        .map(|r| {
            let (cols, vals) = a.row(r);
            let mut acc: Option<V> = None;
            for (&c, v) in cols.iter().zip(vals.iter()) {
                if let Some(xv) = &x[c as usize] {
                    let term = pair.times(v, xv);
                    acc = Some(match acc {
                        None => term,
                        Some(prev) => pair.plus(&prev, &term),
                    });
                }
            }
            acc.filter(|v| !pair.is_zero(v))
        })
        .collect()
}

/// `y = Aᵀ ⊕.⊗ x` with sparse `x` (push-style SpMSpV): iterates the
/// stored entries of `x`, scattering through the rows of `A`.
///
/// Note the fold order here is ascending **x-index** (i.e. ascending
/// inner key), matching the canonical order.
pub fn spmspv_transpose<V, A, M>(
    a: &Csr<V>,
    x: &SparseVec<V>,
    pair: &OpPair<V, A, M>,
) -> SparseVec<V>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    assert_eq!(a.nrows(), x.len(), "x length must equal nrows for Aᵀx");
    let mut acc: Vec<Option<V>> = vec![None; a.ncols()];
    for (i, xv) in x.entries() {
        let (cols, vals) = a.row(*i as usize);
        for (&c, av) in cols.iter().zip(vals.iter()) {
            let term = pair.times(av, xv);
            let slot = &mut acc[c as usize];
            *slot = Some(match slot.take() {
                None => term,
                Some(prev) => pair.plus(&prev, &term),
            });
        }
    }
    let entries: Vec<(u32, V)> = acc
        .into_iter()
        .enumerate()
        .filter_map(|(i, v)| v.map(|v| (i as u32, v)))
        .collect();
    SparseVec::new(a.ncols(), entries, pair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use aarray_algebra::ops::{Min, Plus, Times};
    use aarray_algebra::values::nat::Nat;
    use aarray_algebra::values::nn::{nn, NN};

    fn pt() -> OpPair<Nat, Plus, Times> {
        OpPair::new()
    }

    fn matrix() -> Csr<Nat> {
        // [1 2 0]
        // [0 0 3]
        let mut coo = Coo::new(2, 3);
        coo.push(0, 0, Nat(1));
        coo.push(0, 1, Nat(2));
        coo.push(1, 2, Nat(3));
        coo.into_csr(&pt())
    }

    #[test]
    fn dense_spmv() {
        let a = matrix();
        let x = vec![Some(Nat(10)), Some(Nat(20)), None];
        let y = spmv(&a, &x, &pt());
        assert_eq!(y, vec![Some(Nat(50)), None]);
        assert_eq!(spmv_parallel(&a, &x, &pt()), y);
    }

    #[test]
    fn sparse_vec_construction_combines_and_prunes() {
        let x = SparseVec::new(5, vec![(3, Nat(2)), (1, Nat(0)), (3, Nat(4))], &pt());
        assert_eq!(x.nnz(), 1);
        assert_eq!(x.get(3), Some(&Nat(6)));
        assert_eq!(x.get(1), None);
        assert!(!x.is_empty());
    }

    #[test]
    fn transpose_spmspv_matches_transpose_then_spmv() {
        let a = matrix();
        let pair = pt();
        let x = SparseVec::new(2, vec![(0, Nat(5)), (1, Nat(7))], &pair);
        let y = spmspv_transpose(&a, &x, &pair);
        // Aᵀx = [1·5, 2·5, 3·7] = [5, 10, 21]
        assert_eq!(y.get(0), Some(&Nat(5)));
        assert_eq!(y.get(1), Some(&Nat(10)));
        assert_eq!(y.get(2), Some(&Nat(21)));

        let t = a.transpose();
        let xd = vec![Some(Nat(5)), Some(Nat(7))];
        let yd = spmv(&t, &xd, &pair);
        for (i, yv) in yd.iter().enumerate() {
            assert_eq!(yv.as_ref(), y.get(i));
        }
    }

    #[test]
    fn min_plus_relaxation_step() {
        // One SSSP relaxation: dist' = Aᵀ min.+ dist.
        let pair: OpPair<NN, Min, Plus> = OpPair::new();
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, nn(4.0)); // edge 0→1 weight 4
        coo.push(1, 0, nn(1.0)); // edge 1→0 weight 1
        let a = coo.into_csr(&pair);
        let dist = vec![Some(nn(0.0)), None];
        let next = spmv(&a.transpose(), &dist, &pair);
        assert_eq!(next, vec![None, Some(nn(4.0))]);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn spmv_length_mismatch() {
        let a = matrix();
        let _ = spmv(&a, &[None], &pt());
    }
}
