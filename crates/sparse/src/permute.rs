//! Row/column permutations — reordering for locality experiments and
//! for aligning arrays to external orderings.

use crate::csr::Csr;
use aarray_algebra::Value;

/// Validate that `perm` is a permutation of `0..n`.
fn check_permutation(perm: &[usize], n: usize) {
    assert_eq!(perm.len(), n, "permutation length must equal dimension");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(p < n, "permutation entry {} out of range", p);
        assert!(!seen[p], "permutation repeats entry {}", p);
        seen[p] = true;
    }
}

/// Reorder rows: output row `i` is input row `perm[i]`.
pub fn permute_rows<V: Value>(a: &Csr<V>, perm: &[usize]) -> Csr<V> {
    check_permutation(perm, a.nrows());
    let mut indptr = vec![0usize; a.nrows() + 1];
    let mut indices = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    for (new_r, &old_r) in perm.iter().enumerate() {
        let (cols, vals) = a.row(old_r);
        indices.extend_from_slice(cols);
        values.extend(vals.iter().cloned());
        indptr[new_r + 1] = indices.len();
    }
    Csr::from_parts(a.nrows(), a.ncols(), indptr, indices, values)
}

/// Reorder columns: output column `j` holds input column `perm[j]`.
pub fn permute_cols<V: Value>(a: &Csr<V>, perm: &[usize]) -> Csr<V> {
    check_permutation(perm, a.ncols());
    // inverse[old] = new.
    let mut inverse = vec![0u32; a.ncols()];
    for (new_c, &old_c) in perm.iter().enumerate() {
        inverse[old_c] = new_c as u32;
    }
    let mut indptr = vec![0usize; a.nrows() + 1];
    let mut indices = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        let mut entries: Vec<(u32, V)> = cols
            .iter()
            .zip(vals.iter())
            .map(|(&c, v)| (inverse[c as usize], v.clone()))
            .collect();
        entries.sort_unstable_by_key(|&(c, _)| c);
        for (c, v) in entries {
            indices.push(c);
            values.push(v);
        }
        indptr[r + 1] = indices.len();
    }
    Csr::from_parts(a.nrows(), a.ncols(), indptr, indices, values)
}

/// Symmetric permutation `P A Pᵀ` (same ordering on rows and columns) —
/// the reordering used for adjacency arrays, preserving the graph up to
/// relabelling.
pub fn permute_symmetric<V: Value>(a: &Csr<V>, perm: &[usize]) -> Csr<V> {
    assert_eq!(
        a.nrows(),
        a.ncols(),
        "symmetric permutation needs a square array"
    );
    permute_cols(&permute_rows(a, perm), perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use aarray_algebra::ops::{Plus, Times};
    use aarray_algebra::values::nat::Nat;
    use aarray_algebra::OpPair;

    fn pt() -> OpPair<Nat, Plus, Times> {
        OpPair::new()
    }

    fn sample() -> Csr<Nat> {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, Nat(1));
        coo.push(1, 2, Nat(2));
        coo.push(2, 0, Nat(3));
        coo.into_csr(&pt())
    }

    #[test]
    fn row_permutation() {
        let a = sample();
        let p = permute_rows(&a, &[2, 0, 1]);
        assert_eq!(p.get(0, 0), Some(&Nat(3))); // was row 2
        assert_eq!(p.get(1, 1), Some(&Nat(1))); // was row 0
    }

    #[test]
    fn col_permutation() {
        let a = sample();
        let p = permute_cols(&a, &[1, 2, 0]);
        // output col 0 = input col 1: entry (0,1,1) moves to (0,0).
        assert_eq!(p.get(0, 0), Some(&Nat(1)));
        assert_eq!(p.get(1, 1), Some(&Nat(2)));
        assert_eq!(p.get(2, 2), Some(&Nat(3)));
    }

    #[test]
    fn identity_permutation_is_noop() {
        let a = sample();
        assert_eq!(permute_rows(&a, &[0, 1, 2]), a);
        assert_eq!(permute_cols(&a, &[0, 1, 2]), a);
        assert_eq!(permute_symmetric(&a, &[0, 1, 2]), a);
    }

    #[test]
    fn symmetric_permutation_preserves_cycle_structure() {
        // The 3-cycle relabelled is still a 3-cycle: each row has
        // exactly one entry, no self-loops.
        let a = sample();
        let p = permute_symmetric(&a, &[1, 2, 0]);
        assert_eq!(p.nnz(), 3);
        for r in 0..3 {
            assert_eq!(p.row_nnz(r), 1);
            assert_eq!(p.get(r, r), None);
        }
    }

    #[test]
    fn permutation_roundtrip() {
        let a = sample();
        let perm = [2usize, 0, 1];
        // Inverse of [2,0,1] is [1,2,0].
        let inv = [1usize, 2, 0];
        assert_eq!(permute_rows(&permute_rows(&a, &perm), &inv), a);
        assert_eq!(permute_cols(&permute_cols(&a, &perm), &inv), a);
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn invalid_permutation_rejected() {
        let _ = permute_rows(&sample(), &[0, 0, 1]);
    }
}
