//! Dense reference evaluation — the paper's literal semantics.
//!
//! The theorem statements quantify over *all* entries, including stored
//! zeros: `(EᵀoutEin)(a,b) = ⊕ₖ Eᵀout(a,k) ⊗ Ein(k,b)` folds over every
//! `k`, not just those where both factors are stored. The sparse
//! kernels shortcut that fold (see the crate docs); this module keeps
//! the unabridged semantics for cross-checking — in particular the
//! necessity-direction theorem tests, where non-compliant pairs make
//! the two semantics diverge.

use crate::csr::Csr;
use aarray_algebra::{BinaryOp, OpPair, Value};

/// A dense row-major array with an explicit value in every cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Dense<V: Value> {
    nrows: usize,
    ncols: usize,
    data: Vec<V>,
}

impl<V: Value> Dense<V> {
    /// A dense array filled with `fill`.
    pub fn filled(nrows: usize, ncols: usize, fill: V) -> Self {
        Dense {
            nrows,
            ncols,
            data: vec![fill; nrows * ncols],
        }
    }

    /// Materialize a sparse array densely, writing `zero` in unstored
    /// cells.
    pub fn from_csr(csr: &Csr<V>, zero: V) -> Self {
        let mut d = Dense::filled(csr.nrows(), csr.ncols(), zero);
        for (r, c, v) in csr.iter() {
            d.data[r * csr.ncols() + c] = v.clone();
        }
        d
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Cell accessor.
    pub fn get(&self, r: usize, c: usize) -> &V {
        &self.data[r * self.ncols + c]
    }

    /// Mutable cell accessor.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut V {
        &mut self.data[r * self.ncols + c]
    }

    /// Dense transpose.
    pub fn transpose(&self) -> Dense<V> {
        let mut out = Dense::filled(self.ncols, self.nrows, self.data[0].clone());
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                *out.get_mut(c, r) = self.get(r, c).clone();
            }
        }
        out
    }

    /// Dense `⊕.⊗` multiplication with the paper's full fold: every
    /// inner index `k` contributes, in ascending order, left-associated.
    ///
    /// An output cell with an empty fold (inner dimension 0) is the
    /// pair's zero.
    pub fn matmul<A, M>(&self, other: &Dense<V>, pair: &OpPair<V, A, M>) -> Dense<V>
    where
        A: BinaryOp<V>,
        M: BinaryOp<V>,
    {
        assert_eq!(self.ncols, other.nrows, "inner dimensions must agree");
        let mut out = Dense::filled(self.nrows, other.ncols, pair.zero());
        for i in 0..self.nrows {
            for j in 0..other.ncols {
                let mut acc: Option<V> = None;
                for k in 0..self.ncols {
                    let term = pair.times(self.get(i, k), other.get(k, j));
                    acc = Some(match acc {
                        None => term,
                        Some(prev) => pair.plus(&prev, &term),
                    });
                }
                if let Some(v) = acc {
                    *out.get_mut(i, j) = v;
                }
            }
        }
        out
    }

    /// Convert to CSR, dropping cells equal to the pair's zero.
    pub fn to_csr<A, M>(&self, pair: &OpPair<V, A, M>) -> Csr<V>
    where
        A: BinaryOp<V>,
        M: BinaryOp<V>,
    {
        let mut indptr = vec![0usize; self.nrows + 1];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                let v = self.get(r, c);
                if !pair.is_zero(v) {
                    indices.push(c as u32);
                    values.push(v.clone());
                }
            }
            indptr[r + 1] = indices.len();
        }
        Csr::from_parts(self.nrows, self.ncols, indptr, indices, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::spgemm::spgemm;
    use aarray_algebra::ops::{Plus, Times};
    use aarray_algebra::values::nat::Nat;
    use aarray_algebra::values::zn::Zn;

    #[test]
    fn dense_and_sparse_agree_for_compliant_pairs() {
        let pair: OpPair<Nat, Plus, Times> = OpPair::new();
        let mut ca = Coo::new(3, 4);
        let mut cb = Coo::new(4, 2);
        for (r, c, v) in [(0, 0, 2), (0, 3, 1), (1, 2, 4), (2, 1, 3)] {
            ca.push(r, c, Nat(v));
        }
        for (r, c, v) in [(0, 0, 1), (1, 1, 2), (2, 0, 5), (3, 1, 7)] {
            cb.push(r, c, Nat(v));
        }
        let a = ca.into_csr(&pair);
        let b = cb.into_csr(&pair);
        let sparse = spgemm(&a, &b, &pair);
        let dense = Dense::from_csr(&a, pair.zero())
            .matmul(&Dense::from_csr(&b, pair.zero()), &pair)
            .to_csr(&pair);
        assert_eq!(sparse, dense);
    }

    #[test]
    fn dense_and_sparse_diverge_without_annihilation() {
        // Artificial pair on Zn<6>: ⊕ = plus, ⊗ = "max by residue"
        // cannot be expressed as an OpPair (no such op is defined), so
        // probe divergence where it IS expressible: a pair whose ⊗ has
        // a non-annihilating zero does not exist among our ops — all
        // concrete ⊗ ops annihilate. Instead show the *stored-zero*
        // case: Zn<6> triplets that combine to 0 stay zero in sparse
        // (pruned) but dense still folds the remaining path terms the
        // same way, so the two agree here; the genuine divergence cases
        // are exercised via eval_gadget in aarray-algebra and the
        // theorem tests in aarray-core.
        let pair: OpPair<Zn<6>, Plus, Times> = OpPair::new();
        let mut ca = Coo::new(1, 2);
        ca.push(0, 0, Zn::<6>::new(2));
        ca.push(0, 1, Zn::<6>::new(4));
        let a = ca.into_csr(&pair);
        let mut cb = Coo::new(2, 1);
        cb.push(0, 0, Zn::<6>::new(1));
        cb.push(1, 0, Zn::<6>::new(1));
        let b = cb.into_csr(&pair);
        // 2·1 + 4·1 = 6 ≡ 0: both semantics prune the result.
        let sparse = spgemm(&a, &b, &pair);
        assert_eq!(sparse.nnz(), 0);
        let dense =
            Dense::from_csr(&a, pair.zero()).matmul(&Dense::from_csr(&b, pair.zero()), &pair);
        assert_eq!(*dense.get(0, 0), Zn::<6>::new(0));
    }

    #[test]
    fn transpose_dense() {
        let pair: OpPair<Nat, Plus, Times> = OpPair::new();
        let mut c = Coo::new(2, 3);
        c.push(0, 2, Nat(9));
        let d = Dense::from_csr(&c.into_csr(&pair), pair.zero());
        let t = d.transpose();
        assert_eq!(*t.get(2, 0), Nat(9));
        assert_eq!((t.nrows(), t.ncols()), (3, 2));
    }
}
