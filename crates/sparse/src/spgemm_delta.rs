//! Delta SpGEMM: the batch product `ΔA = ΔEoutᵀ ⊕.⊗ ΔEin` of the
//! incremental adjacency layer, for all `K` lanes in one traversal.
//!
//! For an append-only edge batch `ΔE` whose edge keys are **fresh**
//! (disjoint from every existing edge key), the full update formula
//! `A' = A ⊕ (ΔEᵀ·E ⊕ Eᵀ·ΔE ⊕ ΔEᵀ·ΔE)` collapses: the cross terms
//! `ΔEᵀ·E` and `Eᵀ·ΔE` contract over the *edge-key* dimension, and a
//! fresh batch shares no edge key with the prior incidence, so both
//! cross products are structurally empty. What remains is the
//! batch-local product this kernel computes — the caller then folds it
//! into the cached adjacency with one union `⊕`-merge per lane
//! ([`crate::elementwise::ewise_add_dyn`]).
//!
//! The kernel is a thin orchestration over the fused machinery —
//! [`crate::symbolic::spgemm_symbolic`] once, then
//! [`crate::spgemm_multi::spgemm_multi_numeric`] feeding every lane —
//! so each lane's `ΔA` is bit-identical to a standalone
//! `spgemm(ΔEoutᵀ, ΔEin, pair)`. Whether folding those deltas into a
//! *cumulative* adjacency is exact is the caller's obligation: it
//! re-associates the `⊕` reduction relative to a from-scratch rebuild
//! and therefore requires `⊕` associative
//! ([`aarray_algebra::AssociativePlus`] /
//! [`aarray_algebra::dynpair::DynOpPair::plus_associative`]).
//!
//! Scratch specific to the delta path — the materialized `ΔEoutᵀ` and
//! the batch symbolic pattern — is reported to
//! [`MemRegion::DeltaScratch`]; the fused traversal's own accumulator
//! block still lands in `MemRegion::FusedAccumulator` as usual.

use crate::csr::Csr;
use crate::spgemm_multi::{spgemm_multi_numeric, spgemm_multi_numeric_parallel, MultiAccumulator};
use crate::symbolic::spgemm_symbolic;
use aarray_algebra::dynpair::DynOpPair;
use aarray_algebra::Value;
use aarray_obs::{counters, journal, memstats, trace_span, Counter, MemRegion, Stage};

/// All-lanes batch product `[ΔEoutᵀ ⊕_p.⊗_p ΔEin for p in pairs]`.
///
/// `delta_eout` and `delta_ein` are the batch's incidence blocks, both
/// `Δedges × vertices` (the paper's orientation); the transpose of the
/// out-block is materialized internally and accounted as delta scratch.
/// Panics if the two blocks disagree on the edge-row count.
///
/// Returns one `Csr` per pair (vertices × vertices), in order, each
/// bit-identical to the corresponding standalone sequential product of
/// the same operands.
pub fn spgemm_delta<V: Value>(
    delta_eout: &Csr<V>,
    delta_ein: &Csr<V>,
    pairs: &[&dyn DynOpPair<V>],
    acc: MultiAccumulator,
) -> Vec<Csr<V>> {
    assert_eq!(
        delta_eout.nrows(),
        delta_ein.nrows(),
        "delta blocks must share the batch edge rows: ΔEout has {}, ΔEin has {}",
        delta_eout.nrows(),
        delta_ein.nrows()
    );
    counters().incr(Counter::DeltaTraversals);
    let _span = trace_span!(
        "spgemm_delta",
        k_lanes = pairs.len(),
        batch_edges = delta_eout.nrows(),
        nnz = delta_eout.nnz() + delta_ein.nnz()
    );
    journal().begin(Stage::DeltaApply, pairs.len() as u64);

    let eout_t = delta_eout.transpose();
    let mut scratch = memstats().track(MemRegion::DeltaScratch, eout_t.heap_bytes());
    let sym = spgemm_symbolic(&eout_t, delta_ein);
    scratch.grow_to(eout_t.heap_bytes() + sym.heap_bytes());
    // Batches are usually far below the flops dispatch threshold, so
    // gate the row-parallel driver on the pool alone: it is
    // bit-identical to the serial traversal, and on a 1-thread pool the
    // parallel driver would only rename the call. No dispatch counters
    // here — the dispatch audit covers the planner's gate, not this
    // always-structural choice.
    let outs = if rayon::current_num_threads() > 1 {
        spgemm_multi_numeric_parallel(&sym, &eout_t, delta_ein, pairs, acc)
    } else {
        spgemm_multi_numeric(&sym, &eout_t, delta_ein, pairs, acc)
    };
    journal().end(Stage::DeltaApply, pairs.len() as u64);
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::spgemm::{spgemm_with, Accumulator};
    use aarray_algebra::pairs::{MaxMin, PlusTimes};
    use aarray_algebra::values::nat::Nat;

    fn pt() -> PlusTimes<Nat> {
        PlusTimes::new()
    }

    fn batch() -> (Csr<Nat>, Csr<Nat>) {
        // 3 batch edges over 4 vertices.
        let mut out = Coo::new(3, 4);
        out.push(0, 0, Nat(2));
        out.push(1, 1, Nat(3));
        out.push(2, 0, Nat(1));
        out.push(2, 3, Nat(5));
        let mut inn = Coo::new(3, 4);
        inn.push(0, 1, Nat(7));
        inn.push(1, 2, Nat(1));
        inn.push(2, 2, Nat(4));
        (out.into_csr(&pt()), inn.into_csr(&pt()))
    }

    #[test]
    fn delta_product_matches_standalone_transpose_product() {
        let (out, inn) = batch();
        let pt = pt();
        let mm = MaxMin::<Nat>::new();
        let pairs: Vec<&dyn DynOpPair<Nat>> = vec![&pt, &mm];
        for acc in [MultiAccumulator::Spa, MultiAccumulator::Hash] {
            let deltas = spgemm_delta(&out, &inn, &pairs, acc);
            let eout_t = out.transpose();
            assert_eq!(deltas[0], spgemm_with(&eout_t, &inn, &pt, Accumulator::Spa));
            assert_eq!(deltas[1], spgemm_with(&eout_t, &inn, &mm, Accumulator::Spa));
        }
    }

    #[test]
    fn delta_traversals_and_scratch_are_recorded() {
        let (out, inn) = batch();
        let pt = pt();
        let pairs: Vec<&dyn DynOpPair<Nat>> = vec![&pt];
        let before = aarray_obs::snapshot();
        let _ = spgemm_delta(&out, &inn, &pairs, MultiAccumulator::Spa);
        let delta = aarray_obs::snapshot().since(&before);
        assert!(delta.get(Counter::DeltaTraversals) >= 1);
        assert!(
            memstats().peak(MemRegion::DeltaScratch) > 0,
            "transpose + symbolic scratch must be accounted"
        );
    }

    #[test]
    #[should_panic(expected = "batch edge rows")]
    fn mismatched_batch_rows_panic() {
        let (out, _) = batch();
        let inn = Csr::<Nat>::empty(5, 4);
        let pt = pt();
        let pairs: Vec<&dyn DynOpPair<Nat>> = vec![&pt];
        let _ = spgemm_delta(&out, &inn, &pairs, MultiAccumulator::Spa);
    }
}
