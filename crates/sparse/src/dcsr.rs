//! Doubly-compressed sparse rows (DCSR / hypersparse) — for arrays
//! whose row count vastly exceeds their populated-row count.
//!
//! Incidence arrays are the motivating case: `Eᵀout` is
//! `|vertices| × |edges|`, and after sub-array selection (Figure 2
//! keeps 3 of 31 columns) most rows of the transposed selection are
//! empty. CSR pays `O(nrows)` in `indptr` regardless; DCSR stores only
//! the populated rows, so iteration and multiplication cost
//! `O(populated rows + flops)`.

use crate::csr::Csr;
use aarray_algebra::{BinaryOp, OpPair, Value};

/// A hypersparse array: only populated rows are represented.
#[derive(Clone, Debug, PartialEq)]
pub struct Dcsr<V: Value> {
    nrows: usize,
    ncols: usize,
    /// Populated row ids, strictly ascending.
    row_ids: Vec<u32>,
    /// `indptr[i]..indptr[i+1]` spans the entries of `row_ids[i]`.
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<V>,
}

impl<V: Value> Dcsr<V> {
    /// Compress a CSR array (drops empty rows from the index).
    pub fn from_csr(csr: &Csr<V>) -> Self {
        let mut row_ids = Vec::new();
        let mut indptr = vec![0usize];
        let mut indices = Vec::with_capacity(csr.nnz());
        let mut values = Vec::with_capacity(csr.nnz());
        for r in 0..csr.nrows() {
            let (cols, vals) = csr.row(r);
            if !cols.is_empty() {
                row_ids.push(r as u32);
                indices.extend_from_slice(cols);
                values.extend(vals.iter().cloned());
                indptr.push(indices.len());
            }
        }
        Dcsr {
            nrows: csr.nrows(),
            ncols: csr.ncols(),
            row_ids,
            indptr,
            indices,
            values,
        }
    }

    /// Expand back to CSR.
    pub fn to_csr(&self) -> Csr<V> {
        let mut indptr = vec![0usize; self.nrows + 1];
        for (i, &r) in self.row_ids.iter().enumerate() {
            indptr[r as usize + 1] = self.indptr[i + 1] - self.indptr[i];
        }
        for i in 0..self.nrows {
            indptr[i + 1] += indptr[i];
        }
        Csr::from_parts(
            self.nrows,
            self.ncols,
            indptr,
            self.indices.clone(),
            self.values.clone(),
        )
    }

    /// Logical row count (including unpopulated rows).
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Column count.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of populated rows.
    pub fn populated_rows(&self) -> usize {
        self.row_ids.len()
    }

    /// Iterate populated rows as `(row_id, columns, values)`.
    pub fn rows(&self) -> impl Iterator<Item = (usize, &[u32], &[V])> + '_ {
        self.row_ids.iter().enumerate().map(move |(i, &r)| {
            let span = self.indptr[i]..self.indptr[i + 1];
            (r as usize, &self.indices[span.clone()], &self.values[span])
        })
    }

    /// Stored value at `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> Option<&V> {
        let i = self.row_ids.binary_search(&(r as u32)).ok()?;
        let span = self.indptr[i]..self.indptr[i + 1];
        let cols = &self.indices[span.clone()];
        cols.binary_search(&(c as u32))
            .ok()
            .map(|k| &self.values[span.start + k])
    }
}

/// Hypersparse SpGEMM: `C = A ⊕.⊗ B` where `A` is DCSR and `B` CSR.
/// Only `A`'s populated rows are visited; output is DCSR. Fold order
/// matches the CSR kernels (ascending inner key, left-associated).
pub fn spgemm_dcsr<V, A, M>(a: &Dcsr<V>, b: &Csr<V>, pair: &OpPair<V, A, M>) -> Dcsr<V>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");

    let mut row_ids = Vec::new();
    let mut indptr = vec![0usize];
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<V> = Vec::new();

    let mut slots: Vec<Option<V>> = vec![None; b.ncols()];
    let mut touched: Vec<u32> = Vec::new();
    for (r, ks, avs) in a.rows() {
        for (&k, av) in ks.iter().zip(avs.iter()) {
            let (js, bvs) = b.row(k as usize);
            for (&j, bv) in js.iter().zip(bvs.iter()) {
                let term = pair.times(av, bv);
                let slot = &mut slots[j as usize];
                match slot {
                    None => {
                        *slot = Some(term);
                        touched.push(j);
                    }
                    Some(prev) => *prev = pair.plus(prev, &term),
                }
            }
        }
        if !touched.is_empty() {
            touched.sort_unstable();
            let before = values.len();
            for &j in &touched {
                let v = slots[j as usize].take().expect("touched slot filled");
                if !pair.is_zero(&v) {
                    indices.push(j);
                    values.push(v);
                }
            }
            touched.clear();
            if values.len() > before {
                row_ids.push(r as u32);
                indptr.push(values.len());
            }
        }
    }

    Dcsr {
        nrows: a.nrows(),
        ncols: b.ncols(),
        row_ids,
        indptr,
        indices,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::spgemm::spgemm;
    use aarray_algebra::ops::{Plus, Times};
    use aarray_algebra::values::nat::Nat;

    fn pt() -> OpPair<Nat, Plus, Times> {
        OpPair::new()
    }

    /// 1000 rows, only 3 populated.
    fn hypersparse() -> Csr<Nat> {
        let mut coo = Coo::new(1000, 10);
        coo.push(5, 2, Nat(1));
        coo.push(5, 7, Nat(2));
        coo.push(500, 0, Nat(3));
        coo.push(999, 9, Nat(4));
        coo.into_csr(&pt())
    }

    #[test]
    fn compression_roundtrip() {
        let csr = hypersparse();
        let d = Dcsr::from_csr(&csr);
        assert_eq!(d.populated_rows(), 3);
        assert_eq!(d.nnz(), 4);
        assert_eq!(d.nrows(), 1000);
        assert_eq!(d.to_csr(), csr);
    }

    #[test]
    fn get_matches_csr() {
        let csr = hypersparse();
        let d = Dcsr::from_csr(&csr);
        assert_eq!(d.get(5, 7), Some(&Nat(2)));
        assert_eq!(d.get(5, 3), None);
        assert_eq!(d.get(6, 7), None);
        assert_eq!(d.get(999, 9), Some(&Nat(4)));
    }

    #[test]
    fn rows_iterates_only_populated() {
        let d = Dcsr::from_csr(&hypersparse());
        let rows: Vec<usize> = d.rows().map(|(r, _, _)| r).collect();
        assert_eq!(rows, vec![5, 500, 999]);
    }

    #[test]
    fn dcsr_spgemm_matches_csr_spgemm() {
        let pair = pt();
        let a = hypersparse();
        let mut cb = Coo::new(10, 6);
        for (r, c, v) in [(2, 1, 5u64), (7, 3, 6), (0, 0, 7), (9, 5, 8), (9, 0, 9)] {
            cb.push(r, c, Nat(v));
        }
        let b = cb.into_csr(&pair);
        let dense_way = spgemm(&a, &b, &pair);
        let hyper_way = spgemm_dcsr(&Dcsr::from_csr(&a), &b, &pair);
        assert_eq!(hyper_way.to_csr(), dense_way);
        assert_eq!(hyper_way.populated_rows(), 3);
    }

    #[test]
    fn produced_zeros_can_empty_a_row() {
        let pair: OpPair<i64, Plus, Times> = OpPair::new();
        let mut ca = Coo::new(100, 2);
        ca.push(42, 0, 1i64);
        ca.push(42, 1, 1i64);
        let a = Dcsr::from_csr(&ca.into_csr(&pair));
        let mut cb = Coo::new(2, 1);
        cb.push(0, 0, 1i64);
        cb.push(1, 0, -1i64);
        let b = cb.into_csr(&pair);
        let c = spgemm_dcsr(&a, &b, &pair);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.populated_rows(), 0);
    }

    #[test]
    fn empty_input() {
        let pair = pt();
        let a = Dcsr::from_csr(&Csr::<Nat>::empty(50, 10));
        assert_eq!(a.populated_rows(), 0);
        let b = Csr::<Nat>::empty(10, 4);
        let c = spgemm_dcsr(&a, &b, &pair);
        assert_eq!((c.nrows(), c.ncols(), c.nnz()), (50, 4, 0));
    }
}
