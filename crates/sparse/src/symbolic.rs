//! Two-phase (symbolic + numeric) SpGEMM.
//!
//! The single-pass kernels in [`mod@crate::spgemm`] grow output vectors as
//! they go. The classic HPC alternative runs a **symbolic** pass first
//! — computing the exact output pattern with no value arithmetic —
//! then a **numeric** pass that fills preallocated storage. This wins
//! when values are expensive to compute or clone (set-valued arrays,
//! strings) and when the symbolic pattern is reused across several
//! numeric multiplies with different `⊕.⊗` pairs — exactly Figure 3's
//! workload, where the same `E1ᵀ`, `E2` pattern is multiplied under
//! seven algebras. The `ablate_accumulators` bench compares the
//! approaches.
//!
//! Caveat: the symbolic pattern is the *structural* product (every
//! coordinate with at least one contributing term). The numeric pass
//! can still produce zeros for non-compliant pairs; they are pruned in
//! a final compaction, so results match the one-phase kernels exactly.

use crate::csr::Csr;
use aarray_algebra::{BinaryOp, OpPair, Value};
use rayon::prelude::*;

/// The reusable output pattern of `A ⊕.⊗ B` (structural only).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymbolicProduct {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
}

impl SymbolicProduct {
    /// Number of structurally-possible output entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Output dimensions.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// The sorted column indices structurally present in output row
    /// `i`. This is what lets downstream numeric passes (including the
    /// fused multi-pair kernel in [`crate::spgemm_multi`]) preallocate
    /// exact per-row slots.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.indices[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Structural nonzero count of output row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Heap bytes held by the pattern's index arrays (for memory
    /// accounting; excludes the struct header).
    pub fn heap_bytes(&self) -> u64 {
        (self.indptr.capacity() * std::mem::size_of::<usize>()
            + self.indices.capacity() * std::mem::size_of::<u32>()) as u64
    }
}

/// Symbolic pass: compute the output pattern of `A ⊕.⊗ B` for any
/// value types (only the patterns of `a` and `b` matter).
pub fn spgemm_symbolic<V: Value, W: Value>(a: &Csr<V>, b: &Csr<W>) -> SymbolicProduct {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");

    let rows: Vec<Vec<u32>> = (0..a.nrows())
        .into_par_iter()
        .map_init(
            || (vec![false; b.ncols()], Vec::<u32>::new()),
            |(seen, touched), i| {
                let (ks, _) = a.row(i);
                for &k in ks {
                    let (js, _) = b.row(k as usize);
                    for &j in js {
                        if !seen[j as usize] {
                            seen[j as usize] = true;
                            touched.push(j);
                        }
                    }
                }
                touched.sort_unstable();
                let out = touched.clone();
                for &j in touched.iter() {
                    seen[j as usize] = false;
                }
                touched.clear();
                out
            },
        )
        .collect();

    let mut indptr = vec![0usize; a.nrows() + 1];
    let nnz: usize = rows.iter().map(Vec::len).sum();
    let mut indices = Vec::with_capacity(nnz);
    for (i, row) in rows.into_iter().enumerate() {
        indices.extend(row);
        indptr[i + 1] = indices.len();
    }
    SymbolicProduct {
        nrows: a.nrows(),
        ncols: b.ncols(),
        indptr,
        indices,
    }
}

/// Numeric pass: fill a symbolic pattern with values under a concrete
/// pair, then prune any zeros the arithmetic produced. The result is
/// identical to [`crate::spgemm::spgemm`].
pub fn spgemm_numeric<V, A, M>(
    sym: &SymbolicProduct,
    a: &Csr<V>,
    b: &Csr<V>,
    pair: &OpPair<V, A, M>,
) -> Csr<V>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    assert_eq!(
        sym.nrows,
        a.nrows(),
        "symbolic pattern built for different A"
    );
    assert_eq!(
        sym.ncols,
        b.ncols(),
        "symbolic pattern built for different B"
    );
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");

    // slot_of[j] maps a column to its position within the current row's
    // symbolic slots.
    let mut slot_of = vec![usize::MAX; b.ncols()];
    let mut indptr = vec![0usize; a.nrows() + 1];
    let mut indices: Vec<u32> = Vec::with_capacity(sym.nnz());
    let mut values: Vec<V> = Vec::with_capacity(sym.nnz());

    for i in 0..a.nrows() {
        let srow = &sym.indices[sym.indptr[i]..sym.indptr[i + 1]];
        for (slot, &j) in srow.iter().enumerate() {
            slot_of[j as usize] = slot;
        }
        let mut acc: Vec<Option<V>> = vec![None; srow.len()];

        let (ks, avs) = a.row(i);
        for (&k, av) in ks.iter().zip(avs.iter()) {
            let (js, bvs) = b.row(k as usize);
            for (&j, bv) in js.iter().zip(bvs.iter()) {
                let slot = slot_of[j as usize];
                debug_assert_ne!(slot, usize::MAX, "numeric term outside symbolic pattern");
                let term = pair.times(av, bv);
                acc[slot] = Some(match acc[slot].take() {
                    None => term,
                    Some(prev) => pair.plus(&prev, &term),
                });
            }
        }

        for (slot, &j) in srow.iter().enumerate() {
            if let Some(v) = acc[slot].take() {
                if !pair.is_zero(&v) {
                    indices.push(j);
                    values.push(v);
                }
            }
            slot_of[j as usize] = usize::MAX;
        }
        indptr[i + 1] = indices.len();
    }

    Csr::from_parts(a.nrows(), b.ncols(), indptr, indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::spgemm::spgemm;
    use aarray_algebra::ops::{Max, Min, Plus, Times};
    use aarray_algebra::values::nat::Nat;

    fn pt() -> OpPair<Nat, Plus, Times> {
        OpPair::new()
    }

    fn build(nrows: usize, ncols: usize, t: &[(usize, usize, u64)]) -> Csr<Nat> {
        let mut coo = Coo::new(nrows, ncols);
        for &(r, c, v) in t {
            coo.push(r, c, Nat(v));
        }
        coo.into_csr(&pt())
    }

    #[test]
    fn two_phase_matches_one_phase() {
        let a = build(3, 4, &[(0, 0, 1), (0, 3, 2), (1, 1, 3), (2, 2, 5)]);
        let b = build(4, 3, &[(0, 1, 2), (1, 0, 1), (2, 2, 3), (3, 1, 4)]);
        let sym = spgemm_symbolic(&a, &b);
        let two = spgemm_numeric(&sym, &a, &b, &pt());
        assert_eq!(two, spgemm(&a, &b, &pt()));
        assert_eq!(sym.nnz(), two.nnz()); // compliant pair: no pruning
    }

    #[test]
    fn symbolic_pattern_reused_across_pairs() {
        // Figure 3's workload shape: one symbolic pass, many algebras.
        let a = build(2, 3, &[(0, 0, 2), (0, 1, 3), (1, 2, 4)]);
        let b = build(3, 2, &[(0, 0, 5), (1, 0, 1), (2, 1, 7)]);
        let sym = spgemm_symbolic(&a, &b);

        let plus_times = spgemm_numeric(&sym, &a, &b, &pt());
        assert_eq!(plus_times, spgemm(&a, &b, &pt()));

        let mm: OpPair<Nat, Max, Min> = OpPair::new();
        let max_min = spgemm_numeric(&sym, &a, &b, &mm);
        assert_eq!(max_min, spgemm(&a, &b, &mm));
        // Same pattern, different values.
        assert_eq!(plus_times.indices(), max_min.indices());
        assert_ne!(plus_times.values(), max_min.values());
    }

    #[test]
    fn numeric_prunes_arithmetic_zeros() {
        let pair: OpPair<i64, Plus, Times> = OpPair::new();
        let mut ca = Coo::new(1, 2);
        ca.push(0, 0, 1i64);
        ca.push(0, 1, 1i64);
        let a = ca.into_csr(&pair);
        let mut cb = Coo::new(2, 1);
        cb.push(0, 0, 1i64);
        cb.push(1, 0, -1i64);
        let b = cb.into_csr(&pair);
        let sym = spgemm_symbolic(&a, &b);
        assert_eq!(sym.nnz(), 1); // structurally present
        let c = spgemm_numeric(&sym, &a, &b, &pair);
        assert_eq!(c.nnz(), 0); // numerically cancelled, pruned
    }

    #[test]
    fn symbolic_shape_accessors() {
        let a = build(2, 2, &[(0, 0, 1)]);
        let sym = spgemm_symbolic(&a, &a);
        assert_eq!(sym.shape(), (2, 2));
    }
}
