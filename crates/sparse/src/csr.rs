//! Compressed sparse row storage, generic over the value type.

use aarray_algebra::{BinaryOp, OpPair, Value};

/// A sparse array in CSR form: `indptr` of length `nrows + 1`, and
/// per-row column indices (strictly ascending within a row) with
/// parallel values.
///
/// Invariants (checked by [`Csr::from_parts`] in debug builds):
/// * `indptr` is non-decreasing, `indptr[0] == 0`,
///   `indptr[nrows] == indices.len() == values.len()`;
/// * within each row, `indices` are strictly increasing and `< ncols`.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<V: Value> {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<V>,
}

impl<V: Value> Csr<V> {
    /// An empty array of the given dimensions.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Csr {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Assemble from raw parts. Debug-asserts the CSR invariants.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<V>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), nrows + 1);
        debug_assert_eq!(*indptr.first().unwrap_or(&0), 0);
        debug_assert_eq!(*indptr.last().unwrap_or(&0), indices.len());
        debug_assert_eq!(indices.len(), values.len());
        #[cfg(debug_assertions)]
        for r in 0..nrows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                debug_assert!(w[0] < w[1], "row {} indices not strictly ascending", r);
            }
            if let Some(&last) = row.last() {
                debug_assert!(
                    (last as usize) < ncols,
                    "row {} col {} ≥ ncols {}",
                    r,
                    last,
                    ncols
                );
            }
        }
        Csr {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row-pointer array.
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The column-index array.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The value array.
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// One row as parallel slices `(columns, values)`.
    pub fn row(&self, r: usize) -> (&[u32], &[V]) {
        let span = self.indptr[r]..self.indptr[r + 1];
        (&self.indices[span.clone()], &self.values[span])
    }

    /// Number of stored entries in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Heap bytes held by the index and value arrays (for memory
    /// accounting; counts `size_of::<V>()` per stored value, so heap
    /// owned *by* the values — e.g. `String` payloads — is excluded).
    pub fn heap_bytes(&self) -> u64 {
        (self.indptr.capacity() * std::mem::size_of::<usize>()
            + self.indices.capacity() * std::mem::size_of::<u32>()
            + self.values.capacity() * std::mem::size_of::<V>()) as u64
    }

    /// Stored value at `(r, c)`, or `None` (meaning the pair's zero).
    pub fn get(&self, r: usize, c: usize) -> Option<&V> {
        let (cols, vals) = self.row(r);
        cols.binary_search(&(c as u32)).ok().map(|i| &vals[i])
    }

    /// Iterate all stored entries as `(row, col, &value)` in row-major
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &V)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals.iter())
                .map(move |(&c, v)| (r, c as usize, v))
        })
    }

    /// The transpose `Aᵀ` (Definition I.2), via counting sort: `O(nnz +
    /// nrows + ncols)`. Within each output row the former row indices
    /// appear in ascending order, preserving the canonical fold order.
    pub fn transpose(&self) -> Csr<V> {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let indptr_t = counts.clone();

        let mut indices_t = vec![0u32; self.nnz()];
        let mut values_t: Vec<Option<V>> = vec![None; self.nnz()];
        let mut next = counts;
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, v) in cols.iter().zip(vals.iter()) {
                let slot = next[c as usize];
                indices_t[slot] = r as u32;
                values_t[slot] = Some(v.clone());
                next[c as usize] += 1;
            }
        }
        let values_t: Vec<V> = values_t
            .into_iter()
            .map(|v| v.expect("every slot filled"))
            .collect();
        Csr::from_parts(self.ncols, self.nrows, indptr_t, indices_t, values_t)
    }

    /// Map all stored values to a (possibly different) value type.
    /// Pattern is preserved; the caller is responsible for the new
    /// type's zero not colliding with mapped values (use
    /// [`Csr::map_prune`] when it might).
    pub fn map<W: Value>(&self, f: impl Fn(&V) -> W) -> Csr<W> {
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values: self.values.iter().map(f).collect(),
        }
    }

    /// Map stored values and drop any that land on the target pair's
    /// zero.
    pub fn map_prune<W, A, M>(&self, pair: &OpPair<W, A, M>, f: impl Fn(&V) -> W) -> Csr<W>
    where
        W: Value,
        A: BinaryOp<W>,
        M: BinaryOp<W>,
    {
        let mut indptr = vec![0usize; self.nrows + 1];
        let mut indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, v) in cols.iter().zip(vals.iter()) {
                let w = f(v);
                if !pair.is_zero(&w) {
                    indices.push(c);
                    values.push(w);
                }
            }
            indptr[r + 1] = indices.len();
        }
        Csr::from_parts(self.nrows, self.ncols, indptr, indices, values)
    }

    /// Drop stored entries equal to the pair's zero (e.g. after an
    /// in-place value edit).
    pub fn prune<A, M>(&self, pair: &OpPair<V, A, M>) -> Csr<V>
    where
        A: BinaryOp<V>,
        M: BinaryOp<V>,
    {
        self.map_prune(pair, |v| v.clone())
    }

    /// Select a contiguous column range `[lo, hi)`, keeping all rows
    /// and renumbering columns to start at zero.
    pub fn select_col_range(&self, lo: usize, hi: usize) -> Csr<V> {
        assert!(
            lo <= hi && hi <= self.ncols,
            "invalid column range {}..{}",
            lo,
            hi
        );
        let mut indptr = vec![0usize; self.nrows + 1];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            let start = cols.partition_point(|&c| (c as usize) < lo);
            let end = cols.partition_point(|&c| (c as usize) < hi);
            for i in start..end {
                indices.push(cols[i] - lo as u32);
                values.push(vals[i].clone());
            }
            indptr[r + 1] = indices.len();
        }
        Csr::from_parts(self.nrows, hi - lo, indptr, indices, values)
    }

    /// Select an arbitrary (sorted, deduplicated) set of columns,
    /// renumbering to `0..cols.len()`.
    pub fn select_cols(&self, cols: &[usize]) -> Csr<V> {
        debug_assert!(
            cols.windows(2).all(|w| w[0] < w[1]),
            "column list must be sorted unique"
        );
        let mut remap = vec![u32::MAX; self.ncols];
        for (new, &old) in cols.iter().enumerate() {
            assert!(old < self.ncols, "column {} out of bounds", old);
            remap[old] = new as u32;
        }
        let mut indptr = vec![0usize; self.nrows + 1];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for r in 0..self.nrows {
            let (rcols, vals) = self.row(r);
            for (&c, v) in rcols.iter().zip(vals.iter()) {
                let m = remap[c as usize];
                if m != u32::MAX {
                    indices.push(m);
                    values.push(v.clone());
                }
            }
            indptr[r + 1] = indices.len();
        }
        Csr::from_parts(self.nrows, cols.len(), indptr, indices, values)
    }

    /// Select a (sorted, deduplicated) set of rows, renumbering to
    /// `0..rows.len()`.
    pub fn select_rows(&self, rows: &[usize]) -> Csr<V> {
        debug_assert!(
            rows.windows(2).all(|w| w[0] < w[1]),
            "row list must be sorted unique"
        );
        let mut indptr = vec![0usize; rows.len() + 1];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (new_r, &r) in rows.iter().enumerate() {
            assert!(r < self.nrows, "row {} out of bounds", r);
            let (cols, vals) = self.row(r);
            indices.extend_from_slice(cols);
            values.extend(vals.iter().cloned());
            indptr[new_r + 1] = indices.len();
        }
        Csr::from_parts(rows.len(), self.ncols, indptr, indices, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;
    use aarray_algebra::ops::{Plus, Times};
    use aarray_algebra::values::nat::Nat;
    use aarray_algebra::values::nn::{nn, NN};

    fn pt() -> OpPair<Nat, Plus, Times> {
        OpPair::new()
    }

    fn sample() -> Csr<Nat> {
        // [1 . 2]
        // [. . .]
        // [3 4 .]
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, Nat(1));
        coo.push(0, 2, Nat(2));
        coo.push(2, 0, Nat(3));
        coo.push(2, 1, Nat(4));
        coo.into_csr(&pt())
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!((m.nrows(), m.ncols(), m.nnz()), (3, 3, 4));
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.get(2, 1), Some(&Nat(4)));
        assert_eq!(m.get(1, 1), None);
        let entries: Vec<_> = m.iter().map(|(r, c, v)| (r, c, v.0)).collect();
        assert_eq!(entries, vec![(0, 0, 1), (0, 2, 2), (2, 0, 3), (2, 1, 4)]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!((t.nrows(), t.ncols()), (3, 3));
        assert_eq!(t.get(0, 2), Some(&Nat(3)));
        assert_eq!(t.get(1, 2), Some(&Nat(4)));
        assert_eq!(t.get(2, 0), Some(&Nat(2)));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_rectangular() {
        let mut coo = Coo::new(2, 4);
        coo.push(0, 3, Nat(9));
        coo.push(1, 0, Nat(8));
        let m = coo.into_csr(&pt());
        let t = m.transpose();
        assert_eq!((t.nrows(), t.ncols()), (4, 2));
        assert_eq!(t.get(3, 0), Some(&Nat(9)));
        assert_eq!(t.get(0, 1), Some(&Nat(8)));
    }

    #[test]
    fn map_changes_value_type() {
        let m = sample();
        let f: Csr<NN> = m.map(|v| nn(v.0 as f64));
        assert_eq!(f.get(2, 0), Some(&nn(3.0)));
        assert_eq!(f.nnz(), m.nnz());
    }

    #[test]
    fn map_prune_drops_new_zeros() {
        let m = sample();
        // Map everything ≤ 2 to zero.
        let g = m.map_prune(&pt(), |v| if v.0 <= 2 { Nat(0) } else { *v });
        assert_eq!(g.nnz(), 2);
        assert_eq!(g.get(0, 0), None);
        assert_eq!(g.get(2, 0), Some(&Nat(3)));
    }

    #[test]
    fn select_col_range_renumbers() {
        let m = sample();
        let s = m.select_col_range(1, 3);
        assert_eq!((s.nrows(), s.ncols()), (3, 2));
        assert_eq!(s.get(0, 1), Some(&Nat(2))); // old col 2
        assert_eq!(s.get(2, 0), Some(&Nat(4))); // old col 1
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn select_cols_arbitrary() {
        let m = sample();
        let s = m.select_cols(&[0, 2]);
        assert_eq!(s.ncols(), 2);
        assert_eq!(s.get(0, 1), Some(&Nat(2)));
        assert_eq!(s.get(2, 0), Some(&Nat(3)));
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    fn select_rows_subset() {
        let m = sample();
        let s = m.select_rows(&[0, 2]);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.get(1, 1), Some(&Nat(4)));
        assert_eq!(s.nnz(), 4);
    }

    #[test]
    fn empty_array() {
        let e = Csr::<Nat>::empty(5, 7);
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.transpose().nrows(), 7);
        assert_eq!(e.iter().count(), 0);
    }
}
