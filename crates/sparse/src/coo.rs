//! Triplet (COO) representation — the natural construction format for
//! incidence arrays coming off edge lists or exploded tables.

use aarray_algebra::{BinaryOp, OpPair, Value};

/// A sparse array under construction: unordered `(row, col, value)`
/// triplets with fixed dimensions.
#[derive(Clone, Debug, PartialEq)]
pub struct Coo<V: Value> {
    nrows: usize,
    ncols: usize,
    entries: Vec<(u32, u32, V)>,
}

impl<V: Value> Coo<V> {
    /// New empty triplet list with the given dimensions.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(
            nrows <= u32::MAX as usize && ncols <= u32::MAX as usize,
            "dimension exceeds u32 index space"
        );
        Coo {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// New with preallocated capacity for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        let mut c = Self::new(nrows, ncols);
        c.entries.reserve(cap);
        c
    }

    /// Build directly from a triplet vector.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: Vec<(u32, u32, V)>) -> Self {
        let mut c = Self::new(nrows, ncols);
        for (r, col, v) in triplets {
            c.push(r as usize, col as usize, v);
        }
        c
    }

    /// Append one entry. Panics if out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: V) {
        assert!(
            row < self.nrows,
            "row {} out of bounds ({})",
            row,
            self.nrows
        );
        assert!(
            col < self.ncols,
            "col {} out of bounds ({})",
            col,
            self.ncols
        );
        self.entries.push((row as u32, col as u32, value));
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of triplets (before deduplication).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The raw triplets.
    pub fn triplets(&self) -> &[(u32, u32, V)] {
        &self.entries
    }

    /// Finalize into CSR, combining duplicate coordinates with the
    /// pair's `⊕` (left-associated, in **insertion order** — the stable
    /// sort preserves it) and dropping entries equal to the pair's zero.
    pub fn into_csr<A, M>(mut self, pair: &OpPair<V, A, M>) -> crate::Csr<V>
    where
        A: BinaryOp<V>,
        M: BinaryOp<V>,
    {
        // Stable sort keeps duplicate runs in insertion order so the
        // ⊕-fold below is well defined for non-commutative ⊕.
        self.entries.sort_by_key(|&(r, c, _)| (r, c));

        let mut rows: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut cols: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut vals: Vec<V> = Vec::with_capacity(self.entries.len());

        for (r, c, v) in self.entries {
            if rows.last() == Some(&r) && cols.last() == Some(&c) {
                let last = vals.last_mut().expect("parallel arrays in sync");
                *last = pair.plus(last, &v);
            } else {
                rows.push(r);
                cols.push(c);
                vals.push(v);
            }
        }

        // Drop zeros (either pushed explicitly or produced by the fold).
        let mut indptr = vec![0usize; self.nrows + 1];
        let mut indices = Vec::with_capacity(cols.len());
        let mut values = Vec::with_capacity(vals.len());
        let mut it = rows.iter().zip(cols.iter()).zip(vals);
        let mut counts = vec![0usize; self.nrows];
        let mut kept: Vec<(u32, u32, V)> = Vec::new();
        for ((&r, &c), v) in &mut it {
            if !pair.is_zero(&v) {
                counts[r as usize] += 1;
                kept.push((r, c, v));
            }
        }
        for (i, n) in counts.iter().enumerate() {
            indptr[i + 1] = indptr[i] + n;
        }
        for (_, c, v) in kept {
            indices.push(c);
            values.push(v);
        }

        crate::Csr::from_parts(self.nrows, self.ncols, indptr, indices, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarray_algebra::ops::{Max, Min, Plus, Times};
    use aarray_algebra::values::bstr::BStr;
    use aarray_algebra::values::nat::Nat;

    fn pt() -> OpPair<Nat, Plus, Times> {
        OpPair::new()
    }

    #[test]
    fn build_and_finalize() {
        let mut coo = Coo::new(3, 4);
        coo.push(0, 1, Nat(5));
        coo.push(2, 3, Nat(7));
        coo.push(0, 0, Nat(1));
        let csr = coo.into_csr(&pt());
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 1), Some(&Nat(5)));
        assert_eq!(csr.get(2, 3), Some(&Nat(7)));
        assert_eq!(csr.get(1, 0), None);
    }

    #[test]
    fn duplicates_combine_with_plus() {
        let mut coo = Coo::new(2, 2);
        coo.push(1, 1, Nat(3));
        coo.push(1, 1, Nat(4));
        let csr = coo.into_csr(&pt());
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(1, 1), Some(&Nat(7)));
    }

    #[test]
    fn duplicates_fold_in_insertion_order_for_noncommutative_plus() {
        // ⊕ = max on BStr is commutative, so use a fold-order probe:
        // with ⊕ = min over BStr the result is order-independent too;
        // instead verify insertion order via ⊕ = max.min pair names:
        // simplest direct probe is Nat with AbsDiff (commutative but
        // non-associative): |(|3−5|)−10| = 8 vs other orders differ.
        use aarray_algebra::ops::AbsDiff;
        let pair: OpPair<Nat, AbsDiff, Times> = OpPair::new();
        let mut coo = Coo::new(1, 1);
        coo.push(0, 0, Nat(3));
        coo.push(0, 0, Nat(5));
        coo.push(0, 0, Nat(10));
        let csr = coo.into_csr(&pair);
        // left-fold insertion order: ||3-5|-10| = |2-10| = 8
        assert_eq!(csr.get(0, 0), Some(&Nat(8)));
    }

    #[test]
    fn explicit_zeros_are_dropped() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, Nat(0));
        coo.push(0, 1, Nat(2));
        let csr = coo.into_csr(&pt());
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 0), None);
    }

    #[test]
    fn zero_depends_on_the_pair() {
        // Under max.min on BStr the zero is ⊥, so ⊥ entries vanish but
        // empty-string words do not.
        let pair: OpPair<BStr, Max, Min> = OpPair::new();
        let mut coo = Coo::new(1, 2);
        coo.push(0, 0, BStr::Bot);
        coo.push(0, 1, BStr::word(""));
        let csr = coo.into_csr(&pair);
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 1), Some(&BStr::word("")));
    }

    #[test]
    fn cancellation_during_combine_is_pruned() {
        // ℤ (i64) ring: +3 and -3 at the same coordinate cancel to the
        // zero element and the entry must disappear — the sparse-level
        // echo of Lemma II.2.
        let pair: OpPair<i64, Plus, Times> = OpPair::new();
        let mut coo = Coo::new(1, 1);
        coo.push(0, 0, 3i64);
        coo.push(0, 0, -3i64);
        let csr = coo.into_csr(&pair);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let mut coo = Coo::<Nat>::new(2, 2);
        coo.push(2, 0, Nat(1));
    }

    #[test]
    fn from_triplets_roundtrip() {
        let coo = Coo::from_triplets(2, 2, vec![(0, 0, Nat(1)), (1, 1, Nat(2))]);
        assert_eq!(coo.len(), 2);
        assert!(!coo.is_empty());
        assert_eq!(coo.nrows(), 2);
        assert_eq!(coo.ncols(), 2);
    }
}
