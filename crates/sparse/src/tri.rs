//! Triangular extraction — `tril`/`triu`, the building blocks for
//! de-duplicating undirected edges and for triangle-counting
//! formulations that avoid double counting.

use crate::csr::Csr;
use aarray_algebra::Value;

/// Keep entries with `col ≤ row + k` (lower triangle; `k = 0` includes
/// the diagonal, `k = -1` excludes it).
pub fn tril<V: Value>(a: &Csr<V>, k: i64) -> Csr<V> {
    filter_by(a, |r, c| (c as i64) <= (r as i64) + k)
}

/// Keep entries with `col ≥ row + k` (upper triangle; `k = 0` includes
/// the diagonal, `k = 1` excludes it).
pub fn triu<V: Value>(a: &Csr<V>, k: i64) -> Csr<V> {
    filter_by(a, |r, c| (c as i64) >= (r as i64) + k)
}

/// Keep only the diagonal.
pub fn diagonal<V: Value>(a: &Csr<V>) -> Csr<V> {
    filter_by(a, |r, c| r == c)
}

fn filter_by<V: Value>(a: &Csr<V>, keep: impl Fn(usize, usize) -> bool) -> Csr<V> {
    let mut indptr = vec![0usize; a.nrows() + 1];
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        for (&c, v) in cols.iter().zip(vals.iter()) {
            if keep(r, c as usize) {
                indices.push(c);
                values.push(v.clone());
            }
        }
        indptr[r + 1] = indices.len();
    }
    Csr::from_parts(a.nrows(), a.ncols(), indptr, indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use aarray_algebra::ops::{Plus, Times};
    use aarray_algebra::values::nat::Nat;
    use aarray_algebra::OpPair;

    fn full3() -> Csr<Nat> {
        let pair: OpPair<Nat, Plus, Times> = OpPair::new();
        let mut coo = Coo::new(3, 3);
        for r in 0..3 {
            for c in 0..3 {
                coo.push(r, c, Nat((r * 3 + c + 1) as u64));
            }
        }
        coo.into_csr(&pair)
    }

    #[test]
    fn triangles_partition_with_diagonal_once() {
        let a = full3();
        let lo = tril(&a, -1);
        let up = triu(&a, 1);
        let di = diagonal(&a);
        assert_eq!(lo.nnz() + up.nnz() + di.nnz(), a.nnz());
        assert_eq!(lo.nnz(), 3);
        assert_eq!(up.nnz(), 3);
        assert_eq!(di.nnz(), 3);
    }

    #[test]
    fn tril_includes_diagonal_at_k0() {
        let a = full3();
        let lo = tril(&a, 0);
        assert_eq!(lo.nnz(), 6);
        assert!(lo.get(0, 0).is_some());
        assert!(lo.get(0, 1).is_none());
        assert!(lo.get(2, 0).is_some());
    }

    #[test]
    fn triu_k0_mirrors_tril() {
        let a = full3();
        assert_eq!(triu(&a, 0).nnz(), 6);
        assert_eq!(triu(&a.transpose(), 0), tril(&a, 0).transpose());
    }

    #[test]
    fn rectangular_shapes() {
        let pair: OpPair<Nat, Plus, Times> = OpPair::new();
        let mut coo = Coo::new(2, 4);
        coo.push(0, 3, Nat(1));
        coo.push(1, 0, Nat(2));
        let a = coo.into_csr(&pair);
        assert_eq!(triu(&a, 1).nnz(), 1);
        assert_eq!(tril(&a, 0).nnz(), 1);
    }
}
