//! Element-wise `⊕` (union merge) and `⊗` (intersection merge) —
//! D4M's `A + B` and `A .* B`.
//!
//! Union semantics for `⊕`: where only one operand stores a value, the
//! other contributes the pair's zero, and since zero is the
//! `⊕`-identity the stored value passes through unchanged. Intersection
//! semantics for `⊗`: where either operand is zero, condition-(c)-style
//! annihilation would zero the product anyway, and the result entry is
//! simply absent. (For non-compliant pairs these shortcuts are the
//! documented sparse semantics; see the crate docs.)

use crate::csr::Csr;
use aarray_algebra::dynpair::DynOpPair;
use aarray_algebra::{BinaryOp, OpPair, Value};

/// Element-wise `C = A ⊕ B` (union merge). Dimensions must agree.
pub fn ewise_add<V, A, M>(a: &Csr<V>, b: &Csr<V>, pair: &OpPair<V, A, M>) -> Csr<V>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    ewise_add_dyn(a, b, pair)
}

/// [`ewise_add`] over an object-safe pair, for callers holding runtime
/// lane collections (the incremental adjacency layer folds `A ⊕ ΔA`
/// per lane through this). Identical merge walk, identical
/// `is_zero`-pruning — bit-identical to the typed entry point.
pub fn ewise_add_dyn<V: Value>(a: &Csr<V>, b: &Csr<V>, pair: &dyn DynOpPair<V>) -> Csr<V> {
    assert_eq!(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
        "element-wise dims must agree"
    );
    merge(
        a,
        b,
        |x, y| match (x, y) {
            (Some(x), Some(y)) => Some(pair.plus(x, y)),
            (Some(x), None) => Some(x.clone()),
            (None, Some(y)) => Some(y.clone()),
            (None, None) => None,
        },
        |v| pair.is_zero(v),
    )
}

/// Element-wise `C = A ⊗ B` (intersection merge). Dimensions must
/// agree.
pub fn ewise_mul<V, A, M>(a: &Csr<V>, b: &Csr<V>, pair: &OpPair<V, A, M>) -> Csr<V>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    assert_eq!(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
        "element-wise dims must agree"
    );
    merge(
        a,
        b,
        |x, y| match (x, y) {
            (Some(x), Some(y)) => Some(pair.times(x, y)),
            _ => None,
        },
        |v| pair.is_zero(v),
    )
}

fn merge<V: Value>(
    a: &Csr<V>,
    b: &Csr<V>,
    combine: impl Fn(Option<&V>, Option<&V>) -> Option<V>,
    is_zero: impl Fn(&V) -> bool,
) -> Csr<V> {
    let mut indptr = vec![0usize; a.nrows() + 1];
    let mut indices = Vec::new();
    let mut values = Vec::new();

    for r in 0..a.nrows() {
        let (ac, av) = a.row(r);
        let (bc, bv) = b.row(r);
        let (mut i, mut j) = (0usize, 0usize);
        while i < ac.len() || j < bc.len() {
            let (col, x, y) = if j >= bc.len() || (i < ac.len() && ac[i] < bc[j]) {
                let e = (ac[i], Some(&av[i]), None);
                i += 1;
                e
            } else if i >= ac.len() || bc[j] < ac[i] {
                let e = (bc[j], None, Some(&bv[j]));
                j += 1;
                e
            } else {
                let e = (ac[i], Some(&av[i]), Some(&bv[j]));
                i += 1;
                j += 1;
                e
            };
            if let Some(v) = combine(x, y) {
                if !is_zero(&v) {
                    indices.push(col);
                    values.push(v);
                }
            }
        }
        indptr[r + 1] = indices.len();
    }

    Csr::from_parts(a.nrows(), a.ncols(), indptr, indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use aarray_algebra::ops::{Max, Min, Plus, Times};
    use aarray_algebra::values::nat::Nat;
    use aarray_algebra::OpPair;

    fn pt() -> OpPair<Nat, Plus, Times> {
        OpPair::new()
    }

    fn build(t: &[(usize, usize, u64)]) -> Csr<Nat> {
        let mut coo = Coo::new(2, 3);
        for &(r, c, v) in t {
            coo.push(r, c, Nat(v));
        }
        coo.into_csr(&pt())
    }

    #[test]
    fn add_is_union() {
        let a = build(&[(0, 0, 1), (0, 2, 2)]);
        let b = build(&[(0, 2, 3), (1, 1, 4)]);
        let c = ewise_add(&a, &b, &pt());
        assert_eq!(c.get(0, 0), Some(&Nat(1)));
        assert_eq!(c.get(0, 2), Some(&Nat(5)));
        assert_eq!(c.get(1, 1), Some(&Nat(4)));
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn mul_is_intersection() {
        let a = build(&[(0, 0, 2), (0, 2, 2)]);
        let b = build(&[(0, 2, 3), (1, 1, 4)]);
        let c = ewise_mul(&a, &b, &pt());
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 2), Some(&Nat(6)));
    }

    #[test]
    fn add_with_cancellation_prunes() {
        let pair: OpPair<i64, Plus, Times> = OpPair::new();
        let mut ca = Coo::new(1, 1);
        ca.push(0, 0, 5i64);
        let a = ca.into_csr(&pair);
        let mut cb = Coo::new(1, 1);
        cb.push(0, 0, -5i64);
        let b = cb.into_csr(&pair);
        let c = ewise_add(&a, &b, &pair);
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn max_min_elementwise() {
        let pair: OpPair<Nat, Max, Min> = OpPair::new();
        let a = build(&[(0, 0, 3), (1, 2, 8)]);
        let b = build(&[(0, 0, 5), (1, 2, 6)]);
        let add = ewise_add(&a, &b, &pair);
        let mul = ewise_mul(&a, &b, &pair);
        assert_eq!(add.get(0, 0), Some(&Nat(5)));
        assert_eq!(mul.get(1, 2), Some(&Nat(6)));
    }

    #[test]
    fn dyn_add_matches_typed_add() {
        use aarray_algebra::dynpair::DynOpPair;
        let a = build(&[(0, 0, 1), (0, 2, 2), (1, 1, 9)]);
        let b = build(&[(0, 2, 3), (1, 1, 4)]);
        let pair = pt();
        let typed = ewise_add(&a, &b, &pair);
        let dynamic = ewise_add_dyn(&a, &b, &pair as &dyn DynOpPair<Nat>);
        assert_eq!(typed, dynamic);
    }

    #[test]
    #[should_panic(expected = "dims must agree")]
    fn dim_mismatch() {
        let a = build(&[]);
        let mut cb = Coo::<Nat>::new(3, 3);
        cb.push(0, 0, Nat(1));
        let b = cb.into_csr(&pt());
        let _ = ewise_add(&a, &b, &pt());
    }
}
