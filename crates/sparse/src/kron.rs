//! Kronecker product of sparse arrays — the generator primitive behind
//! R-MAT/Graph500-style synthetic graphs used in the scaling benches,
//! and a classic graph-product construction from the paper's historical
//! references (Weischel 1962, Brualdi 1967).

use crate::csr::Csr;
use aarray_algebra::{BinaryOp, OpPair, Value};

/// `C = A ⊗_kron B`: `C((i·p + k), (j·q + l)) = A(i,j) ⊗ B(k,l)` for
/// `B` of shape `p × q`. Produced zeros are pruned (possible for
/// non-compliant `⊗`).
pub fn kron<V, A, M>(a: &Csr<V>, b: &Csr<V>, pair: &OpPair<V, A, M>) -> Csr<V>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    let (p, q) = (b.nrows(), b.ncols());
    let nrows = a.nrows() * p;
    let ncols = a.ncols() * q;
    assert!(
        nrows <= u32::MAX as usize && ncols <= u32::MAX as usize,
        "kron result too large"
    );

    let mut indptr = vec![0usize; nrows + 1];
    let mut indices: Vec<u32> = Vec::with_capacity(a.nnz() * b.nnz());
    let mut values: Vec<V> = Vec::with_capacity(a.nnz() * b.nnz());

    for i in 0..a.nrows() {
        let (acols, avals) = a.row(i);
        for k in 0..p {
            let (bcols, bvals) = b.row(k);
            // Column blocks appear in ascending j, and within a block in
            // ascending l: output indices stay strictly ascending.
            for (&j, av) in acols.iter().zip(avals.iter()) {
                for (&l, bv) in bcols.iter().zip(bvals.iter()) {
                    let v = pair.times(av, bv);
                    if !pair.is_zero(&v) {
                        indices.push(j * q as u32 + l);
                        values.push(v);
                    }
                }
            }
            indptr[i * p + k + 1] = indices.len();
        }
    }

    Csr::from_parts(nrows, ncols, indptr, indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use aarray_algebra::ops::{Plus, Times};
    use aarray_algebra::values::nat::Nat;

    fn pt() -> OpPair<Nat, Plus, Times> {
        OpPair::new()
    }

    #[test]
    fn kron_of_identities() {
        let mut ca = Coo::new(2, 2);
        ca.push(0, 0, Nat(1));
        ca.push(1, 1, Nat(1));
        let i2 = ca.into_csr(&pt());
        let i4 = kron(&i2, &i2, &pt());
        assert_eq!(i4.nnz(), 4);
        for d in 0..4 {
            assert_eq!(i4.get(d, d), Some(&Nat(1)));
        }
    }

    #[test]
    fn kron_values_multiply() {
        let mut ca = Coo::new(1, 2);
        ca.push(0, 0, Nat(2));
        ca.push(0, 1, Nat(3));
        let a = ca.into_csr(&pt());
        let mut cb = Coo::new(2, 1);
        cb.push(0, 0, Nat(5));
        cb.push(1, 0, Nat(7));
        let b = cb.into_csr(&pt());
        let c = kron(&a, &b, &pt());
        assert_eq!((c.nrows(), c.ncols()), (2, 2));
        assert_eq!(c.get(0, 0), Some(&Nat(10)));
        assert_eq!(c.get(1, 0), Some(&Nat(14)));
        assert_eq!(c.get(0, 1), Some(&Nat(15)));
        assert_eq!(c.get(1, 1), Some(&Nat(21)));
    }

    #[test]
    fn kron_grows_dimensions_multiplicatively() {
        let mut ca = Coo::new(3, 4);
        ca.push(2, 3, Nat(1));
        let a = ca.into_csr(&pt());
        let mut cb = Coo::new(5, 6);
        cb.push(4, 5, Nat(1));
        let b = cb.into_csr(&pt());
        let c = kron(&a, &b, &pt());
        assert_eq!((c.nrows(), c.ncols()), (15, 24));
        assert_eq!(c.get(14, 23), Some(&Nat(1)));
        assert_eq!(c.nnz(), 1);
    }
}
