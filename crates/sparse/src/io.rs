//! Plain-text triple serialization for sparse arrays.
//!
//! Format, one entry per line: `row<TAB>col<TAB>value`, preceded by a
//! header `%aarray <nrows> <ncols>`. Human-diffable, order-stable
//! (row-major), and generic: values round-trip through caller-supplied
//! format/parse functions so any value set can use it.

use crate::coo::Coo;
use crate::csr::Csr;
use aarray_algebra::{BinaryOp, OpPair, Value};

/// Serialize in row-major order with a caller-supplied value formatter.
pub fn write_triples<V: Value>(csr: &Csr<V>, fmt: impl Fn(&V) -> String) -> String {
    let mut out = String::new();
    out.push_str(&format!("%aarray {} {}\n", csr.nrows(), csr.ncols()));
    for (r, c, v) in csr.iter() {
        out.push_str(&format!("{}\t{}\t{}\n", r, c, fmt(v)));
    }
    out
}

/// Errors from [`read_triples`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadError {
    /// The `%aarray nrows ncols` header is missing or malformed.
    BadHeader,
    /// A data line does not have three tab-separated fields, or its
    /// indices do not parse.
    BadLine(usize),
    /// The caller's value parser rejected a value.
    BadValue(usize),
    /// An index exceeds the header's dimensions.
    OutOfBounds(usize),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::BadHeader => write!(f, "missing or malformed %aarray header"),
            ReadError::BadLine(n) => write!(f, "malformed line {}", n),
            ReadError::BadValue(n) => write!(f, "unparseable value on line {}", n),
            ReadError::OutOfBounds(n) => write!(f, "index out of bounds on line {}", n),
        }
    }
}

impl std::error::Error for ReadError {}

/// Parse the triple format back into CSR, combining duplicates with the
/// pair's `⊕` (file order) and pruning zeros.
pub fn read_triples<V, A, M>(
    text: &str,
    pair: &OpPair<V, A, M>,
    parse: impl Fn(&str) -> Option<V>,
) -> Result<Csr<V>, ReadError>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(ReadError::BadHeader)?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("%aarray") {
        return Err(ReadError::BadHeader);
    }
    let nrows: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(ReadError::BadHeader)?;
    let ncols: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(ReadError::BadHeader)?;

    let mut coo = Coo::new(nrows, ncols);
    for (n, line) in lines {
        if line.is_empty() {
            continue;
        }
        let mut fields = line.splitn(3, '\t');
        let r: usize = fields
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(ReadError::BadLine(n + 1))?;
        let c: usize = fields
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(ReadError::BadLine(n + 1))?;
        let vs = fields.next().ok_or(ReadError::BadLine(n + 1))?;
        let v = parse(vs).ok_or(ReadError::BadValue(n + 1))?;
        if r >= nrows || c >= ncols {
            return Err(ReadError::OutOfBounds(n + 1));
        }
        coo.push(r, c, v);
    }
    Ok(coo.into_csr(pair))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarray_algebra::ops::{Plus, Times};
    use aarray_algebra::values::nat::Nat;
    use aarray_algebra::values::nn::NN;

    fn pt() -> OpPair<Nat, Plus, Times> {
        OpPair::new()
    }

    fn sample() -> Csr<Nat> {
        let mut coo = Coo::new(2, 3);
        coo.push(0, 1, Nat(5));
        coo.push(1, 2, Nat(7));
        coo.into_csr(&pt())
    }

    #[test]
    fn roundtrip() {
        let a = sample();
        let text = write_triples(&a, |v| v.0.to_string());
        let b = read_triples(&text, &pt(), |s| s.parse().ok().map(Nat)).expect("parses");
        assert_eq!(a, b);
    }

    #[test]
    fn serialized_layout() {
        let text = write_triples(&sample(), |v| v.0.to_string());
        assert_eq!(text, "%aarray 2 3\n0\t1\t5\n1\t2\t7\n");
    }

    #[test]
    fn float_values_roundtrip() {
        let pair: OpPair<NN, Plus, Times> = OpPair::new();
        let mut coo = Coo::new(1, 2);
        coo.push(0, 0, NN::new(2.5).unwrap());
        coo.push(0, 1, NN::INF);
        let a = coo.into_csr(&pair);
        let text = write_triples(&a, |v| {
            if v.is_infinite() {
                "inf".to_string()
            } else {
                v.get().to_string()
            }
        });
        let b = read_triples(&text, &pair, |s| {
            if s == "inf" {
                Some(NN::INF)
            } else {
                s.parse::<f64>().ok().and_then(NN::new)
            }
        })
        .expect("parses");
        assert_eq!(a, b);
    }

    #[test]
    fn errors() {
        let pair = pt();
        let p = |s: &str| s.parse().ok().map(Nat);
        assert_eq!(read_triples("", &pair, p), Err(ReadError::BadHeader));
        assert_eq!(
            read_triples("%wrong 1 1\n", &pair, p),
            Err(ReadError::BadHeader)
        );
        assert_eq!(
            read_triples("%aarray 1 1\nnot\ta\tline?", &pair, p),
            Err(ReadError::BadLine(2))
        );
        assert_eq!(
            read_triples("%aarray 1 1\n0\t0\tnotanumber", &pair, p),
            Err(ReadError::BadValue(2))
        );
        assert_eq!(
            read_triples("%aarray 1 1\n0\t5\t3", &pair, p),
            Err(ReadError::OutOfBounds(2))
        );
        assert!(ReadError::BadHeader.to_string().contains("header"));
    }

    #[test]
    fn duplicates_combine_on_read() {
        let text = "%aarray 1 1\n0\t0\t3\n0\t0\t4\n";
        let a = read_triples(text, &pt(), |s| s.parse().ok().map(Nat)).unwrap();
        assert_eq!(a.get(0, 0), Some(&Nat(7)));
    }
}
