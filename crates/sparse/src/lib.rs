//! # aarray-sparse
//!
//! Generic sparse-array kernels over arbitrary value sets — the array
//! engine the paper assumes (D4M's sparse associative-array backend /
//! a GraphBLAS-style substrate), rebuilt in Rust.
//!
//! Everything is generic over a value type `V` and an `⊕.⊗` pair from
//! `aarray-algebra`; nothing assumes numbers. Two semantic commitments
//! hold throughout (both are consequences of the paper's framing):
//!
//! 1. **Implicit zeros.** Arrays store no entries equal to the pair's
//!    zero; construction and every kernel drop zeros they produce, so
//!    the stored pattern *is* the nonzero pattern of Definition I.4/I.5.
//! 2. **Deterministic fold order.** Because the paper does not assume
//!    `⊕` is associative or commutative, every reduction folds
//!    **left-associated in ascending inner-key order**. The row-parallel
//!    kernels partition by output row and keep the same per-row fold
//!    order, so they are bit-identical to the serial kernels for *any*
//!    operations. Only whole-array tree reductions require the
//!    [`aarray_algebra::AssociativeOp`] + [`aarray_algebra::CommutativeOp`]
//!    marker bounds.
//!
//! A further subtlety, documented once here: sparse multiplication only
//! folds terms where **both** operands are stored. This equals the
//! paper's dense semantics exactly when condition (c) holds (skipped
//! terms are `x ⊗ 0 = 0`) and since `0` is the `⊕`-identity, folding
//! them away is a no-op. For *non-compliant* pairs the two semantics
//! can differ; the dense reference evaluator in [`dense`] exists to
//! expose that difference in the theorem tests.
//!
//! ```
//! use aarray_sparse::{spgemm, Coo};
//! use aarray_algebra::pairs::MaxMin;
//! use aarray_algebra::values::nat::Nat;
//!
//! let pair = MaxMin::<Nat>::new();
//! let mut a = Coo::new(1, 2);
//! a.push(0, 0, Nat(3));
//! a.push(0, 1, Nat(7));
//! let mut b = Coo::new(2, 1);
//! b.push(0, 0, Nat(9));
//! b.push(1, 0, Nat(5));
//! let c = spgemm(&a.into_csr(&pair), &b.into_csr(&pair), &pair);
//! // max(min(3,9), min(7,5)) = 5: the widest bottleneck.
//! assert_eq!(c.get(0, 0), Some(&Nat(5)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coo;
pub mod csr;
pub mod dcsr;
pub mod dense;
pub mod elementwise;
pub mod io;
pub mod kron;
pub mod mask;
pub mod permute;
pub mod reduce;
pub mod spgemm;
pub mod spgemm_delta;
pub mod spgemm_multi;
pub mod spmv;
pub mod symbolic;
pub mod tri;

pub use coo::Coo;
pub use csr::Csr;
pub use spgemm::{spgemm, spgemm_flops, spgemm_parallel, spgemm_with, Accumulator};
