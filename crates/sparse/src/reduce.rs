//! `⊕`-reductions over rows, columns, and whole arrays.
//!
//! Sequential reductions fold in ascending key order (well defined for
//! any `⊕`). The parallel whole-array reduction reassociates and
//! reorders, so it is gated behind the
//! [`AssociativeOp`] + [`CommutativeOp`] marker bounds — the compiler
//! rejects it for ops like saturating float `+` or `|−|` where
//! reassociation changes the answer.

use crate::csr::Csr;
use aarray_algebra::{AssociativeOp, BinaryOp, CommutativeOp, OpPair, Value};
use rayon::prelude::*;

/// Reduce each row with `⊕` (ascending column order). Entry `i` is
/// `None` when row `i` stores nothing.
pub fn reduce_rows<V, A, M>(a: &Csr<V>, pair: &OpPair<V, A, M>) -> Vec<Option<V>>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    (0..a.nrows())
        .map(|r| {
            let (_, vals) = a.row(r);
            fold_left(vals, |x, y| pair.plus(x, y))
        })
        .collect()
}

/// Reduce each column with `⊕` (ascending row order).
pub fn reduce_cols<V, A, M>(a: &Csr<V>, pair: &OpPair<V, A, M>) -> Vec<Option<V>>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    let mut acc: Vec<Option<V>> = vec![None; a.ncols()];
    for (_, c, v) in a.iter() {
        let slot = &mut acc[c];
        *slot = Some(match slot.take() {
            None => v.clone(),
            Some(prev) => pair.plus(&prev, v),
        });
    }
    acc
}

/// Reduce every stored value with `⊕` in row-major order.
pub fn reduce_all<V, A, M>(a: &Csr<V>, pair: &OpPair<V, A, M>) -> Option<V>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    fold_left(a.values(), |x, y| pair.plus(x, y))
}

/// Parallel whole-array reduction. Requires `⊕` associative and
/// commutative (marker-trait proof obligation), because rayon's
/// reduction tree reassociates and interleaves freely.
pub fn reduce_all_parallel<V, A, M>(a: &Csr<V>, pair: &OpPair<V, A, M>) -> Option<V>
where
    V: Value,
    A: BinaryOp<V> + AssociativeOp<V> + CommutativeOp<V>,
    M: BinaryOp<V>,
{
    a.values()
        .par_iter()
        .cloned()
        .reduce_with(|x, y| pair.plus(&x, &y))
}

/// Count stored entries per row (the out-degree when the array is an
/// adjacency array).
pub fn row_degrees<V: Value>(a: &Csr<V>) -> Vec<usize> {
    (0..a.nrows()).map(|r| a.row_nnz(r)).collect()
}

/// Count stored entries per column (the in-degree).
pub fn col_degrees<V: Value>(a: &Csr<V>) -> Vec<usize> {
    let mut deg = vec![0usize; a.ncols()];
    for &c in a.indices() {
        deg[c as usize] += 1;
    }
    deg
}

fn fold_left<V: Value>(vals: &[V], f: impl Fn(&V, &V) -> V) -> Option<V> {
    let mut it = vals.iter();
    let first = it.next()?.clone();
    Some(it.fold(first, |acc, v| f(&acc, v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use aarray_algebra::ops::{Max, Min, Plus, Times};
    use aarray_algebra::values::nat::Nat;

    fn pt() -> OpPair<Nat, Plus, Times> {
        OpPair::new()
    }

    fn sample() -> Csr<Nat> {
        // [1 2 .]
        // [. . .]
        // [4 . 8]
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, Nat(1));
        coo.push(0, 1, Nat(2));
        coo.push(2, 0, Nat(4));
        coo.push(2, 2, Nat(8));
        coo.into_csr(&pt())
    }

    #[test]
    fn rows_cols_all() {
        let a = sample();
        assert_eq!(
            reduce_rows(&a, &pt()),
            vec![Some(Nat(3)), None, Some(Nat(12))]
        );
        assert_eq!(
            reduce_cols(&a, &pt()),
            vec![Some(Nat(5)), Some(Nat(2)), Some(Nat(8))]
        );
        assert_eq!(reduce_all(&a, &pt()), Some(Nat(15)));
    }

    #[test]
    fn parallel_reduction_matches_for_lattice_ops() {
        let pair: OpPair<Nat, Max, Min> = OpPair::new();
        let a = sample();
        assert_eq!(reduce_all_parallel(&a, &pair), reduce_all(&a, &pair));
        assert_eq!(reduce_all(&a, &pair), Some(Nat(8)));
    }

    #[test]
    fn degrees() {
        let a = sample();
        assert_eq!(row_degrees(&a), vec![2, 0, 2]);
        assert_eq!(col_degrees(&a), vec![2, 1, 1]);
    }

    #[test]
    fn empty_reductions() {
        let a = Csr::<Nat>::empty(2, 2);
        assert_eq!(reduce_all(&a, &pt()), None);
        assert_eq!(reduce_rows(&a, &pt()), vec![None, None]);
    }
}
