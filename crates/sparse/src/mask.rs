//! Write masks — GraphBLAS-style restriction of kernels to a stored
//! pattern.
//!
//! Masked SpGEMM computes `C⟨M⟩ = A ⊕.⊗ B` only at coordinates where
//! the mask stores an entry, skipping all other accumulation. For
//! wedge/triangle counting this avoids materializing `A²` (the
//! `closed_wedge_count` path in `aarray-graph` demonstrates the
//! difference, and the masked variant is ablated in the benches).

use crate::csr::Csr;
use aarray_algebra::{BinaryOp, OpPair, Value};

/// Keep only the entries of `a` at coordinates where `mask` stores an
/// entry (structural mask; mask values are ignored).
pub fn apply_mask<V: Value, W: Value>(a: &Csr<V>, mask: &Csr<W>) -> Csr<V> {
    assert_eq!(
        (a.nrows(), a.ncols()),
        (mask.nrows(), mask.ncols()),
        "mask dims must agree"
    );
    let mut indptr = vec![0usize; a.nrows() + 1];
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for r in 0..a.nrows() {
        let (ac, av) = a.row(r);
        let (mc, _) = mask.row(r);
        let (mut i, mut j) = (0usize, 0usize);
        while i < ac.len() && j < mc.len() {
            match ac[i].cmp(&mc[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    indices.push(ac[i]);
                    values.push(av[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        indptr[r + 1] = indices.len();
    }
    Csr::from_parts(a.nrows(), a.ncols(), indptr, indices, values)
}

/// Complement mask: keep entries of `a` where `mask` stores nothing.
pub fn apply_mask_complement<V: Value, W: Value>(a: &Csr<V>, mask: &Csr<W>) -> Csr<V> {
    assert_eq!(
        (a.nrows(), a.ncols()),
        (mask.nrows(), mask.ncols()),
        "mask dims must agree"
    );
    let mut indptr = vec![0usize; a.nrows() + 1];
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for r in 0..a.nrows() {
        let (ac, av) = a.row(r);
        let (mc, _) = mask.row(r);
        let mut j = 0usize;
        for (i, &c) in ac.iter().enumerate() {
            while j < mc.len() && mc[j] < c {
                j += 1;
            }
            if j >= mc.len() || mc[j] != c {
                indices.push(c);
                values.push(av[i].clone());
            }
        }
        indptr[r + 1] = indices.len();
    }
    Csr::from_parts(a.nrows(), a.ncols(), indptr, indices, values)
}

/// Masked SpGEMM: `C⟨M⟩ = A ⊕.⊗ B`, accumulating only into columns the
/// mask stores for each row. Fold order per entry is ascending inner
/// key, identical to the unmasked kernels.
pub fn spgemm_masked<V, W, A, M>(
    a: &Csr<V>,
    b: &Csr<V>,
    mask: &Csr<W>,
    pair: &OpPair<V, A, M>,
) -> Csr<V>
where
    V: Value,
    W: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");
    assert_eq!(
        (mask.nrows(), mask.ncols()),
        (a.nrows(), b.ncols()),
        "mask must have the output's dimensions"
    );

    let mut indptr = vec![0usize; a.nrows() + 1];
    let mut indices = Vec::new();
    let mut values = Vec::new();

    // Per-row dense lookup of allowed columns: allowed[j] = slot index.
    let mut allowed = vec![usize::MAX; b.ncols()];
    for i in 0..a.nrows() {
        let (mcols, _) = mask.row(i);
        if mcols.is_empty() {
            indptr[i + 1] = indices.len();
            continue;
        }
        for (slot, &j) in mcols.iter().enumerate() {
            allowed[j as usize] = slot;
        }
        let mut acc: Vec<Option<V>> = vec![None; mcols.len()];

        let (ks, avs) = a.row(i);
        for (&k, av) in ks.iter().zip(avs.iter()) {
            let (js, bvs) = b.row(k as usize);
            for (&j, bv) in js.iter().zip(bvs.iter()) {
                let slot = allowed[j as usize];
                if slot != usize::MAX {
                    let term = pair.times(av, bv);
                    acc[slot] = Some(match acc[slot].take() {
                        None => term,
                        Some(prev) => pair.plus(&prev, &term),
                    });
                }
            }
        }
        for (slot, &j) in mcols.iter().enumerate() {
            if let Some(v) = acc[slot].take() {
                if !pair.is_zero(&v) {
                    indices.push(j);
                    values.push(v);
                }
            }
            allowed[j as usize] = usize::MAX;
        }
        indptr[i + 1] = indices.len();
    }

    Csr::from_parts(a.nrows(), b.ncols(), indptr, indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::elementwise::ewise_mul;
    use crate::spgemm::spgemm;
    use aarray_algebra::ops::{Plus, Times};
    use aarray_algebra::values::nat::Nat;

    fn pt() -> OpPair<Nat, Plus, Times> {
        OpPair::new()
    }

    fn build(nrows: usize, ncols: usize, t: &[(usize, usize, u64)]) -> Csr<Nat> {
        let mut coo = Coo::new(nrows, ncols);
        for &(r, c, v) in t {
            coo.push(r, c, Nat(v));
        }
        coo.into_csr(&pt())
    }

    #[test]
    fn structural_mask_keeps_intersection() {
        let a = build(2, 3, &[(0, 0, 1), (0, 2, 2), (1, 1, 3)]);
        let m = build(2, 3, &[(0, 2, 9), (1, 0, 9)]);
        let masked = apply_mask(&a, &m);
        assert_eq!(masked.nnz(), 1);
        assert_eq!(masked.get(0, 2), Some(&Nat(2)));
    }

    #[test]
    fn complement_mask_keeps_difference() {
        let a = build(2, 3, &[(0, 0, 1), (0, 2, 2), (1, 1, 3)]);
        let m = build(2, 3, &[(0, 2, 9)]);
        let masked = apply_mask_complement(&a, &m);
        assert_eq!(masked.nnz(), 2);
        assert_eq!(masked.get(0, 0), Some(&Nat(1)));
        assert_eq!(masked.get(0, 2), None);
    }

    #[test]
    fn masked_spgemm_equals_multiply_then_mask() {
        let a = build(3, 3, &[(0, 1, 1), (1, 2, 2), (2, 0, 3), (0, 2, 1)]);
        let b = build(3, 3, &[(1, 0, 4), (2, 1, 5), (0, 2, 6)]);
        let mask = build(3, 3, &[(0, 0, 1), (0, 1, 1), (1, 1, 1), (2, 2, 1)]);
        let masked = spgemm_masked(&a, &b, &mask, &pt());
        let reference = apply_mask(&spgemm(&a, &b, &pt()), &mask);
        assert_eq!(masked, reference);
    }

    #[test]
    fn masked_wedge_pattern_equivalence() {
        // A² ⟨A⟩ equals (A ⊕.⊗ A) ∘ A when the mask is A's own pattern —
        // the triangle-counting identity.
        let a = build(
            4,
            4,
            &[(0, 1, 1), (1, 2, 1), (0, 2, 1), (2, 3, 1), (3, 0, 1)],
        );
        let masked = spgemm_masked(&a, &a, &a, &pt());
        let dense_way = ewise_mul(&spgemm(&a, &a, &pt()), &a, &pt());
        assert_eq!(masked, dense_way);
        // One closed wedge: 0→1→2 closing 0→2.
        assert_eq!(masked.values().iter().map(|v| v.0).sum::<u64>(), 1);
    }

    #[test]
    fn empty_mask_gives_empty_result() {
        let a = build(2, 2, &[(0, 0, 1), (1, 1, 1)]);
        let m = Csr::<Nat>::empty(2, 2);
        assert_eq!(spgemm_masked(&a, &a, &m, &pt()).nnz(), 0);
        assert_eq!(apply_mask(&a, &m).nnz(), 0);
        assert_eq!(apply_mask_complement(&a, &m), a);
    }
}
