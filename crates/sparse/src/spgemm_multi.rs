//! Fused multi-semiring SpGEMM: `K` products `C_p = A ⊕_p.⊗_p B` from
//! **one** traversal of the operands.
//!
//! The paper's Figure 3 workload multiplies the *same* incidence
//! pattern under seven different `⊕.⊗` pairs. Running seven
//! independent [`crate::spgemm::spgemm_with`] calls re-reads `A`'s and
//! `B`'s index structure seven times; the sparsity pattern work is
//! identical every time and only the value arithmetic differs. This
//! module hoists that redundancy:
//!
//! 1. the **symbolic** pass ([`crate::symbolic::spgemm_symbolic`])
//!    runs once — the structural pattern depends only on the operand
//!    patterns, never on the algebra;
//! 2. a single **numeric** traversal walks `A`'s rows and `B`'s rows
//!    once, and for every contributing `(i, k, j)` coordinate feeds
//!    all `K` accumulators, laid out structure-of-arrays
//!    (`accs[p * nslots + slot]`, one contiguous lane per pair).
//!
//! Heterogeneous pairs are handled through the object-safe
//! [`DynOpPair`] adapter, so one call can mix `+.×`, `max.min`,
//! `min.+`, … over the same value set.
//!
//! **Bit-identity.** Terms are folded left-associated in ascending
//! inner-key order — the same canonical order as every other kernel in
//! this crate — and each lane prunes its own `⊕`-produced zeros with
//! its own `is_zero`. Output `p` is therefore bit-identical to the
//! sequential `spgemm_with(a, b, pairs[p], _)` for arbitrary
//! non-associative, non-commutative operations (property-tested in
//! `tests/proptest_multi.rs`).

use crate::csr::Csr;
use crate::spgemm::{row_chunks, spgemm_flops};
use crate::symbolic::{spgemm_symbolic, SymbolicProduct};
use aarray_algebra::dynpair::DynOpPair;
use aarray_algebra::Value;
use aarray_obs::{
    counters, current_op, enter_op, histograms, histograms_enabled, journal, memstats, Counter,
    EventKind, Hist, MemRegion, MemReservation, OpKind, OpToken, Stage,
};
use rayon::prelude::*;
use std::collections::HashMap;
use std::mem::size_of;

/// Per-row slot-lookup strategy for the fused numeric traversal.
///
/// Mirrors the SPA/Hash split of [`crate::spgemm::Accumulator`] (there
/// is no ESC variant: the symbolic pattern already provides exact
/// sorted slots, which is precisely what expand-sort-compress would
/// rediscover per row).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultiAccumulator {
    /// Dense `O(ncols)` column→slot scratchpad, reset via the touched
    /// slots only. Best when output rows are dense-ish or `ncols` is
    /// moderate.
    Spa,
    /// Hash map column→slot built per row. Best for very wide, very
    /// sparse outputs where an `O(ncols)` scratch is wasteful.
    Hash,
}

/// Fused `K`-pair product: `[A ⊕_p.⊗_p B for p in pairs]` with one
/// symbolic pass and one numeric traversal.
///
/// Returns one `Csr` per pair, in order. Each output is bit-identical
/// to the corresponding sequential [`crate::spgemm::spgemm_with`]
/// call. Panics if `A.ncols() != B.nrows()`.
pub fn spgemm_multi<V: Value>(
    a: &Csr<V>,
    b: &Csr<V>,
    pairs: &[&dyn DynOpPair<V>],
    acc: MultiAccumulator,
) -> Vec<Csr<V>> {
    // Token opens before the symbolic pass so its span lands inside
    // the op's journal window.
    let mut op = OpToken::begin_if_root(OpKind::Kernel);
    if let Some(t) = op.as_mut() {
        t.set_flops(spgemm_flops(a, b) * pairs.len() as u64);
        t.set_lanes(pairs.len() as u64);
        t.set_dispatch(false, 1);
    }
    let sym = spgemm_symbolic(a, b);
    let outs = spgemm_multi_numeric(&sym, a, b, pairs, acc);
    if let Some(mut t) = op {
        t.set_out_nnz(outs.iter().map(|c| c.nnz() as u64).sum());
        t.finish();
    }
    outs
}

/// Row-parallel fused `K`-pair product.
///
/// Output rows are independent and each row's fold order is identical
/// to the serial kernel's, so results are bit-identical to
/// [`spgemm_multi`] for any operations.
pub fn spgemm_multi_parallel<V: Value>(
    a: &Csr<V>,
    b: &Csr<V>,
    pairs: &[&dyn DynOpPair<V>],
    acc: MultiAccumulator,
) -> Vec<Csr<V>> {
    let mut op = OpToken::begin_if_root(OpKind::Kernel);
    if let Some(t) = op.as_mut() {
        t.set_flops(spgemm_flops(a, b) * pairs.len() as u64);
        t.set_lanes(pairs.len() as u64);
        t.set_dispatch(true, rayon::current_num_threads() as u64);
    }
    let sym = spgemm_symbolic(a, b);
    let outs = spgemm_multi_numeric_parallel(&sym, a, b, pairs, acc);
    if let Some(mut t) = op {
        t.set_out_nnz(outs.iter().map(|c| c.nnz() as u64).sum());
        t.finish();
    }
    outs
}

/// Record one fused numeric traversal in the global counter registry:
/// the traversal itself, how many lanes it fed, the slot-lookup
/// strategy, and whether the row-parallel driver ran — plus the
/// matching explain event (payload `b` packs `lanes << 1 | parallel`).
fn record_fused(nlanes: usize, acc: MultiAccumulator, parallel: bool) {
    let c = counters();
    c.incr(Counter::FusedTraversals);
    c.add(Counter::FusedLanes, nlanes as u64);
    c.incr(match acc {
        MultiAccumulator::Spa => Counter::FusedSpa,
        MultiAccumulator::Hash => Counter::FusedHash,
    });
    if parallel {
        c.incr(Counter::FusedParallel);
    } else {
        // A serial traversal bypasses the pool entirely; count it as
        // one inline task so 1-thread runs don't read as "no work ran"
        // next to a zero `pool.tasks-local`.
        c.incr(Counter::PoolTasksInline);
    }
    let acc_code = match acc {
        MultiAccumulator::Spa => 0,
        MultiAccumulator::Hash => 1,
    };
    journal().record(
        EventKind::FusedChoice,
        acc_code,
        ((nlanes as u64) << 1) | parallel as u64,
    );
}

fn check_dims<V: Value>(sym: &SymbolicProduct, a: &Csr<V>, b: &Csr<V>) {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "inner dimensions must agree: A is {}×{}, B is {}×{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    assert_eq!(
        sym.shape(),
        (a.nrows(), b.ncols()),
        "symbolic pattern built for different operands"
    );
}

/// Numeric phase of the fused product against a precomputed symbolic
/// pattern (reuse the pattern across calls when the operands' sparsity
/// is fixed — e.g. a plan that multiplies under new algebras later).
pub fn spgemm_multi_numeric<V: Value>(
    sym: &SymbolicProduct,
    a: &Csr<V>,
    b: &Csr<V>,
    pairs: &[&dyn DynOpPair<V>],
    acc: MultiAccumulator,
) -> Vec<Csr<V>> {
    check_dims(sym, a, b);
    record_fused(pairs.len(), acc, false);
    let npairs = pairs.len();

    let mut outs: Vec<RowsOut<V>> = (0..npairs).map(|_| RowsOut::with_rows(a.nrows())).collect();
    let mut scratch = MultiScratch::new(b.ncols());
    let mut row_out: Vec<Vec<(u32, V)>> = vec![Vec::new(); npairs];
    for i in 0..a.nrows() {
        multiply_row_multi(a, b, pairs, acc, i, sym.row(i), &mut scratch, &mut row_out);
        for (p, rows) in row_out.iter_mut().enumerate() {
            outs[p].push_row(i, rows.drain(..));
        }
    }

    outs.into_iter()
        .map(|o| o.into_csr(a.nrows(), b.ncols()))
        .collect()
}

/// Row-parallel numeric phase; bit-identical to
/// [`spgemm_multi_numeric`].
pub fn spgemm_multi_numeric_parallel<V: Value>(
    sym: &SymbolicProduct,
    a: &Csr<V>,
    b: &Csr<V>,
    pairs: &[&dyn DynOpPair<V>],
    acc: MultiAccumulator,
) -> Vec<Csr<V>> {
    check_dims(sym, a, b);
    record_fused(pairs.len(), acc, true);
    let npairs = pairs.len();

    // Explicit contiguous row chunks: one scratch per chunk (the old
    // `map_init` per-state semantics) and — when more than one chunk
    // exists — a `numeric` journal span recorded on the executing
    // thread per chunk, making multi-worker overlap visible in the
    // Chrome trace. Each row yields its K per-pair segments, landing
    // in row-indexed slots regardless of which thread claimed the
    // chunk; reassembly below is in row order, so the output is
    // bit-identical to the serial traversal.
    // One row's K per-pair output segments.
    type RowSegments<V> = Vec<Vec<(u32, V)>>;
    let ranges = row_chunks(a.nrows());
    let spans = ranges.len() > 1;
    // Pool workers carry no op context of their own: thread the
    // submitting thread's op into each chunk so its numeric spans
    // attribute to the operation that dispatched here.
    let cur = current_op();
    let chunks: Vec<Vec<RowSegments<V>>> = ranges
        .into_par_iter()
        .map(|range| {
            let _op = enter_op(cur);
            if spans {
                journal().begin(Stage::Numeric, range.len() as u64);
            }
            let mut scratch = MultiScratch::new(b.ncols());
            let mut rows = Vec::with_capacity(range.len());
            for i in range.clone() {
                let mut row_out: Vec<Vec<(u32, V)>> = vec![Vec::new(); npairs];
                multiply_row_multi(a, b, pairs, acc, i, sym.row(i), &mut scratch, &mut row_out);
                rows.push(row_out);
            }
            if spans {
                journal().end(Stage::Numeric, range.len() as u64);
            }
            rows
        })
        .collect();

    let mut outs: Vec<RowsOut<V>> = (0..npairs).map(|_| RowsOut::with_rows(a.nrows())).collect();
    for (i, row) in chunks.into_iter().flatten().enumerate() {
        for (p, segment) in row.into_iter().enumerate() {
            outs[p].push_row(i, segment.into_iter());
        }
    }
    outs.into_iter()
        .map(|o| o.into_csr(a.nrows(), b.ncols()))
        .collect()
}

/// Accumulating output buffers for one pair's Csr.
struct RowsOut<V> {
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<V>,
}

impl<V: Value> RowsOut<V> {
    fn with_rows(nrows: usize) -> Self {
        RowsOut {
            indptr: vec![0usize; nrows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    fn push_row(&mut self, i: usize, entries: impl Iterator<Item = (u32, V)>) {
        for (j, v) in entries {
            self.indices.push(j);
            self.values.push(v);
        }
        self.indptr[i + 1] = self.indices.len();
    }

    fn into_csr(self, nrows: usize, ncols: usize) -> Csr<V> {
        Csr::from_parts(nrows, ncols, self.indptr, self.indices, self.values)
    }
}

/// Reusable per-thread scratch: the dense column→slot map (SPA mode)
/// and the K-lane structure-of-arrays accumulator block. Reported to
/// [`MemRegion::FusedAccumulator`] at its high-water capacity (the
/// slot map is fixed-size; the SoA block grows with the widest
/// `K × nslots` row seen).
struct MultiScratch<V> {
    slot_of: Vec<usize>,
    accs: Vec<Option<V>>,
    mem: MemReservation,
}

impl<V: Value> MultiScratch<V> {
    fn new(ncols: usize) -> Self {
        MultiScratch {
            slot_of: vec![usize::MAX; ncols],
            accs: Vec::new(),
            mem: memstats().track(
                MemRegion::FusedAccumulator,
                (ncols * size_of::<usize>()) as u64,
            ),
        }
    }

    /// Re-report after the accumulator block (possibly) grew.
    fn report_capacity(&mut self) {
        self.mem.grow_to(
            (self.slot_of.len() * size_of::<usize>()
                + self.accs.capacity() * size_of::<Option<V>>()) as u64,
        );
    }
}

/// One fused output row: a single sweep over `A`'s row `i` and the
/// touched rows of `B`, folding every term into all `K` lanes.
#[allow(clippy::too_many_arguments)]
fn multiply_row_multi<V: Value>(
    a: &Csr<V>,
    b: &Csr<V>,
    pairs: &[&dyn DynOpPair<V>],
    acc: MultiAccumulator,
    i: usize,
    srow: &[u32],
    scratch: &mut MultiScratch<V>,
    out: &mut [Vec<(u32, V)>],
) {
    let npairs = pairs.len();
    let nslots = srow.len();
    scratch.accs.clear();
    scratch.accs.resize(npairs * nslots, None);
    scratch.report_capacity();
    let record = histograms_enabled();
    if record {
        let (ks, _) = a.row(i);
        let flops: u64 = ks.iter().map(|&k| b.row_nnz(k as usize) as u64).sum();
        // ⊗ applications actually performed: every term feeds K lanes.
        histograms().record(Hist::RowFlops, flops * npairs as u64);
        histograms().record(Hist::RowNnz, nslots as u64);
        journal().record(EventKind::RowShape, i as u64, flops * npairs as u64);
    }
    let MultiScratch { slot_of, accs, .. } = scratch;

    match acc {
        MultiAccumulator::Spa => {
            for (slot, &j) in srow.iter().enumerate() {
                slot_of[j as usize] = slot;
            }
            fuse_row_terms(a, b, pairs, i, nslots, accs, |j| slot_of[j as usize]);
            for &j in srow {
                slot_of[j as usize] = usize::MAX;
            }
        }
        MultiAccumulator::Hash => {
            let map: HashMap<u32, usize> = srow.iter().enumerate().map(|(s, &j)| (j, s)).collect();
            memstats().record_transient(
                MemRegion::HashScratch,
                (map.capacity() * (size_of::<(u32, usize)>() + size_of::<u64>())) as u64,
            );
            fuse_row_terms(a, b, pairs, i, nslots, accs, |j| map[&j]);
        }
    }

    // Emit each lane in slot (= ascending column) order, pruning the
    // lane's own ⊕-produced zeros: the implicit-zero invariant is
    // per-algebra, so lanes may legitimately emit different patterns.
    for (p, pair) in pairs.iter().enumerate() {
        let lane = &mut accs[p * nslots..(p + 1) * nslots];
        let mut occupied = 0u64;
        for (slot, &j) in srow.iter().enumerate() {
            if let Some(v) = lane[slot].take() {
                occupied += 1;
                if !pair.is_zero(&v) {
                    out[p].push((j, v));
                }
            }
        }
        if record {
            // Per-lane filled slots (pre-zero-prune) against the
            // symbolic pattern's nslots: how tight the structural
            // bound is for this algebra.
            histograms().record(Hist::AccOccupancy, occupied);
        }
    }
}

/// The shared traversal: for every contributing `(k, j)` term of row
/// `i`, apply all `K` pairs and fold left-associated (ascending `k`)
/// into the SoA accumulator block. `lookup` resolves a column to its
/// slot under the active strategy (dense scratch or per-row hash map).
fn fuse_row_terms<V: Value>(
    a: &Csr<V>,
    b: &Csr<V>,
    pairs: &[&dyn DynOpPair<V>],
    i: usize,
    nslots: usize,
    accs: &mut [Option<V>],
    lookup: impl Fn(u32) -> usize,
) {
    let (ks, avs) = a.row(i);
    for (&k, av) in ks.iter().zip(avs.iter()) {
        let (js, bvs) = b.row(k as usize);
        for (&j, bv) in js.iter().zip(bvs.iter()) {
            let slot = lookup(j);
            debug_assert!(slot < nslots, "numeric term outside symbolic pattern");
            for (p, pair) in pairs.iter().enumerate() {
                let cell = &mut accs[p * nslots + slot];
                let term = pair.times(av, bv);
                *cell = Some(match cell.take() {
                    None => term,
                    Some(prev) => pair.plus(&prev, &term),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::spgemm::{spgemm_with, Accumulator};
    use aarray_algebra::ops::{AbsDiff, Plus, Times};
    use aarray_algebra::pairs::{MaxMin, MaxPlus, MinPlus, PlusTimes};
    use aarray_algebra::values::nat::Nat;
    use aarray_algebra::values::zn::Zn;
    use aarray_algebra::OpPair;

    fn pt() -> PlusTimes<Nat> {
        PlusTimes::new()
    }

    fn build(nrows: usize, ncols: usize, t: &[(usize, usize, u64)]) -> Csr<Nat> {
        let mut coo = Coo::new(nrows, ncols);
        for &(r, c, v) in t {
            coo.push(r, c, Nat(v));
        }
        coo.into_csr(&pt())
    }

    fn operands() -> (Csr<Nat>, Csr<Nat>) {
        let a = build(
            4,
            5,
            &[
                (0, 0, 1),
                (0, 3, 2),
                (1, 1, 3),
                (1, 4, 1),
                (2, 2, 2),
                (3, 0, 5),
                (3, 4, 7),
            ],
        );
        let b = build(
            5,
            3,
            &[
                (0, 1, 2),
                (1, 0, 1),
                (2, 2, 3),
                (3, 1, 4),
                (4, 0, 6),
                (4, 2, 1),
            ],
        );
        (a, b)
    }

    #[test]
    fn fused_matches_sequential_per_pair() {
        let (a, b) = operands();
        let pt = PlusTimes::<Nat>::new();
        let mm = MaxMin::<Nat>::new();
        let mp = MaxPlus::<Nat>::new();
        let np = MinPlus::<Nat>::new();
        let pairs: Vec<&dyn DynOpPair<Nat>> = vec![&pt, &mm, &mp, &np];
        for acc in [MultiAccumulator::Spa, MultiAccumulator::Hash] {
            let fused = spgemm_multi(&a, &b, &pairs, acc);
            assert_eq!(fused.len(), 4);
            assert_eq!(fused[0], spgemm_with(&a, &b, &pt, Accumulator::Spa));
            assert_eq!(fused[1], spgemm_with(&a, &b, &mm, Accumulator::Spa));
            assert_eq!(fused[2], spgemm_with(&a, &b, &mp, Accumulator::Spa));
            assert_eq!(fused[3], spgemm_with(&a, &b, &np, Accumulator::Spa));
        }
    }

    #[test]
    fn parallel_fused_is_bit_identical_for_nonassociative_plus() {
        // ⊕ = |−| is not associative: fold order is observable.
        let ad: OpPair<Nat, AbsDiff, Times> = OpPair::new();
        let pt = PlusTimes::<Nat>::new();
        let pairs: Vec<&dyn DynOpPair<Nat>> = vec![&ad, &pt];
        let mut ca = Coo::new(3, 40);
        let mut cb = Coo::new(40, 3);
        let mut x = 9u64;
        for k in 0..40usize {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ca.push(x as usize % 3, k, Nat(x % 17 + 1));
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            cb.push(k, x as usize % 3, Nat(x % 13 + 1));
        }
        let a = ca.into_csr(&pt);
        let b = cb.into_csr(&pt);
        for acc in [MultiAccumulator::Spa, MultiAccumulator::Hash] {
            let serial = spgemm_multi(&a, &b, &pairs, acc);
            let parallel = spgemm_multi_parallel(&a, &b, &pairs, acc);
            assert_eq!(serial, parallel, "{:?}", acc);
            assert_eq!(serial[0], spgemm_with(&a, &b, &ad, Accumulator::Esc));
            assert_eq!(serial[1], spgemm_with(&a, &b, &pt, Accumulator::Esc));
        }
    }

    #[test]
    fn lanes_prune_their_own_zeros_zn_wraparound() {
        // In Z6, 2×1 ⊕ 2×2 = 2 + 4 ≡ 0: the +.× lane must drop the
        // wrapped-to-zero entry while a lane with a different zero
        // element (same slot, different algebra) keeps its entry —
        // the implicit-zero invariant is per-lane. Regression test for the fused kernel
        // and the ESC accumulator agreeing on ⊕-produced zeros.
        type Z6 = Zn<6>;
        let pt6 = PlusTimes::<Z6>::new();
        // ×.+ is also closed on Z6 with identity-of-⊕ = 1: a lane
        // whose "zero" differs, so it must keep what +.× prunes.
        let tp6: OpPair<Z6, Times, Plus> = OpPair::new();
        let mut ca = Coo::new(1, 2);
        ca.push(0, 0, Z6::new(2));
        ca.push(0, 1, Z6::new(2));
        let mut cb = Coo::new(2, 1);
        cb.push(0, 0, Z6::new(1));
        cb.push(1, 0, Z6::new(2));
        let a = ca.into_csr(&pt6);
        let b = cb.into_csr(&pt6);

        let pairs: Vec<&dyn DynOpPair<Z6>> = vec![&pt6, &tp6];
        for acc in [MultiAccumulator::Spa, MultiAccumulator::Hash] {
            let fused = spgemm_multi(&a, &b, &pairs, acc);
            assert_eq!(fused[0].nnz(), 0, "wrapped sum must be pruned ({:?})", acc);
            assert_eq!(fused[1].nnz(), 1, "×.+ lane unaffected ({:?})", acc);
            // And identically to every sequential accumulator.
            for seq_acc in [Accumulator::Spa, Accumulator::Hash, Accumulator::Esc] {
                assert_eq!(fused[0], spgemm_with(&a, &b, &pt6, seq_acc));
                assert_eq!(fused[1], spgemm_with(&a, &b, &tp6, seq_acc));
            }
        }
    }

    #[test]
    fn symbolic_pattern_reuse_across_numeric_calls() {
        let (a, b) = operands();
        let sym = spgemm_symbolic(&a, &b);
        let pt = PlusTimes::<Nat>::new();
        let mm = MaxMin::<Nat>::new();
        let first = spgemm_multi_numeric(
            &sym,
            &a,
            &b,
            &[&pt as &dyn DynOpPair<Nat>],
            MultiAccumulator::Spa,
        );
        let second = spgemm_multi_numeric(
            &sym,
            &a,
            &b,
            &[&mm as &dyn DynOpPair<Nat>],
            MultiAccumulator::Spa,
        );
        assert_eq!(first[0], spgemm_with(&a, &b, &pt, Accumulator::Spa));
        assert_eq!(second[0], spgemm_with(&a, &b, &mm, Accumulator::Spa));
    }

    #[test]
    fn empty_pair_list_and_empty_operands() {
        let (a, b) = operands();
        let none: Vec<&dyn DynOpPair<Nat>> = Vec::new();
        assert!(spgemm_multi(&a, &b, &none, MultiAccumulator::Spa).is_empty());

        let ea = Csr::<Nat>::empty(3, 4);
        let eb = Csr::<Nat>::empty(4, 2);
        let pt = PlusTimes::<Nat>::new();
        let pairs: Vec<&dyn DynOpPair<Nat>> = vec![&pt];
        let out = spgemm_multi(&ea, &eb, &pairs, MultiAccumulator::Hash);
        assert_eq!((out[0].nrows(), out[0].ncols(), out[0].nnz()), (3, 2, 0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = build(2, 3, &[(0, 0, 1)]);
        let b = build(2, 2, &[(0, 0, 1)]);
        let pt = PlusTimes::<Nat>::new();
        let pairs: Vec<&dyn DynOpPair<Nat>> = vec![&pt];
        let _ = spgemm_multi(&a, &b, &pairs, MultiAccumulator::Spa);
    }

    #[test]
    fn fused_traversals_and_lanes_are_counted() {
        use aarray_obs::snapshot;
        let (a, b) = operands();
        let pt = PlusTimes::<Nat>::new();
        let mm = MaxMin::<Nat>::new();
        let pairs: Vec<&dyn DynOpPair<Nat>> = vec![&pt, &mm];
        let before = snapshot();
        let _ = spgemm_multi(&a, &b, &pairs, MultiAccumulator::Spa);
        let _ = spgemm_multi(&a, &b, &pairs, MultiAccumulator::Hash);
        let _ = spgemm_multi_parallel(&a, &b, &pairs, MultiAccumulator::Spa);
        let delta = snapshot().since(&before);
        // ≥: the registry is process-global, tests run concurrently.
        assert!(delta.get(Counter::FusedTraversals) >= 3, "{}", delta);
        assert!(delta.get(Counter::FusedLanes) >= 6, "{}", delta);
        assert!(delta.get(Counter::FusedSpa) >= 2, "{}", delta);
        assert!(delta.get(Counter::FusedHash) >= 1, "{}", delta);
        assert!(delta.get(Counter::FusedParallel) >= 1, "{}", delta);
    }

    #[test]
    fn fused_scratch_memory_and_occupancy_recorded() {
        let (a, b) = operands();
        let pt = PlusTimes::<Nat>::new();
        let mm = MaxMin::<Nat>::new();
        let pairs: Vec<&dyn DynOpPair<Nat>> = vec![&pt, &mm];
        let occ_before = histograms().get(Hist::AccOccupancy).snapshot();
        let nnz_before = histograms().get(Hist::RowNnz).snapshot();
        let _ = spgemm_multi(&a, &b, &pairs, MultiAccumulator::Spa);
        let _ = spgemm_multi(&a, &b, &pairs, MultiAccumulator::Hash);
        // Slot map alone is ncols × 8 bytes; the SoA block adds more.
        assert!(
            memstats().peak(MemRegion::FusedAccumulator) >= (b.ncols() * size_of::<usize>()) as u64
        );
        assert!(
            memstats().peak(MemRegion::HashScratch) >= 1,
            "hash slot map reported transiently"
        );
        let occ = histograms()
            .get(Hist::AccOccupancy)
            .snapshot()
            .since(&occ_before);
        // 2 traversals × 4 rows × 2 lanes = 16 lane-rows recorded.
        assert!(occ.count() >= 16, "per-lane occupancy recorded");
        let nnz = histograms().get(Hist::RowNnz).snapshot().since(&nnz_before);
        assert!(nnz.count() >= 8, "per-row structural nnz recorded");
    }
}
