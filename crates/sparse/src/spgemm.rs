//! Sparse × sparse multiplication `C = A ⊕.⊗ B` (Definition I.3).
//!
//! All variants implement Gustavson's row-wise algorithm: for each row
//! `i` of `A`, scan its stored entries `(k, A(i,k))` in **ascending
//! `k`**, and for each stored `(j, B(k,j))` accumulate
//! `A(i,k) ⊗ B(k,j)` into output column `j`. Because `k` ascends and
//! the accumulators fold left-to-right per column, every output entry
//! is the left-associated `⊕`-fold over ascending inner keys — the
//! canonical order that makes the result well defined without assuming
//! `⊕` associativity or commutativity (see the crate docs).
//!
//! Three accumulator strategies are provided and benchmarked by the
//! `ablate_accumulators` bench:
//!
//! * [`Accumulator::Spa`] — dense sparse-accumulator scratchpad
//!   (`O(ncols)` reset-free scratch per thread); best for dense-ish
//!   rows;
//! * [`Accumulator::Hash`] — hash map keyed by output column; best for
//!   very sparse, wide outputs;
//! * [`Accumulator::Esc`] — expand-sort-compress; best cache behaviour
//!   for heavy-tailed rows, and the simplest to reason about.

use crate::csr::Csr;
use aarray_algebra::{BinaryOp, OpPair, Value};
use aarray_obs::{
    counters, current_op, enter_op, histograms, histograms_enabled, journal, memstats, Counter,
    EventKind, Hist, MemRegion, MemReservation, OpKind, OpToken, Stage,
};
use rayon::prelude::*;
use std::collections::HashMap;
use std::mem::size_of;
use std::ops::Range;

/// Contiguous row ranges for the row-parallel drivers: ~4 chunks per
/// pool thread (so uneven rows rebalance by stealing), one chunk when
/// the pool cannot fan out. Each chunk is one unit of work-stealing
/// *and* one `numeric` span on whichever thread executes it, which is
/// what makes per-thread overlap visible in the Chrome trace.
pub(crate) fn row_chunks(nrows: usize) -> Vec<Range<usize>> {
    let threads = rayon::current_num_threads();
    let nchunks = if threads <= 1 || nrows <= 1 {
        1
    } else {
        (threads * 4).min(nrows)
    };
    let base = nrows / nchunks;
    let extra = nrows % nchunks;
    let mut ranges = Vec::with_capacity(nchunks);
    let mut lo = 0;
    for c in 0..nchunks {
        let hi = lo + base + usize::from(c < extra);
        ranges.push(lo..hi);
        lo = hi;
    }
    ranges
}

/// Accumulator strategy for [`spgemm_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Accumulator {
    /// Dense scratchpad (sparse accumulator).
    Spa,
    /// Hash-map accumulator.
    Hash,
    /// Expand, stable-sort, compress.
    Esc,
}

impl Accumulator {
    /// Stable numeric code used in journal explain-event payloads.
    pub(crate) fn journal_code(self) -> u64 {
        match self {
            Accumulator::Spa => 0,
            Accumulator::Hash => 1,
            Accumulator::Esc => 2,
        }
    }
}

/// Record one one-shot kernel invocation in the global counter
/// registry (which accumulator was selected, and whether the
/// row-parallel driver ran), and append the matching explain event to
/// the flight recorder.
fn record_kernel(acc: Accumulator, parallel: bool) {
    let c = counters();
    c.incr(match acc {
        Accumulator::Spa => Counter::KernelSpa,
        Accumulator::Hash => Counter::KernelHash,
        Accumulator::Esc => Counter::KernelEsc,
    });
    if parallel {
        c.incr(Counter::KernelParallel);
    } else {
        // Serial one-pair kernels never touch the pool; see the fused
        // path's identical accounting in `spgemm_multi::record_fused`.
        c.incr(Counter::PoolTasksInline);
    }
    journal().record(EventKind::KernelChoice, acc.journal_code(), parallel as u64);
}

/// Count the `⊗` operations `A ⊕.⊗ B` will perform:
/// `Σ over stored A(i,k) of nnz(B row k)` — the standard SpGEMM "flop"
/// measure, used by the benches to report normalized throughput and to
/// predict output density.
pub fn spgemm_flops<V: Value, W: Value>(a: &Csr<V>, b: &Csr<W>) -> u64 {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");
    let mut flops = 0u64;
    for &k in a.indices() {
        flops += b.row_nnz(k as usize) as u64;
    }
    flops
}

/// `C = A ⊕.⊗ B` with the default accumulator ([`Accumulator::Spa`]).
///
/// Panics if `A.ncols() != B.nrows()`.
pub fn spgemm<V, A, M>(a: &Csr<V>, b: &Csr<V>, pair: &OpPair<V, A, M>) -> Csr<V>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    spgemm_with(a, b, pair, Accumulator::Spa)
}

/// `C = A ⊕.⊗ B` with an explicit accumulator strategy.
pub fn spgemm_with<V, A, M>(
    a: &Csr<V>,
    b: &Csr<V>,
    pair: &OpPair<V, A, M>,
    acc: Accumulator,
) -> Csr<V>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "inner dimensions must agree: A is {}×{}, B is {}×{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let mut op = OpToken::begin_if_root(OpKind::Kernel);
    if let Some(t) = op.as_mut() {
        t.set_flops(spgemm_flops(a, b));
        t.set_lanes(1);
        t.set_dispatch(false, 1);
    }
    record_kernel(acc, false);

    let mut indptr = vec![0usize; a.nrows() + 1];
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<V> = Vec::new();

    let mut scratch = RowScratch::new(b.ncols());
    let mut row_out: Vec<(u32, V)> = Vec::new();
    for i in 0..a.nrows() {
        row_out.clear();
        multiply_row(a, b, pair, acc, i, &mut scratch, &mut row_out);
        for (j, v) in row_out.drain(..) {
            indices.push(j);
            values.push(v);
        }
        indptr[i + 1] = indices.len();
    }

    if let Some(mut t) = op {
        t.set_out_nnz(values.len() as u64);
        t.finish();
    }
    Csr::from_parts(a.nrows(), b.ncols(), indptr, indices, values)
}

/// Row-parallel `C = A ⊕.⊗ B` using rayon.
///
/// Output rows are independent, and each row's fold order is identical
/// to the serial kernel's, so the result is **bit-identical to
/// [`spgemm`] for any operations** — parallelism here needs no
/// associativity or commutativity.
pub fn spgemm_parallel<V, A, M>(
    a: &Csr<V>,
    b: &Csr<V>,
    pair: &OpPair<V, A, M>,
    acc: Accumulator,
) -> Csr<V>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "inner dimensions must agree: A is {}×{}, B is {}×{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let mut op = OpToken::begin_if_root(OpKind::Kernel);
    if let Some(t) = op.as_mut() {
        t.set_flops(spgemm_flops(a, b));
        t.set_lanes(1);
        t.set_dispatch(true, rayon::current_num_threads() as u64);
    }
    record_kernel(acc, true);

    // Explicit contiguous chunks: each is claimed by one pool thread,
    // reuses one scratch across its rows (the old `map_init` per-state
    // semantics), and — when there is more than one chunk — brackets
    // its rows in a `numeric` journal span recorded on the *executing*
    // thread, so the flight recorder shows per-worker tracks.
    let ranges = row_chunks(a.nrows());
    let spans = ranges.len() > 1;
    // Pool workers have their own (op-less) thread-local context, so
    // the submitting thread's op must travel into the closures for the
    // chunk spans to attribute to it.
    let cur = current_op();
    let chunks: Vec<Vec<Vec<(u32, V)>>> = ranges
        .into_par_iter()
        .map(|range| {
            let _op = enter_op(cur);
            if spans {
                journal().begin(Stage::Numeric, range.len() as u64);
            }
            let mut scratch = RowScratch::new(b.ncols());
            let mut rows = Vec::with_capacity(range.len());
            for i in range.clone() {
                let mut out = Vec::new();
                multiply_row(a, b, pair, acc, i, &mut scratch, &mut out);
                rows.push(out);
            }
            if spans {
                journal().end(Stage::Numeric, range.len() as u64);
            }
            rows
        })
        .collect();

    let nnz: usize = chunks.iter().flatten().map(Vec::len).sum();
    let mut indptr = vec![0usize; a.nrows() + 1];
    let mut indices = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    for (i, row) in chunks.into_iter().flatten().enumerate() {
        for (j, v) in row {
            indices.push(j);
            values.push(v);
        }
        indptr[i + 1] = indices.len();
    }
    if let Some(mut t) = op {
        t.set_out_nnz(values.len() as u64);
        t.finish();
    }
    Csr::from_parts(a.nrows(), b.ncols(), indptr, indices, values)
}

/// Per-thread scratch reused across rows (SPA slots + touched list).
/// Its dominant allocation — the `O(ncols)` slot array — is reported
/// to the [`MemRegion::SpaScratch`] accounting region for the scratch
/// lifetime (the guard frees it on drop).
struct RowScratch<V> {
    slots: Vec<Option<V>>,
    touched: Vec<u32>,
    _mem: MemReservation,
}

impl<V: Value> RowScratch<V> {
    fn new(ncols: usize) -> Self {
        RowScratch {
            slots: vec![None; ncols],
            touched: Vec::new(),
            _mem: memstats().track(
                MemRegion::SpaScratch,
                (ncols * size_of::<Option<V>>()) as u64,
            ),
        }
    }
}

/// Compute one output row into `out` (sorted by column), dropping
/// zeros after accumulation.
fn multiply_row<V, A, M>(
    a: &Csr<V>,
    b: &Csr<V>,
    pair: &OpPair<V, A, M>,
    acc: Accumulator,
    i: usize,
    scratch: &mut RowScratch<V>,
    out: &mut Vec<(u32, V)>,
) where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    // One gate check per row; when disabled, no per-row flop sums are
    // computed and no histogram atomics are touched.
    let record = histograms_enabled();
    if record {
        let (ks, _) = a.row(i);
        let flops: u64 = ks.iter().map(|&k| b.row_nnz(k as usize) as u64).sum();
        histograms().record(Hist::RowFlops, flops);
        journal().record(EventKind::RowShape, i as u64, flops);
    }
    match acc {
        Accumulator::Spa => {
            let (ks, avs) = a.row(i);
            for (&k, av) in ks.iter().zip(avs.iter()) {
                let (js, bvs) = b.row(k as usize);
                for (&j, bv) in js.iter().zip(bvs.iter()) {
                    let term = pair.times(av, bv);
                    let slot = &mut scratch.slots[j as usize];
                    match slot {
                        None => {
                            *slot = Some(term);
                            scratch.touched.push(j);
                        }
                        Some(prev) => *prev = pair.plus(prev, &term),
                    }
                }
            }
            if record {
                histograms().record(Hist::AccOccupancy, scratch.touched.len() as u64);
            }
            scratch.touched.sort_unstable();
            for &j in &scratch.touched {
                let v = scratch.slots[j as usize]
                    .take()
                    .expect("touched slot filled");
                if !pair.is_zero(&v) {
                    out.push((j, v));
                }
            }
            scratch.touched.clear();
        }
        Accumulator::Hash => {
            // Insertion into the map follows ascending k, so per-column
            // folds are in canonical order even though the map itself
            // is unordered.
            let mut map: HashMap<u32, V> = HashMap::new();
            let (ks, avs) = a.row(i);
            for (&k, av) in ks.iter().zip(avs.iter()) {
                let (js, bvs) = b.row(k as usize);
                for (&j, bv) in js.iter().zip(bvs.iter()) {
                    let term = pair.times(av, bv);
                    map.entry(j)
                        .and_modify(|prev| *prev = pair.plus(prev, &term))
                        .or_insert(term);
                }
            }
            // The map lives only for this row; report its table as a
            // transient peak (capacity × approximate bucket footprint).
            memstats().record_transient(
                MemRegion::HashScratch,
                (map.capacity() * (size_of::<(u32, V)>() + size_of::<u64>())) as u64,
            );
            if record {
                histograms().record(Hist::AccOccupancy, map.len() as u64);
            }
            let mut entries: Vec<(u32, V)> = map.into_iter().collect();
            entries.sort_unstable_by_key(|&(j, _)| j);
            out.extend(entries.into_iter().filter(|(_, v)| !pair.is_zero(v)));
        }
        Accumulator::Esc => {
            // Expand: all (j, term) pairs in ascending-k order.
            let mut expanded: Vec<(u32, V)> = Vec::new();
            let (ks, avs) = a.row(i);
            for (&k, av) in ks.iter().zip(avs.iter()) {
                let (js, bvs) = b.row(k as usize);
                for (&j, bv) in js.iter().zip(bvs.iter()) {
                    expanded.push((j, pair.times(av, bv)));
                }
            }
            // Sort (stable ⇒ k-order preserved within a column run),
            // then compress by left-folding each run.
            expanded.sort_by_key(|&(j, _)| j);
            let mut it = expanded.into_iter();
            if let Some((mut cur_j, mut cur_v)) = it.next() {
                for (j, v) in it {
                    if j == cur_j {
                        cur_v = pair.plus(&cur_v, &v);
                    } else {
                        if !pair.is_zero(&cur_v) {
                            out.push((cur_j, cur_v));
                        }
                        cur_j = j;
                        cur_v = v;
                    }
                }
                if !pair.is_zero(&cur_v) {
                    out.push((cur_j, cur_v));
                }
            }
        }
    }
    if record {
        histograms().record(Hist::RowNnz, out.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use aarray_algebra::ops::{AbsDiff, Max, Min, Plus, Times};
    use aarray_algebra::values::nat::Nat;
    use aarray_algebra::values::nn::{nn, NN};

    fn pt() -> OpPair<Nat, Plus, Times> {
        OpPair::new()
    }

    fn from_triples(nrows: usize, ncols: usize, t: &[(usize, usize, u64)]) -> Csr<Nat> {
        let mut coo = Coo::new(nrows, ncols);
        for &(r, c, v) in t {
            coo.push(r, c, Nat(v));
        }
        coo.into_csr(&pt())
    }

    #[test]
    fn small_plus_times_product() {
        // A = [1 2; 0 3], B = [4 0; 5 6]  ⇒  AB = [14 12; 15 18]
        let a = from_triples(2, 2, &[(0, 0, 1), (0, 1, 2), (1, 1, 3)]);
        let b = from_triples(2, 2, &[(0, 0, 4), (1, 0, 5), (1, 1, 6)]);
        for acc in [Accumulator::Spa, Accumulator::Hash, Accumulator::Esc] {
            let c = spgemm_with(&a, &b, &pt(), acc);
            assert_eq!(c.get(0, 0), Some(&Nat(14)), "{:?}", acc);
            assert_eq!(c.get(0, 1), Some(&Nat(12)), "{:?}", acc);
            assert_eq!(c.get(1, 0), Some(&Nat(15)), "{:?}", acc);
            assert_eq!(c.get(1, 1), Some(&Nat(18)), "{:?}", acc);
        }
    }

    #[test]
    fn accumulators_agree_on_random_like_input() {
        let a = from_triples(
            4,
            5,
            &[
                (0, 0, 1),
                (0, 3, 2),
                (1, 1, 3),
                (1, 4, 1),
                (2, 2, 2),
                (3, 0, 5),
                (3, 4, 7),
            ],
        );
        let b = from_triples(
            5,
            3,
            &[
                (0, 1, 2),
                (1, 0, 1),
                (2, 2, 3),
                (3, 1, 4),
                (4, 0, 6),
                (4, 2, 1),
            ],
        );
        let c1 = spgemm_with(&a, &b, &pt(), Accumulator::Spa);
        let c2 = spgemm_with(&a, &b, &pt(), Accumulator::Hash);
        let c3 = spgemm_with(&a, &b, &pt(), Accumulator::Esc);
        assert_eq!(c1, c2);
        assert_eq!(c1, c3);
    }

    #[test]
    fn parallel_is_bit_identical_even_for_nonassociative_plus() {
        // ⊕ = |−| is commutative but NOT associative, so fold order is
        // observable; parallel must still agree with serial.
        let pair: OpPair<Nat, AbsDiff, Times> = OpPair::new();
        let mut ca = Coo::new(3, 50);
        let mut cb = Coo::new(50, 3);
        let mut x = 1u64;
        for k in 0..50usize {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ca.push(x as usize % 3, k, Nat(x % 17 + 1));
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            cb.push(k, x as usize % 3, Nat(x % 13 + 1));
        }
        let a = ca.into_csr(&pair);
        let b = cb.into_csr(&pair);
        for acc in [Accumulator::Spa, Accumulator::Hash, Accumulator::Esc] {
            let serial = spgemm_with(&a, &b, &pair, acc);
            let parallel = spgemm_parallel(&a, &b, &pair, acc);
            assert_eq!(serial, parallel, "{:?}", acc);
        }
    }

    #[test]
    fn max_min_product_selects_extremal_edges() {
        // Two length-1 "edges" connect row 0 to col 0 via inner keys
        // 0 and 1 with min-weights 3 and 5; max.min keeps 5... careful:
        // entry = max over k of min(A(0,k), B(k,0)).
        let pair: OpPair<Nat, Max, Min> = OpPair::new();
        let mut ca = Coo::new(1, 2);
        ca.push(0, 0, Nat(3));
        ca.push(0, 1, Nat(7));
        let mut cb = Coo::new(2, 1);
        cb.push(0, 0, Nat(9));
        cb.push(1, 0, Nat(5));
        let a = ca.into_csr(&pair);
        let b = cb.into_csr(&pair);
        let c = spgemm(&a, &b, &pair);
        // min(3,9)=3, min(7,5)=5, max(3,5)=5.
        assert_eq!(c.get(0, 0), Some(&Nat(5)));
    }

    #[test]
    fn produced_zeros_are_pruned() {
        // i64 ring: 1×1 + 1×(−1) = 0 must vanish from the output.
        let pair: OpPair<i64, Plus, Times> = OpPair::new();
        let mut ca = Coo::new(1, 2);
        ca.push(0, 0, 1i64);
        ca.push(0, 1, 1i64);
        let mut cb = Coo::new(2, 1);
        cb.push(0, 0, 1i64);
        cb.push(1, 0, -1i64);
        let a = ca.into_csr(&pair);
        let b = cb.into_csr(&pair);
        for acc in [Accumulator::Spa, Accumulator::Hash, Accumulator::Esc] {
            let c = spgemm_with(&a, &b, &pair, acc);
            assert_eq!(c.nnz(), 0, "{:?}", acc);
        }
    }

    #[test]
    fn min_plus_shortest_path_semantics() {
        // min.+ on NN: path weights compose by +, alternatives by min.
        let pair: OpPair<NN, Min, Plus> = OpPair::new();
        let mut ca = Coo::new(1, 2);
        ca.push(0, 0, nn(1.0));
        ca.push(0, 1, nn(10.0));
        let mut cb = Coo::new(2, 1);
        cb.push(0, 0, nn(5.0));
        cb.push(1, 0, nn(2.0));
        let a = ca.into_csr(&pair);
        let b = cb.into_csr(&pair);
        let c = spgemm(&a, &b, &pair);
        // min(1+5, 10+2) = 6.
        assert_eq!(c.get(0, 0), Some(&nn(6.0)));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = from_triples(2, 3, &[(0, 0, 1)]);
        let b = from_triples(2, 2, &[(0, 0, 1)]);
        let _ = spgemm(&a, &b, &pt());
    }

    #[test]
    fn flop_count() {
        // A row 0 hits B rows 0 (2 entries) and 1 (1 entry): 3 flops;
        // A row 1 hits B row 1: 1 flop.
        let a = from_triples(2, 2, &[(0, 0, 1), (0, 1, 1), (1, 1, 1)]);
        let b = from_triples(2, 2, &[(0, 0, 1), (0, 1, 1), (1, 0, 1)]);
        assert_eq!(spgemm_flops(&a, &b), 4);
        // Flops upper-bound output nnz.
        let c = spgemm(&a, &b, &pt());
        assert!(c.nnz() as u64 <= spgemm_flops(&a, &b));
    }

    #[test]
    fn empty_operands() {
        let a = Csr::<Nat>::empty(3, 4);
        let b = Csr::<Nat>::empty(4, 2);
        let c = spgemm(&a, &b, &pt());
        assert_eq!((c.nrows(), c.ncols(), c.nnz()), (3, 2, 0));
    }

    #[test]
    fn kernel_selection_is_counted() {
        use aarray_obs::snapshot;
        let a = from_triples(2, 2, &[(0, 0, 1), (0, 1, 2), (1, 1, 3)]);
        let b = from_triples(2, 2, &[(0, 0, 4), (1, 0, 5), (1, 1, 6)]);
        let before = snapshot();
        let _ = spgemm_with(&a, &b, &pt(), Accumulator::Spa);
        let _ = spgemm_with(&a, &b, &pt(), Accumulator::Hash);
        let _ = spgemm_with(&a, &b, &pt(), Accumulator::Esc);
        let _ = spgemm_parallel(&a, &b, &pt(), Accumulator::Spa);
        let delta = snapshot().since(&before);
        // ≥ rather than ==: the registry is process-global and other
        // tests in this binary run concurrently.
        assert!(delta.get(Counter::KernelSpa) >= 2, "{}", delta);
        assert!(delta.get(Counter::KernelHash) >= 1, "{}", delta);
        assert!(delta.get(Counter::KernelEsc) >= 1, "{}", delta);
        assert!(delta.get(Counter::KernelParallel) >= 1, "{}", delta);
    }

    #[test]
    fn row_histograms_record_from_kernels() {
        // Histogram recording defaults to enabled; this test binary
        // never disables it, so deltas must be visible. Registry is
        // process-global, hence ≥ not ==.
        let a = from_triples(2, 2, &[(0, 0, 1), (0, 1, 2), (1, 1, 3)]);
        let b = from_triples(2, 2, &[(0, 0, 4), (1, 0, 5), (1, 1, 6)]);
        let nnz_before = histograms().get(Hist::RowNnz).snapshot();
        let flops_before = histograms().get(Hist::RowFlops).snapshot();
        let occ_before = histograms().get(Hist::AccOccupancy).snapshot();
        let _ = spgemm_with(&a, &b, &pt(), Accumulator::Spa);
        let _ = spgemm_with(&a, &b, &pt(), Accumulator::Hash);
        // Row-parallel drives the same per-row records from rayon
        // workers (concurrent recording must not lose updates).
        let _ = spgemm_parallel(&a, &b, &pt(), Accumulator::Spa);
        let nnz = histograms().get(Hist::RowNnz).snapshot().since(&nnz_before);
        let flops = histograms()
            .get(Hist::RowFlops)
            .snapshot()
            .since(&flops_before);
        let occ = histograms()
            .get(Hist::AccOccupancy)
            .snapshot()
            .since(&occ_before);
        assert!(nnz.count() >= 6, "2 rows × 3 kernel runs");
        assert!(flops.count() >= 6);
        assert!(occ.count() >= 6, "spa and hash both record occupancy");
        assert!(nnz.max >= 2, "row 0 has two output entries");
    }

    #[test]
    fn spa_scratch_memory_is_accounted() {
        use aarray_obs::{memstats, MemRegion};
        let a = from_triples(2, 2, &[(0, 0, 1), (0, 1, 2), (1, 1, 3)]);
        let b = from_triples(2, 2, &[(0, 0, 4), (1, 0, 5), (1, 1, 6)]);
        let spa_peak = memstats().peak(MemRegion::SpaScratch);
        let hash_peak = memstats().peak(MemRegion::HashScratch);
        let _ = spgemm_with(&a, &b, &pt(), Accumulator::Spa);
        let _ = spgemm_with(&a, &b, &pt(), Accumulator::Hash);
        assert!(
            memstats().peak(MemRegion::SpaScratch) >= spa_peak.max(1),
            "slot array was reported"
        );
        assert!(
            memstats().peak(MemRegion::HashScratch) >= hash_peak.max(1),
            "row hash map was reported transiently"
        );
        // No exact `current == 0` assertion: sibling tests in this
        // binary run concurrently and may hold live scratch.
    }
}
