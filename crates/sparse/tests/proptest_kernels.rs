//! Property-based tests of the sparse kernels against their algebraic
//! specifications and the dense reference implementation.

use aarray_algebra::ops::{AbsDiff, Max, Min, Plus, Times};
use aarray_algebra::values::nat::Nat;
use aarray_algebra::OpPair;
use aarray_sparse::dense::Dense;
use aarray_sparse::elementwise::{ewise_add, ewise_mul};
use aarray_sparse::io::{read_triples, write_triples};
use aarray_sparse::kron::kron;
use aarray_sparse::mask::{apply_mask, apply_mask_complement, spgemm_masked};
use aarray_sparse::reduce::{col_degrees, reduce_all, reduce_cols, reduce_rows, row_degrees};
use aarray_sparse::spmv::spmv;
use aarray_sparse::symbolic::{spgemm_numeric, spgemm_symbolic};
use aarray_sparse::{spgemm, spgemm_parallel, spgemm_with, Accumulator, Coo, Csr};
use proptest::prelude::*;

type PT = OpPair<Nat, Plus, Times>;
type MM = OpPair<Nat, Max, Min>;

fn pt() -> PT {
    OpPair::new()
}

/// Strategy: a random sparse matrix as (nrows, ncols, triplets).
fn arb_csr(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr<Nat>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(r, c)| {
        prop::collection::vec((0..r, 0..c, 0u64..50), 0..=max_nnz).prop_map(move |trips| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in trips {
                coo.push(i, j, Nat(v));
            }
            coo.into_csr(&pt())
        })
    })
}

/// Two matrices with identical dimensions (for element-wise ops).
fn arb_same_dims(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = (Csr<Nat>, Csr<Nat>)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(r, c)| {
        let gen = move || {
            prop::collection::vec((0..r, 0..c, 0u64..50), 0..=max_nnz).prop_map(move |trips| {
                let mut coo = Coo::new(r, c);
                for (i, j, v) in trips {
                    coo.push(i, j, Nat(v));
                }
                coo.into_csr(&pt())
            })
        };
        (gen(), gen())
    })
}

/// A conforming pair of matrices for multiplication.
fn arb_pair(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = (Csr<Nat>, Csr<Nat>)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(move |(m, k, n)| {
        let a = prop::collection::vec((0..m, 0..k, 1u64..20), 0..=max_nnz).prop_map(move |trips| {
            let mut coo = Coo::new(m, k);
            for (i, j, v) in trips {
                coo.push(i, j, Nat(v));
            }
            coo.into_csr(&pt())
        });
        let b = prop::collection::vec((0..k, 0..n, 1u64..20), 0..=max_nnz).prop_map(move |trips| {
            let mut coo = Coo::new(k, n);
            for (i, j, v) in trips {
                coo.push(i, j, Nat(v));
            }
            coo.into_csr(&pt())
        });
        (a, b)
    })
}

proptest! {
    #[test]
    fn transpose_is_an_involution(a in arb_csr(12, 40)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_preserves_nnz_and_swaps_degrees(a in arb_csr(12, 40)) {
        let t = a.transpose();
        prop_assert_eq!(t.nnz(), a.nnz());
        prop_assert_eq!(row_degrees(&t), col_degrees(&a));
        prop_assert_eq!(col_degrees(&t), row_degrees(&a));
    }

    #[test]
    fn spgemm_matches_dense_reference((a, b) in arb_pair(8, 24)) {
        let pair = pt();
        let sparse = spgemm(&a, &b, &pair);
        let dense = Dense::from_csr(&a, pair.zero())
            .matmul(&Dense::from_csr(&b, pair.zero()), &pair)
            .to_csr(&pair);
        prop_assert_eq!(sparse, dense);
    }

    #[test]
    fn spgemm_max_min_matches_dense_reference((a, b) in arb_pair(8, 24)) {
        // Same pattern inputs reinterpreted under max.min. Stored
        // values stay valid (no u64::MAX values generated, and zero for
        // max.min is 0, same as +.×).
        let pair: MM = OpPair::new();
        let sparse = spgemm(&a, &b, &pair);
        let dense = Dense::from_csr(&a, pair.zero())
            .matmul(&Dense::from_csr(&b, pair.zero()), &pair)
            .to_csr(&pair);
        prop_assert_eq!(sparse, dense);
    }

    #[test]
    fn all_accumulators_and_parallel_agree((a, b) in arb_pair(10, 40)) {
        let pair = pt();
        let reference = spgemm_with(&a, &b, &pair, Accumulator::Spa);
        prop_assert_eq!(&spgemm_with(&a, &b, &pair, Accumulator::Hash), &reference);
        prop_assert_eq!(&spgemm_with(&a, &b, &pair, Accumulator::Esc), &reference);
        prop_assert_eq!(&spgemm_parallel(&a, &b, &pair, Accumulator::Spa), &reference);
    }

    #[test]
    fn two_phase_agrees_with_one_phase((a, b) in arb_pair(10, 40)) {
        let pair = pt();
        let sym = spgemm_symbolic(&a, &b);
        prop_assert_eq!(spgemm_numeric(&sym, &a, &b, &pair), spgemm(&a, &b, &pair));
    }

    #[test]
    fn parallel_agrees_even_for_nonassociative_plus((a, b) in arb_pair(10, 40)) {
        // ⊕ = |−| makes fold order observable.
        let pair: OpPair<Nat, AbsDiff, Times> = OpPair::new();
        let serial = spgemm_with(&a, &b, &pair, Accumulator::Spa);
        prop_assert_eq!(spgemm_parallel(&a, &b, &pair, Accumulator::Spa), serial);
    }

    #[test]
    fn ewise_add_is_commutative_for_commutative_plus((a, b) in arb_same_dims(10, 30)) {
        let pair = pt();
        prop_assert_eq!(ewise_add(&a, &b, &pair), ewise_add(&b, &a, &pair));
    }

    #[test]
    fn ewise_add_with_empty_is_identity(a in arb_csr(10, 30)) {
        let pair = pt();
        let empty = Csr::<Nat>::empty(a.nrows(), a.ncols());
        prop_assert_eq!(ewise_add(&a, &empty, &pair), a.clone());
        prop_assert_eq!(ewise_mul(&a, &empty, &pair).nnz(), 0);
    }

    #[test]
    fn mask_and_complement_partition((a, m) in arb_same_dims(10, 30)) {
        let kept = apply_mask(&a, &m);
        let dropped = apply_mask_complement(&a, &m);
        prop_assert_eq!(kept.nnz() + dropped.nnz(), a.nnz());
        // Reassembling gives back the original.
        prop_assert_eq!(ewise_add(&kept, &dropped, &pt()), a);
    }

    #[test]
    fn masked_spgemm_equals_multiply_then_mask((a, b) in arb_pair(8, 24), seed in 0u64..100) {
        // Build a mask over the output shape from the seed.
        let mut coo = Coo::new(a.nrows(), b.ncols());
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for _ in 0..(a.nrows() * b.ncols() / 2).max(1) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            coo.push((x >> 33) as usize % a.nrows(), x as usize % b.ncols(), Nat(1));
        }
        let mask = coo.into_csr(&pt());
        let masked = spgemm_masked(&a, &b, &mask, &pt());
        let reference = apply_mask(&spgemm(&a, &b, &pt()), &mask);
        prop_assert_eq!(masked, reference);
    }

    #[test]
    fn spmv_matches_single_column_spgemm((a, _) in arb_pair(8, 24), seed in 0u64..50) {
        let pair = pt();
        // Build x as both a dense vector and a k×1 matrix.
        let k = a.ncols();
        let mut x: Vec<Option<Nat>> = vec![None; k];
        let mut coo = Coo::new(k, 1);
        let mut s = seed.wrapping_add(7);
        for (i, xi) in x.iter_mut().enumerate() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if s % 3 == 0 {
                let v = Nat(s % 10 + 1);
                *xi = Some(v);
                coo.push(i, 0, v);
            }
        }
        let xm = coo.into_csr(&pair);
        let y = spmv(&a, &x, &pair);
        let ym = spgemm(&a, &xm, &pair);
        for (r, yv) in y.iter().enumerate() {
            prop_assert_eq!(yv.as_ref(), ym.get(r, 0));
        }
    }

    #[test]
    fn reductions_are_consistent(a in arb_csr(10, 30)) {
        let pair = pt();
        // Σ rows == Σ cols == Σ all for commutative associative +
        // (values < 50·30, no saturation).
        let total_rows: u64 = reduce_rows(&a, &pair).into_iter().flatten().map(|v| v.0).sum();
        let total_cols: u64 = reduce_cols(&a, &pair).into_iter().flatten().map(|v| v.0).sum();
        let total = reduce_all(&a, &pair).map(|v| v.0).unwrap_or(0);
        prop_assert_eq!(total_rows, total);
        prop_assert_eq!(total_cols, total);
    }

    #[test]
    fn kron_dimensions_and_nnz(a in arb_csr(6, 12), b in arb_csr(6, 12)) {
        let pair = pt();
        let k = kron(&a, &b, &pair);
        prop_assert_eq!(k.nrows(), a.nrows() * b.nrows());
        prop_assert_eq!(k.ncols(), a.ncols() * b.ncols());
        // +.× on nonzero Nats: no pruning, nnz multiplies.
        prop_assert_eq!(k.nnz(), a.nnz() * b.nnz());
    }

    #[test]
    fn io_roundtrip(a in arb_csr(10, 30)) {
        let text = write_triples(&a, |v| v.0.to_string());
        let back = read_triples(&text, &pt(), |s| s.parse().ok().map(Nat)).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn dcsr_roundtrip_and_spgemm(( a, b) in arb_pair(10, 40)) {
        use aarray_sparse::dcsr::{spgemm_dcsr, Dcsr};
        let d = Dcsr::from_csr(&a);
        prop_assert_eq!(d.to_csr(), a.clone());
        prop_assert!(d.populated_rows() <= a.nrows());
        let pair = pt();
        prop_assert_eq!(spgemm_dcsr(&d, &b, &pair).to_csr(), spgemm(&a, &b, &pair));
    }

    #[test]
    fn permutation_roundtrips(a in arb_csr(10, 30), seed in 0u64..1000) {
        use aarray_sparse::permute::{permute_cols, permute_rows};
        // Derive a permutation of the rows from the seed (Fisher-Yates
        // with an LCG).
        let n = a.nrows();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut s = seed.wrapping_add(12345);
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            perm.swap(i, (s as usize) % (i + 1));
        }
        let mut inv = vec![0usize; n];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        prop_assert_eq!(permute_rows(&permute_rows(&a, &perm), &inv), a.clone());

        let m = a.ncols();
        let mut cperm: Vec<usize> = (0..m).collect();
        for i in (1..m).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            cperm.swap(i, (s as usize) % (i + 1));
        }
        let mut cinv = vec![0usize; m];
        for (i, &p) in cperm.iter().enumerate() {
            cinv[p] = i;
        }
        prop_assert_eq!(permute_cols(&permute_cols(&a, &cperm), &cinv), a.clone());
        // Permutations preserve nnz and values multiset.
        let p = permute_rows(&a, &perm);
        prop_assert_eq!(p.nnz(), a.nnz());
    }

    #[test]
    fn symbolic_pattern_superset_of_numeric(( a, b) in arb_pair(10, 40)) {
        use aarray_sparse::symbolic::spgemm_symbolic;
        let sym = spgemm_symbolic(&a, &b);
        let c = spgemm(&a, &b, &pt());
        // For +.× on positive Nats nothing cancels: patterns agree.
        prop_assert_eq!(sym.nnz(), c.nnz());
    }

    #[test]
    fn select_all_columns_is_identity(a in arb_csr(10, 30)) {
        let all: Vec<usize> = (0..a.ncols()).collect();
        prop_assert_eq!(a.select_cols(&all), a.clone());
        let rows: Vec<usize> = (0..a.nrows()).collect();
        prop_assert_eq!(a.select_rows(&rows), a);
    }
}
