//! Property-based bit-identity of the fused multi-semiring kernel:
//! for random operands, every lane of `spgemm_multi` must equal the
//! corresponding independent `spgemm_with` call — under every
//! sequential accumulator, both fused slot-lookup strategies, the
//! row-parallel variant, and a non-associative custom `⊕` (so fold
//! order is observable, not just the folded multiset).

use aarray_algebra::ops::{AbsDiff, Max, Min, Plus, Times};
use aarray_algebra::values::nat::Nat;
use aarray_algebra::{DynOpPair, OpPair};
use aarray_sparse::spgemm_multi::{spgemm_multi, spgemm_multi_parallel, MultiAccumulator};
use aarray_sparse::{spgemm_with, Accumulator, Coo, Csr};
use proptest::prelude::*;

fn pt() -> OpPair<Nat, Plus, Times> {
    OpPair::new()
}

/// A conforming pair of matrices for multiplication.
fn arb_pair(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = (Csr<Nat>, Csr<Nat>)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(move |(m, k, n)| {
        let a = prop::collection::vec((0..m, 0..k, 1u64..20), 0..=max_nnz).prop_map(move |trips| {
            let mut coo = Coo::new(m, k);
            for (i, j, v) in trips {
                coo.push(i, j, Nat(v));
            }
            coo.into_csr(&pt())
        });
        let b = prop::collection::vec((0..k, 0..n, 1u64..20), 0..=max_nnz).prop_map(move |trips| {
            let mut coo = Coo::new(k, n);
            for (i, j, v) in trips {
                coo.push(i, j, Nat(v));
            }
            coo.into_csr(&pt())
        });
        (a, b)
    })
}

proptest! {
    #[test]
    fn fused_lanes_match_independent_kernels((a, b) in arb_pair(10, 40)) {
        let plus_times = pt();
        let max_min: OpPair<Nat, Max, Min> = OpPair::new();
        let min_plus: OpPair<Nat, Min, Plus> = OpPair::new();
        // ⊕ = |−| is non-associative and non-commutative in effect:
        // any deviation in fold order changes the value.
        let abs_diff: OpPair<Nat, AbsDiff, Times> = OpPair::new();
        let pairs: [&dyn DynOpPair<Nat>; 4] = [&plus_times, &max_min, &min_plus, &abs_diff];

        for fused_acc in [MultiAccumulator::Spa, MultiAccumulator::Hash] {
            let fused = spgemm_multi(&a, &b, &pairs, fused_acc);
            prop_assert_eq!(fused.len(), 4);
            for seq_acc in [Accumulator::Spa, Accumulator::Hash, Accumulator::Esc] {
                prop_assert_eq!(&fused[0], &spgemm_with(&a, &b, &plus_times, seq_acc));
                prop_assert_eq!(&fused[1], &spgemm_with(&a, &b, &max_min, seq_acc));
                prop_assert_eq!(&fused[2], &spgemm_with(&a, &b, &min_plus, seq_acc));
                prop_assert_eq!(&fused[3], &spgemm_with(&a, &b, &abs_diff, seq_acc));
            }
        }
    }

    #[test]
    fn parallel_fused_matches_serial_fused((a, b) in arb_pair(10, 40)) {
        let plus_times = pt();
        let abs_diff: OpPair<Nat, AbsDiff, Times> = OpPair::new();
        let pairs: [&dyn DynOpPair<Nat>; 2] = [&plus_times, &abs_diff];
        for acc in [MultiAccumulator::Spa, MultiAccumulator::Hash] {
            let serial = spgemm_multi(&a, &b, &pairs, acc);
            let parallel = spgemm_multi_parallel(&a, &b, &pairs, acc);
            prop_assert_eq!(serial, parallel);
        }
    }

    #[test]
    fn single_lane_fusion_is_the_identity_case((a, b) in arb_pair(8, 24)) {
        // K = 1 degenerates to plain two-phase SpGEMM.
        let abs_diff: OpPair<Nat, AbsDiff, Times> = OpPair::new();
        let pairs: [&dyn DynOpPair<Nat>; 1] = [&abs_diff];
        let fused = spgemm_multi(&a, &b, &pairs, MultiAccumulator::Spa);
        prop_assert_eq!(&fused[0], &spgemm_with(&a, &b, &abs_diff, Accumulator::Spa));
    }
}
