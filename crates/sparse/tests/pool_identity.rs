//! Bit-identity of the row-parallel fused kernel under a **real**
//! work-stealing pool, across all seven paper op pairs and several
//! forced pool sizes.
//!
//! The paper's Figure 3 workload runs six `⊕.⊗` pairs over non-negative
//! reals plus `max.+` over the tropical extension; the kernels promise
//! every one of them the serial fold order per row regardless of which
//! worker claims the row's chunk. This suite drives the promise through
//! actual thread fan-out: pool sizes 1 (inline), 2, 4, and 8 (more
//! workers than cores on most hosts, so chunks genuinely interleave),
//! with random operands from a proptest strategy.
//!
//! NN's `+` is float addition — non-associative, so any fold-order
//! deviation across chunk boundaries would change low bits and fail
//! the exact equality below.

use aarray_algebra::pairs::{MaxMin, MaxPlus, MaxTimes, MinMax, MinPlus, MinTimes, PlusTimes};
use aarray_algebra::values::nn::{nn, NN};
use aarray_algebra::values::tropical::{trop, Tropical};
use aarray_algebra::DynOpPair;
use aarray_sparse::spgemm_multi::{spgemm_multi, spgemm_multi_parallel, MultiAccumulator};
use aarray_sparse::{spgemm_parallel, spgemm_with, Accumulator, Coo, Csr};
use proptest::prelude::*;

const POOL_SIZES: [usize; 4] = [1, 2, 4, 8];

/// A conforming pair of NN matrices with awkward float values (sums
/// of these re-associate visibly).
fn arb_nn_pair(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = (Csr<NN>, Csr<NN>)> {
    let pt = PlusTimes::<NN>::new();
    (2..=max_dim, 2..=max_dim, 2..=max_dim).prop_flat_map(move |(m, k, n)| {
        let a =
            prop::collection::vec((0..m, 0..k, 1u64..1000), 0..=max_nnz).prop_map(move |trips| {
                let mut coo = Coo::new(m, k);
                for (i, j, v) in trips {
                    coo.push(i, j, nn(v as f64 * 0.1 + 0.003));
                }
                coo.into_csr(&pt)
            });
        let b =
            prop::collection::vec((0..k, 0..n, 1u64..1000), 0..=max_nnz).prop_map(move |trips| {
                let mut coo = Coo::new(k, n);
                for (i, j, v) in trips {
                    coo.push(i, j, nn(v as f64 * 0.07 + 0.001));
                }
                coo.into_csr(&pt)
            });
        (a, b)
    })
}

/// The tropical views of the same pattern (the paper's seventh pair
/// runs on `Tropical`, a different value set, so it gets its own
/// single-lane product).
fn tropicalize(a: &Csr<NN>) -> Csr<Tropical> {
    let mp = MaxPlus::<Tropical>::new();
    let mut coo = Coo::new(a.nrows(), a.ncols());
    for (i, j, v) in a.iter() {
        coo.push(i, j, trop(v.get()));
    }
    coo.into_csr(&mp)
}

proptest! {
    #[test]
    fn seven_paper_pairs_bit_identical_at_all_pool_sizes((a, b) in arb_nn_pair(12, 60)) {
        let plus_times = PlusTimes::<NN>::new();
        let max_times = MaxTimes::<NN>::new();
        let min_times = MinTimes::<NN>::new();
        let min_plus = MinPlus::<NN>::new();
        let max_min = MaxMin::<NN>::new();
        let min_max = MinMax::<NN>::new();
        let nn_pairs: [&dyn DynOpPair<NN>; 6] = [
            &plus_times, &max_times, &min_times, &min_plus, &max_min, &min_max,
        ];
        let mp = MaxPlus::<Tropical>::new();
        let trop_pairs: [&dyn DynOpPair<Tropical>; 1] = [&mp];
        let (at, bt) = (tropicalize(&a), tropicalize(&b));

        for acc in [MultiAccumulator::Spa, MultiAccumulator::Hash] {
            let serial = spgemm_multi(&a, &b, &nn_pairs, acc);
            let serial_t = spgemm_multi(&at, &bt, &trop_pairs, acc);
            for threads in POOL_SIZES {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let parallel = pool.install(|| spgemm_multi_parallel(&a, &b, &nn_pairs, acc));
                prop_assert_eq!(&serial, &parallel, "NN lanes, {} threads, {:?}", threads, acc);
                let parallel_t =
                    pool.install(|| spgemm_multi_parallel(&at, &bt, &trop_pairs, acc));
                prop_assert_eq!(
                    &serial_t, &parallel_t,
                    "tropical max.+ lane, {} threads, {:?}", threads, acc
                );
            }
        }
    }

    #[test]
    fn one_shot_parallel_kernel_matches_serial_under_real_pools((a, b) in arb_nn_pair(10, 40)) {
        // The one-pair row-parallel driver (matmul's dispatch target)
        // under the same pool sizes — float ⊕ again makes fold order
        // observable.
        let plus_times = PlusTimes::<NN>::new();
        for acc in [Accumulator::Spa, Accumulator::Hash, Accumulator::Esc] {
            let serial = spgemm_with(&a, &b, &plus_times, acc);
            for threads in POOL_SIZES {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let parallel = pool.install(|| spgemm_parallel(&a, &b, &plus_times, acc));
                prop_assert_eq!(&serial, &parallel, "{} threads, {:?}", threads, acc);
            }
        }
    }
}
