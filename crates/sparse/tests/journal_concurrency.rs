//! Flight-recorder concurrency: worker threads hammering the global
//! journal through the row-parallel fused kernel must never surface a
//! torn record, and drop accounting must stay exact.
//!
//! The offline rayon stub now runs a real work-stealing pool, but its
//! worker count tracks the host; to make contention deterministic this
//! suite drives the parallel code path from its own `std::thread`
//! workers, each installing a private pool, so journal writes always
//! race regardless of how many cores the host exposes.

use aarray_algebra::dynpair::DynOpPair;
use aarray_algebra::pairs::{MaxMin, PlusTimes};
use aarray_algebra::values::nat::Nat;
use aarray_sparse::spgemm_multi::{spgemm_multi_parallel, MultiAccumulator};
use aarray_sparse::{Coo, Csr};
use std::collections::BTreeMap;

fn operand() -> Csr<Nat> {
    let pair = PlusTimes::<Nat>::new();
    let mut coo = Coo::new(6, 6);
    for i in 0..6u32 {
        coo.push(
            i as usize,
            ((i + 1) % 6) as usize,
            Nat(1 + u64::from(i) % 3),
        );
        coo.push(i as usize, ((i + 3) % 6) as usize, Nat(2));
    }
    coo.into_csr(&pair)
}

#[test]
fn parallel_workers_record_cleanly_into_the_global_journal() {
    use aarray_obs::{journal, EventKind};

    const WORKERS: usize = 4;
    const REPS: u64 = 50;
    let cursor = journal().cursor();

    let workers: Vec<_> = (0..WORKERS)
        .map(|_| {
            std::thread::spawn(move || {
                let a = operand();
                let pt = PlusTimes::<Nat>::new();
                let mm = MaxMin::<Nat>::new();
                let pairs: Vec<&dyn DynOpPair<Nat>> = vec![&pt, &mm];
                // A 2-thread stub pool makes the fused kernel take its
                // row-parallel branch deterministically.
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(2)
                    .build()
                    .unwrap();
                pool.install(|| {
                    for _ in 0..REPS {
                        let outs = spgemm_multi_parallel(&a, &a, &pairs, MultiAccumulator::Spa);
                        assert_eq!(outs.len(), 2);
                    }
                });
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let snap = journal().snapshot();
    assert_eq!(snap.torn, 0, "no torn records may ever be surfaced");
    let events = snap.since(cursor);

    // Nothing wrapped (default capacity is 65536 and this workload is
    // far smaller), so the slice must be complete: every record
    // claimed since the cursor is present exactly once.
    assert_eq!(snap.dropped, 0);
    assert_eq!(events.len() as u64, journal().cursor() - cursor);
    assert_eq!(
        snap.recorded.saturating_sub(snap.capacity),
        snap.dropped,
        "drop accounting is recorded − capacity, clamped at zero"
    );

    // Every traversal logged its fused-choice explain event: 2 lanes,
    // parallel bit set, spa accumulator.
    let fused: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::FusedChoice)
        .collect();
    assert_eq!(fused.len() as u64, (WORKERS as u64) * REPS);
    for e in &fused {
        assert_eq!(e.a, 0, "spa accumulator code");
        assert_eq!(e.b, (2 << 1) | 1, "2 lanes, parallel");
    }

    // The four workers show up as distinct journal thread ids, and
    // timestamps are monotone within each of them.
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        let prev = last_ts.insert(e.tid, e.ts_ns).unwrap_or(0);
        assert!(e.ts_ns >= prev, "non-monotone timestamp on tid {}", e.tid);
    }
    let worker_tids = fused
        .iter()
        .map(|e| e.tid)
        .collect::<std::collections::BTreeSet<_>>();
    assert_eq!(worker_tids.len(), WORKERS);
}

#[test]
fn wraparound_under_contention_keeps_exact_drop_accounting() {
    use aarray_obs::{EventKind, Journal};
    use std::sync::Arc;

    // A deliberately tiny private ring wraps many times over while
    // four threads race; the accounting must still be exact and every
    // surviving record intact.
    const CAP: usize = 32;
    const WORKERS: u64 = 4;
    const REPS: u64 = 2_000;
    let j = Arc::new(Journal::with_capacity(CAP));
    let workers: Vec<_> = (0..WORKERS)
        .map(|t| {
            let j = Arc::clone(&j);
            std::thread::spawn(move || {
                for i in 0..REPS {
                    let v = (t << 32) | i;
                    j.record(EventKind::RowShape, v, v);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let snap = j.snapshot();
    assert_eq!(snap.recorded, WORKERS * REPS);
    assert_eq!(snap.dropped, WORKERS * REPS - CAP as u64);
    // Quiescent drain: every slot holds a fully published record.
    assert_eq!(snap.torn, 0);
    assert_eq!(snap.events.len(), CAP);
    for e in &snap.events {
        assert_eq!(e.a, e.b, "cross-record field mix at seq {}", e.seq);
    }
}
