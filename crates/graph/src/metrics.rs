//! Graph metrics computed from a constructed adjacency array — the
//! one-screen summary an analyst prints after construction.

use aarray_algebra::Value;
use aarray_core::AArray;
use std::fmt;

/// Structural metrics of a directed graph given by its adjacency array.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphMetrics {
    /// Vertex count.
    pub vertices: usize,
    /// Distinct directed edges (stored entries).
    pub edges: usize,
    /// Self-loop count.
    pub self_loops: usize,
    /// Directed density `edges / n²` — the fraction of possible
    /// directed edges present. Self-loops are allowed, so the
    /// denominator is `n·(n−1) + n = n²` (ordered pairs plus loops).
    pub density: f64,
    /// Edges `u→v` whose reverse `v→u` also exists (excluding loops).
    pub reciprocal_edges: usize,
    /// Max out-degree.
    pub max_out_degree: usize,
    /// Max in-degree.
    pub max_in_degree: usize,
    /// Vertices with no edges at all.
    pub isolated: usize,
}

impl fmt::Display for GraphMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vertices, {} edges ({} loops, {} reciprocal), density {:.5}, max deg out {} / in {}, {} isolated",
            self.vertices,
            self.edges,
            self.self_loops,
            self.reciprocal_edges,
            self.density,
            self.max_out_degree,
            self.max_in_degree,
            self.isolated
        )
    }
}

/// Compute [`GraphMetrics`] from a square adjacency array.
pub fn graph_metrics<V: Value>(adj: &AArray<V>) -> GraphMetrics {
    assert_eq!(
        adj.row_keys(),
        adj.col_keys(),
        "metrics need a square adjacency array"
    );
    let n = adj.row_keys().len();
    let edges = adj.nnz();

    let mut self_loops = 0usize;
    let mut reciprocal = 0usize;
    let mut out_deg = vec![0usize; n];
    let mut in_deg = vec![0usize; n];
    for (r, c, _) in adj.csr().iter() {
        out_deg[r] += 1;
        in_deg[c] += 1;
        if r == c {
            self_loops += 1;
        } else if adj.csr().get(c, r).is_some() {
            reciprocal += 1;
        }
    }
    let isolated = (0..n)
        .filter(|&v| out_deg[v] == 0 && in_deg[v] == 0)
        .count();

    GraphMetrics {
        vertices: n,
        edges,
        self_loops,
        density: if n == 0 {
            0.0
        } else {
            edges as f64 / (n * n) as f64
        },
        reciprocal_edges: reciprocal,
        max_out_degree: out_deg.iter().copied().max().unwrap_or(0),
        max_in_degree: in_deg.iter().copied().max().unwrap_or(0),
        isolated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, cycle};
    use crate::MultiGraph;
    use aarray_algebra::pairs::PlusTimes;
    use aarray_algebra::values::nat::Nat;
    use aarray_core::adjacency_array;

    fn adjacency(g: &MultiGraph<Nat>) -> AArray<Nat> {
        let pair = PlusTimes::<Nat>::new();
        let (eout, ein) = g.incidence_arrays(&pair);
        adjacency_array(&eout, &ein, &pair)
    }

    #[test]
    fn cycle_metrics() {
        let m = graph_metrics(&adjacency(&cycle(5)));
        assert_eq!(m.vertices, 5);
        assert_eq!(m.edges, 5);
        assert_eq!(m.self_loops, 0);
        assert_eq!(m.reciprocal_edges, 0);
        assert_eq!(m.max_out_degree, 1);
        assert_eq!(m.isolated, 0);
    }

    #[test]
    fn complete_graph_is_fully_reciprocal() {
        let m = graph_metrics(&adjacency(&complete(4)));
        assert_eq!(m.edges, 12);
        assert_eq!(m.reciprocal_edges, 12);
        assert_eq!(m.max_in_degree, 3);
    }

    #[test]
    fn density_denominator_counts_loops() {
        // The documented denominator n·(n−1) + n (ordered pairs plus
        // self-loops) equals the computed n²; regression-pin both the
        // identity and a concrete value.
        let n = 5usize;
        assert_eq!(n * (n - 1) + n, n * n);
        let m = graph_metrics(&adjacency(&cycle(5)));
        assert!((m.density - 5.0 / 25.0).abs() < 1e-12, "{}", m.density);

        // A graph with a loop: the loop edge is a valid slot in the
        // denominator, so a 1-vertex graph with its loop has density 1.
        let mut g = MultiGraph::new();
        g.add_edge("e1", "solo", "solo", Nat(1), Nat(1));
        let m1 = graph_metrics(&adjacency(&g));
        assert_eq!(m1.vertices, 1);
        assert_eq!(m1.self_loops, 1);
        assert!((m1.density - 1.0).abs() < 1e-12, "{}", m1.density);
    }

    #[test]
    fn loops_and_isolated_vertices() {
        let mut g = MultiGraph::new();
        g.add_edge("e1", "a", "a", Nat(1), Nat(1));
        g.add_edge("e2", "a", "b", Nat(1), Nat(1));
        g.add_vertex("ghost");
        let m = graph_metrics(&adjacency(&g));
        assert_eq!(m.self_loops, 1);
        assert_eq!(m.isolated, 1);
        assert_eq!(m.vertices, 3);
        let line = m.to_string();
        assert!(line.contains("1 loops"));
        assert!(line.contains("1 isolated"));
    }
}
