//! HITS (hubs and authorities) over a constructed adjacency array —
//! alternating `Aᵀh` / `Aa` power iterations with L2 normalization.
//! Another numeric consumer of the `+.×` construction.

use aarray_algebra::Value;
use aarray_core::AArray;
use std::collections::BTreeMap;

/// HITS scores per vertex.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HitsScores {
    /// Hub score: points at good authorities.
    pub hubs: BTreeMap<String, f64>,
    /// Authority score: pointed at by good hubs.
    pub authorities: BTreeMap<String, f64>,
}

/// Run HITS for `iterations` rounds (or until the L1 change drops below
/// `tolerance`). Edge weights come through `weight_of`.
pub fn hits<V: Value>(
    adj: &AArray<V>,
    weight_of: impl Fn(&V) -> f64,
    iterations: usize,
    tolerance: f64,
) -> HitsScores {
    assert_eq!(
        adj.row_keys(),
        adj.col_keys(),
        "HITS needs a square adjacency array"
    );
    let n = adj.row_keys().len();
    if n == 0 {
        return HitsScores::default();
    }

    let mut hub = vec![1.0f64; n];
    let mut auth = vec![1.0f64; n];

    for _ in 0..iterations {
        // auth(v) = Σ_{u→v} w(u,v) · hub(u)
        let mut new_auth = vec![0.0f64; n];
        for (u, v, w) in adj.csr().iter() {
            new_auth[v] += weight_of(w) * hub[u];
        }
        normalize(&mut new_auth);
        // hub(u) = Σ_{u→v} w(u,v) · auth(v)
        let mut new_hub = vec![0.0f64; n];
        for (u, v, w) in adj.csr().iter() {
            new_hub[u] += weight_of(w) * new_auth[v];
        }
        normalize(&mut new_hub);

        let delta: f64 = new_hub
            .iter()
            .zip(hub.iter())
            .chain(new_auth.iter().zip(auth.iter()))
            .map(|(a, b)| (a - b).abs())
            .sum();
        hub = new_hub;
        auth = new_auth;
        if delta < tolerance {
            break;
        }
    }

    HitsScores {
        hubs: (0..n)
            .map(|v| (adj.row_keys().key(v).to_string(), hub[v]))
            .collect(),
        authorities: (0..n)
            .map(|v| (adj.row_keys().key(v).to_string(), auth[v]))
            .collect(),
    }
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MultiGraph;
    use aarray_algebra::pairs::PlusTimes;
    use aarray_algebra::values::nat::Nat;
    use aarray_core::adjacency_array;

    fn adjacency(g: &MultiGraph<Nat>) -> AArray<Nat> {
        let pair = PlusTimes::<Nat>::new();
        let (eout, ein) = g.incidence_arrays(&pair);
        adjacency_array(&eout, &ein, &pair)
    }

    #[test]
    fn star_hub_and_authorities() {
        // hubcenter → a, b, c: the center is the best hub, targets are
        // the authorities.
        let mut g = MultiGraph::new();
        for v in ["a", "b", "c"] {
            g.add_edge(format!("e_{}", v), "hubcenter", v, Nat(1), Nat(1));
        }
        let s = hits(&adjacency(&g), |v| v.0 as f64, 50, 1e-12);
        assert!(s.hubs["hubcenter"] > 0.99);
        assert!(s.authorities["hubcenter"] < 1e-9);
        assert!((s.authorities["a"] - s.authorities["b"]).abs() < 1e-9);
        assert!(s.authorities["a"] > 0.5);
    }

    #[test]
    fn weights_shift_authority() {
        let mut g = MultiGraph::new();
        g.add_edge("e1", "h", "strong", Nat(9), Nat(1));
        g.add_edge("e2", "h", "weak", Nat(1), Nat(1));
        let s = hits(&adjacency(&g), |v| v.0 as f64, 50, 1e-12);
        assert!(s.authorities["strong"] > s.authorities["weak"]);
    }

    #[test]
    fn empty_graph() {
        let g: MultiGraph<Nat> = MultiGraph::new();
        let pair = PlusTimes::<Nat>::new();
        let (eout, ein) = g.incidence_arrays(&pair);
        let adj = adjacency_array(&eout, &ein, &pair);
        let s = hits(&adj, |v| v.0 as f64, 10, 1e-9);
        assert!(s.hubs.is_empty() && s.authorities.is_empty());
    }

    #[test]
    fn scores_are_unit_norm() {
        let mut g = MultiGraph::new();
        g.add_edge("e1", "a", "b", Nat(1), Nat(1));
        g.add_edge("e2", "b", "c", Nat(1), Nat(1));
        g.add_edge("e3", "a", "c", Nat(1), Nat(1));
        let s = hits(&adjacency(&g), |v| v.0 as f64, 60, 1e-12);
        let h2: f64 = s.hubs.values().map(|x| x * x).sum();
        let a2: f64 = s.authorities.values().map(|x| x * x).sum();
        assert!((h2 - 1.0).abs() < 1e-6);
        assert!((a2 - 1.0).abs() < 1e-6);
    }
}
