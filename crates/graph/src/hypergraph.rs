//! Directed hypergraphs — the generalization incidence arrays support
//! natively and adjacency arrays cannot express directly.
//!
//! A hyperedge `k` has a *set* of sources and a *set* of targets;
//! `Eout(k, ·)` and `Ein(k, ·)` simply have several nonzeros in row
//! `k`. Theorem II.1 applies verbatim: under a compliant pair,
//! `(EᵀoutEin)(a, b) ≠ 0` iff some hyperedge has `a` among its sources
//! and `b` among its targets — each hyperedge contributes a complete
//! bipartite `sources × targets` block to the adjacency pattern. This
//! is the paper's machinery doing something the edge-list baseline
//! cannot do without first materializing that quadratic expansion.

use aarray_algebra::{BinaryOp, OpPair, Value};
use aarray_core::{AArray, KeySet};
use std::collections::BTreeSet;

/// One directed hyperedge: a key, weighted sources, weighted targets.
#[derive(Clone, Debug, PartialEq)]
pub struct HyperEdge<V: Value> {
    /// Unique edge key.
    pub key: String,
    /// Source vertices with their `Eout` values.
    pub sources: Vec<(String, V)>,
    /// Target vertices with their `Ein` values.
    pub targets: Vec<(String, V)>,
}

/// A directed hypergraph.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HyperGraph<V: Value> {
    vertices: BTreeSet<String>,
    edges: Vec<HyperEdge<V>>,
}

impl<V: Value> HyperGraph<V> {
    /// An empty hypergraph.
    pub fn new() -> Self {
        HyperGraph {
            vertices: BTreeSet::new(),
            edges: Vec::new(),
        }
    }

    /// Add an isolated vertex.
    pub fn add_vertex(&mut self, v: impl Into<String>) {
        self.vertices.insert(v.into());
    }

    /// Add a hyperedge. Sources and targets must be non-empty.
    pub fn add_edge(
        &mut self,
        key: impl Into<String>,
        sources: Vec<(String, V)>,
        targets: Vec<(String, V)>,
    ) {
        assert!(
            !sources.is_empty() && !targets.is_empty(),
            "hyperedge needs sources and targets"
        );
        for (v, _) in sources.iter().chain(targets.iter()) {
            self.vertices.insert(v.clone());
        }
        self.edges.push(HyperEdge {
            key: key.into(),
            sources,
            targets,
        });
    }

    /// Number of hyperedges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// The hyperedges.
    pub fn edges(&self) -> &[HyperEdge<V>] {
        &self.edges
    }

    /// The pairwise adjacency pattern: `(a, b)` for every hyperedge
    /// with `a` among its sources and `b` among its targets — the
    /// quadratic expansion the adjacency array must reproduce.
    pub fn edge_pattern(&self) -> BTreeSet<(String, String)> {
        let mut pat = BTreeSet::new();
        for e in &self.edges {
            for (s, _) in &e.sources {
                for (t, _) in &e.targets {
                    pat.insert((s.clone(), t.clone()));
                }
            }
        }
        pat
    }

    /// Extract `(Eout, Ein)` over the full vertex set. Duplicate
    /// mentions of a vertex within one edge side combine with `⊕`;
    /// zero values are rejected.
    pub fn incidence_arrays<A, M>(&self, pair: &OpPair<V, A, M>) -> (AArray<V>, AArray<V>)
    where
        A: BinaryOp<V>,
        M: BinaryOp<V>,
    {
        let edge_keys = KeySet::from_iter(self.edges.iter().map(|e| e.key.clone()));
        assert_eq!(
            edge_keys.len(),
            self.edges.len(),
            "edge keys must be unique"
        );
        let vertex_keys = KeySet::from_iter(self.vertices.iter().cloned());

        let mut out_triples = Vec::new();
        let mut in_triples = Vec::new();
        for e in &self.edges {
            for (v, w) in &e.sources {
                assert!(!pair.is_zero(w), "zero source incidence on {}", e.key);
                out_triples.push((e.key.clone(), v.clone(), w.clone()));
            }
            for (v, w) in &e.targets {
                assert!(!pair.is_zero(w), "zero target incidence on {}", e.key);
                in_triples.push((e.key.clone(), v.clone(), w.clone()));
            }
        }
        let eout = AArray::from_triples_with_keys(
            pair,
            edge_keys.clone(),
            vertex_keys.clone(),
            out_triples,
        );
        let ein = AArray::from_triples_with_keys(pair, edge_keys, vertex_keys, in_triples);
        (eout, ein)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarray_algebra::pairs::{MaxMin, PlusTimes};
    use aarray_algebra::values::nat::Nat;
    use aarray_core::{adjacency_array, theorem::pattern_diff};

    fn w(v: &str, x: u64) -> (String, Nat) {
        (v.to_string(), Nat(x))
    }

    #[test]
    fn hyperedge_becomes_a_bipartite_block() {
        // One meeting: {alice, bob} inform {carol, dave, erin}.
        let pair = PlusTimes::<Nat>::new();
        let mut h = HyperGraph::new();
        h.add_edge(
            "meeting1",
            vec![w("alice", 1), w("bob", 1)],
            vec![w("carol", 1), w("dave", 1), w("erin", 1)],
        );
        let (eout, ein) = h.incidence_arrays(&pair);
        assert_eq!(eout.shape(), (1, 5));
        let a = adjacency_array(&eout, &ein, &pair);
        assert_eq!(a.nnz(), 6); // 2 × 3 block
        assert!(pattern_diff(&a, h.edge_pattern()).is_exact());
        assert_eq!(a.get("alice", "dave"), Some(&Nat(1)));
        assert_eq!(a.get("carol", "alice"), None);
    }

    #[test]
    fn overlapping_hyperedges_aggregate() {
        let pair = PlusTimes::<Nat>::new();
        let mut h = HyperGraph::new();
        h.add_edge("e1", vec![w("a", 1)], vec![w("x", 1), w("y", 1)]);
        h.add_edge("e2", vec![w("a", 1), w("b", 1)], vec![w("x", 1)]);
        let (eout, ein) = h.incidence_arrays(&pair);
        let a = adjacency_array(&eout, &ein, &pair);
        // a→x via both hyperedges: 1·1 ⊕ 1·1 = 2.
        assert_eq!(a.get("a", "x"), Some(&Nat(2)));
        assert_eq!(a.get("b", "x"), Some(&Nat(1)));
        assert_eq!(a.get("b", "y"), None);
        assert!(pattern_diff(&a, h.edge_pattern()).is_exact());
    }

    #[test]
    fn weighted_hyperedges_under_max_min() {
        let pair = MaxMin::<Nat>::new();
        let mut h = HyperGraph::new();
        h.add_edge("broad", vec![w("hub", 5)], vec![w("t1", 9), w("t2", 2)]);
        let (eout, ein) = h.incidence_arrays(&pair);
        let a = adjacency_array(&eout, &ein, &pair);
        assert_eq!(a.get("hub", "t1"), Some(&Nat(5))); // min(5, 9)
        assert_eq!(a.get("hub", "t2"), Some(&Nat(2))); // min(5, 2)
    }

    #[test]
    fn duplicate_vertex_mentions_combine() {
        let pair = PlusTimes::<Nat>::new();
        let mut h = HyperGraph::new();
        h.add_edge("e", vec![w("a", 2), w("a", 3)], vec![w("b", 1)]);
        let (eout, _) = h.incidence_arrays(&pair);
        assert_eq!(eout.get("e", "a"), Some(&Nat(5)));
    }

    #[test]
    fn random_hypergraphs_have_exact_patterns() {
        // Mini property test: deterministic pseudo-random hypergraphs,
        // pattern always exact under a compliant pair.
        let pair = PlusTimes::<Nat>::new();
        let mut x = 99u64;
        let mut next = |m: u64| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) % m
        };
        for trial in 0..20 {
            let mut h = HyperGraph::new();
            for e in 0..(1 + next(6)) {
                let ns = 1 + next(3);
                let nt = 1 + next(3);
                let sources: Vec<(String, Nat)> = (0..ns)
                    .map(|_| (format!("v{}", next(8)), Nat(1 + next(5))))
                    .collect();
                let targets: Vec<(String, Nat)> = (0..nt)
                    .map(|_| (format!("v{}", next(8)), Nat(1 + next(5))))
                    .collect();
                h.add_edge(format!("e{}", e), sources, targets);
            }
            let (eout, ein) = h.incidence_arrays(&pair);
            let a = adjacency_array(&eout, &ein, &pair);
            let diff = pattern_diff(&a, h.edge_pattern());
            assert!(diff.is_exact(), "trial {}: {:?}", trial, diff);
        }
    }

    #[test]
    #[should_panic(expected = "needs sources and targets")]
    fn empty_side_rejected() {
        let mut h: HyperGraph<Nat> = HyperGraph::new();
        h.add_edge("e", vec![], vec![w("a", 1)]);
    }
}
