//! Connected components over constructed adjacency arrays, via the
//! classic label-propagation-as-semiring-iteration: each vertex starts
//! with its own label (its key), and repeatedly takes the `min` of its
//! own label and its neighbours' labels until fixpoint. The propagation
//! step is a `min.min`-flavoured vector product over the *undirected*
//! pattern (A ∨ Aᵀ).

use aarray_algebra::Value;
use aarray_core::AArray;
use std::collections::BTreeMap;

/// Weakly connected components: vertices grouped ignoring edge
/// direction. Returns `vertex → representative` (the lexicographically
/// least vertex key of its component).
pub fn weakly_connected_components<V: Value>(adj: &AArray<V>) -> BTreeMap<String, String> {
    assert_eq!(
        adj.row_keys(),
        adj.col_keys(),
        "components need a square adjacency array"
    );
    let n = adj.row_keys().len();

    // Undirected neighbour lists from the stored pattern.
    let mut nbrs: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (r, c, _) in adj.csr().iter() {
        nbrs[r].push(c as u32);
        nbrs[c].push(r as u32);
    }

    // Labels are key-set indices; min-propagate to fixpoint. Because
    // keys are sorted, index order IS lexicographic key order.
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            let mut best = label[v];
            for &u in &nbrs[v] {
                best = best.min(label[u as usize]);
            }
            if best < label[v] {
                label[v] = best;
                changed = true;
            }
        }
        // Pointer-jump to accelerate convergence on long paths.
        for v in 0..n {
            let l = label[v] as usize;
            if label[l] < label[v] {
                label[v] = label[l];
                changed = true;
            }
        }
    }

    (0..n)
        .map(|v| {
            (
                adj.row_keys().key(v).to_string(),
                adj.row_keys().key(label[v] as usize).to_string(),
            )
        })
        .collect()
}

/// Number of weakly connected components.
pub fn component_count<V: Value>(adj: &AArray<V>) -> usize {
    let reps: std::collections::BTreeSet<String> =
        weakly_connected_components(adj).into_values().collect();
    reps.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, path};
    use crate::MultiGraph;
    use aarray_algebra::pairs::PlusTimes;
    use aarray_algebra::values::nat::Nat;
    use aarray_core::adjacency_array;

    fn adjacency(g: &MultiGraph<Nat>) -> AArray<Nat> {
        let pair = PlusTimes::<Nat>::new();
        let (eout, ein) = g.incidence_arrays(&pair);
        adjacency_array(&eout, &ein, &pair)
    }

    #[test]
    fn single_path_is_one_component() {
        let adj = adjacency(&path(6));
        assert_eq!(component_count(&adj), 1);
        let comps = weakly_connected_components(&adj);
        assert!(comps.values().all(|r| r == "v0000000"));
    }

    #[test]
    fn disjoint_pieces() {
        let mut g = MultiGraph::new();
        g.add_edge("e1", "a1", "a2", Nat(1), Nat(1));
        g.add_edge("e2", "b1", "b2", Nat(1), Nat(1));
        g.add_vertex("lonely");
        let adj = adjacency(&g);
        assert_eq!(component_count(&adj), 3);
        let comps = weakly_connected_components(&adj);
        assert_eq!(comps["a2"], "a1");
        assert_eq!(comps["b2"], "b1");
        assert_eq!(comps["lonely"], "lonely");
    }

    #[test]
    fn direction_is_ignored() {
        // a→b←c is weakly connected even though not strongly.
        let mut g = MultiGraph::new();
        g.add_edge("e1", "a", "b", Nat(1), Nat(1));
        g.add_edge("e2", "c", "b", Nat(1), Nat(1));
        assert_eq!(component_count(&adjacency(&g)), 1);
    }

    #[test]
    fn cycle_converges() {
        let adj = adjacency(&cycle(9));
        assert_eq!(component_count(&adj), 1);
    }
}
