//! k-core decomposition over a constructed adjacency array — the
//! classic peeling algorithm on the undirected pattern.
//!
//! The core number of a vertex is the largest `k` such that the vertex
//! survives repeatedly deleting all vertices of (undirected) degree
//! `< k`. Linear-time bucket peeling (Batagelj–Zaveršnik style).

use aarray_algebra::Value;
use aarray_core::AArray;
use std::collections::BTreeMap;

/// Core number per vertex (self-loops ignored; direction ignored;
/// parallel stored entries count once — the adjacency array already
/// collapsed multi-edges).
pub fn core_numbers<V: Value>(adj: &AArray<V>) -> BTreeMap<String, usize> {
    assert_eq!(
        adj.row_keys(),
        adj.col_keys(),
        "k-core needs a square adjacency array"
    );
    let n = adj.row_keys().len();

    // Undirected simple neighbour sets.
    let mut nbrs: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (r, c, _) in adj.csr().iter() {
        if r != c {
            nbrs[r].push(c as u32);
            nbrs[c].push(r as u32);
        }
    }
    for l in nbrs.iter_mut() {
        l.sort_unstable();
        l.dedup();
    }

    let mut degree: Vec<usize> = nbrs.iter().map(Vec::len).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);

    // Bucket queue by current degree.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d].push(v as u32);
    }

    let mut core = vec![0usize; n];
    let mut removed = vec![false; n];
    let mut current_core = 0usize;
    let mut d = 0usize;
    while d <= max_deg {
        match buckets[d].pop() {
            None => {
                d += 1;
                continue;
            }
            Some(v) => {
                let v = v as usize;
                if removed[v] || degree[v] != d {
                    continue; // stale entry
                }
                removed[v] = true;
                current_core = current_core.max(d);
                core[v] = current_core;
                for &u in &nbrs[v] {
                    let u = u as usize;
                    if !removed[u] && degree[u] > 0 {
                        degree[u] -= 1;
                        buckets[degree[u]].push(u as u32);
                    }
                }
                // Each neighbour's degree dropped by exactly one, so
                // new work can appear one bucket down at most.
                d = d.saturating_sub(1);
            }
        }
    }

    (0..n)
        .map(|v| (adj.row_keys().key(v).to_string(), core[v]))
        .collect()
}

/// The degeneracy of the graph: the maximum core number.
pub fn degeneracy<V: Value>(adj: &AArray<V>) -> usize {
    core_numbers(adj).values().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, cycle, path};
    use crate::MultiGraph;
    use aarray_algebra::pairs::PlusTimes;
    use aarray_algebra::values::nat::Nat;
    use aarray_core::adjacency_array;

    fn adjacency(g: &MultiGraph<Nat>) -> AArray<Nat> {
        let pair = PlusTimes::<Nat>::new();
        let (eout, ein) = g.incidence_arrays(&pair);
        adjacency_array(&eout, &ein, &pair)
    }

    #[test]
    fn path_is_one_core() {
        let cores = core_numbers(&adjacency(&path(6)));
        assert!(cores.values().all(|&c| c == 1));
    }

    #[test]
    fn cycle_is_two_core() {
        let cores = core_numbers(&adjacency(&cycle(6)));
        assert!(cores.values().all(|&c| c == 2), "{:?}", cores);
    }

    #[test]
    fn complete_graph_core() {
        // K5: every vertex has undirected degree 4 ⇒ 4-core.
        assert_eq!(degeneracy(&adjacency(&complete(5))), 4);
    }

    #[test]
    fn triangle_with_a_tail() {
        // Triangle a-b-c plus pendant d attached to a: triangle is
        // 2-core, d is 1-core.
        let mut g = MultiGraph::new();
        g.add_edge("e1", "a", "b", Nat(1), Nat(1));
        g.add_edge("e2", "b", "c", Nat(1), Nat(1));
        g.add_edge("e3", "c", "a", Nat(1), Nat(1));
        g.add_edge("e4", "a", "d", Nat(1), Nat(1));
        let cores = core_numbers(&adjacency(&g));
        assert_eq!(cores["a"], 2);
        assert_eq!(cores["b"], 2);
        assert_eq!(cores["c"], 2);
        assert_eq!(cores["d"], 1);
        assert_eq!(degeneracy(&adjacency(&g)), 2);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = MultiGraph::new();
        g.add_edge("e1", "x", "x", Nat(1), Nat(1));
        g.add_edge("e2", "x", "y", Nat(1), Nat(1));
        let cores = core_numbers(&adjacency(&g));
        assert_eq!(cores["x"], 1);
        assert_eq!(cores["y"], 1);
    }

    #[test]
    fn isolated_vertex_is_zero_core() {
        let mut g = MultiGraph::new();
        g.add_vertex("alone");
        g.add_edge("e1", "a", "b", Nat(1), Nat(1));
        let cores = core_numbers(&adjacency(&g));
        assert_eq!(cores["alone"], 0);
    }
}
