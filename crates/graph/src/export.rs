//! Export constructed adjacency arrays to Graphviz DOT — the handoff
//! from the construction pipeline to visualization tools.

use aarray_algebra::Value;
use aarray_core::AArray;
use std::fmt::Display;

/// Options for DOT rendering.
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Graph name (`digraph <name> { … }`).
    pub name: String,
    /// Emit `label="<value>"` on edges.
    pub edge_labels: bool,
    /// Emit isolated vertices as bare nodes.
    pub include_isolated: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "G".to_string(),
            edge_labels: true,
            include_isolated: true,
        }
    }
}

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Render a square adjacency array as a DOT digraph.
pub fn to_dot<V: Value + Display>(adj: &AArray<V>, opts: &DotOptions) -> String {
    assert_eq!(
        adj.row_keys(),
        adj.col_keys(),
        "DOT export needs a square adjacency array"
    );
    let mut out = String::new();
    out.push_str(&format!("digraph {} {{\n", quote(&opts.name)));

    if opts.include_isolated {
        let mut touched = vec![false; adj.row_keys().len()];
        for (r, c, _) in adj.csr().iter() {
            touched[r] = true;
            touched[c] = true;
        }
        for (i, t) in touched.iter().enumerate() {
            if !t {
                out.push_str(&format!("  {};\n", quote(adj.row_keys().key(i))));
            }
        }
    }

    for (r, c, v) in adj.iter() {
        if opts.edge_labels {
            out.push_str(&format!(
                "  {} -> {} [label={}];\n",
                quote(r),
                quote(c),
                quote(&v.to_string())
            ));
        } else {
            out.push_str(&format!("  {} -> {};\n", quote(r), quote(c)));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarray_algebra::pairs::PlusTimes;
    use aarray_algebra::values::nat::Nat;

    fn sample() -> AArray<Nat> {
        let pair = PlusTimes::<Nat>::new();
        let mut g = crate::MultiGraph::new();
        g.add_edge("e1", "a", "b", Nat(2), Nat(1));
        g.add_vertex("lonely");
        let (eout, ein) = g.incidence_arrays(&pair);
        aarray_core::adjacency_array(&eout, &ein, &pair)
    }

    #[test]
    fn dot_structure() {
        let dot = to_dot(&sample(), &DotOptions::default());
        assert!(dot.starts_with("digraph \"G\" {"));
        assert!(dot.contains("\"a\" -> \"b\" [label=\"2\"];"));
        assert!(dot.contains("\"lonely\";"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn labels_and_isolated_can_be_disabled() {
        let opts = DotOptions {
            name: "M".into(),
            edge_labels: false,
            include_isolated: false,
        };
        let dot = to_dot(&sample(), &opts);
        assert!(dot.contains("\"a\" -> \"b\";"));
        assert!(!dot.contains("label="));
        assert!(!dot.contains("lonely"));
    }

    #[test]
    fn quoting_hostile_keys() {
        let pair = PlusTimes::<Nat>::new();
        let a = AArray::from_triples(&pair, [("he \"said\"", "he \"said\"", Nat(1))]);
        let dot = to_dot(&a, &DotOptions::default());
        assert!(dot.contains("\\\"said\\\""));
    }
}
