//! Streaming adjacency construction — edges arrive in batches (log
//! shipping, message queues), each batch becomes incidence arrays and
//! multiplies into a partial adjacency array, and partials combine by
//! element-wise `⊕`.
//!
//! Correctness across batches needs more than Theorem II.1: splitting
//! the edge set regroups the `⊕`-fold, so `⊕` must be **associative
//! and commutative** — enforced here by the marker-trait bounds, the
//! same ones gating parallel tree reductions. (All seven paper pairs
//! qualify.)

use crate::multigraph::MultiGraph;
use aarray_algebra::{AssociativeOp, BinaryOp, CommutativeOp, OpPair, Value};
use aarray_core::{adjacency_array_unchecked, AArray, KeySet};

/// Incremental adjacency builder. Edges accumulate into an internal
/// batch; every `batch_size` edges the batch is folded into the running
/// adjacency array.
pub struct StreamingAdjacency<V, A, M>
where
    V: Value,
    A: BinaryOp<V> + AssociativeOp<V> + CommutativeOp<V>,
    M: BinaryOp<V>,
    OpPair<V, A, M>: aarray_algebra::AdjacencyCompatible,
{
    pair: OpPair<V, A, M>,
    batch_size: usize,
    batch: MultiGraph<V>,
    partial: Option<AArray<V>>,
    edges_seen: usize,
    vertices: std::collections::BTreeSet<String>,
}

impl<V, A, M> StreamingAdjacency<V, A, M>
where
    V: Value,
    A: BinaryOp<V> + AssociativeOp<V> + CommutativeOp<V>,
    M: BinaryOp<V>,
    OpPair<V, A, M>: aarray_algebra::AdjacencyCompatible,
{
    /// New builder flushing every `batch_size` edges (≥ 1).
    pub fn new(pair: OpPair<V, A, M>, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batch size must be positive");
        StreamingAdjacency {
            pair,
            batch_size,
            batch: MultiGraph::new(),
            partial: None,
            edges_seen: 0,
            vertices: std::collections::BTreeSet::new(),
        }
    }

    /// Ingest one edge. Edge keys are assigned automatically (globally
    /// unique across batches).
    pub fn push_edge(&mut self, src: impl Into<String>, dst: impl Into<String>, wout: V, win: V) {
        let key = format!("se{:012}", self.edges_seen);
        self.edges_seen += 1;
        let (src, dst) = (src.into(), dst.into());
        self.vertices.insert(src.clone());
        self.vertices.insert(dst.clone());
        self.batch.add_edge(key, src, dst, wout, win);
        if self.batch.edge_count() >= self.batch_size {
            self.flush();
        }
    }

    /// Total edges ingested.
    pub fn edges_seen(&self) -> usize {
        self.edges_seen
    }

    /// Fold the pending batch into the running adjacency array.
    pub fn flush(&mut self) {
        if self.batch.edge_count() == 0 {
            return;
        }
        let g = std::mem::replace(&mut self.batch, MultiGraph::new());
        let (eout, ein) = g.incidence_arrays(&self.pair);
        let part = adjacency_array_unchecked(&eout, &ein, &self.pair);
        self.partial = Some(match self.partial.take() {
            None => part,
            Some(acc) => acc.ewise_add(&part, &self.pair),
        });
    }

    /// Flush and return the adjacency array over **all** vertices seen
    /// (including ones whose edges were folded in earlier batches).
    pub fn finish(mut self) -> AArray<V> {
        self.flush();
        let all = KeySet::from_iter(self.vertices.iter().cloned());
        match self.partial {
            None => AArray::empty(all.clone(), all),
            Some(a) => {
                // Re-embed into the full vertex set: earlier batches may
                // not have seen every vertex.
                let pad = AArray::empty(all.clone(), all);
                a.ewise_add(&pad, &self.pair)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarray_algebra::pairs::{MaxMin, PlusTimes};
    use aarray_algebra::values::nat::Nat;
    use aarray_core::adjacency_array;

    fn one_shot(edges: &[(&str, &str, u64)], pair: &PlusTimes<Nat>) -> AArray<Nat> {
        let mut g = MultiGraph::new();
        for (i, &(s, d, w)) in edges.iter().enumerate() {
            g.add_edge(format!("se{:012}", i), s, d, Nat(w), Nat(1));
        }
        let (eout, ein) = g.incidence_arrays(pair);
        adjacency_array(&eout, &ein, pair)
    }

    #[test]
    fn batched_equals_one_shot_plus_times() {
        let pair = PlusTimes::<Nat>::new();
        let edges = [
            ("a", "b", 2),
            ("a", "b", 3),
            ("b", "c", 5),
            ("c", "a", 7),
            ("a", "b", 11),
        ];
        for batch_size in [1usize, 2, 3, 100] {
            let mut s = StreamingAdjacency::new(pair, batch_size);
            for &(src, dst, w) in &edges {
                s.push_edge(src, dst, Nat(w), Nat(1));
            }
            let streamed = s.finish();
            assert_eq!(
                streamed,
                one_shot(&edges, &pair),
                "batch size {}",
                batch_size
            );
        }
    }

    #[test]
    fn batched_equals_one_shot_max_min() {
        let pair = MaxMin::<Nat>::new();
        let mut s = StreamingAdjacency::new(pair, 2);
        for (src, dst, w) in [("a", "b", 3u64), ("a", "b", 9), ("a", "b", 5)] {
            s.push_edge(src, dst, Nat(w), Nat(w));
        }
        let a = s.finish();
        // max over edges of min(w, w) = 9.
        assert_eq!(a.get("a", "b"), Some(&Nat(9)));
    }

    #[test]
    fn empty_stream() {
        let pair = PlusTimes::<Nat>::new();
        let s = StreamingAdjacency::new(pair, 10);
        let a = s.finish();
        assert_eq!(a.shape(), (0, 0));
    }

    #[test]
    fn vertices_from_early_batches_survive() {
        let pair = PlusTimes::<Nat>::new();
        let mut s = StreamingAdjacency::new(pair, 1);
        s.push_edge("early1", "early2", Nat(1), Nat(1));
        s.push_edge("late1", "late2", Nat(1), Nat(1));
        let a = s.finish();
        assert_eq!(a.shape(), (4, 4));
        assert_eq!(a.get("early1", "early2"), Some(&Nat(1)));
    }

    #[test]
    fn edge_count_tracking() {
        let pair = PlusTimes::<Nat>::new();
        let mut s = StreamingAdjacency::new(pair, 3);
        for _ in 0..7 {
            s.push_edge("x", "y", Nat(1), Nat(1));
        }
        assert_eq!(s.edges_seen(), 7);
        let a = s.finish();
        assert_eq!(a.get("x", "y"), Some(&Nat(7)));
    }
}
