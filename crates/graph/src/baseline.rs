//! The non-array baseline: build the adjacency array by scanning the
//! edge list and aggregating into a map — what a data engineer writes
//! when they do *not* have `EᵀoutEin`.
//!
//! Semantics match the paper's product exactly: the entry for `(a, b)`
//! is the left-associated `⊕`-fold of `wout(k) ⊗ win(k)` over the
//! connecting edges `k` in **ascending edge-key order** (the same
//! canonical order the array kernels use). For compliant pairs this
//! equals `adjacency_array`; the `baseline_direct` bench races the two.

use crate::multigraph::MultiGraph;
use aarray_algebra::{BinaryOp, OpPair, Value};
use aarray_core::AArray;
use std::collections::BTreeMap;

/// Direct adjacency construction from the edge list.
pub fn direct_adjacency<V, A, M>(g: &MultiGraph<V>, pair: &OpPair<V, A, M>) -> AArray<V>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    // Ascending edge-key order = the array kernels' inner-key order.
    let mut edge_order: Vec<usize> = (0..g.edges().len()).collect();
    edge_order.sort_by(|&i, &j| g.edges()[i].key.cmp(&g.edges()[j].key));

    let mut acc: BTreeMap<(String, String), V> = BTreeMap::new();
    for i in edge_order {
        let e = &g.edges()[i];
        let term = pair.times(&e.wout, &e.win);
        acc.entry((e.src.clone(), e.dst.clone()))
            .and_modify(|prev| *prev = pair.plus(prev, &term))
            .or_insert(term);
    }

    let vertex_keys = aarray_core::KeySet::from_iter(g.vertices().map(str::to_string));
    let triples = acc
        .into_iter()
        .filter(|(_, v)| !pair.is_zero(v))
        .map(|((s, d), v)| (s, d, v));
    AArray::from_triples_with_keys(
        pair,
        vertex_keys.clone(),
        vertex_keys,
        triples.collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarray_algebra::pairs::{MaxMin, MinPlus, PlusTimes};
    use aarray_algebra::values::nat::Nat;
    use aarray_algebra::values::nn::{nn, NN};
    use aarray_core::adjacency_array;

    fn weighted_graph() -> MultiGraph<Nat> {
        let mut g = MultiGraph::new();
        g.add_edge("e1", "a", "b", Nat(2), Nat(3));
        g.add_edge("e2", "a", "b", Nat(5), Nat(1));
        g.add_edge("e3", "b", "c", Nat(4), Nat(4));
        g.add_edge("e4", "c", "c", Nat(7), Nat(1));
        g
    }

    #[test]
    fn baseline_matches_array_multiplication_plus_times() {
        let pair = PlusTimes::<Nat>::new();
        let g = weighted_graph();
        let (eout, ein) = g.incidence_arrays(&pair);
        assert_eq!(
            direct_adjacency(&g, &pair),
            adjacency_array(&eout, &ein, &pair)
        );
    }

    #[test]
    fn baseline_matches_array_multiplication_max_min() {
        let pair = MaxMin::<Nat>::new();
        let g = weighted_graph();
        let (eout, ein) = g.incidence_arrays(&pair);
        assert_eq!(
            direct_adjacency(&g, &pair),
            adjacency_array(&eout, &ein, &pair)
        );
    }

    #[test]
    fn baseline_matches_min_plus_on_reals() {
        let pair = MinPlus::<NN>::new();
        let mut g = MultiGraph::new();
        g.add_edge("e1", "a", "b", nn(1.0), nn(2.0));
        g.add_edge("e2", "a", "b", nn(0.5), nn(1.0));
        let (eout, ein) = g.incidence_arrays(&pair);
        let direct = direct_adjacency(&g, &pair);
        assert_eq!(direct, adjacency_array(&eout, &ein, &pair));
        assert_eq!(direct.get("a", "b"), Some(&nn(1.5)));
    }

    #[test]
    fn parallel_edges_aggregate() {
        let pair = PlusTimes::<Nat>::new();
        let g = weighted_graph();
        let a = direct_adjacency(&g, &pair);
        // 2·3 + 5·1 = 11.
        assert_eq!(a.get("a", "b"), Some(&Nat(11)));
        assert_eq!(a.get("c", "c"), Some(&Nat(7)));
        assert_eq!(a.nnz(), 3);
    }
}
