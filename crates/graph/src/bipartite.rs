//! Bipartite projection — the general form of the paper's evaluation.
//!
//! Figures 3/5 correlate genres with writers through shared tracks:
//! `A = E1ᵀ ⊕.⊗ E2` where `E1`, `E2` slice one incidence array by
//! attribute family. This module packages that pattern: given an
//! entity×attribute incidence array and two attribute selections,
//! produce the attribute×attribute co-occurrence graph under any pair.

use aarray_algebra::{BinaryOp, DynOpPair, OpPair, Value};
use aarray_core::{AArray, KeySelect};

/// Project an entity×attribute incidence array onto
/// `left_attrs × right_attrs`, correlating through shared entities:
/// `E(:, left)ᵀ ⊕.⊗ E(:, right)`.
pub fn project<V, A, M>(
    incidence: &AArray<V>,
    left_attrs: &KeySelect,
    right_attrs: &KeySelect,
    pair: &OpPair<V, A, M>,
) -> AArray<V>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    let e1 = incidence.select(&KeySelect::All, left_attrs);
    let e2 = incidence.select(&KeySelect::All, right_attrs);
    e1.transpose_matmul_plan(&e2).execute(pair)
}

/// [`project`] under `K` heterogeneous pairs at once: the slicing,
/// transpose, key alignment, and sparsity pattern are computed once,
/// and a single fused traversal feeds every algebra's accumulator
/// (`MatmulPlan::execute_all`). Output `p` is bit-identical to
/// `project(incidence, left_attrs, right_attrs, pairs[p])`.
pub fn project_multi<V: Value>(
    incidence: &AArray<V>,
    left_attrs: &KeySelect,
    right_attrs: &KeySelect,
    pairs: &[&dyn DynOpPair<V>],
) -> Vec<AArray<V>> {
    let e1 = incidence.select(&KeySelect::All, left_attrs);
    let e2 = incidence.select(&KeySelect::All, right_attrs);
    e1.transpose_matmul_plan(&e2).execute_all(pairs)
}

/// Self-projection: `E(:, attrs)ᵀ ⊕.⊗ E(:, attrs)` — the co-occurrence
/// graph within one attribute family (writers co-crediting tracks,
/// genres co-assigned, …). The diagonal carries each attribute's
/// self-correlation (its degree under `+.×`).
pub fn co_occurrence<V, A, M>(
    incidence: &AArray<V>,
    attrs: &KeySelect,
    pair: &OpPair<V, A, M>,
) -> AArray<V>
where
    V: Value,
    A: BinaryOp<V>,
    M: BinaryOp<V>,
{
    project(incidence, attrs, attrs, pair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarray_algebra::pairs::PlusTimes;
    use aarray_algebra::values::nat::Nat;

    fn incidence() -> AArray<Nat> {
        AArray::from_triples(
            &PlusTimes::<Nat>::new(),
            [
                ("t1", "Genre|Pop", Nat(1)),
                ("t1", "Writer|Ann", Nat(1)),
                ("t1", "Writer|Bob", Nat(1)),
                ("t2", "Genre|Pop", Nat(1)),
                ("t2", "Writer|Ann", Nat(1)),
                ("t3", "Genre|Rock", Nat(1)),
                ("t3", "Writer|Bob", Nat(1)),
            ],
        )
    }

    #[test]
    fn genre_writer_projection() {
        let pair = PlusTimes::<Nat>::new();
        let a = project(
            &incidence(),
            &KeySelect::Prefix("Genre|".into()),
            &KeySelect::Prefix("Writer|".into()),
            &pair,
        );
        assert_eq!(a.get("Genre|Pop", "Writer|Ann"), Some(&Nat(2)));
        assert_eq!(a.get("Genre|Pop", "Writer|Bob"), Some(&Nat(1)));
        assert_eq!(a.get("Genre|Rock", "Writer|Bob"), Some(&Nat(1)));
        assert_eq!(a.get("Genre|Rock", "Writer|Ann"), None);
    }

    #[test]
    fn writer_co_occurrence() {
        let pair = PlusTimes::<Nat>::new();
        let a = co_occurrence(&incidence(), &KeySelect::Prefix("Writer|".into()), &pair);
        // Ann and Bob co-credit t1 only.
        assert_eq!(a.get("Writer|Ann", "Writer|Bob"), Some(&Nat(1)));
        assert_eq!(a.get("Writer|Bob", "Writer|Ann"), Some(&Nat(1)));
        // Diagonal = degree.
        assert_eq!(a.get("Writer|Ann", "Writer|Ann"), Some(&Nat(2)));
        assert_eq!(a.get("Writer|Bob", "Writer|Bob"), Some(&Nat(2)));
    }

    #[test]
    fn project_multi_matches_per_pair_projections() {
        use aarray_algebra::pairs::{MaxMin, MinPlus};
        let pt = PlusTimes::<Nat>::new();
        let mm = MaxMin::<Nat>::new();
        let mp = MinPlus::<Nat>::new();
        let left = KeySelect::Prefix("Genre|".into());
        let right = KeySelect::Prefix("Writer|".into());
        let inc = incidence();
        let pairs: [&dyn DynOpPair<Nat>; 3] = [&pt, &mm, &mp];
        let fused = project_multi(&inc, &left, &right, &pairs);
        assert_eq!(fused.len(), 3);
        assert_eq!(fused[0], project(&inc, &left, &right, &pt));
        assert_eq!(fused[1], project(&inc, &left, &right, &mm));
        assert_eq!(fused[2], project(&inc, &left, &right, &mp));
    }

    #[test]
    fn projection_is_symmetric_for_commutative_times() {
        let pair = PlusTimes::<Nat>::new();
        let a = co_occurrence(&incidence(), &KeySelect::Prefix("Writer|".into()), &pair);
        assert_eq!(a, a.transpose());
    }

    #[test]
    fn matches_paper_workload_shape() {
        // Same computation as Figure 3 via the generic projector.
        use aarray_algebra::values::nn::{nn, NN};
        use aarray_d4m::music::{music_e1, music_e2, music_incidence};
        let pair = PlusTimes::<NN>::new();
        let a = project(
            &music_incidence(),
            &KeySelect::Range {
                lo: "Genre|A".into(),
                hi: "Genre|Z".into(),
            },
            &KeySelect::Range {
                lo: "Writer|A".into(),
                hi: "Writer|Z".into(),
            },
            &pair,
        );
        let direct = music_e1().transpose().matmul(&music_e2(), &pair);
        assert_eq!(a, direct);
        assert_eq!(a.get("Genre|Pop", "Writer|Chad Anderson"), Some(&nn(13.0)));
    }
}
