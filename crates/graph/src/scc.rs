//! Strongly connected components over constructed adjacency arrays —
//! iterative Tarjan on the stored pattern (Tarjan 1972 is literally in
//! the paper's reference list, cited for adjacency structures).

use aarray_algebra::Value;
use aarray_core::AArray;
use std::collections::BTreeMap;

/// Strongly connected components: `vertex → component id`, ids being
/// dense indices in reverse topological order of the condensation
/// (Tarjan's emission order).
pub fn strongly_connected_components<V: Value>(adj: &AArray<V>) -> BTreeMap<String, usize> {
    assert_eq!(
        adj.row_keys(),
        adj.col_keys(),
        "SCC needs a square adjacency array"
    );
    let n = adj.row_keys().len();

    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![UNSET; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    // Iterative Tarjan: (vertex, next-neighbour-position) call frames.
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let (nbrs, _) = adj.csr().row(v);
            if *pos < nbrs.len() {
                let w = nbrs[*pos] as usize;
                *pos += 1;
                if index[w] == UNSET {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // v is finished.
                if lowlink[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                frames.pop();
                if let Some(&mut (u, _)) = frames.last_mut() {
                    lowlink[u] = lowlink[u].min(lowlink[v]);
                }
            }
        }
    }

    (0..n)
        .map(|v| (adj.row_keys().key(v).to_string(), comp[v]))
        .collect()
}

/// Number of strongly connected components.
pub fn scc_count<V: Value>(adj: &AArray<V>) -> usize {
    let comps = strongly_connected_components(adj);
    comps
        .values()
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, path};
    use crate::MultiGraph;
    use aarray_algebra::pairs::PlusTimes;
    use aarray_algebra::values::nat::Nat;
    use aarray_core::adjacency_array;

    fn adjacency(g: &MultiGraph<Nat>) -> AArray<Nat> {
        let pair = PlusTimes::<Nat>::new();
        let (eout, ein) = g.incidence_arrays(&pair);
        adjacency_array(&eout, &ein, &pair)
    }

    #[test]
    fn cycle_is_one_scc() {
        assert_eq!(scc_count(&adjacency(&cycle(7))), 1);
    }

    #[test]
    fn path_is_all_singletons() {
        assert_eq!(scc_count(&adjacency(&path(6))), 6);
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        let mut g = MultiGraph::new();
        // Cycle 1: a↔b. Cycle 2: c↔d. Bridge b→c.
        g.add_edge("e1", "a", "b", Nat(1), Nat(1));
        g.add_edge("e2", "b", "a", Nat(1), Nat(1));
        g.add_edge("e3", "c", "d", Nat(1), Nat(1));
        g.add_edge("e4", "d", "c", Nat(1), Nat(1));
        g.add_edge("e5", "b", "c", Nat(1), Nat(1));
        let adj = adjacency(&g);
        let comps = strongly_connected_components(&adj);
        assert_eq!(scc_count(&adj), 2);
        assert_eq!(comps["a"], comps["b"]);
        assert_eq!(comps["c"], comps["d"]);
        assert_ne!(comps["a"], comps["c"]);
        // Tarjan emits sinks first: the c/d component precedes a/b.
        assert!(comps["c"] < comps["a"]);
    }

    #[test]
    fn self_loop_is_its_own_scc() {
        let mut g = MultiGraph::new();
        g.add_edge("e1", "x", "x", Nat(1), Nat(1));
        g.add_edge("e2", "x", "y", Nat(1), Nat(1));
        let adj = adjacency(&g);
        assert_eq!(scc_count(&adj), 2);
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // Iterative implementation: a 20k-vertex path must not recurse.
        let adj = adjacency(&path(20_000));
        assert_eq!(scc_count(&adj), 20_000);
    }
}
