//! Semiring graph algorithms over constructed adjacency arrays — the
//! downstream consumers the paper's pipeline feeds ("an adjacency array
//! of the graph, A, that can be processed with a variety of
//! algorithms").
//!
//! Each algorithm is a loop of `⊕.⊗` vector products under the
//! appropriate pair: BFS under Boolean `∨.∧`, single-source shortest
//! paths under `min.+`, widest-path under `max.min` — the same pairs
//! Figures 3/5 construct adjacency arrays with.

use aarray_algebra::pairs::{MaxMin, MaxPlus, MinPlus, OrAnd, PlusTimes};
use aarray_algebra::values::nat::Nat;
use aarray_algebra::values::nn::NN;
use aarray_algebra::values::tropical::Tropical;
use aarray_core::AArray;
use aarray_sparse::elementwise::ewise_mul;
use aarray_sparse::spgemm;
use aarray_sparse::spmv::spmv;
use std::collections::BTreeMap;

/// Breadth-first search levels from `source` over a Boolean adjacency
/// array (row key = out vertex). Returns `vertex → level`; unreachable
/// vertices are absent.
pub fn bfs_levels(adj: &AArray<bool>, source: &str) -> BTreeMap<String, usize> {
    let pair = OrAnd::new();
    let n = adj.col_keys().len();
    assert_eq!(
        adj.row_keys(),
        adj.col_keys(),
        "BFS needs a square adjacency array"
    );
    let src = match adj.row_keys().index_of(source) {
        Some(i) => i,
        None => return BTreeMap::new(),
    };

    // Frontier as a dense Option<bool> vector; traversal pulls via Aᵀ
    // (we advance along edge direction: next = Aᵀ ∨.∧ frontier).
    let at = adj.csr().transpose();
    let mut levels: BTreeMap<String, usize> = BTreeMap::new();
    let mut frontier: Vec<Option<bool>> = vec![None; n];
    frontier[src] = Some(true);
    levels.insert(source.to_string(), 0);

    let mut level = 0usize;
    loop {
        level += 1;
        let next = spmv(&at, &frontier, &pair);
        let mut new_frontier: Vec<Option<bool>> = vec![None; n];
        let mut any = false;
        for (i, reached) in next.into_iter().enumerate() {
            if reached == Some(true) {
                let key = adj.row_keys().key(i);
                if !levels.contains_key(key) {
                    levels.insert(key.to_string(), level);
                    new_frontier[i] = Some(true);
                    any = true;
                }
            }
        }
        if !any {
            break;
        }
        frontier = new_frontier;
    }
    levels
}

/// Single-source shortest path distances under `min.+` (Bellman-Ford
/// style relaxation over the adjacency array; `n − 1` rounds or until
/// fixpoint). Edge weights are the adjacency values.
pub fn sssp_min_plus(adj: &AArray<NN>, source: &str) -> BTreeMap<String, NN> {
    let pair = MinPlus::<NN>::new();
    assert_eq!(
        adj.row_keys(),
        adj.col_keys(),
        "SSSP needs a square adjacency array"
    );
    let n = adj.col_keys().len();
    let src = match adj.row_keys().index_of(source) {
        Some(i) => i,
        None => return BTreeMap::new(),
    };

    let at = adj.csr().transpose();
    let mut dist: Vec<Option<NN>> = vec![None; n];
    dist[src] = Some(NN::ZERO);

    for _ in 0..n.saturating_sub(1) {
        // relaxed = Aᵀ min.+ dist, then dist = min(dist, relaxed).
        let relaxed = spmv(&at, &dist, &pair);
        let mut changed = false;
        for i in 0..n {
            match (&dist[i], &relaxed[i]) {
                (None, Some(v)) => {
                    dist[i] = Some(*v);
                    changed = true;
                }
                (Some(d), Some(v)) if v < d => {
                    dist[i] = Some(*v);
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    dist.into_iter()
        .enumerate()
        .filter_map(|(i, d)| d.map(|d| (adj.row_keys().key(i).to_string(), d)))
        .collect()
}

/// Widest-path (maximum bottleneck) values from `source` under
/// `max.min`.
pub fn widest_path_max_min(adj: &AArray<Nat>, source: &str) -> BTreeMap<String, Nat> {
    let pair = MaxMin::<Nat>::new();
    assert_eq!(
        adj.row_keys(),
        adj.col_keys(),
        "widest-path needs a square adjacency array"
    );
    let n = adj.col_keys().len();
    let src = match adj.row_keys().index_of(source) {
        Some(i) => i,
        None => return BTreeMap::new(),
    };

    let at = adj.csr().transpose();
    let mut width: Vec<Option<Nat>> = vec![None; n];
    width[src] = Some(Nat::TOP); // ⊤: unconstrained at the source.

    for _ in 0..n.saturating_sub(1) {
        let relaxed = spmv(&at, &width, &pair);
        let mut changed = false;
        for i in 0..n {
            match (&width[i], &relaxed[i]) {
                (None, Some(v)) => {
                    width[i] = Some(*v);
                    changed = true;
                }
                (Some(w), Some(v)) if v > w => {
                    width[i] = Some(*v);
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    width
        .into_iter()
        .enumerate()
        .filter_map(|(i, d)| d.map(|d| (adj.row_keys().key(i).to_string(), d)))
        .collect()
}

/// Count closed wedges: `(A ⊕.⊗ A) ∘ A` under `+.×`, summed. For a
/// simple directed graph this is the number of directed paths `i→j→k`
/// that close with an edge `i→k` — the building block of directed
/// triangle counting.
pub fn closed_wedge_count(adj: &AArray<Nat>) -> u64 {
    let pair = PlusTimes::<Nat>::new();
    assert_eq!(
        adj.row_keys(),
        adj.col_keys(),
        "wedge count needs a square adjacency array"
    );
    let a = adj.csr();
    let a2 = spgemm(a, a, &pair);
    let closed = ewise_mul(&a2, a, &pair);
    closed.values().iter().map(|v| v.0).sum()
}

/// Longest-path values from `source` under `max.+` on a **DAG** whose
/// adjacency array was constructed with the tropical pair (critical-
/// path analysis). Relaxes `n − 1` rounds; panics if values are still
/// improving afterwards (a positive-weight cycle — not a DAG).
pub fn longest_path_max_plus(adj: &AArray<Tropical>, source: &str) -> BTreeMap<String, Tropical> {
    let pair = MaxPlus::<Tropical>::new();
    assert_eq!(
        adj.row_keys(),
        adj.col_keys(),
        "longest path needs a square adjacency array"
    );
    let n = adj.col_keys().len();
    let src = match adj.row_keys().index_of(source) {
        Some(i) => i,
        None => return BTreeMap::new(),
    };

    let at = adj.csr().transpose();
    let mut dist: Vec<Option<Tropical>> = vec![None; n];
    dist[src] = Some(Tropical::ZERO);

    for round in 0..n {
        let relaxed = spmv(&at, &dist, &pair);
        let mut changed = false;
        for i in 0..n {
            match (&dist[i], &relaxed[i]) {
                (None, Some(v)) => {
                    dist[i] = Some(*v);
                    changed = true;
                }
                (Some(d), Some(v)) if v > d => {
                    dist[i] = Some(*v);
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
        assert!(
            round < n - 1,
            "graph has a reachable positive-weight cycle (not a DAG)"
        );
    }

    dist.into_iter()
        .enumerate()
        .filter_map(|(i, d)| d.map(|d| (adj.row_keys().key(i).to_string(), d)))
        .collect()
}

/// Eccentricity of `source`: the maximum BFS level it reaches.
/// `None` if the source is unknown or reaches nothing else.
pub fn eccentricity(adj: &AArray<bool>, source: &str) -> Option<usize> {
    let levels = bfs_levels(adj, source);
    levels.values().max().copied().filter(|&m| m > 0)
}

/// Directed pseudo-diameter: the maximum eccentricity over all
/// vertices (exact, `O(V)` BFS runs — fine at analysis scale).
pub fn diameter(adj: &AArray<bool>) -> Option<usize> {
    (0..adj.row_keys().len())
        .filter_map(|v| eccentricity(adj, adj.row_keys().key(v)))
        .max()
}

/// Out-degrees by vertex key (stored-entry counts per row).
pub fn out_degrees<V: aarray_algebra::Value>(adj: &AArray<V>) -> BTreeMap<String, usize> {
    (0..adj.row_keys().len())
        .map(|r| (adj.row_keys().key(r).to_string(), adj.csr().row_nnz(r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, path};
    use aarray_algebra::pairs::{OrAnd, PlusTimes};
    use aarray_algebra::values::nn::nn;
    use aarray_core::adjacency_array;

    fn bool_adjacency(g: &crate::MultiGraph<Nat>) -> AArray<bool> {
        let pair = PlusTimes::<Nat>::new();
        let (eout, ein) = g.incidence_arrays(&pair);
        let bpair = OrAnd::new();
        adjacency_array(
            &eout.map_prune(&bpair, |v| v.0 > 0),
            &ein.map_prune(&bpair, |v| v.0 > 0),
            &bpair,
        )
    }

    #[test]
    fn bfs_on_a_path() {
        let g = path(5);
        let adj = bool_adjacency(&g);
        let levels = bfs_levels(&adj, "v0000000");
        assert_eq!(levels.len(), 5);
        assert_eq!(levels["v0000004"], 4);
        assert_eq!(levels["v0000000"], 0);
    }

    #[test]
    fn bfs_respects_direction() {
        let g = path(4);
        let adj = bool_adjacency(&g);
        // From the far end nothing is reachable (edges point away).
        let levels = bfs_levels(&adj, "v0000003");
        assert_eq!(levels.len(), 1);
    }

    #[test]
    fn bfs_on_cycle_wraps() {
        let g = cycle(6);
        let adj = bool_adjacency(&g);
        let levels = bfs_levels(&adj, "v0000002");
        assert_eq!(levels.len(), 6);
        assert_eq!(levels["v0000001"], 5);
    }

    #[test]
    fn bfs_missing_source() {
        let g = path(3);
        let adj = bool_adjacency(&g);
        assert!(bfs_levels(&adj, "ghost").is_empty());
    }

    #[test]
    fn sssp_weighted_diamond() {
        // a→b (1), a→c (5), b→c (1): shortest a→c is 2 via b.
        let pair = MinPlus::<NN>::new();
        let mut g = crate::MultiGraph::new();
        g.add_edge("e1", "a", "b", nn(1.0), nn(1.0));
        g.add_edge("e2", "a", "c", nn(1.0), nn(5.0));
        g.add_edge("e3", "b", "c", nn(1.0), nn(1.0));
        let (eout, ein) = g.incidence_arrays(&pair);
        // Adjacency under min.+: entry = min over edges of wout + win.
        let adj = adjacency_array(&eout, &ein, &pair);
        assert_eq!(adj.get("a", "b"), Some(&nn(2.0)));
        let dist = sssp_min_plus(&adj, "a");
        assert_eq!(dist["a"], NN::ZERO);
        assert_eq!(dist["b"], nn(2.0));
        // a→b→c = 2 + 2 = 4 < a→c = 6.
        assert_eq!(dist["c"], nn(4.0));
    }

    #[test]
    fn widest_path_bottleneck() {
        let pair = MaxMin::<Nat>::new();
        let mut g = crate::MultiGraph::new();
        // Two routes a→c: direct with width 2, via b with widths 10, 7.
        g.add_edge("e1", "a", "c", Nat(2), Nat(2));
        g.add_edge("e2", "a", "b", Nat(10), Nat(10));
        g.add_edge("e3", "b", "c", Nat(7), Nat(7));
        let (eout, ein) = g.incidence_arrays(&pair);
        let adj = adjacency_array(&eout, &ein, &pair);
        let w = widest_path_max_min(&adj, "a");
        assert_eq!(w["c"], Nat(7));
        assert_eq!(w["b"], Nat(10));
    }

    #[test]
    fn wedge_count_on_triangle() {
        let pair = PlusTimes::<Nat>::new();
        let g = cycle(3);
        let (eout, ein) = g.incidence_arrays(&pair);
        let adj = adjacency_array(&eout, &ein, &pair);
        // Directed 3-cycle: paths v0→v1→v2 close with edge v0→v2? No —
        // the only edges are the cycle's. A² has entries (i, i+2); A has
        // (i, i+1): no overlap, zero closed wedges.
        assert_eq!(closed_wedge_count(&adj), 0);
        // Add chords to close them.
        let mut g2 = g.clone();
        g2.add_edge("x1", "v0000000", "v0000002", Nat(1), Nat(1));
        let (eo2, ei2) = g2.incidence_arrays(&pair);
        let adj2 = adjacency_array(&eo2, &ei2, &pair);
        assert_eq!(closed_wedge_count(&adj2), 1);
    }

    #[test]
    fn longest_path_critical_chain() {
        use aarray_algebra::values::tropical::trop;
        // Tasks: start→a (3), start→b (1), a→end (2), b→end (10).
        // Critical path start→b→end = 11.
        let pair = MaxPlus::<Tropical>::new();
        let mut g = crate::MultiGraph::new();
        g.add_edge("e1", "start", "a", trop(1.0), trop(2.0)); // 1+2 = 3
        g.add_edge("e2", "start", "b", trop(0.5), trop(0.5)); // 1
        g.add_edge("e3", "a", "end", trop(1.0), trop(1.0)); // 2
        g.add_edge("e4", "b", "end", trop(5.0), trop(5.0)); // 10
        let (eout, ein) = g.incidence_arrays(&pair);
        let adj = adjacency_array(&eout, &ein, &pair);
        let lp = longest_path_max_plus(&adj, "start");
        assert_eq!(lp["a"], trop(3.0));
        assert_eq!(lp["b"], trop(1.0));
        assert_eq!(lp["end"], trop(11.0));
        assert_eq!(lp["start"], Tropical::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive-weight cycle")]
    fn longest_path_rejects_cycles() {
        use aarray_algebra::values::tropical::trop;
        let pair = MaxPlus::<Tropical>::new();
        let mut g = crate::MultiGraph::new();
        g.add_edge("e1", "a", "b", trop(1.0), trop(1.0));
        g.add_edge("e2", "b", "a", trop(1.0), trop(1.0));
        let (eout, ein) = g.incidence_arrays(&pair);
        let adj = adjacency_array(&eout, &ein, &pair);
        let _ = longest_path_max_plus(&adj, "a");
    }

    #[test]
    fn eccentricity_and_diameter() {
        let adj = bool_adjacency(&path(5));
        assert_eq!(eccentricity(&adj, "v0000000"), Some(4));
        assert_eq!(eccentricity(&adj, "v0000003"), Some(1));
        assert_eq!(eccentricity(&adj, "v0000004"), None); // sink
        assert_eq!(diameter(&adj), Some(4));
        let c = bool_adjacency(&cycle(6));
        assert_eq!(diameter(&c), Some(5));
    }

    #[test]
    fn out_degree_map() {
        let pair = PlusTimes::<Nat>::new();
        let g = path(4);
        let (eout, ein) = g.incidence_arrays(&pair);
        let adj = adjacency_array(&eout, &ein, &pair);
        let deg = out_degrees(&adj);
        assert_eq!(deg["v0000000"], 1);
        assert_eq!(deg["v0000003"], 0);
    }
}
