//! Section III's structured document×word scenario.
//!
//! The paper: "if each key set of an undirected incidence array `E` is
//! a list of documents and the array entries are sets of words shared
//! by documents, then … a word in `E(i, j)` and `E(m, n)` has to be in
//! `E(i, n)` and `E(m, j)`. This structure means that when multiplying
//! `EᵀE` using `⊕ = ∪` and `⊗ = ∩`, a nonempty set will never be
//! 'multiplied' by a disjoint nonempty set" — so the `∪.∩` pair is safe
//! *on this data* despite having zero divisors in general.
//!
//! [`shared_word_array`] builds such an `E` from a corpus: `E(i, j)` is
//! the (non-empty) set of words documents `i` and `j` share. The
//! structure property holds by construction: a word `w ∈ E(i, j) ∩
//! E(m, n)` belongs to documents `i, j, m, n` alike, hence to
//! `E(i, n)` and `E(m, j)`.

use aarray_algebra::pairs::UnionIntersect;
use aarray_algebra::values::wordset::WordSet;
use aarray_core::AArray;
use std::collections::BTreeSet;

/// A document: a name and its word population.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Document {
    /// Document key.
    pub name: String,
    /// The words it contains.
    pub words: BTreeSet<String>,
}

impl Document {
    /// Convenience constructor.
    pub fn new<I, S>(name: impl Into<String>, words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Document {
            name: name.into(),
            words: words.into_iter().map(Into::into).collect(),
        }
    }
}

/// Build the undirected shared-word incidence array `E` over a corpus:
/// `E(i, j) = words(i) ∩ words(j)` wherever non-empty (including the
/// diagonal `E(i, i) = words(i)`).
pub fn shared_word_array(docs: &[Document]) -> AArray<WordSet> {
    let pair = UnionIntersect::<WordSet>::new();
    let mut triples = Vec::new();
    for a in docs {
        for b in docs {
            let shared: BTreeSet<String> = a.words.intersection(&b.words).cloned().collect();
            if !shared.is_empty() {
                triples.push((a.name.clone(), b.name.clone(), WordSet::of(shared)));
            }
        }
    }
    AArray::from_triples(&pair, triples)
}

/// The structure property from Section III, checked directly: for all
/// stored `E(i, j)` and `E(m, n)` and every shared word `w` in both,
/// `w` must appear in `E(i, n)` and `E(m, j)`.
pub fn has_sharing_structure(e: &AArray<WordSet>) -> bool {
    let entries: Vec<(&str, &str, &WordSet)> = e.iter().collect();
    for &(i, j, ws1) in &entries {
        for &(m, n, ws2) in &entries {
            let both: Vec<&String> = match (ws1, ws2) {
                (WordSet::Some(s1), WordSet::Some(s2)) => s1.intersection(s2).collect(),
                _ => continue,
            };
            if both.is_empty() {
                continue;
            }
            for w in both {
                let in_e = |r: &str, c: &str| e.get(r, c).is_some_and(|s| s.contains(w));
                if !in_e(i, n) || !in_e(m, j) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarray_core::{adjacency_array_checked, adjacency_array_verified};

    fn corpus() -> Vec<Document> {
        vec![
            Document::new("d1", ["graph", "array", "matrix"]),
            Document::new("d2", ["graph", "array", "edge"]),
            Document::new("d3", ["matrix", "edge", "vertex"]),
        ]
    }

    #[test]
    fn shared_array_entries() {
        let e = shared_word_array(&corpus());
        assert_eq!(e.get("d1", "d2"), Some(&WordSet::of(["array", "graph"])));
        assert_eq!(e.get("d1", "d3"), Some(&WordSet::of(["matrix"])));
        assert_eq!(e.get("d2", "d3"), Some(&WordSet::of(["edge"])));
        // Diagonal carries the full word sets.
        assert_eq!(
            e.get("d3", "d3"),
            Some(&WordSet::of(["edge", "matrix", "vertex"]))
        );
    }

    #[test]
    fn structure_property_holds_by_construction() {
        let e = shared_word_array(&corpus());
        assert!(has_sharing_structure(&e));
    }

    #[test]
    fn structure_property_detects_violations() {
        let pair = UnionIntersect::<WordSet>::new();
        // Hand-built E violating the property: w shared in E(a,b) and
        // E(c,d) but absent from E(a,d).
        let e = AArray::from_triples(
            &pair,
            [
                ("a", "b", WordSet::of(["w"])),
                ("c", "d", WordSet::of(["w"])),
                ("a", "d", WordSet::of(["other"])),
                ("c", "b", WordSet::of(["w"])),
            ],
        );
        assert!(!has_sharing_structure(&e));
    }

    #[test]
    fn union_intersect_is_safe_on_structured_data() {
        // EᵀE under ∪.∩ yields an exact pattern on structured corpora
        // (Section III's point), even though the pair fails the general
        // criteria — the post-hoc verifier certifies it. Note the
        // corpus *does* intersect disjoint non-empty sets along the way
        // (e.g. E(d2,d1) ∩ E(d2,d3) = ∅), so the conservative
        // population pre-check rightly refuses; only ∪-redundancy
        // preserves the pattern.
        let e = shared_word_array(&corpus());
        let pair = UnionIntersect::<WordSet>::new();
        assert!(adjacency_array_checked(&e, &e, &pair).is_err());
        let ete = adjacency_array_verified(&e, &e, &pair)
            .expect("structured corpus yields an exact pattern");
        // d1-row, d3-column must contain "matrix" (shared by d1, d3).
        assert!(ete.get("d1", "d3").is_some_and(|s| s.contains("matrix")));
        // And EᵀE(x, y) ⊆ E(x, y): entries are words shared by x and y.
        for (r, c, ws) in ete.iter() {
            if let (WordSet::Some(prod), Some(WordSet::Some(orig))) = (ws, e.get(r, c)) {
                assert!(prod.is_subset(orig), "{} {} {:?} ⊄ {:?}", r, c, prod, orig);
            }
        }
    }

    #[test]
    fn disjoint_documents_create_no_entries() {
        let docs = vec![
            Document::new("x", ["apple"]),
            Document::new("y", ["banana"]),
        ];
        let e = shared_word_array(&docs);
        assert_eq!(e.get("x", "y"), None);
        assert_eq!(e.nnz(), 2); // only the diagonals
    }
}
