//! Directed multigraphs with labelled vertices and keyed, weighted
//! edges — the object whose incidence arrays the paper multiplies.

use aarray_algebra::{BinaryOp, OpPair, Value};
use aarray_core::{AArray, KeySet};
use std::collections::BTreeSet;

/// One directed edge: a unique key `k ∈ K`, endpoints, and the values
/// the incidence arrays store at `Eout(k, src)` and `Ein(k, dst)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Edge<V: Value> {
    /// The edge key (unique within the graph).
    pub key: String,
    /// Source vertex.
    pub src: String,
    /// Target vertex.
    pub dst: String,
    /// Value of `Eout(key, src)` — must be nonzero for the pair in use.
    pub wout: V,
    /// Value of `Ein(key, dst)` — must be nonzero for the pair in use.
    pub win: V,
}

/// A directed multigraph: self-loops and parallel edges allowed,
/// exactly as in the Lemma II.2–II.4 gadgets.
///
/// ```
/// use aarray_graph::MultiGraph;
/// use aarray_core::{adjacency_array, theorem::pattern_diff};
/// use aarray_algebra::pairs::PlusTimes;
/// use aarray_algebra::values::nat::Nat;
///
/// let mut g = MultiGraph::new();
/// g.add_edge("e1", "a", "b", Nat(2), Nat(1));
/// g.add_edge("e2", "a", "b", Nat(3), Nat(1)); // parallel edge
///
/// let pair = PlusTimes::<Nat>::new();
/// let (eout, ein) = g.incidence_arrays(&pair);
/// let adj = adjacency_array(&eout, &ein, &pair);
/// assert_eq!(adj.get("a", "b"), Some(&Nat(5))); // 2·1 ⊕ 3·1
/// assert!(pattern_diff(&adj, g.edge_pattern()).is_exact());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MultiGraph<V: Value> {
    vertices: BTreeSet<String>,
    edges: Vec<Edge<V>>,
}

impl<V: Value> MultiGraph<V> {
    /// An empty graph.
    pub fn new() -> Self {
        MultiGraph {
            vertices: BTreeSet::new(),
            edges: Vec::new(),
        }
    }

    /// Add an isolated vertex (no-op if present).
    pub fn add_vertex(&mut self, v: impl Into<String>) {
        self.vertices.insert(v.into());
    }

    /// Add an edge with explicit key and incidence values. Endpoints
    /// are added to the vertex set automatically.
    pub fn add_edge(
        &mut self,
        key: impl Into<String>,
        src: impl Into<String>,
        dst: impl Into<String>,
        wout: V,
        win: V,
    ) {
        let e = Edge {
            key: key.into(),
            src: src.into(),
            dst: dst.into(),
            wout,
            win,
        };
        self.vertices.insert(e.src.clone());
        self.vertices.insert(e.dst.clone());
        self.edges.push(e);
    }

    /// Add an edge with an auto-generated key `e<N>`.
    pub fn add_edge_auto(
        &mut self,
        src: impl Into<String>,
        dst: impl Into<String>,
        wout: V,
        win: V,
    ) {
        let key = format!("e{:08}", self.edges.len());
        self.add_edge(key, src, dst, wout, win);
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges (with multiplicity).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The vertices, ascending.
    pub fn vertices(&self) -> impl Iterator<Item = &str> + '_ {
        self.vertices.iter().map(String::as_str)
    }

    /// The edges in insertion order.
    pub fn edges(&self) -> &[Edge<V>] {
        &self.edges
    }

    /// The distinct `(src, dst)` pairs with at least one edge — the
    /// pattern any valid adjacency array must reproduce
    /// (Definition I.5).
    pub fn edge_pattern(&self) -> BTreeSet<(String, String)> {
        self.edges
            .iter()
            .map(|e| (e.src.clone(), e.dst.clone()))
            .collect()
    }

    /// The reverse graph `Ḡ` (Corollary III.1): directions flipped,
    /// each edge's `wout`/`win` swapped.
    pub fn reverse(&self) -> MultiGraph<V> {
        let mut g = MultiGraph::new();
        for v in &self.vertices {
            g.add_vertex(v.clone());
        }
        for e in &self.edges {
            g.add_edge(
                e.key.clone(),
                e.dst.clone(),
                e.src.clone(),
                e.win.clone(),
                e.wout.clone(),
            );
        }
        g
    }

    /// Extract the incidence arrays `(Eout, Ein)`, both `K × (Kout ∪
    /// Kin)` over the full vertex set so the resulting adjacency array
    /// is square (the common practical convention; the paper's
    /// `Kout`/`Kin` split is recovered by column selection).
    ///
    /// Values equal to the pair's zero are rejected: Definition I.4
    /// requires `Eout(k, a) ≠ 0` exactly at incidences.
    pub fn incidence_arrays<A, M>(&self, pair: &OpPair<V, A, M>) -> (AArray<V>, AArray<V>)
    where
        A: BinaryOp<V>,
        M: BinaryOp<V>,
    {
        let edge_keys = KeySet::from_iter(self.edges.iter().map(|e| e.key.clone()));
        assert_eq!(
            edge_keys.len(),
            self.edges.len(),
            "edge keys must be unique (duplicate incidence rows would merge)"
        );
        let vertex_keys = KeySet::from_iter(self.vertices.iter().cloned());

        let mut out_triples = Vec::with_capacity(self.edges.len());
        let mut in_triples = Vec::with_capacity(self.edges.len());
        for e in &self.edges {
            assert!(
                !pair.is_zero(&e.wout) && !pair.is_zero(&e.win),
                "edge {} carries a zero incidence value for pair {}",
                e.key,
                pair.name()
            );
            out_triples.push((e.key.clone(), e.src.clone(), e.wout.clone()));
            in_triples.push((e.key.clone(), e.dst.clone(), e.win.clone()));
        }

        let eout = AArray::from_triples_with_keys(
            pair,
            edge_keys.clone(),
            vertex_keys.clone(),
            out_triples,
        );
        let ein = AArray::from_triples_with_keys(pair, edge_keys, vertex_keys, in_triples);
        (eout, ein)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarray_algebra::pairs::PlusTimes;
    use aarray_algebra::values::nat::Nat;
    use aarray_core::adjacency_array;

    fn triangle() -> MultiGraph<Nat> {
        let mut g = MultiGraph::new();
        g.add_edge("e1", "a", "b", Nat(1), Nat(1));
        g.add_edge("e2", "b", "c", Nat(1), Nat(1));
        g.add_edge("e3", "c", "a", Nat(1), Nat(1));
        g
    }

    #[test]
    fn construction_and_counts() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.vertices().collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }

    #[test]
    fn incidence_dimensions() {
        let pair = PlusTimes::<Nat>::new();
        let (eout, ein) = triangle().incidence_arrays(&pair);
        assert_eq!(eout.shape(), (3, 3));
        assert_eq!(ein.shape(), (3, 3));
        assert_eq!(eout.get("e1", "a"), Some(&Nat(1)));
        assert_eq!(ein.get("e1", "b"), Some(&Nat(1)));
        assert_eq!(eout.get("e1", "b"), None);
    }

    #[test]
    fn adjacency_from_incidence_matches_pattern() {
        let pair = PlusTimes::<Nat>::new();
        let g = triangle();
        let (eout, ein) = g.incidence_arrays(&pair);
        let a = adjacency_array(&eout, &ein, &pair);
        let diff = aarray_core::theorem::pattern_diff(&a, g.edge_pattern());
        assert!(diff.is_exact());
    }

    #[test]
    fn reverse_flips_edges_and_weights() {
        let mut g: MultiGraph<Nat> = MultiGraph::new();
        g.add_edge("e", "x", "y", Nat(2), Nat(5));
        let r = g.reverse();
        let e = &r.edges()[0];
        assert_eq!((e.src.as_str(), e.dst.as_str()), ("y", "x"));
        assert_eq!((e.wout, e.win), (Nat(5), Nat(2)));
        assert_eq!(r.reverse(), g);
    }

    #[test]
    fn isolated_vertices_survive_into_incidence_columns() {
        let pair = PlusTimes::<Nat>::new();
        let mut g = triangle();
        g.add_vertex("zz_lonely");
        let (eout, _) = g.incidence_arrays(&pair);
        assert_eq!(eout.shape(), (3, 4));
        assert!(eout.col_keys().contains("zz_lonely"));
    }

    #[test]
    #[should_panic(expected = "zero incidence value")]
    fn zero_weight_edge_rejected() {
        let pair = PlusTimes::<Nat>::new();
        let mut g = MultiGraph::new();
        g.add_edge("e", "a", "b", Nat(0), Nat(1));
        let _ = g.incidence_arrays(&pair);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_edge_keys_rejected() {
        let pair = PlusTimes::<Nat>::new();
        let mut g = MultiGraph::new();
        g.add_edge("e", "a", "b", Nat(1), Nat(1));
        g.add_edge("e", "b", "c", Nat(1), Nat(1));
        let _ = g.incidence_arrays(&pair);
    }

    #[test]
    fn auto_keys_are_unique_and_ordered() {
        let mut g: MultiGraph<Nat> = MultiGraph::new();
        g.add_edge_auto("a", "b", Nat(1), Nat(1));
        g.add_edge_auto("b", "c", Nat(1), Nat(1));
        assert_eq!(g.edges()[0].key, "e00000000");
        assert_eq!(g.edges()[1].key, "e00000001");
    }
}
