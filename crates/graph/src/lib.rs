//! # aarray-graph
//!
//! The graph side of the pipeline: directed multigraphs with labelled,
//! weighted edges; extraction of the incidence arrays `Eout`/`Ein`
//! (Definition I.4); a direct hash-aggregation baseline for adjacency
//! construction (what you would write *without* array multiplication);
//! synthetic generators (Erdős–Rényi, R-MAT/Kronecker, music-like
//! bipartite metadata, classic families); Section III's structured
//! document×word arrays; and semiring graph algorithms (BFS, min-plus
//! SSSP, triangle counting) that run on constructed adjacency arrays —
//! the "variety of algorithms" the paper's abstract hands off to.
//!
//! ```
//! use aarray_graph::{algorithms, generators};
//! use aarray_core::adjacency_array;
//! use aarray_algebra::pairs::{OrAnd, PlusTimes};
//! use aarray_algebra::values::nat::Nat;
//!
//! let g = generators::cycle(5);
//! let pair = PlusTimes::<Nat>::new();
//! let (eout, ein) = g.incidence_arrays(&pair);
//! let bpair = OrAnd::new();
//! let adj = adjacency_array(
//!     &eout.map_prune(&bpair, |v| v.0 > 0),
//!     &ein.map_prune(&bpair, |v| v.0 > 0),
//!     &bpair,
//! );
//! let levels = algorithms::bfs_levels(&adj, "v0000000");
//! assert_eq!(levels.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod baseline;
pub mod bipartite;
pub mod components;
pub mod export;
pub mod generators;
pub mod hits;
pub mod hypergraph;
pub mod kcore;
pub mod metrics;
pub mod multigraph;
pub mod pagerank;
pub mod scc;
pub mod streaming;
pub mod structured;

pub use baseline::direct_adjacency;
pub use multigraph::{Edge, MultiGraph};
