//! Synthetic graph and dataset generators for the scaling benches and
//! property tests.
//!
//! The paper's evaluation is a fixed 22-track music table; these
//! generators exist for the *extension* experiments (scaling, ablation)
//! and for randomized theorem testing. All are deterministic given a
//! seed.

use crate::multigraph::MultiGraph;
use aarray_algebra::values::nat::Nat;
use aarray_algebra::values::nn::{nn, NN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// G(n, m): `m` uniformly random directed edges over `n` vertices
/// (parallel edges and self-loops possible, as in a real edge stream).
/// Unit weights.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> MultiGraph<Nat> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = MultiGraph::new();
    for v in 0..n {
        g.add_vertex(vkey(v));
    }
    for e in 0..m {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        g.add_edge(ekey(e), vkey(src), vkey(dst), Nat(1), Nat(1));
    }
    g
}

/// G(n, m) with uniform random real weights in `(0, max_w]` on both
/// incidence sides — exercise the weighted pairs.
pub fn erdos_renyi_weighted(n: usize, m: usize, max_w: f64, seed: u64) -> MultiGraph<NN> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = MultiGraph::new();
    for v in 0..n {
        g.add_vertex(vkey(v));
    }
    for e in 0..m {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        let wout = nn((rng.gen::<f64>() * max_w).max(f64::MIN_POSITIVE));
        let win = nn((rng.gen::<f64>() * max_w).max(f64::MIN_POSITIVE));
        g.add_edge(ekey(e), vkey(src), vkey(dst), wout, win);
    }
    g
}

/// R-MAT (Kronecker-style power-law) generator: `2^scale` vertices,
/// `m` edges, recursive quadrant probabilities `(a, b, c, d)`
/// (Graph500 uses `0.57, 0.19, 0.19, 0.05`).
pub fn rmat(scale: u32, m: usize, probs: (f64, f64, f64, f64), seed: u64) -> MultiGraph<Nat> {
    let (a, b, c, d) = probs;
    assert!(
        (a + b + c + d - 1.0).abs() < 1e-9,
        "quadrant probabilities must sum to 1"
    );
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = MultiGraph::new();
    for e in 0..m {
        let (mut r0, mut r1, mut c0, mut c1) = (0usize, n, 0usize, n);
        while r1 - r0 > 1 {
            let x: f64 = rng.gen();
            let (down, right) = if x < a {
                (false, false)
            } else if x < a + b {
                (false, true)
            } else if x < a + b + c {
                (true, false)
            } else {
                (true, true)
            };
            let rm = (r0 + r1) / 2;
            let cm = (c0 + c1) / 2;
            if down {
                r0 = rm;
            } else {
                r1 = rm;
            }
            if right {
                c0 = cm;
            } else {
                c1 = cm;
            }
        }
        g.add_edge(ekey(e), vkey(r0), vkey(c0), Nat(1), Nat(1));
    }
    g
}

/// A directed path `v0 → v1 → … → v(n−1)` with unit weights.
pub fn path(n: usize) -> MultiGraph<Nat> {
    let mut g = MultiGraph::new();
    for v in 0..n {
        g.add_vertex(vkey(v));
    }
    for i in 0..n.saturating_sub(1) {
        g.add_edge(ekey(i), vkey(i), vkey(i + 1), Nat(1), Nat(1));
    }
    g
}

/// A directed cycle over `n` vertices.
pub fn cycle(n: usize) -> MultiGraph<Nat> {
    let mut g = path(n);
    if n > 1 {
        g.add_edge(ekey(n - 1), vkey(n - 1), vkey(0), Nat(1), Nat(1));
    }
    g
}

/// The complete directed graph on `n` vertices (no self-loops).
pub fn complete(n: usize) -> MultiGraph<Nat> {
    let mut g = MultiGraph::new();
    let mut e = 0usize;
    for v in 0..n {
        g.add_vertex(vkey(v));
    }
    for i in 0..n {
        for j in 0..n {
            if i != j {
                g.add_edge(ekey(e), vkey(i), vkey(j), Nat(1), Nat(1));
                e += 1;
            }
        }
    }
    g
}

/// A music-metadata-like bipartite incidence workload scaled up from
/// Figure 1's shape: `tracks` rows, each with 1–2 of `n_genres` genre
/// columns and 1–3 of `n_writers` writer columns, as edges
/// track→attribute. Returns the graph whose `Eᵀ₁E₂`-style products the
/// `fig3`/`fig5` scaling benches time.
pub fn music_like(tracks: usize, n_genres: usize, n_writers: usize, seed: u64) -> MultiGraph<Nat> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = MultiGraph::new();
    let mut e = 0usize;
    for t in 0..tracks {
        let track = format!("track{:07}", t);
        let n_g = 1 + rng.gen_range(0..2usize);
        for _ in 0..n_g {
            let genre = format!("Genre|{:03}", rng.gen_range(0..n_genres));
            g.add_edge(ekey(e), track.clone(), genre, Nat(1), Nat(1));
            e += 1;
        }
        let n_w = 1 + rng.gen_range(0..3usize);
        for _ in 0..n_w {
            let writer = format!("Writer|{:05}", rng.gen_range(0..n_writers));
            g.add_edge(ekey(e), track.clone(), writer, Nat(1), Nat(1));
            e += 1;
        }
    }
    g
}

/// Random bipartite graph: edges from `left` vertices (`l*`) to
/// `right` vertices (`r*`), each of the `m` edges drawn uniformly.
pub fn bipartite(left: usize, right: usize, m: usize, seed: u64) -> MultiGraph<Nat> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = MultiGraph::new();
    for v in 0..left {
        g.add_vertex(format!("l{:07}", v));
    }
    for v in 0..right {
        g.add_vertex(format!("r{:07}", v));
    }
    for e in 0..m {
        let l = rng.gen_range(0..left);
        let r = rng.gen_range(0..right);
        g.add_edge(
            ekey(e),
            format!("l{:07}", l),
            format!("r{:07}", r),
            Nat(1),
            Nat(1),
        );
    }
    g
}

/// Barabási–Albert preferential attachment: start from a small clique,
/// then each new vertex attaches `k` edges to existing vertices with
/// probability proportional to their current degree.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> MultiGraph<Nat> {
    assert!(k >= 1 && n > k, "need n > k ≥ 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = MultiGraph::new();
    let mut e = 0usize;
    // Degree-proportional sampling via the repeated-endpoints trick.
    let mut endpoints: Vec<usize> = Vec::new();

    // Seed clique over the first k+1 vertices.
    for i in 0..=k {
        for j in 0..i {
            g.add_edge(ekey(e), vkey(j), vkey(i), Nat(1), Nat(1));
            e += 1;
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in (k + 1)..n {
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < k {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            chosen.insert(t);
        }
        for &t in &chosen {
            g.add_edge(ekey(e), vkey(v), vkey(t), Nat(1), Nat(1));
            e += 1;
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g
}

fn vkey(v: usize) -> String {
    format!("v{:07}", v)
}

fn ekey(e: usize) -> String {
    format!("e{:08}", e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarray_algebra::pairs::PlusTimes;
    use aarray_core::adjacency_array;

    #[test]
    fn erdos_renyi_is_deterministic() {
        let g1 = erdos_renyi(50, 200, 42);
        let g2 = erdos_renyi(50, 200, 42);
        assert_eq!(g1, g2);
        assert_eq!(g1.edge_count(), 200);
        assert_eq!(g1.vertex_count(), 50);
        assert_ne!(g1, erdos_renyi(50, 200, 43));
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(6, 300, (0.57, 0.19, 0.19, 0.05), 7);
        assert_eq!(g.edge_count(), 300);
        assert!(g.vertex_count() <= 64);
        // Power-law-ish: top vertex should have noticeably more edges
        // than the mean (6.25); don't over-assert on randomness.
        let pair = PlusTimes::<Nat>::new();
        let (eout, ein) = g.incidence_arrays(&pair);
        let a = adjacency_array(&eout, &ein, &pair);
        assert!(a.nnz() > 0);
    }

    #[test]
    fn path_and_cycle() {
        let p = path(5);
        assert_eq!(p.edge_count(), 4);
        let c = cycle(5);
        assert_eq!(c.edge_count(), 5);
        assert_eq!(c.vertex_count(), 5);
    }

    #[test]
    fn complete_graph_edge_count() {
        let k4 = complete(4);
        assert_eq!(k4.edge_count(), 12);
        let pair = PlusTimes::<Nat>::new();
        let (eout, ein) = k4.incidence_arrays(&pair);
        let a = adjacency_array(&eout, &ein, &pair);
        assert_eq!(a.nnz(), 12);
        assert_eq!(a.get("v0000000", "v0000000"), None);
    }

    #[test]
    fn music_like_structure() {
        let g = music_like(100, 5, 20, 3);
        // Between 2 and 5 attribute edges per track.
        assert!(g.edge_count() >= 200 && g.edge_count() <= 500);
        let genres = g.vertices().filter(|v| v.starts_with("Genre|")).count();
        assert!(genres <= 5);
    }

    #[test]
    fn bipartite_stays_bipartite() {
        let g = bipartite(10, 6, 50, 4);
        assert_eq!(g.edge_count(), 50);
        assert_eq!(g.vertex_count(), 16);
        for e in g.edges() {
            assert!(e.src.starts_with('l') && e.dst.starts_with('r'));
        }
        // Constructed adjacency only connects l→r.
        let pair = PlusTimes::<Nat>::new();
        let (eout, ein) = g.incidence_arrays(&pair);
        let a = adjacency_array(&eout, &ein, &pair);
        for (s, d, _) in a.iter() {
            assert!(s.starts_with('l') && d.starts_with('r'));
        }
    }

    #[test]
    fn barabasi_albert_shape_and_skew() {
        let n = 200;
        let k = 3;
        let g = barabasi_albert(n, k, 9);
        // Clique edges + k per later vertex.
        let expected_edges = k * (k + 1) / 2 + (n - k - 1) * k;
        assert_eq!(g.edge_count(), expected_edges);
        assert_eq!(g.vertex_count(), n);
        // Preferential attachment: max undirected degree well above k.
        let pair = PlusTimes::<Nat>::new();
        let (eout, ein) = g.incidence_arrays(&pair);
        let a = adjacency_array(&eout, &ein, &pair);
        let mut deg = std::collections::BTreeMap::new();
        for (s, d, _) in a.iter() {
            *deg.entry(s.to_string()).or_insert(0usize) += 1;
            *deg.entry(d.to_string()).or_insert(0usize) += 1;
        }
        let max = deg.values().max().copied().unwrap();
        assert!(max >= 3 * k, "max degree {} not skewed", max);
    }

    #[test]
    fn weighted_generator_values_positive() {
        let g = erdos_renyi_weighted(10, 40, 3.0, 11);
        for e in g.edges() {
            assert!(e.wout.get() > 0.0 && e.win.get() > 0.0);
        }
    }
}
