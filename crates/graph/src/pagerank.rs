//! PageRank over a constructed adjacency array — a fully numeric
//! consumer of the `+.×` construction, iterating `r ← (1−d)/n + d·Aᵀr`
//! with column-stochastic normalization and dangling-mass
//! redistribution.

use aarray_algebra::pairs::PlusTimes;
use aarray_algebra::values::nn::NN;
use aarray_algebra::Value;
use aarray_core::AArray;
use std::collections::BTreeMap;

/// Options for [`pagerank`].
#[derive(Clone, Copy, Debug)]
pub struct PageRankOptions {
    /// Damping factor `d` (0.85 by convention).
    pub damping: f64,
    /// Convergence threshold on the L1 change per iteration.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        PageRankOptions {
            damping: 0.85,
            tolerance: 1e-10,
            max_iterations: 100,
        }
    }
}

/// PageRank scores by vertex key; scores sum to 1. Edge multiplicities
/// (the `+.×` adjacency values) weight the transition probabilities.
pub fn pagerank<V: Value>(
    adj: &AArray<V>,
    weight_of: impl Fn(&V) -> f64,
    opts: PageRankOptions,
) -> BTreeMap<String, f64> {
    assert_eq!(
        adj.row_keys(),
        adj.col_keys(),
        "PageRank needs a square adjacency array"
    );
    let n = adj.row_keys().len();
    if n == 0 {
        return BTreeMap::new();
    }
    let d = opts.damping;

    // Row-normalized out-weights.
    let mut out_weight = vec![0.0f64; n];
    for (r, _, v) in adj.csr().iter() {
        out_weight[r] += weight_of(v);
    }

    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..opts.max_iterations {
        let mut next = vec![0.0f64; n];
        let mut dangling = 0.0f64;
        for (v, r) in rank.iter().enumerate() {
            if out_weight[v] == 0.0 {
                dangling += r;
            }
        }
        for (r, c, v) in adj.csr().iter() {
            if out_weight[r] > 0.0 {
                next[c] += rank[r] * weight_of(v) / out_weight[r];
            }
        }
        let base = (1.0 - d) / n as f64 + d * dangling / n as f64;
        let mut delta = 0.0f64;
        for (v, nx) in next.iter().enumerate() {
            let updated = base + d * nx;
            delta += (updated - rank[v]).abs();
            rank[v] = updated;
        }
        if delta < opts.tolerance {
            break;
        }
    }

    (0..n)
        .map(|v| (adj.row_keys().key(v).to_string(), rank[v]))
        .collect()
}

/// Convenience for `+.×`-constructed `NN` adjacency arrays.
pub fn pagerank_nn(adj: &AArray<NN>, opts: PageRankOptions) -> BTreeMap<String, f64> {
    let _ = PlusTimes::<NN>::new(); // documents the intended construction
    pagerank(adj, |v| v.get(), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::cycle;
    use crate::MultiGraph;
    use aarray_algebra::pairs::PlusTimes;
    use aarray_algebra::values::nat::Nat;
    use aarray_core::adjacency_array;

    fn adjacency(g: &MultiGraph<Nat>) -> AArray<Nat> {
        let pair = PlusTimes::<Nat>::new();
        let (eout, ein) = g.incidence_arrays(&pair);
        adjacency_array(&eout, &ein, &pair)
    }

    #[test]
    fn uniform_on_a_cycle() {
        let adj = adjacency(&cycle(5));
        let pr = pagerank(&adj, |v| v.0 as f64, PageRankOptions::default());
        for score in pr.values() {
            assert!((score - 0.2).abs() < 1e-8, "{}", score);
        }
    }

    #[test]
    fn sums_to_one_with_dangling_nodes() {
        let mut g = MultiGraph::new();
        g.add_edge("e1", "a", "sink", Nat(1), Nat(1));
        g.add_edge("e2", "b", "sink", Nat(1), Nat(1));
        let adj = adjacency(&g);
        let pr = pagerank(&adj, |v| v.0 as f64, PageRankOptions::default());
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-8);
        assert!(pr["sink"] > pr["a"]);
    }

    #[test]
    fn hub_attracts_rank() {
        let mut g = MultiGraph::new();
        for v in ["a", "b", "c"] {
            g.add_edge(format!("e_{}", v), v, "hub", Nat(1), Nat(1));
            g.add_edge(format!("back_{}", v), "hub", v, Nat(1), Nat(1));
        }
        let adj = adjacency(&g);
        let pr = pagerank(&adj, |v| v.0 as f64, PageRankOptions::default());
        assert!(pr["hub"] > pr["a"]);
        assert!((pr["a"] - pr["b"]).abs() < 1e-9);
    }

    #[test]
    fn edge_weights_matter() {
        // a links to b (weight 9) and c (weight 1): b should outrank c.
        let mut g = MultiGraph::new();
        g.add_edge("e1", "a", "b", Nat(9), Nat(1));
        g.add_edge("e2", "a", "c", Nat(1), Nat(1));
        let adj = adjacency(&g);
        let pr = pagerank(&adj, |v| v.0 as f64, PageRankOptions::default());
        assert!(pr["b"] > pr["c"]);
    }

    #[test]
    fn empty_graph() {
        let g: MultiGraph<Nat> = MultiGraph::new();
        let pair = PlusTimes::<Nat>::new();
        let (eout, ein) = g.incidence_arrays(&pair);
        let adj = adjacency_array(&eout, &ein, &pair);
        assert!(pagerank(&adj, |v| v.0 as f64, PageRankOptions::default()).is_empty());
    }
}
