//! End-to-end exercise of the live telemetry stack: an in-process
//! `Collector` + `Httpd` wired exactly as `obsctl watch --listen`
//! wires them, polled with raw `TcpStream` clients while a real
//! (tiny-scale) workload runs — plus a binary-level run of
//! `obsctl watch --listen 127.0.0.1:0 --port-file` fetched through
//! the harness HTTP client.

use aarray_harness::httpd::{http_get, telemetry_handler, Httpd};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn obsctl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_obsctl"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("watch-e2e-{}-{}", tag, std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Extract `"key": <uint>` from the hand-rolled healthz/series JSON.
fn json_uint(body: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{}\": ", key);
    let i = body.find(&tag)? + tag.len();
    let rest = &body[i..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The whole live stack in one process: sampler at a test-friendly
/// interval, server on an OS-assigned port, workload on a background
/// thread, raw-socket clients doing the asserting.
#[test]
fn watch_stack_serves_all_endpoints_while_workload_runs() {
    let collector = aarray_obs::Collector::start_with(aarray_obs::CollectorConfig {
        interval_ms: Some(10),
        capacity: Some(256),
        pre_sample: Some(Box::new(aarray_core::publish_pool_stats)),
    });
    let ring = Arc::clone(collector.ring());
    let server = Httpd::serve(
        "127.0.0.1:0",
        telemetry_handler(Arc::clone(&ring), collector.probe()),
    )
    .unwrap();
    let addr = server.addr().to_string();

    let workload = std::thread::spawn(|| {
        aarray_harness::workloads::run_workload(aarray_harness::workloads::Figure::Fig3, 400, 3);
    });

    // Wait for the first frame so /metrics and /report.json are live.
    let deadline = Instant::now() + Duration::from_secs(10);
    while ring.latest().is_none() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }

    // /metrics parses as Prometheus exposition text: every line is a
    // comment (`# HELP`/`# TYPE`) or `name{labels} value`.
    let (status, metrics) = http_get(&addr, "/metrics", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    assert!(!metrics.is_empty());
    let mut families = 0;
    for line in metrics.lines() {
        assert!(!line.is_empty(), "blank line in exposition output");
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "bad comment: {}",
                line
            );
            if line.starts_with("# TYPE ") {
                families += 1;
            }
            continue;
        }
        let (metric, value) = line.rsplit_once(' ').expect(line);
        assert!(metric.starts_with("aarray_"), "unprefixed: {}", line);
        assert!(value.parse::<u64>().is_ok(), "bad value: {}", line);
    }
    assert!(families >= 5, "suspiciously few families: {}", families);

    // /report.json is the schema-versioned v4 report.
    let (status, report) = http_get(&addr, "/report.json", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        json_uint(&report, "schema_version"),
        Some(aarray_obs::REPORT_SCHEMA_VERSION)
    );

    // /series.json frame count grows between two polls.
    let (status, series_a) = http_get(&addr, "/series.json", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    let frames_a = json_uint(&series_a, "recorded").expect("series has frames.recorded");
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut frames_b = frames_a;
    while frames_b <= frames_a && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(15));
        let (status, series_b) = http_get(&addr, "/series.json", Duration::from_secs(5)).unwrap();
        assert_eq!(status, 200);
        frames_b = json_uint(&series_b, "recorded").unwrap();
    }
    assert!(
        frames_b > frames_a,
        "frame count did not grow: {} -> {}",
        frames_a,
        frames_b
    );

    // /healthz: live sampler, zero sampler drops (capacity 256 is far
    // more than this test's runtime can fill at 10 ms per frame).
    let (status, health) = http_get(&addr, "/healthz", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    assert!(health.contains("\"status\": \"ok\""), "{}", health);
    assert_eq!(json_uint(&health, "dropped"), Some(0), "{}", health);

    // A malformed request gets 400 and the server keeps serving.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(b"COMPLETELY BOGUS\r\n\r\n").unwrap();
    let mut raw = String::new();
    let _ = s.read_to_string(&mut raw);
    assert!(raw.starts_with("HTTP/1.0 400"), "got: {}", raw);
    drop(s);
    let (status, _) = http_get(&addr, "/metrics", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200, "server died after malformed request");

    // Unknown paths 404 without killing anything either.
    let (status, _) = http_get(&addr, "/nope", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 404);

    workload.join().unwrap();
    server.stop();
    collector.stop();
}

/// Binary-level smoke: `obsctl watch --listen 127.0.0.1:0 --port-file`
/// publishes its real address, serves while the workload runs, and
/// exits zero.
#[test]
fn obsctl_watch_listen_serves_via_port_file() {
    let dir = tmpdir("watch");
    let port_file = dir.join("watch.addr");
    let _ = std::fs::remove_file(&port_file);

    let mut child = obsctl()
        .args([
            "watch",
            "fig3",
            "--rows",
            "400",
            "--reps",
            "8",
            "--interval-ms",
            "25",
            "--listen",
            "127.0.0.1:0",
            "--port-file",
        ])
        .arg(&port_file)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();

    // Poll for the published address.
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            let s = s.trim().to_string();
            if !s.is_empty() {
                break s;
            }
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("watch never published its address");
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(addr.starts_with("127.0.0.1:"), "odd address: {}", addr);
    assert!(!addr.ends_with(":0"), "port 0 was not resolved: {}", addr);

    // Fetch the endpoints while (or shortly after) the workload runs;
    // the server lives until the workload thread finishes, so with 8
    // reps there is ample overlap — but even the tail end must serve.
    let mut saw_metrics = false;
    for _ in 0..50 {
        match http_get(&addr, "/metrics", Duration::from_secs(2)) {
            Ok((200, body)) if body.contains("aarray_events_total") => {
                saw_metrics = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let out = child.wait_with_output().unwrap();
    assert!(
        saw_metrics,
        "never got a good /metrics from the child:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        out.status.success(),
        "watch exited nonzero:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
