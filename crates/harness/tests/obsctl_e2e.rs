//! End-to-end exercise of the `obsctl` binary: a real (tiny-scale)
//! observatory run, the regression verdict against healthy / regressed
//! / malformed baselines, and the `AARRAY_OBS_HISTOGRAMS` env branch.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn obsctl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_obsctl"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("obsctl-e2e-{}-{}", tag, std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn run_observatory(dir: &Path) -> PathBuf {
    let out = dir.join("BENCH_pr3.json");
    let o = obsctl()
        .args(["run", "--scales", "400", "--reps", "2", "--out"])
        .arg(&out)
        .output()
        .unwrap();
    assert!(
        o.status.success(),
        "obsctl run failed:\n{}{}",
        String::from_utf8_lossy(&o.stdout),
        String::from_utf8_lossy(&o.stderr)
    );
    out
}

fn check(current: &Path, against: &Path) -> Output {
    obsctl()
        .args(["check", "--current"])
        .arg(current)
        .arg("--against")
        .arg(against)
        .output()
        .unwrap()
}

#[test]
fn run_produces_schema_valid_observatory_file() {
    let dir = tmpdir("run");
    let out = run_observatory(&dir);
    let text = std::fs::read_to_string(&out).unwrap();
    let doc = aarray_harness::json::parse(&text).expect("BENCH_pr3.json must parse");
    assert_eq!(
        aarray_harness::schema::classify(&doc).unwrap(),
        aarray_harness::schema::BenchKind::V3
    );

    // ≥ 4 distinct non-empty histograms (latencies + row shapes).
    let hists = doc
        .path(&["report", "histograms"])
        .unwrap()
        .as_obj()
        .unwrap();
    let live: Vec<&String> = hists
        .iter()
        .filter(|(_, h)| h.get("count").unwrap().as_u64().unwrap() > 0)
        .map(|(k, _)| k)
        .collect();
    assert!(live.len() >= 4, "live histograms: {:?}", live);

    // Peak-memory figures are present and non-zero somewhere.
    let mem = doc.path(&["report", "mem"]).unwrap().as_obj().unwrap();
    assert!(mem
        .values()
        .any(|e| e.get("peak").unwrap().as_u64().unwrap() > 0));

    // Counters recorded the fused traversals of fig3 + fig5 runs.
    let fused = doc
        .path(&["report", "counters", "fused.traversals"])
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(fused >= 2, "fused.traversals = {}", fused);

    // Self-comparison is a clean pass (identical numbers, 0% growth).
    let o = check(&out, &out);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stdout));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_flags_synthetic_regression_and_rejects_bad_schema() {
    let dir = tmpdir("check");
    let current = run_observatory(&dir);
    let text = std::fs::read_to_string(&current).unwrap();

    // Baseline whose wall median is far below the current run's: the
    // current run regresses against it. Halving every median (they are
    // emitted as "median_ns": N) guarantees > 15% apparent growth for
    // every stage above the noise floor; the wall stage of a real run
    // is always above 50 µs in a debug binary.
    let mut regressed = String::with_capacity(text.len());
    for piece in text.split("\"median_ns\": ") {
        if regressed.is_empty() {
            regressed.push_str(piece);
            continue;
        }
        regressed.push_str("\"median_ns\": ");
        let digits: String = piece.chars().take_while(char::is_ascii_digit).collect();
        let rest = &piece[digits.len()..];
        let halved: u64 = digits.parse::<u64>().unwrap() / 2;
        regressed.push_str(&halved.to_string());
        regressed.push_str(rest);
    }
    let baseline = dir.join("BENCH_fast_baseline.json");
    std::fs::write(&baseline, &regressed).unwrap();
    let o = check(&current, &baseline);
    assert_eq!(
        o.status.code(),
        Some(1),
        "halved baseline must trip the 15% gate:\n{}",
        String::from_utf8_lossy(&o.stdout)
    );
    assert!(String::from_utf8_lossy(&o.stdout).contains("REGRESSED"));

    // Legacy-format regressed baseline: tiny fused_ms at our scale.
    let legacy = dir.join("BENCH_legacy_fast.json");
    std::fs::write(
        &legacy,
        r#"{"bench":"fused_vs_sequential","workload":{"tracks":400},"fused_ms":0.051,"reps":1}"#,
    )
    .unwrap();
    let o = check(&current, &legacy);
    // Either the gate trips (debug totals are well above 0.051 ms) or —
    // never — it passes; pin the regression.
    assert_eq!(
        o.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&o.stdout)
    );

    // Schema-invalid baseline: exit 2, not a silent pass.
    let bad = dir.join("BENCH_bad.json");
    std::fs::write(&bad, r#"{"schema_version": 42, "bench": "??"}"#).unwrap();
    let o = check(&current, &bad);
    assert_eq!(
        o.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&o.stderr)
    );
    assert!(String::from_utf8_lossy(&o.stderr).contains("schema_version"));

    // Unparseable baseline: also exit 2.
    let garbage = dir.join("BENCH_garbage.json");
    std::fs::write(&garbage, "{ not json").unwrap();
    let o = check(&current, &garbage);
    assert_eq!(o.status.code(), Some(2));

    // Missing current file: exit 2.
    let o = check(&dir.join("nope.json"), &baseline);
    assert_eq!(o.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn histogram_env_knob_controls_capture() {
    let dir = tmpdir("env");

    // Disabled: the run still succeeds (with a warning), the file is
    // schema-valid, and every histogram is empty.
    let off = dir.join("BENCH_off.json");
    let o = obsctl()
        .args(["run", "--scales", "300", "--reps", "1", "--out"])
        .arg(&off)
        .env(aarray_obs::HISTOGRAMS_ENV, "0")
        .output()
        .unwrap();
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    assert!(
        String::from_utf8_lossy(&o.stderr).contains("histograms will be empty"),
        "{}",
        String::from_utf8_lossy(&o.stderr)
    );
    let doc = aarray_harness::json::parse(&std::fs::read_to_string(&off).unwrap()).unwrap();
    assert_eq!(
        aarray_harness::schema::classify(&doc).unwrap(),
        aarray_harness::schema::BenchKind::V3
    );
    assert_eq!(
        doc.get("histograms_enabled"),
        Some(&aarray_harness::json::Value::Bool(false))
    );
    let hists = doc
        .path(&["report", "histograms"])
        .unwrap()
        .as_obj()
        .unwrap();
    assert!(
        hists
            .values()
            .all(|h| h.get("count").unwrap().as_u64() == Some(0)),
        "histograms must be empty with {}=0",
        aarray_obs::HISTOGRAMS_ENV
    );
    // Counters and memory accounting stay on regardless of the knob.
    assert!(
        doc.path(&["report", "counters", "fused.traversals"])
            .unwrap()
            .as_u64()
            .unwrap()
            >= 2
    );

    // Enabled (any other value): histograms fill in.
    let on = dir.join("BENCH_on.json");
    let o = obsctl()
        .args(["run", "--scales", "300", "--reps", "1", "--out"])
        .arg(&on)
        .env(aarray_obs::HISTOGRAMS_ENV, "1")
        .output()
        .unwrap();
    assert!(o.status.success());
    let doc = aarray_harness::json::parse(&std::fs::read_to_string(&on).unwrap()).unwrap();
    let hists = doc
        .path(&["report", "histograms"])
        .unwrap()
        .as_obj()
        .unwrap();
    let live = hists
        .values()
        .filter(|h| h.get("count").unwrap().as_u64().unwrap() > 0)
        .count();
    assert!(live >= 4, "expected ≥4 live histograms, got {}", live);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streaming_workload_emits_bench_pr4() {
    let dir = tmpdir("stream");
    let out = dir.join("BENCH_pr4.json");
    let o = obsctl()
        .args(["stream", "--scales", "400", "--reps", "2", "--out"])
        .arg(&out)
        .output()
        .unwrap();
    assert!(
        o.status.success(),
        "obsctl stream failed:\n{}{}",
        String::from_utf8_lossy(&o.stdout),
        String::from_utf8_lossy(&o.stderr)
    );
    assert!(
        String::from_utf8_lossy(&o.stdout).contains("% of rebuild)"),
        "{}",
        String::from_utf8_lossy(&o.stdout)
    );

    let doc = aarray_harness::json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(
        aarray_harness::schema::classify(&doc).unwrap(),
        aarray_harness::schema::BenchKind::V3
    );
    let names: Vec<&str> = doc
        .get("workloads")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|w| w.get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(names, vec!["stream-incr", "stream-rebuild"]);

    // The incremental layer's counters are live in the embedded report:
    // batches were appended and the delta kernel traversed them.
    for counter in [
        "incremental.batches",
        "incremental.apply",
        "delta.traversals",
    ] {
        let v = doc
            .path(&["report", "counters", counter])
            .and_then(aarray_harness::json::Value::as_u64)
            .unwrap_or(0);
        assert!(v >= 1, "counter {} must be live, got {}", counter, v);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_reports_new_metrics_with_own_exit_code() {
    let dir = tmpdir("newmetric");
    let current = run_observatory(&dir);
    let text = std::fs::read_to_string(&current).unwrap();

    // Baseline that has never seen the fig3 workload: every fig3 stage
    // above the noise floor in the current run is a *new metric* — not
    // a silent 0%-growth pass (the zero-baseline bug this pins down).
    assert!(text.contains("\"name\": \"fig3\""), "emitter shape changed");
    let baseline = dir.join("BENCH_no_fig3.json");
    std::fs::write(
        &baseline,
        text.replace("\"name\": \"fig3\"", "\"name\": \"zzz3\""),
    )
    .unwrap();

    let o = check(&current, &baseline);
    let stdout = String::from_utf8_lossy(&o.stdout);
    assert_eq!(o.status.code(), Some(3), "{}", stdout);
    assert!(stdout.contains("NEW"), "{}", stdout);
    assert!(stdout.contains("new metric"), "{}", stdout);
    assert!(!stdout.contains("REGRESSED"), "{}", stdout);

    // Same comparison with --allow-new: informational, exit 0.
    let o = obsctl()
        .args(["check", "--allow-new", "--current"])
        .arg(&current)
        .arg("--against")
        .arg(&baseline)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&o.stdout);
    assert_eq!(o.status.code(), Some(0), "{}", stdout);
    assert!(stdout.contains("accepted via --allow-new"), "{}", stdout);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unparsable_env_knobs_warn_once_and_fall_back() {
    let dir = tmpdir("envwarn");
    let out = dir.join("BENCH_envwarn.json");
    let o = obsctl()
        .args(["run", "--scales", "300", "--reps", "2", "--out"])
        .arg(&out)
        .env(aarray_obs::HISTOGRAMS_ENV, "yes")
        .env(aarray_core::PAR_FLOPS_THRESHOLD_ENV, "128k")
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&o.stderr);
    assert!(o.status.success(), "{}", stderr);

    // Each unparsable knob warns exactly once per process, naming the
    // variable, the rejected value, and the fallback.
    let hist_warn = format!(
        "ignoring unparsable {}=\"yes\"; using the default (histograms enabled)",
        aarray_obs::HISTOGRAMS_ENV
    );
    let thresh_warn = format!(
        "ignoring unparsable {}=\"128k\"; using the default threshold",
        aarray_core::PAR_FLOPS_THRESHOLD_ENV
    );
    for warn in [&hist_warn, &thresh_warn] {
        assert_eq!(
            stderr.matches(warn.as_str()).count(),
            1,
            "expected exactly one {:?} in:\n{}",
            warn,
            stderr
        );
    }

    // Fallbacks hold: histograms default to enabled, and the run
    // completes as a valid capture.
    let doc = aarray_harness::json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(
        doc.get("histograms_enabled"),
        Some(&aarray_harness::json::Value::Bool(true))
    );
    assert_eq!(
        aarray_harness::schema::classify(&doc).unwrap(),
        aarray_harness::schema::BenchKind::V3
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_bad_invocations() {
    for args in [
        &["frobnicate"][..],
        &["run", "--scales", "abc"][..],
        &["run", "--reps"][..],
        &["check", "--lat-tol", "much"][..],
    ] {
        let o = obsctl().args(args).output().unwrap();
        assert_eq!(o.status.code(), Some(2), "args {:?}", args);
    }
    let o = obsctl().arg("--help").output().unwrap();
    assert!(o.status.success());
    assert!(String::from_utf8_lossy(&o.stdout).contains("obsctl run"));
}

#[test]
fn trace_writes_a_validated_chrome_trace() {
    let dir = tmpdir("trace");
    let out = dir.join("fig3.trace.json");
    let o = obsctl()
        .args(["trace", "fig3", "--rows", "400", "--out"])
        .arg(&out)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&o.stdout);
    let stderr = String::from_utf8_lossy(&o.stderr);
    assert!(o.status.success(), "{}{}", stdout, stderr);
    // The human summaries: timeline, decision audit, drop accounting.
    assert!(stdout.contains("stage timeline"), "{}", stdout);
    assert!(stdout.contains("decision audit"), "{}", stdout);
    assert!(stdout.contains("dropped by wraparound"), "{}", stdout);
    // No counter-parity warnings: the journal reproduced the registry.
    assert!(
        !stderr.contains("but the counter says"),
        "audit mismatch:\n{}",
        stderr
    );

    // The artifact parses with the workspace's own JSON parser and
    // passes the structural chrome-trace validator: required fields,
    // known phases, per-thread balanced B/E.
    let text = std::fs::read_to_string(&out).unwrap();
    let doc = aarray_harness::json::parse(&text).expect("trace must be valid JSON");
    let stats = aarray_harness::chrome_trace::validate(&doc).expect("trace must validate");
    assert!(stats.begins >= 4, "expected stage spans, got {:?}", stats);
    assert_eq!(stats.begins, stats.ends);
    assert!(stats.instants >= 1, "expected explain instants");
    assert!(stats.threads >= 1);

    // Explain payloads are decoded into args, and the drop accounting
    // rides along in otherData.
    assert!(text.contains("\"verdict\": \"serial\"") || text.contains("\"verdict\": \"parallel\""));
    assert!(text.contains("\"accumulator\""));
    assert!(doc.path(&["otherData", "recorded"]).is_some());
    assert!(doc.path(&["otherData", "dropped"]).is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_covers_the_streaming_workload_too() {
    let dir = tmpdir("trace-stream");
    let out = dir.join("stream.trace.json");
    let o = obsctl()
        .args(["trace", "stream", "--rows", "400", "--out"])
        .arg(&out)
        .output()
        .unwrap();
    assert!(
        o.status.success(),
        "{}{}",
        String::from_utf8_lossy(&o.stdout),
        String::from_utf8_lossy(&o.stderr)
    );
    let stdout = String::from_utf8_lossy(&o.stdout);
    // The streaming run takes the delta path, so its timeline shows
    // delta-apply spans and the audit shows delta-applied lanes.
    assert!(stdout.contains("delta-apply"), "{}", stdout);
    assert!(stdout.contains("delta-applied lanes"), "{}", stdout);
    let doc = aarray_harness::json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    aarray_harness::chrome_trace::validate(&doc).expect("stream trace must validate");
    std::fs::remove_dir_all(&dir).ok();

    // Bad invocations exit 2 without writing anything.
    for args in [
        &["trace", "fig9"][..],
        &["trace", "--rows", "none"][..],
        &["trace", "--reps", "0"][..],
    ] {
        let o = obsctl().args(args).output().unwrap();
        assert_eq!(o.status.code(), Some(2), "args {:?}", args);
    }
}

#[test]
fn check_json_emits_schema_versioned_verdicts() {
    let dir = tmpdir("check-json");
    let current = run_observatory(&dir);
    let text = std::fs::read_to_string(&current).unwrap();

    // Passing verdict: self-comparison, exit 0, every finding "ok".
    let verdict_path = dir.join("verdict-pass.json");
    let o = obsctl()
        .args(["check", "--current"])
        .arg(&current)
        .arg("--against")
        .arg(&current)
        .arg("--json")
        .arg(&verdict_path)
        .output()
        .unwrap();
    assert!(o.status.success());
    let doc = aarray_harness::json::parse(&std::fs::read_to_string(&verdict_path).unwrap())
        .expect("verdict must be valid JSON");
    assert_eq!(doc.get("schema_version").unwrap().as_u64(), Some(1));
    assert_eq!(doc.get("tool").unwrap().as_str(), Some("obsctl-check"));
    assert_eq!(doc.get("exit_code").unwrap().as_u64(), Some(0));
    // A clean run carries its drop accounting into the verdict.
    assert_eq!(doc.get("journal_dropped").unwrap().as_u64(), Some(0));
    let comps = doc.get("comparisons").unwrap().as_arr().unwrap();
    assert_eq!(comps.len(), 1);
    let findings = comps[0].get("findings").unwrap().as_arr().unwrap();
    assert!(!findings.is_empty());
    for f in findings {
        assert_eq!(f.get("status").unwrap().as_str(), Some("ok"), "{:?}", f);
        assert!(f.get("metric").unwrap().as_str().is_some());
        assert!(f.get("pct").unwrap().as_f64().is_some());
    }

    // Regressed verdict: halve every baseline median, exit 1, at least
    // one finding flagged "regressed".
    let mut regressed = String::with_capacity(text.len());
    for piece in text.split("\"median_ns\": ") {
        if regressed.is_empty() {
            regressed.push_str(piece);
            continue;
        }
        regressed.push_str("\"median_ns\": ");
        let digits: String = piece.chars().take_while(char::is_ascii_digit).collect();
        let rest = &piece[digits.len()..];
        let halved: u64 = digits.parse::<u64>().unwrap() / 2;
        regressed.push_str(&halved.to_string());
        regressed.push_str(rest);
    }
    let baseline = dir.join("halved.json");
    std::fs::write(&baseline, &regressed).unwrap();
    let verdict_path = dir.join("verdict-regressed.json");
    let o = obsctl()
        .args(["check", "--current"])
        .arg(&current)
        .arg("--against")
        .arg(&baseline)
        .arg("--json")
        .arg(&verdict_path)
        .output()
        .unwrap();
    assert_eq!(o.status.code(), Some(1));
    let doc =
        aarray_harness::json::parse(&std::fs::read_to_string(&verdict_path).unwrap()).unwrap();
    assert_eq!(doc.get("exit_code").unwrap().as_u64(), Some(1));
    let comps = doc.get("comparisons").unwrap().as_arr().unwrap();
    assert!(comps[0].get("regressions").unwrap().as_u64().unwrap() >= 1);
    let findings = comps[0].get("findings").unwrap().as_arr().unwrap();
    assert!(findings
        .iter()
        .any(|f| f.get("status").unwrap().as_str() == Some("regressed")));

    // New-metric verdict: rename fig3 so the current run has workloads
    // the baseline lacks — exit 3 and "new" findings; --allow-new
    // downgrades to exit 0 while the findings stay marked "new".
    let renamed = text.replace("\"name\": \"fig3\"", "\"name\": \"zzz3\"");
    let baseline = dir.join("renamed.json");
    std::fs::write(&baseline, &renamed).unwrap();
    let verdict_path = dir.join("verdict-new.json");
    let o = obsctl()
        .args(["check", "--current"])
        .arg(&current)
        .arg("--against")
        .arg(&baseline)
        .arg("--json")
        .arg(&verdict_path)
        .output()
        .unwrap();
    assert_eq!(o.status.code(), Some(3));
    let doc =
        aarray_harness::json::parse(&std::fs::read_to_string(&verdict_path).unwrap()).unwrap();
    assert_eq!(doc.get("exit_code").unwrap().as_u64(), Some(3));
    let comps = doc.get("comparisons").unwrap().as_arr().unwrap();
    assert!(comps[0].get("new_metrics").unwrap().as_u64().unwrap() >= 1);
    let findings = comps[0].get("findings").unwrap().as_arr().unwrap();
    assert!(findings
        .iter()
        .any(|f| f.get("status").unwrap().as_str() == Some("new")));

    let verdict_path = dir.join("verdict-allow-new.json");
    let o = obsctl()
        .args(["check", "--current"])
        .arg(&current)
        .arg("--against")
        .arg(&baseline)
        .arg("--allow-new")
        .arg("--json")
        .arg(&verdict_path)
        .output()
        .unwrap();
    assert!(o.status.success());
    let doc =
        aarray_harness::json::parse(&std::fs::read_to_string(&verdict_path).unwrap()).unwrap();
    assert_eq!(doc.get("exit_code").unwrap().as_u64(), Some(0));
    assert_eq!(
        doc.get("allow_new"),
        Some(&aarray_harness::json::Value::Bool(true))
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ops_shows_tails_and_writes_a_per_op_trace() {
    let dir = tmpdir("ops");
    let trace_out = dir.join("stream.optrace.json");
    let o = obsctl()
        .args([
            "ops",
            "stream",
            "--rows",
            "400",
            "--reps",
            "2",
            "--slowest",
            "3",
            "--trace-out",
        ])
        .arg(&trace_out)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&o.stdout);
    let stderr = String::from_utf8_lossy(&o.stderr);
    assert!(o.status.success(), "{}{}", stdout, stderr);

    // Per-kind tail table with the quantile columns, covering at least
    // the plan and delta kinds the streaming workload exercises.
    for needle in ["p50_ns", "p95_ns", "p99_ns", "plan-execute", "delta-apply"] {
        assert!(
            stdout.contains(needle),
            "missing {:?} in:\n{}",
            needle,
            stdout
        );
    }
    assert!(stdout.contains("slowest"), "{}", stdout);
    assert!(stdout.contains("label stream"), "{}", stdout);

    // At least one exemplar's stage breakdown accounts for its wall
    // time to within 10% — the attribution acceptance bar.
    let pcts: Vec<f64> = stdout
        .lines()
        .filter_map(|l| {
            let head = l.split("% of wall").next()?;
            if head.len() == l.len() {
                return None;
            }
            head.rsplit('(').next()?.parse().ok()
        })
        .collect();
    assert!(!pcts.is_empty(), "no stage-sum lines in:\n{}", stdout);
    assert!(
        pcts.iter().any(|&p| (90.0..=110.0).contains(&p)),
        "no exemplar within 10% of wall: {:?}\n{}",
        pcts,
        stdout
    );

    // The slowest op's journal window cuts into a non-empty, validated
    // per-op Chrome trace grouped by operation.
    let text = std::fs::read_to_string(&trace_out).unwrap();
    let doc = aarray_harness::json::parse(&text).expect("per-op trace must parse");
    let stats = aarray_harness::chrome_trace::validate(&doc).expect("per-op trace must validate");
    assert!(
        stats.begins + stats.instants >= 1,
        "per-op trace is empty: {:?}",
        stats
    );
    assert_eq!(stats.begins, stats.ends);
    assert!(
        text.contains("\"op-"),
        "missing op process track:\n{}",
        text
    );
    std::fs::remove_dir_all(&dir).ok();

    // Bad invocations exit 2.
    for args in [
        &["ops", "fig9"][..],
        &["ops", "--slowest", "0"][..],
        &["ops", "--rows", "many"][..],
    ] {
        let o = obsctl().args(args).output().unwrap();
        assert_eq!(o.status.code(), Some(2), "args {:?}", args);
    }
}

#[test]
fn top_ticks_while_the_workload_runs_and_prints_a_final_table() {
    let o = obsctl()
        .args([
            "top",
            "fig3",
            "--rows",
            "600",
            "--reps",
            "6",
            "--interval-ms",
            "25",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&o.stdout);
    let stderr = String::from_utf8_lossy(&o.stderr);
    assert!(o.status.success(), "{}{}", stdout, stderr);
    assert!(stdout.contains("tick"), "{}", stdout);
    assert!(stdout.contains("workload finished"), "{}", stdout);
    // Final table aggregates the whole run per kind.
    for needle in ["p50_ns", "p95_ns", "p99_ns", "plan-execute"] {
        assert!(
            stdout.contains(needle),
            "missing {:?} in:\n{}",
            needle,
            stdout
        );
    }

    let o = obsctl()
        .args(["top", "--interval-ms", "0"])
        .output()
        .unwrap();
    assert_eq!(o.status.code(), Some(2));
}

/// Hand-crafted v3 document whose four component stages sum exactly to
/// its wall figure, so diff attribution over it is deterministic.
fn synthetic_v3(dir: &Path, file: &str, numeric_ns: u64, serial: u64, parallel: u64) -> PathBuf {
    let wall = 100_000 + 300_000 + 600_000 + numeric_ns;
    let doc = format!(
        r#"{{
          "schema_version": 3, "bench": "perf-observatory", "reps": 3,
          "histograms_enabled": false,
          "workloads": [{{"name":"fig3","rows":20000,"product_nnz":7,"stages":{{
            "align":{{"median_ns":100000}},"transpose":{{"median_ns":300000}},
            "symbolic":{{"median_ns":600000}},"numeric":{{"median_ns":{numeric}}},
            "total":{{"median_ns":{wall}}},"wall":{{"median_ns":{wall}}}}}}}],
          "report": {{"schema_version": 3,
            "counters": {{"dispatch.serial": {serial}, "dispatch.parallel": {parallel}}},
            "histograms": {{}},
            "mem": {{"spa-scratch":{{"current":0,"peak":2097152}}}}}}
        }}"#,
        numeric = numeric_ns,
        wall = wall,
        serial = serial,
        parallel = parallel,
    );
    let path = dir.join(file);
    std::fs::write(&path, doc).unwrap();
    path
}

#[test]
fn diff_attributes_synthetic_regression_above_ninety_percent() {
    let dir = tmpdir("diff");
    // B's numeric doubles (+2 ms on a 3 ms wall) and its dispatch goes
    // all-serial → all-parallel; every other stage is flat.
    let a = synthetic_v3(&dir, "a.json", 2_000_000, 12, 0);
    let b = synthetic_v3(&dir, "b.json", 4_000_000, 0, 12);
    let verdict = dir.join("diff.json");

    let o = obsctl()
        .arg("diff")
        .arg(&a)
        .arg(&b)
        .arg("--json")
        .arg(&verdict)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&o.stdout);
    assert!(
        o.status.success(),
        "{}{}",
        stdout,
        String::from_utf8_lossy(&o.stderr)
    );
    assert!(stdout.contains("wall delta"), "{}", stdout);
    assert!(stdout.contains("fig3@20000/numeric"), "{}", stdout);
    assert!(stdout.contains("dispatch serial↔parallel"), "{}", stdout);

    let doc = aarray_harness::json::parse(&std::fs::read_to_string(&verdict).unwrap())
        .expect("diff verdict must parse");
    assert_eq!(doc.get("tool").unwrap().as_str(), Some("obsctl-diff"));
    assert_eq!(doc.get("wall_delta_ns").unwrap().as_u64(), Some(2_000_000));
    // The attribution acceptance bar: ≥ 90% of the delta explained.
    let explained = doc.get("explained_pct").unwrap().as_f64().unwrap();
    assert!(explained >= 90.0, "explained only {:.1}%", explained);
    let contributors = doc.get("contributors").unwrap().as_arr().unwrap();
    let top = &contributors[0];
    assert_eq!(
        top.get("metric").unwrap().as_str(),
        Some("fig3@20000/numeric")
    );
    assert_eq!(
        top.get("included").unwrap(),
        &aarray_harness::json::Value::Bool(true)
    );
    let flips = doc.get("flips").unwrap().as_arr().unwrap();
    assert_eq!(flips.len(), 1, "one dispatch flip expected");
    assert_eq!(flips[0].get("stage").unwrap().as_str(), Some("numeric"));

    // Identical inputs: zero delta, nothing included, clean exit.
    let o = obsctl().arg("diff").arg(&a).arg(&a).output().unwrap();
    assert!(o.status.success());
    assert!(
        String::from_utf8_lossy(&o.stdout).contains("wall delta +0 ns"),
        "{}",
        String::from_utf8_lossy(&o.stdout)
    );

    // Bad invocations exit 2: wrong arity, unreadable file.
    let o = obsctl().arg("diff").arg(&a).output().unwrap();
    assert_eq!(o.status.code(), Some(2));
    let o = obsctl()
        .args(["diff", "no-such-a.json", "no-such-b.json"])
        .output()
        .unwrap();
    assert_eq!(o.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn history_ingests_every_committed_baseline_lineage() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files: Vec<PathBuf> = (1..=6)
        .map(|i| root.join(format!("BENCH_pr{}.json", i)))
        .collect();
    files.retain(|f| f.exists());
    assert!(
        files.len() >= 6,
        "expected the six committed baselines, found {:?}",
        files
    );

    let dir = tmpdir("history");
    let out = dir.join("history.json");
    let mut cmd = obsctl();
    cmd.arg("history");
    for f in &files {
        cmd.arg(f);
    }
    let o = cmd.arg("--out").arg(&out).output().unwrap();
    let stdout = String::from_utf8_lossy(&o.stdout);
    assert!(
        o.status.success(),
        "{}{}",
        stdout,
        String::from_utf8_lossy(&o.stderr)
    );
    // Every lineage shape lands in one table: the legacy fused figure,
    // the v3/v4 stage medians, and the parbench 1-thread cells share
    // the fig3@20000 / stream-incr metric space.
    assert!(stdout.contains("fig3@20000/total"), "{}", stdout);
    assert!(stdout.contains("stream-incr@"), "{}", stdout);
    assert!(stdout.contains("slope"), "{}", stdout);

    // The machine document round-trips through the hand-rolled parser.
    let doc = aarray_harness::json::parse(&std::fs::read_to_string(&out).unwrap())
        .expect("history output must round-trip");
    assert_eq!(doc.get("tool").unwrap().as_str(), Some("obsctl-history"));
    let listed = doc.get("files").unwrap().as_arr().unwrap();
    assert_eq!(listed.len(), files.len());
    let trends = doc.get("trends").unwrap().as_arr().unwrap();
    assert!(!trends.is_empty());
    // fig3@20000/total spans the PR1 legacy figure and the PR3
    // observatory file: at least two present points in its row.
    let fig3_total = trends
        .iter()
        .find(|t| t.get("metric").unwrap().as_str() == Some("fig3@20000/total"))
        .expect("fig3@20000/total must be trended");
    let present = fig3_total
        .get("values")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .filter(|v| v.as_u64().is_some())
        .count();
    assert!(present >= 2, "fig3@20000/total spans {} file(s)", present);

    // A malformed file poisons the run with exit 2, never silence.
    let junk = dir.join("junk.json");
    std::fs::write(&junk, "{\"bench\": \"mystery\"}").unwrap();
    let o = obsctl().arg("history").arg(&junk).output().unwrap();
    assert_eq!(o.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_out_captures_decisions_and_diffs_against_bench_files() {
    let dir = tmpdir("profile");
    let bench = dir.join("BENCH_pr3.json");
    let profile = dir.join("profile.json");
    let o = obsctl()
        .args(["run", "--scales", "400", "--reps", "2", "--out"])
        .arg(&bench)
        .arg("--profile-out")
        .arg(&profile)
        .output()
        .unwrap();
    assert!(
        o.status.success(),
        "{}{}",
        String::from_utf8_lossy(&o.stdout),
        String::from_utf8_lossy(&o.stderr)
    );

    let doc = aarray_harness::json::parse(&std::fs::read_to_string(&profile).unwrap())
        .expect("profile must parse");
    assert_eq!(doc.get("tool").unwrap().as_str(), Some("obsctl-profile"));
    // The run's decisions are tallied with their stage assignment, the
    // pool section reflects the host, and the op-kind stage totals
    // cover the plan executions the workloads performed.
    let serial = doc
        .path(&["decisions", "dispatch.serial", "count"])
        .unwrap()
        .as_u64()
        .unwrap();
    let parallel = doc
        .path(&["decisions", "dispatch.parallel", "count"])
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(serial + parallel >= 1, "no dispatch decisions recorded");
    assert!(doc.get("pool").is_some());
    let kinds = doc.get("op_kinds").unwrap().as_obj().unwrap();
    assert!(
        kinds.contains_key("plan-execute"),
        "op kinds: {:?}",
        kinds.keys().collect::<Vec<_>>()
    );

    // A profile diffs cleanly against itself and against the bench
    // file written by the same run (both normalize to the same stage
    // space; identical numbers → zero delta for the self-pair).
    let o = obsctl()
        .arg("diff")
        .arg(&profile)
        .arg(&profile)
        .output()
        .unwrap();
    assert!(o.status.success());
    assert!(
        String::from_utf8_lossy(&o.stdout).contains("wall delta +0 ns"),
        "{}",
        String::from_utf8_lossy(&o.stdout)
    );
    let o = obsctl()
        .arg("diff")
        .arg(&profile)
        .arg(&bench)
        .output()
        .unwrap();
    assert!(
        o.status.success(),
        "{}{}",
        String::from_utf8_lossy(&o.stdout),
        String::from_utf8_lossy(&o.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_json_attribution_names_stage_contributors() {
    let dir = tmpdir("check-attr");
    // A synthetic pair in the same stage space: the "current" run's
    // numeric stage doubled against the baseline, so checking current
    // against baseline regresses and the attribution must say why.
    let baseline = synthetic_v3(&dir, "baseline.json", 2_000_000, 6, 6);
    let current = synthetic_v3(&dir, "current.json", 4_000_000, 6, 6);
    let verdict = dir.join("check.json");

    let o = obsctl()
        .args(["check", "--current"])
        .arg(&current)
        .arg("--against")
        .arg(&baseline)
        .arg("--json")
        .arg(&verdict)
        .output()
        .unwrap();
    assert_eq!(
        o.status.code(),
        Some(1),
        "doubled numeric must regress:\n{}",
        String::from_utf8_lossy(&o.stdout)
    );

    let doc = aarray_harness::json::parse(&std::fs::read_to_string(&verdict).unwrap())
        .expect("check verdict must parse");
    let comparisons = doc.get("comparisons").unwrap().as_arr().unwrap();
    let attribution = comparisons[0]
        .get("attribution")
        .expect("attribution field must exist")
        .as_obj()
        .unwrap();
    assert!(!attribution.is_empty(), "no attribution for regressions");
    for (metric, top) in attribution {
        let top = top.as_arr().unwrap();
        assert!(
            top.len() <= 3,
            "{}: top-3 cap violated ({} entries)",
            metric,
            top.len()
        );
        assert!(!top.is_empty(), "{}: empty attribution", metric);
        // The dominant contributor to every regressed fig3 metric is
        // the numeric stage — that is where the synthetic delta lives.
        assert_eq!(
            top[0].get("metric").unwrap().as_str(),
            Some("fig3@20000/numeric"),
            "{}",
            metric
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
