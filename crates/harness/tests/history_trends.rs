//! Regression pins for `obsctl history` over the *committed* baseline
//! lineage. PR9's key-interning work collapsed the align stage at
//! scale (stream-incr@20000 went from ~12.8 ms to ~0.78 ms); the trend
//! table must flag that step-change as a sustained improvement (`↓`),
//! not wave it off as noise (`~`). These tests read the real
//! `BENCH_pr*.json` files from the repo root, so the verdict is pinned
//! against exactly what future sessions will see.

use aarray_harness::compare::CheckConfig;
use aarray_harness::history::{ingest, trends, HistoryEntry, Slope};
use aarray_harness::json::parse;

fn load(name: &str) -> HistoryEntry {
    let path = format!("{}/../../{}", env!("CARGO_MANIFEST_DIR"), name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read committed baseline {}: {}", path, e));
    let doc = parse(&text).unwrap_or_else(|e| panic!("{} must parse: {}", name, e));
    ingest(name, &doc).unwrap_or_else(|e| panic!("{} must ingest: {}", name, e))
}

fn lineage() -> Vec<HistoryEntry> {
    // File order is lineage order; pr9 is the newest streaming capture.
    vec![
        load("BENCH_pr4.json"),
        load("BENCH_pr5.json"),
        load("BENCH_pr9.json"),
    ]
}

fn slope_of(rows: &[aarray_harness::history::Trend], metric: &str) -> Slope {
    rows.iter()
        .find(|t| t.metric == metric)
        .unwrap_or_else(|| panic!("metric {} missing from trend table", metric))
        .slope
}

#[test]
fn pr9_align_step_change_is_flagged_down_not_noise() {
    let entries = lineage();
    let rows = trends(&entries, &CheckConfig::default());

    // The tentpole verdict: at 20000 rows the incremental align stage
    // collapsed by ~16× in PR9. Well above the 50 µs noise floor on
    // both ends, so this must be ↓.
    assert_eq!(
        slope_of(&rows, "stream-incr@20000/align"),
        Slope::Down,
        "PR9 align step-change at 20000 rows must be flagged ↓"
    );
    // The same improvement is visible one scale down.
    assert_eq!(slope_of(&rows, "stream-incr@8000/align"), Slope::Down);

    // Counter-pin: the rebuild path realigns from scratch either way;
    // its align samples sit below the latency noise floor, so the
    // verdict there stays ~ (noise), proving Down above is a real
    // signal and not a floor artifact.
    assert_eq!(slope_of(&rows, "stream-rebuild@2000/align"), Slope::Noise);
}

#[test]
fn pr9_values_land_in_the_trend_row_in_file_order() {
    let entries = lineage();
    let rows = trends(&entries, &CheckConfig::default());
    let row = rows
        .iter()
        .find(|t| t.metric == "stream-incr@20000/align")
        .expect("row present");
    assert_eq!(row.values.len(), 3, "one column per ingested file");
    let vals: Vec<u64> = row.values.iter().map(|v| v.expect("present")).collect();
    // First and last straddle the step: pr4/pr5 in the milliseconds,
    // pr9 under a millisecond.
    assert!(
        vals[0] > 5_000_000,
        "pr4 align should be ms-scale: {}",
        vals[0]
    );
    assert!(
        vals[1] > 5_000_000,
        "pr5 align should be ms-scale: {}",
        vals[1]
    );
    assert!(
        vals[2] < 2_000_000,
        "pr9 align should be sub-2ms: {}",
        vals[2]
    );
    assert!(
        vals[2] * 5 < vals[0],
        "step change must exceed the 1.15 slope tolerance by a wide margin"
    );
}
