//! A hand-rolled `std::net` HTTP/1.0 server — the scrape endpoint for
//! `obsctl watch`, built with zero new dependencies (same offline
//! discipline as the `serde_json`/`rayon` stubs).
//!
//! Scope is deliberately narrow: `GET` over HTTP/1.0 semantics
//! (`Connection: close`, one request per connection), a routing
//! closure mapping paths to responses, and a clean shutdown handle.
//! The accept loop runs on one background thread with a nonblocking
//! listener polled every 20 ms so the stop flag is observed promptly;
//! connections are handled sequentially — a metrics scrape is a few
//! KiB every few hundred ms, not a web workload. Malformed request
//! lines get `400 Bad Request`; an error on one connection never
//! takes down the accept loop.
//!
//! [`http_get`] is the matching client helper used by the e2e tests
//! and the CI smoke job (`obsctl fetch`), so the pipeline needs no
//! `curl` either.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A response from a [`Httpd`] handler: status code plus body, with
/// the content type picked per route.
pub struct Response {
    /// HTTP status code (200, 400, 404, ...).
    pub status: u16,
    /// Media type for the `Content-Type` header.
    pub content_type: &'static str,
    /// Response body, written verbatim.
    pub body: String,
}

impl Response {
    /// A `200 OK` with the given content type.
    pub fn ok(content_type: &'static str, body: String) -> Response {
        Response {
            status: 200,
            content_type,
            body,
        }
    }

    /// A `404 Not Found` naming the missing path.
    pub fn not_found(path: &str) -> Response {
        Response {
            status: 404,
            content_type: "text/plain",
            body: format!("no such endpoint: {}\n", path),
        }
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// The `obsctl watch` route table, shared between the binary and the
/// e2e tests: `/metrics` (Prometheus exposition rendered from the
/// **latest frame**, so a scrape never touches the live registries),
/// `/report.json` (the latest frame's full schema-versioned report),
/// `/series.json` (the whole ring as timestamp + metric columns), and
/// `/healthz` (sampler liveness plus every layer's drop counters).
pub fn telemetry_handler(
    ring: Arc<aarray_obs::TimeSeriesRing>,
    probe: aarray_obs::CollectorProbe,
) -> impl Fn(&str) -> Response + Send + 'static {
    move |path| match path {
        "/metrics" => match ring.latest() {
            Some(f) => Response::ok("text/plain; version=0.0.4", f.report.to_prometheus()),
            None => no_frame_yet(),
        },
        "/report.json" => match ring.latest() {
            Some(f) => Response::ok("application/json", f.report.to_json()),
            None => no_frame_yet(),
        },
        "/series.json" => Response::ok("application/json", ring.snapshot().to_json()),
        "/healthz" => {
            let stats = ring.stats();
            let (journal_dropped, ops_dropped) = ring
                .latest()
                .map(|f| (f.report.journal.dropped, f.report.ops.dropped))
                .unwrap_or((0, 0));
            let alive = probe.is_alive();
            let body = format!(
                "{{\"status\": \"{}\", \"interval_ms\": {}, \"last_sample_age_ms\": {}, \
                 \"frames\": {{\"recorded\": {}, \"dropped\": {}, \"capacity\": {}}}, \
                 \"journal_dropped\": {}, \"ops_dropped\": {}}}\n",
                if alive { "ok" } else { "stalled" },
                probe.interval_ms(),
                probe.last_sample_age_ms(),
                stats.recorded,
                stats.dropped,
                stats.capacity,
                journal_dropped,
                ops_dropped
            );
            Response {
                status: if alive { 200 } else { 503 },
                content_type: "application/json",
                body,
            }
        }
        p => Response::not_found(p),
    }
}

/// 503 until the sampler's first frame lands (it samples immediately
/// at start, so this window is one thread-scheduling quantum wide).
fn no_frame_yet() -> Response {
    Response {
        status: 503,
        content_type: "text/plain",
        body: "no frame sampled yet\n".into(),
    }
}

/// Handle to a running server; dropping it stops the accept loop and
/// joins the thread.
pub struct Httpd {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Httpd {
    /// Bind `addr` (use port 0 for an OS-assigned port, then read
    /// [`Httpd::addr`]) and serve `handler(path)` for every well-formed
    /// `GET`. The handler runs on the server thread, so it must be
    /// `Send` and should return quickly.
    pub fn serve<F>(addr: &str, handler: F) -> std::io::Result<Httpd>
    where
        F: Fn(&str) -> Response + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let t_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("aarray-httpd".into())
            .spawn(move || {
                while !t_stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // Per-connection failures (reset mid-write,
                            // unreadable request) must not kill the
                            // accept loop.
                            let _ = handle_connection(stream, &handler);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => {
                            // Transient accept error; back off briefly.
                            std::thread::sleep(Duration::from_millis(20));
                        }
                    }
                }
            })?;
        Ok(Httpd {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread (Drop does the
    /// same).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Httpd {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Read one request, route it, write one response, close. Any I/O
/// error is returned (and ignored by the accept loop).
fn handle_connection<F>(mut stream: TcpStream, handler: &F) -> std::io::Result<()>
where
    F: Fn(&str) -> Response,
{
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;

    // Read until the end of the request head (blank line) or a size
    // cap; we never need a body for GET.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n")
                    || buf.windows(2).any(|w| w == b"\n\n")
                    || buf.len() > 8192
                {
                    break;
                }
            }
            Err(_) => break,
        }
    }

    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let response = route_request_line(request_line, handler);
    write_response(&mut stream, &response)
}

/// Parse `GET /path HTTP/1.x` and dispatch. Split out of the
/// connection handler so malformed-request behavior is unit-testable
/// without sockets.
pub fn route_request_line<F>(request_line: &str, handler: &F) -> Response
where
    F: Fn(&str) -> Response,
{
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if parts.next().is_none() => (m, p, v),
        _ => {
            return Response {
                status: 400,
                content_type: "text/plain",
                body: "malformed request line\n".into(),
            }
        }
    };
    if !version.starts_with("HTTP/") || !path.starts_with('/') {
        return Response {
            status: 400,
            content_type: "text/plain",
            body: "malformed request line\n".into(),
        };
    }
    if method != "GET" {
        return Response {
            status: 405,
            content_type: "text/plain",
            body: "only GET is served here\n".into(),
        };
    }
    // Ignore any query string; routes are bare paths.
    let path = path.split('?').next().unwrap_or(path);
    handler(path)
}

fn write_response(stream: &mut TcpStream, r: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        r.status,
        status_text(r.status),
        r.content_type,
        r.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(r.body.as_bytes())?;
    stream.flush()
}

/// Minimal HTTP GET client for tests and `obsctl fetch`: one request,
/// read to EOF (the server closes), return `(status, body)`.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let deadline = Instant::now() + timeout;
    let sock_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "unresolvable addr")
    })?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(format!("GET {} HTTP/1.0\r\nHost: {}\r\n\r\n", path, addr).as_bytes())?;

    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if Instant::now() > deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "response did not complete in time",
            ));
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break;
            }
            Err(e) => return Err(e),
        }
    }

    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, body) = match text.find("\r\n\r\n") {
        Some(i) => (&text[..i], &text[i + 4..]),
        None => match text.find("\n\n") {
            Some(i) => (&text[..i], &text[i + 2..]),
            None => (text.as_str(), ""),
        },
    };
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "unparsable status line")
        })?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_handler(path: &str) -> Response {
        match path {
            "/hello" => Response::ok("text/plain", "world\n".into()),
            p => Response::not_found(p),
        }
    }

    #[test]
    fn serves_and_stops_cleanly() {
        let server = Httpd::serve("127.0.0.1:0", echo_handler).unwrap();
        let addr = server.addr().to_string();
        let (status, body) = http_get(&addr, "/hello", Duration::from_secs(5)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "world\n");
        let (status, _) = http_get(&addr, "/nope", Duration::from_secs(5)).unwrap();
        assert_eq!(status, 404);
        server.stop();
        // The port is released once the handle is gone.
        assert!(
            TcpStream::connect_timeout(&addr.parse().unwrap(), Duration::from_millis(200)).is_err()
        );
    }

    #[test]
    fn query_strings_are_ignored_for_routing() {
        let r = route_request_line("GET /hello?window=5 HTTP/1.0", &echo_handler);
        assert_eq!(r.status, 200);
    }

    #[test]
    fn malformed_request_lines_get_400() {
        for line in [
            "",
            "GET",
            "GET /hello",
            "garbage with too many words entirely HTTP/1.0",
            "GET hello HTTP/1.0",
            "GET /hello FTP/1.0",
        ] {
            let r = route_request_line(line, &echo_handler);
            assert_eq!(r.status, 400, "line {:?} should be rejected", line);
        }
        let r = route_request_line("POST /hello HTTP/1.0", &echo_handler);
        assert_eq!(r.status, 405);
    }

    #[test]
    fn malformed_request_does_not_kill_the_server() {
        let server = Httpd::serve("127.0.0.1:0", echo_handler).unwrap();
        let addr = server.addr();
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.0 400"), "got: {}", out);
        drop(s);
        // Server still answers afterwards.
        let (status, body) = http_get(&addr.to_string(), "/hello", Duration::from_secs(5)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "world\n");
    }
}
