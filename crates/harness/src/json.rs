//! Minimal recursive-descent JSON parser.
//!
//! The workspace builds offline against an **empty** `serde_json`
//! stub, so `obsctl` parses its own bench files by hand. Scope is
//! exactly what the bench schemas need: objects, arrays, strings
//! (escape-decoded), numbers (as `f64`), booleans, null. Duplicate
//! object keys keep the last value, as serde_json does by default.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64` (bench files stay well under
    /// 2^53, so the lossy integer path is fine here).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` on anything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (bench counts and byte
    /// figures); fails on negatives and non-integers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Dotted-path lookup: `v.path(&["report", "mem"])`.
    pub fn path(&self, keys: &[&str]) -> Option<&Value> {
        let mut cur = self;
        for k in keys {
            cur = cur.get(k)?;
        }
        Some(cur)
    }
}

/// A parse failure with byte offset for diagnostics.
#[derive(Debug)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

/// Parse one JSON document; trailing whitespace allowed, trailing
/// garbage is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {:?}", word)))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text.parse().map_err(|_| ParseError {
            at: start,
            msg: format!("bad number {:?}", text),
        })?;
        if !n.is_finite() {
            return Err(ParseError {
                at: start,
                msg: "non-finite number".into(),
            });
        }
        Ok(Value::Num(n))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in bench
                            // files; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let ch = rest.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5, "x\ny", true, null], "b": {"c": 3}}"#).unwrap();
        assert_eq!(v.path(&["b", "c"]).unwrap().as_u64(), Some(3));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        assert_eq!(arr[3], Value::Bool(true));
        assert_eq!(arr[4], Value::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "{\"a\":1} x", "nul", "1e"] {
            assert!(parse(bad).is_err(), "{:?} should fail", bad);
        }
    }

    #[test]
    fn round_trips_real_bench_files() {
        // The legacy PR1 format exactly as committed at the repo root.
        let pr1 = r#"{
  "bench": "fused_vs_sequential",
  "workload": {"tracks": 20000, "pairs": 7, "e1_nnz": 28749, "e2_nnz": 39879},
  "reps": 10,
  "sequential_ms": 10.835,
  "fused_ms": 4.207,
  "speedup": 2.576
}"#;
        let v = parse(pr1).unwrap();
        assert_eq!(
            v.get("bench").unwrap().as_str(),
            Some("fused_vs_sequential")
        );
        assert_eq!(v.get("fused_ms").unwrap().as_f64(), Some(4.207));
        assert_eq!(
            v.path(&["workload", "tracks"]).unwrap().as_u64(),
            Some(20000)
        );
    }

    #[test]
    fn parses_obs_report_output() {
        let report = aarray_obs::ObsReport::capture().to_json();
        let v = parse(&report).expect("ObsReport::to_json must be valid JSON");
        assert_eq!(
            v.get("schema_version").unwrap().as_u64(),
            Some(aarray_obs::REPORT_SCHEMA_VERSION)
        );
        assert!(v.get("histograms").unwrap().as_obj().is_some());
        assert!(v.get("mem").unwrap().as_obj().is_some());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Value::Num(1.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(0.0).as_u64(), Some(0));
    }
}
