//! Rich per-run profiles for differential analysis.
//!
//! `obsctl run/stream --profile-out <path>` captures everything the
//! attribution layer (`obsctl diff`) wants from one run in a single
//! schema-versioned document: the per-workload stage medians the bench
//! file also carries, the counter delta, the decision tallies
//! (dispatch verdicts, plan-cache hits, accumulator choices, fallback
//! codes, pool task accounting), and the op ledger's per-kind
//! union-of-interval stage totals. A profile is strictly richer than a
//! bench file; `diff` accepts either and normalizes both.

use crate::workloads::WorkloadRun;
use aarray_obs::{Counter, Gauge, ObsReport, OP_KIND_NAMES};

/// Schema version stamped into `--profile-out` documents.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// The decision counters differential profiling attributes flips to,
/// with the stage each decision's cost lands in. Order is emission
/// order in the profile's `"decisions"` object.
pub const DECISION_COUNTERS: [(Counter, &str, &str); 16] = [
    (Counter::DispatchSerial, "dispatch.serial", "numeric"),
    (Counter::DispatchParallel, "dispatch.parallel", "numeric"),
    (Counter::PlanSymbolicHit, "plan.symbolic-hit", "symbolic"),
    (Counter::PlanSymbolicMiss, "plan.symbolic-miss", "symbolic"),
    (
        Counter::PlanTransposeBuilt,
        "plan.transpose-built",
        "transpose",
    ),
    (
        Counter::PlanTransposeReused,
        "plan.transpose-reused",
        "transpose",
    ),
    (Counter::FusedSpa, "fused.spa", "numeric"),
    (Counter::FusedHash, "fused.hash", "numeric"),
    (Counter::IncrementalApply, "incremental.apply", "numeric"),
    (
        Counter::IncrementalFallback,
        "incremental.fallback",
        "numeric",
    ),
    (Counter::PoolTasksLocal, "pool.tasks-local", "numeric"),
    (Counter::PoolTasksStolen, "pool.tasks-stolen", "numeric"),
    (Counter::PoolTasksInline, "pool.tasks-inline", "numeric"),
    (Counter::InternHit, "intern.hits", "align"),
    (Counter::InternMiss, "intern.misses", "align"),
    (Counter::IntersectIdSpace, "intersect.id-space", "align"),
];

/// Emit the profile document for one captured run.
///
/// `report` is the [`ObsReport`] delta covering exactly the measured
/// workloads; `kind_totals` the ledger's per-kind stage export over the
/// same window ([`aarray_obs::OpLogSnapshot::stage_totals`]). The
/// output parses with the workspace's own hand-rolled JSON parser —
/// callers self-check before writing, like every other `obsctl`
/// emitter.
pub fn profile_json(
    runs: &[WorkloadRun],
    report: &ObsReport,
    kind_totals: &[aarray_obs::KindStageTotals],
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        "{{\n  \"schema_version\": {},\n  \"tool\": \"obsctl-profile\",\n  \"bench\": \"profile\",\n",
        PROFILE_SCHEMA_VERSION
    ));

    out.push_str("  \"workloads\": [");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"rows\": {}, \"stages\": {{",
            r.name, r.rows
        ));
        for (j, (key, ns)) in [
            ("align", r.stages.align_ns),
            ("transpose", r.stages.transpose_ns),
            ("symbolic", r.stages.symbolic_ns),
            ("numeric", r.stages.numeric_ns),
            ("total", r.stages.total_ns),
            ("wall", r.stages.wall_ns),
        ]
        .iter()
        .enumerate()
        {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {{\"median_ns\": {}}}", key, ns));
        }
        out.push_str("}}");
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"decisions\": {");
    for (i, &(c, name, stage)) in DECISION_COUNTERS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"stage\": \"{}\"}}",
            name,
            report.counters.get(c),
            stage
        ));
    }
    out.push_str("\n  },\n");

    out.push_str(&format!(
        "  \"pool\": {{\"threads\": {}, \"tasks_local\": {}, \"tasks_stolen\": {}, \
         \"tasks_inline\": {}}},\n",
        report.counters.gauge(Gauge::PoolThreads),
        report.counters.get(Counter::PoolTasksLocal),
        report.counters.get(Counter::PoolTasksStolen),
        report.counters.get(Counter::PoolTasksInline)
    ));

    out.push_str("  \"op_kinds\": {");
    let mut first = true;
    for (i, &(_, name)) in OP_KIND_NAMES.iter().enumerate() {
        let Some(t) = kind_totals.get(i) else {
            continue;
        };
        if t.count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"align_ns\": {}, \"transpose_ns\": {}, \
             \"symbolic_ns\": {}, \"numeric_ns\": {}, \"delta_ns\": {}, \"wall_ns\": {}}}",
            name,
            t.count,
            t.align_ns,
            t.transpose_ns,
            t.symbolic_ns,
            t.numeric_ns,
            t.delta_ns,
            t.wall_ns
        ));
    }
    out.push_str("\n  },\n");

    // The tail table mirrors `obsctl ops`: per-kind wall-ns quantiles.
    out.push_str("  \"tails\": {");
    let mut first = true;
    for (i, &(_, name)) in OP_KIND_NAMES.iter().enumerate() {
        let t = &report.ops.tails[i];
        if t.count() == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}",
            name,
            t.count(),
            t.quantile(0.5),
            t.quantile(0.95),
            t.quantile(0.99)
        ));
    }
    out.push_str("\n  },\n");

    out.push_str("  \"counters\": {");
    let mut names: Vec<(&str, u64)> = aarray_obs::counters::COUNTER_NAMES
        .iter()
        .map(|&(c, name)| (name, report.counters.get(c)))
        .collect();
    names.sort_by_key(|&(name, _)| name);
    let mut first = true;
    for (name, v) in names {
        if v == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {}", name, v));
    }
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::workloads::{run_workload, Figure};

    #[test]
    fn profile_json_parses_and_carries_every_section() {
        let before = ObsReport::capture();
        let cursor = aarray_obs::oplog().cursor();
        let runs = [run_workload(Figure::Fig3, 200, 1)];
        let report = ObsReport::capture().since(&before);
        let totals = aarray_obs::oplog().snapshot().stage_totals(cursor);

        let doc = profile_json(&runs, &report, &totals);
        let parsed = parse(&doc).expect("profile must be valid JSON");
        assert_eq!(
            parsed.get("schema_version").unwrap().as_u64(),
            Some(PROFILE_SCHEMA_VERSION)
        );
        assert_eq!(parsed.get("tool").unwrap().as_str(), Some("obsctl-profile"));
        for key in [
            "workloads",
            "decisions",
            "pool",
            "op_kinds",
            "tails",
            "counters",
        ] {
            assert!(parsed.get(key).is_some(), "missing {}", key);
        }
        // The run's fused traversals show up in the decision tallies,
        // and a serial host records inline pool work.
        let fused = parsed
            .path(&["decisions", "fused.spa", "count"])
            .and_then(crate::json::Value::as_u64)
            .unwrap_or(0)
            + parsed
                .path(&["decisions", "fused.hash", "count"])
                .and_then(crate::json::Value::as_u64)
                .unwrap_or(0);
        assert!(fused >= 1, "fused decision tallies must be live");
        let w = parsed.get("workloads").unwrap().as_arr().unwrap();
        assert_eq!(w[0].get("name").unwrap().as_str(), Some("fig3"));
        assert!(
            w[0].path(&["stages", "numeric", "median_ns"])
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
    }
}
