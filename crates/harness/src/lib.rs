//! # aarray-harness
//!
//! The perf-regression observatory around the `aarray` workspace:
//! the [`obsctl`](../obsctl/index.html) binary runs the canonical
//! Figure 3/5 workloads at several scales, captures the full
//! [`aarray_obs::ObsReport`] (counters, histograms, memory peaks) plus
//! per-plan stage medians, writes a schema-versioned `BENCH_pr3.json`,
//! and renders a regression verdict against earlier `BENCH_*.json`
//! baselines (both the v3 observatory format and the legacy PR1/PR2
//! single-figure files).
//!
//! `obsctl diff` attributes the wall-time delta between two captured
//! runs ([`diff`]) to ranked stage contributors and decision flips;
//! `obsctl run/stream --profile-out` writes the rich per-run documents
//! ([`profile`]) it consumes, and `obsctl history` trends every
//! committed baseline lineage shape ([`history`]).
//!
//! `obsctl trace` additionally drains the always-on flight recorder
//! ([`aarray_obs::journal`]) after one workload and exports it as a
//! Chrome-trace/Perfetto timeline, validated structurally by
//! [`chrome_trace`] before it is written.
//!
//! `obsctl watch` runs a workload while a background
//! [`aarray_obs::Collector`] samples frames and an embedded
//! hand-rolled HTTP/1.0 server ([`httpd`], `std::net` only) serves
//! `/metrics`, `/report.json`, `/series.json`, and `/healthz` — the
//! live half of the observatory.
//!
//! Everything here is dependency-free: the offline `serde_json` stub
//! is empty, so [`json`] is a small hand-rolled parser scoped to the
//! bench schemas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome_trace;
pub mod compare;
pub mod diff;
pub mod history;
pub mod httpd;
pub mod json;
pub mod profile;
pub mod schema;
pub mod workloads;
