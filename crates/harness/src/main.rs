//! `obsctl` — run the perf observatory and check for regressions.
//!
//! ```text
//! obsctl run    [--out BENCH_pr3.json] [--scales 2000,8000,20000]
//!               [--reps 5] [--prometheus <path>] [--profile-out <path>]
//! obsctl stream [--out BENCH_pr4.json] [--scales 2000,8000,20000]
//!               [--reps 5] [--profile-out <path>]
//! obsctl parbench [--out BENCH_pr6.json] [--scales 2000,8000,20000]
//!               [--reps 5] [--threads 1,2,4]
//! obsctl check  [--current BENCH_pr3.json] [--against <file>]...
//!               [--lat-tol 15] [--mem-tol 20] [--allow-new]
//!               [--stages align,numeric,total]
//! obsctl --check          # check with the defaults above
//! ```
//!
//! `run` replays the Figure 3/5 workloads at each scale, captures the
//! observability delta (counters, histograms, memory peaks) and
//! per-stage medians, and writes a schema-versioned observatory file.
//! With `--prometheus` the same capture is also written in Prometheus
//! text exposition format for the node-exporter textfile collector.
//!
//! `stream` replays the streaming-ingest workload: at each scale the
//! last 10% of edges arrive as an appended batch, and the five
//! associative-`⊕` adjacency lanes are brought current both
//! incrementally (delta SpGEMM) and by full rebuild, cross-checked
//! bit-identical. The per-scale medians land in `BENCH_pr4.json` as
//! `stream-incr` / `stream-rebuild` workload pairs.
//!
//! `parbench` sweeps the fig3/fig5/stream workloads across forced
//! rayon pool sizes (the flops dispatch gate is dropped to zero above
//! one thread so every numeric pass takes the row-parallel kernel),
//! records per-cell medians, pool task tallies, and numeric-pass
//! speedups against the 1-thread cell, and writes `BENCH_pr6.json`
//! with the host's core count — the scaling numbers are only
//! meaningful next to `host_threads`.
//!
//! `trace --expect-parallel` exits nonzero unless the exported
//! timeline proves real concurrency: leaf numeric spans on two or
//! more thread tracks with temporally overlapping windows.
//!
//! `ops` replays one workload against a reset op ledger and prints the
//! per-op-kind tail table (count / p50 / p95 / p99 wall ns), the
//! slowest-N exemplar records with their per-stage breakdown, and cuts
//! the slowest op's journal window into a per-op Chrome trace.
//!
//! `top` runs one workload on a background thread and prints a live
//! snapshot/diff line per sampling interval — ops completed per kind
//! with interval p95s, plus journal growth — then a final tail table.
//!
//! `watch` is the live half of the observatory: it runs one workload
//! while a background [`aarray_obs::Collector`] samples full reports
//! into a bounded frame ring. With `--listen` an embedded `std::net`
//! HTTP/1.0 server serves `GET /metrics` (Prometheus exposition from
//! the latest frame), `/report.json`, `/series.json` (the ring as
//! sparkline columns), and `/healthz` (sampler liveness + drop
//! counts); without it, the terminal shows `top`-style interval diffs
//! derived from frame pairs. `fetch` is the matching dependency-free
//! HTTP client so CI needs no `curl`.
//!
//! `check` validates every file's schema (exit 2 on a malformed or
//! unknown-schema file), compares the current run against each
//! baseline — v3 files stage-by-stage and region-by-region, legacy
//! PR1/PR2 files via their single figure — and exits 1 if any median
//! stage latency regressed beyond `--lat-tol` percent or any peak
//! memory beyond `--mem-tol` percent (noise floors: 50 µs, 1 MiB).
//! Metrics with no (nonzero) baseline but real current signal are
//! reported as **NEW** and exit 3 — distinct from both "ok" (0) and
//! "regressed" (1) so CI can choose its policy; `--allow-new`
//! downgrades them to informational. With `--json`, each regressed
//! metric additionally carries an `attribution` field naming the top
//! same-workload stage deltas between the two documents.
//!
//! `diff` normalizes two run documents — `--profile-out` profiles,
//! v3/v4 observatory files, or legacy single-figure baselines — and
//! attributes their wall-time delta to ranked per-stage contributors
//! (until ≥ 90% is explained) annotated with decision flips
//! (serial↔parallel dispatch, plan-cache hit rates, Spa↔Hash
//! accumulator selection, delta-apply↔rebuild fallback).
//!
//! `history` ingests every committed `BENCH_pr*.json` lineage shape —
//! legacy PR1/PR2, v3/v4 observatory, the parbench matrix (1-thread
//! cells) — and prints a metric×file trend table with noise-floored
//! slope flags.

use aarray_harness::chrome_trace;
use aarray_harness::compare::{compare, CheckConfig};
use aarray_harness::httpd::{http_get, telemetry_handler, Httpd};
use aarray_harness::json::parse;
use aarray_harness::schema::{classify, BenchKind};
use aarray_harness::workloads::{
    bench_json, measure_journal_note, run_streaming, run_workload, Figure,
};
use aarray_obs::{journal, ObsReport};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        Some("parbench") => cmd_parbench(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("ops") => cmd_ops(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("fetch") => cmd_fetch(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("history") => cmd_history(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("--check") => cmd_check(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{}", USAGE);
            ExitCode::SUCCESS
        }
        other => {
            eprintln!(
                "obsctl: expected a subcommand, got {:?}\n{}",
                other.unwrap_or("<none>"),
                USAGE
            );
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  obsctl run    [--out BENCH_pr3.json] [--scales 2000,8000,20000] [--reps 5]
                [--prometheus <path>]
  obsctl stream [--out BENCH_pr4.json] [--scales 2000,8000,20000] [--reps 5]
  obsctl parbench [--out BENCH_pr6.json] [--scales 2000,8000,20000] [--reps 5]
                [--threads 1,2,4]
  obsctl trace  [fig3|fig5|stream] [--rows 2000] [--reps 1]
                [--out <workload>.trace.json] [--expect-parallel]
  obsctl ops    [fig3|fig5|stream] [--rows 2000] [--reps 3] [--slowest 5]
                [--trace-out <workload>.optrace.json]
  obsctl top    [fig3|fig5|stream] [--rows 4000] [--reps 20]
                [--interval-ms 200]
  obsctl watch  [fig3|fig5|stream] [--rows 4000] [--reps 20]
                [--interval-ms <AARRAY_OBS_SAMPLE_MS>] [--listen 127.0.0.1:PORT]
                [--port-file <path>]
  obsctl fetch  <http://host:port/path> [--out <path>] [--timeout-ms 5000]
  obsctl check  [--current BENCH_pr3.json] [--against <file>]...
                [--lat-tol 15] [--mem-tol 20] [--allow-new] [--json <path>]
                [--stages align,numeric,total]
  obsctl diff   <A.json> <B.json> [--json <path>]
  obsctl history <BENCH_*.json>... [--out <path>]
  obsctl --check
";

fn take_value(it: &mut std::slice::Iter<String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{} needs a value", flag))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut out_path = "BENCH_pr3.json".to_string();
    let mut prom_path: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut scales: Vec<usize> = vec![2_000, 8_000, 20_000];
    let mut reps = 5usize;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "--out" => take_value(&mut it, a).map(|v| out_path = v),
            "--prometheus" => take_value(&mut it, a).map(|v| prom_path = Some(v)),
            "--profile-out" => take_value(&mut it, a).map(|v| profile_path = Some(v)),
            "--reps" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| reps = n)
                    .map_err(|_| format!("--reps: bad count {:?}", v))
            }),
            "--scales" => take_value(&mut it, a).and_then(|v| {
                v.split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map(|v| scales = v)
                    .map_err(|_| format!("--scales: bad list {:?}", v))
            }),
            _ => Err(format!("unknown flag {:?}", a)),
        };
        if let Err(e) = r {
            eprintln!("obsctl run: {}\n{}", e, USAGE);
            return ExitCode::from(2);
        }
    }
    if scales.is_empty() || reps == 0 {
        eprintln!("obsctl run: need at least one scale and one rep");
        return ExitCode::from(2);
    }

    let hist_on = aarray_obs::histograms_enabled();
    if !hist_on {
        eprintln!(
            "obsctl run: warning: {}=0 — latency/shape histograms will be empty in this capture",
            aarray_obs::HISTOGRAMS_ENV
        );
    }

    let before = ObsReport::capture();
    let ops_cursor = aarray_obs::oplog().cursor();
    let mut runs = Vec::new();
    for &rows in &scales {
        for figure in [Figure::Fig3, Figure::Fig5] {
            let run = run_workload(figure, rows, reps);
            println!(
                "{:>5}@{:<6} total {:>9.3} ms  wall {:>9.3} ms  product nnz {}",
                run.name,
                run.rows,
                run.stages.total_ns as f64 / 1e6,
                run.stages.wall_ns as f64 / 1e6,
                run.product_nnz
            );
            runs.push(run);
        }
    }
    let report = ObsReport::capture().since(&before);
    let note = measure_journal_note(
        &report,
        runs.iter().map(|r| r.stages.wall_ns * r.reps as u64).sum(),
    );

    let doc = bench_json(&runs, &report, reps, hist_on, Some(&note));
    // Self-check before writing: a run that emits an invalid file is a
    // bug here, not in the checker that trips over it later.
    match parse(&doc)
        .map_err(|e| e.to_string())
        .and_then(|v| classify(&v).map(|_| ()))
    {
        Ok(()) => {}
        Err(e) => {
            eprintln!(
                "obsctl run: internal error: emitted document fails validation: {}",
                e
            );
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("obsctl run: cannot write {:?}: {}", out_path, e);
        return ExitCode::from(2);
    }
    println!("observatory file written to {}", out_path);

    if let Some(p) = prom_path {
        if let Err(e) = std::fs::write(&p, report.to_prometheus()) {
            eprintln!("obsctl run: cannot write {:?}: {}", p, e);
            return ExitCode::from(2);
        }
        println!("prometheus metrics written to {}", p);
    }
    if let Some(p) = profile_path {
        if let Err(code) = write_profile("run", &p, &runs, &report, ops_cursor) {
            return code;
        }
    }
    ExitCode::SUCCESS
}

/// Emit a `--profile-out` document covering the op-ledger window that
/// opened at `ops_cursor`; shared by `run` and `stream`.
fn write_profile(
    cmd: &str,
    path: &str,
    runs: &[aarray_harness::workloads::WorkloadRun],
    report: &ObsReport,
    ops_cursor: u64,
) -> Result<(), ExitCode> {
    let totals = aarray_obs::oplog().snapshot().stage_totals(ops_cursor);
    let doc = aarray_harness::profile::profile_json(runs, report, &totals);
    if let Err(e) = parse(&doc) {
        eprintln!(
            "obsctl {}: internal error: emitted profile is not valid JSON: {}",
            cmd, e
        );
        return Err(ExitCode::from(2));
    }
    if let Err(e) = std::fs::write(path, &doc) {
        eprintln!("obsctl {}: cannot write {:?}: {}", cmd, path, e);
        return Err(ExitCode::from(2));
    }
    println!("profile written to {}", path);
    Ok(())
}

fn cmd_stream(args: &[String]) -> ExitCode {
    let mut out_path = "BENCH_pr4.json".to_string();
    let mut profile_path: Option<String> = None;
    let mut scales: Vec<usize> = vec![2_000, 8_000, 20_000];
    let mut reps = 5usize;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "--out" => take_value(&mut it, a).map(|v| out_path = v),
            "--profile-out" => take_value(&mut it, a).map(|v| profile_path = Some(v)),
            "--reps" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| reps = n)
                    .map_err(|_| format!("--reps: bad count {:?}", v))
            }),
            "--scales" => take_value(&mut it, a).and_then(|v| {
                v.split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map(|v| scales = v)
                    .map_err(|_| format!("--scales: bad list {:?}", v))
            }),
            _ => Err(format!("unknown flag {:?}", a)),
        };
        if let Err(e) = r {
            eprintln!("obsctl stream: {}\n{}", e, USAGE);
            return ExitCode::from(2);
        }
    }
    if scales.is_empty() || reps == 0 {
        eprintln!("obsctl stream: need at least one scale and one rep");
        return ExitCode::from(2);
    }
    let hist_on = aarray_obs::histograms_enabled();
    if !hist_on {
        eprintln!(
            "obsctl stream: warning: {}=0 — latency/shape histograms will be empty in this capture",
            aarray_obs::HISTOGRAMS_ENV
        );
    }

    let before = ObsReport::capture();
    let ops_cursor = aarray_obs::oplog().cursor();
    let mut runs = Vec::new();
    for &rows in &scales {
        let (incr, rebuild) = run_streaming(rows, reps);
        let ratio = incr.stages.total_ns as f64 / rebuild.stages.total_ns.max(1) as f64;
        println!(
            "stream@{:<6} incremental {:>9.3} ms  rebuild {:>9.3} ms  ({:.0}% of rebuild)",
            rows,
            incr.stages.total_ns as f64 / 1e6,
            rebuild.stages.total_ns as f64 / 1e6,
            ratio * 100.0
        );
        runs.push(incr);
        runs.push(rebuild);
    }
    let report = ObsReport::capture().since(&before);
    let note = measure_journal_note(
        &report,
        runs.iter().map(|r| r.stages.wall_ns * r.reps as u64).sum(),
    );
    println!(
        "journal: {} event(s), {} dropped, {:.1} ns/record, est overhead {:.3}%",
        note.recorded, note.dropped, note.ns_per_record, note.est_overhead_pct
    );

    let doc = bench_json(&runs, &report, reps, hist_on, Some(&note));
    match parse(&doc)
        .map_err(|e| e.to_string())
        .and_then(|v| classify(&v).map(|_| ()))
    {
        Ok(()) => {}
        Err(e) => {
            eprintln!(
                "obsctl stream: internal error: emitted document fails validation: {}",
                e
            );
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("obsctl stream: cannot write {:?}: {}", out_path, e);
        return ExitCode::from(2);
    }
    println!("streaming observatory file written to {}", out_path);
    if let Some(p) = profile_path {
        if let Err(code) = write_profile("stream", &p, &runs, &report, ops_cursor) {
            return code;
        }
    }
    ExitCode::SUCCESS
}

/// Schema version stamped into `obsctl parbench` scaling files.
const PARBENCH_SCHEMA_VERSION: u64 = 1;

fn cmd_parbench(args: &[String]) -> ExitCode {
    let mut out_path = "BENCH_pr6.json".to_string();
    let mut scales: Vec<usize> = vec![2_000, 8_000, 20_000];
    let mut threads: Vec<usize> = vec![1, 2, 4];
    let mut reps = 5usize;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "--out" => take_value(&mut it, a).map(|v| out_path = v),
            "--reps" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| reps = n)
                    .map_err(|_| format!("--reps: bad count {:?}", v))
            }),
            "--scales" => take_value(&mut it, a).and_then(|v| {
                v.split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map(|v| scales = v)
                    .map_err(|_| format!("--scales: bad list {:?}", v))
            }),
            "--threads" => take_value(&mut it, a).and_then(|v| {
                v.split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map(|v| threads = v)
                    .map_err(|_| format!("--threads: bad list {:?}", v))
            }),
            _ => Err(format!("unknown flag {:?}", a)),
        };
        if let Err(e) = r {
            eprintln!("obsctl parbench: {}\n{}", e, USAGE);
            return ExitCode::from(2);
        }
    }
    if scales.is_empty() || threads.is_empty() || reps == 0 || threads.contains(&0) {
        eprintln!("obsctl parbench: need nonzero scales, threads, and reps");
        return ExitCode::from(2);
    }

    use aarray_core::{parallel_flops_threshold, set_parallel_flops_threshold};
    use aarray_obs::{snapshot, Counter};

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let saved_threshold = parallel_flops_threshold();

    struct Cell {
        name: &'static str,
        rows: usize,
        threads: usize,
        numeric_ns: u64,
        total_ns: u64,
        wall_ns: u64,
        tasks_local: u64,
        tasks_stolen: u64,
        tasks_inline: u64,
    }
    let mut cells: Vec<Cell> = Vec::new();

    println!(
        "parbench: host has {} hardware thread(s); sweeping pool sizes {:?}",
        host_threads, threads
    );
    for &rows in &scales {
        for &t in &threads {
            let pool = match rayon::ThreadPoolBuilder::new().num_threads(t).build() {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("obsctl parbench: cannot build {}-thread pool: {}", t, e);
                    set_parallel_flops_threshold(Some(saved_threshold));
                    return ExitCode::from(2);
                }
            };
            // Above one thread, drop the flops gate so every numeric
            // pass takes the row-parallel kernel: this sweep measures
            // the pool, not the dispatch heuristic. The 1-thread cells
            // keep the production threshold and are the baseline.
            set_parallel_flops_threshold(if t > 1 {
                Some(0)
            } else {
                Some(saved_threshold)
            });

            let mut push =
                |name: &'static str, n_ns: u64, t_ns: u64, w_ns: u64, d: &aarray_obs::Snapshot| {
                    cells.push(Cell {
                        name,
                        rows,
                        threads: t,
                        numeric_ns: n_ns,
                        total_ns: t_ns,
                        wall_ns: w_ns,
                        tasks_local: d.get(Counter::PoolTasksLocal),
                        tasks_stolen: d.get(Counter::PoolTasksStolen),
                        tasks_inline: d.get(Counter::PoolTasksInline),
                    });
                };
            for figure in [Figure::Fig3, Figure::Fig5] {
                let before = snapshot();
                let run = pool.install(|| run_workload(figure, rows, reps));
                let d = snapshot().since(&before);
                println!(
                    "{:>5}@{:<6} x{} thread(s)  numeric {:>9.3} ms  wall {:>9.3} ms  \
                     tasks {}/{}/{} local/stolen/inline",
                    run.name,
                    rows,
                    t,
                    run.stages.numeric_ns as f64 / 1e6,
                    run.stages.wall_ns as f64 / 1e6,
                    d.get(Counter::PoolTasksLocal),
                    d.get(Counter::PoolTasksStolen),
                    d.get(Counter::PoolTasksInline),
                );
                push(
                    run.name,
                    run.stages.numeric_ns,
                    run.stages.total_ns,
                    run.stages.wall_ns,
                    &d,
                );
            }
            let before = snapshot();
            let (incr, rebuild) = pool.install(|| run_streaming(rows, reps));
            let d = snapshot().since(&before);
            println!(
                "stream@{:<6} x{} thread(s)  refresh {:>9.3} ms  rebuild {:>9.3} ms  \
                 tasks {}/{}/{} local/stolen/inline",
                rows,
                t,
                incr.stages.numeric_ns as f64 / 1e6,
                rebuild.stages.numeric_ns as f64 / 1e6,
                d.get(Counter::PoolTasksLocal),
                d.get(Counter::PoolTasksStolen),
                d.get(Counter::PoolTasksInline),
            );
            push(
                incr.name,
                incr.stages.numeric_ns,
                incr.stages.total_ns,
                incr.stages.wall_ns,
                &d,
            );
            push(
                rebuild.name,
                rebuild.stages.numeric_ns,
                rebuild.stages.total_ns,
                rebuild.stages.wall_ns,
                &d,
            );
        }
    }
    set_parallel_flops_threshold(Some(saved_threshold));

    // Numeric-pass speedups against the 1-thread cell of the same
    // workload and scale (only emitted when that baseline was swept).
    let speedup = |c: &Cell| -> Option<f64> {
        cells
            .iter()
            .find(|b| b.threads == 1 && b.name == c.name && b.rows == c.rows)
            .map(|b| b.numeric_ns as f64 / c.numeric_ns.max(1) as f64)
    };
    if let Some(&tmax) = threads.iter().max() {
        if tmax > 1 && threads.contains(&1) {
            println!();
            for c in cells.iter().filter(|c| c.threads == tmax) {
                if let Some(s) = speedup(c) {
                    println!(
                        "  {:>14}@{:<6} numeric speedup at {} thread(s): {:.2}x",
                        c.name, c.rows, tmax, s
                    );
                }
            }
        }
    }

    let mut doc = String::with_capacity(4096);
    doc.push_str(&format!(
        "{{\n  \"schema_version\": {},\n  \"bench\": \"parbench\",\n  \"tool\": \"obsctl\",\n  \
         \"host_threads\": {},\n  \"reps\": {},\n  \"pool_sizes\": {:?},\n  \
         \"flops_gate_zeroed_above_one_thread\": true,\n  \"cells\": [",
        PARBENCH_SCHEMA_VERSION, host_threads, reps, threads
    ));
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        doc.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"rows\": {}, \"threads\": {}, \"numeric_ns\": {}, \
             \"total_ns\": {}, \"wall_ns\": {}, \"tasks_local\": {}, \"tasks_stolen\": {}, \
             \"tasks_inline\": {}",
            c.name,
            c.rows,
            c.threads,
            c.numeric_ns,
            c.total_ns,
            c.wall_ns,
            c.tasks_local,
            c.tasks_stolen,
            c.tasks_inline
        ));
        match speedup(c) {
            Some(s) if c.threads > 1 => doc.push_str(&format!(", \"numeric_speedup\": {:.4}}}", s)),
            _ => doc.push('}'),
        }
    }
    doc.push_str("\n  ]\n}\n");
    if let Err(e) = parse(&doc) {
        eprintln!(
            "obsctl parbench: internal error: emitted document is not valid JSON: {}",
            e
        );
        return ExitCode::from(2);
    }
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("obsctl parbench: cannot write {:?}: {}", out_path, e);
        return ExitCode::from(2);
    }
    println!("scaling file written to {}", out_path);
    ExitCode::SUCCESS
}

fn cmd_trace(args: &[String]) -> ExitCode {
    let mut workload = "fig3".to_string();
    let mut out_path: Option<String> = None;
    let mut rows = 2_000usize;
    let mut reps = 1usize;
    let mut expect_parallel = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "fig3" | "fig5" | "stream" => {
                workload = a.clone();
                Ok(())
            }
            "--expect-parallel" => {
                expect_parallel = true;
                Ok(())
            }
            "--out" => take_value(&mut it, a).map(|v| out_path = Some(v)),
            "--rows" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| rows = n)
                    .map_err(|_| format!("--rows: bad count {:?}", v))
            }),
            "--reps" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| reps = n)
                    .map_err(|_| format!("--reps: bad count {:?}", v))
            }),
            _ => Err(format!("unknown workload or flag {:?}", a)),
        };
        if let Err(e) = r {
            eprintln!("obsctl trace: {}\n{}", e, USAGE);
            return ExitCode::from(2);
        }
    }
    if rows == 0 || reps == 0 {
        eprintln!("obsctl trace: need at least one row and one rep");
        return ExitCode::from(2);
    }
    let out_path = out_path.unwrap_or_else(|| format!("{}.trace.json", workload));

    // Start the timeline clean: the journal survives from process start,
    // and the trace should cover exactly this workload. The counter
    // registry is left untouched — a drained journal must reproduce the
    // same decision totals the counters accumulate over the window.
    journal().reset();
    let before = ObsReport::capture();
    match workload.as_str() {
        "fig3" => {
            let run = run_workload(Figure::Fig3, rows, reps);
            println!(
                "fig3@{}: total {:.3} ms, product nnz {}",
                rows,
                run.stages.total_ns as f64 / 1e6,
                run.product_nnz
            );
        }
        "fig5" => {
            let run = run_workload(Figure::Fig5, rows, reps);
            println!(
                "fig5@{}: total {:.3} ms, product nnz {}",
                rows,
                run.stages.total_ns as f64 / 1e6,
                run.product_nnz
            );
        }
        _ => {
            let (incr, rebuild) = run_streaming(rows, reps);
            println!(
                "stream@{}: incremental {:.3} ms, rebuild {:.3} ms",
                rows,
                incr.stages.total_ns as f64 / 1e6,
                rebuild.stages.total_ns as f64 / 1e6
            );
        }
    }
    let report = ObsReport::capture().since(&before);

    let snap = journal().snapshot();
    if snap.dropped > 0 {
        eprintln!(
            "obsctl trace: WARNING: ring wraparound dropped {} of {} journal event(s) \
             (capacity {}) — the exported timeline is missing its earliest spans; \
             raise {} to capture the full run",
            snap.dropped,
            snap.recorded,
            snap.capacity,
            aarray_obs::JOURNAL_EVENTS_ENV
        );
    }
    // Self-check before writing, like run/stream: an export the
    // workspace's own validator rejects is a bug here.
    let stats = match chrome_trace::self_check(&snap) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "obsctl trace: internal error: export fails validation: {}",
                e
            );
            return ExitCode::from(2);
        }
    };
    if let Err(e) = std::fs::write(&out_path, snap.to_chrome_trace()) {
        eprintln!("obsctl trace: cannot write {:?}: {}", out_path, e);
        return ExitCode::from(2);
    }

    println!();
    print!("{}", chrome_trace::timeline_summary(&snap.events).render());
    println!();
    let tallies = chrome_trace::decision_tallies(&snap.events);
    print!("{}", tallies.render());

    // Journal explain events and the counter registry observe the same
    // decisions; diverging totals mean an emit site is missing a side.
    use aarray_obs::Counter;
    let c = &report.counters;
    let audit = [
        ("kernel.spa", tallies.kernel[0], c.get(Counter::KernelSpa)),
        ("kernel.hash", tallies.kernel[1], c.get(Counter::KernelHash)),
        (
            "dispatch.serial",
            tallies.dispatch_serial,
            c.get(Counter::DispatchSerial),
        ),
        (
            "dispatch.parallel",
            tallies.dispatch_parallel,
            c.get(Counter::DispatchParallel),
        ),
        (
            "plan.symbolic-hit",
            tallies.plan_hits,
            c.get(Counter::PlanSymbolicHit),
        ),
        (
            "plan.symbolic-miss",
            tallies.plan_misses,
            c.get(Counter::PlanSymbolicMiss),
        ),
    ];
    for (name, from_journal, from_counter) in audit {
        if from_counter != from_journal && snap.dropped == 0 {
            eprintln!(
                "obsctl trace: warning: journal tallies {} for {} but the counter says {}",
                from_journal, name, from_counter
            );
        }
    }

    println!();
    println!(
        "trace written to {} ({} event(s) on {} thread track(s), {} span pair(s); \
         {} recorded, {} dropped by wraparound)",
        out_path, stats.events, stats.threads, stats.begins, snap.recorded, snap.dropped
    );

    let ov = chrome_trace::numeric_overlap(&snap.events);
    println!(
        "numeric concurrency: {} leaf span(s) on {} track(s){}",
        ov.leaf_spans,
        ov.tracks,
        if ov.overlap {
            ", temporally overlapping"
        } else {
            ""
        }
    );
    if expect_parallel && !(ov.tracks >= 2 && ov.overlap) {
        eprintln!(
            "obsctl trace: --expect-parallel: no overlapping numeric work on distinct threads \
             (pool size {}; is AARRAY_NUM_THREADS >= 2 and AARRAY_PAR_FLOPS_THRESHOLD low \
             enough for this workload?)",
            rayon::current_num_threads()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Render the per-kind tail table shared by `ops` and `top`: one row
/// per op kind that completed at least once, with wall-time p50/p95/p99
/// from the ledger's log2 histograms.
fn ops_table(ops: &aarray_obs::OpsReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  {:<14} {:>7} {:>14} {:>14} {:>14}\n",
        "kind", "count", "p50_ns", "p95_ns", "p99_ns"
    ));
    let mut any = false;
    for (i, &(_, name)) in aarray_obs::OP_KIND_NAMES.iter().enumerate() {
        let t = &ops.tails[i];
        if t.count() == 0 {
            continue;
        }
        any = true;
        out.push_str(&format!(
            "  {:<14} {:>7} {:>14} {:>14} {:>14}\n",
            name,
            t.count(),
            t.quantile(0.5),
            t.quantile(0.95),
            t.quantile(0.99)
        ));
    }
    if !any {
        out.push_str("  (no operations recorded)\n");
    }
    out
}

fn run_named_workload(workload: &str, rows: usize, reps: usize) {
    match workload {
        "fig3" => {
            run_workload(Figure::Fig3, rows, reps);
        }
        "fig5" => {
            run_workload(Figure::Fig5, rows, reps);
        }
        _ => {
            run_streaming(rows, reps);
        }
    }
}

fn cmd_ops(args: &[String]) -> ExitCode {
    let mut workload = "fig3".to_string();
    let mut rows = 2_000usize;
    let mut reps = 3usize;
    let mut slowest_n = 5usize;
    let mut trace_out: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "fig3" | "fig5" | "stream" => {
                workload = a.clone();
                Ok(())
            }
            "--trace-out" => take_value(&mut it, a).map(|v| trace_out = Some(v)),
            "--rows" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| rows = n)
                    .map_err(|_| format!("--rows: bad count {:?}", v))
            }),
            "--reps" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| reps = n)
                    .map_err(|_| format!("--reps: bad count {:?}", v))
            }),
            "--slowest" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| slowest_n = n)
                    .map_err(|_| format!("--slowest: bad count {:?}", v))
            }),
            _ => Err(format!("unknown workload or flag {:?}", a)),
        };
        if let Err(e) = r {
            eprintln!("obsctl ops: {}\n{}", e, USAGE);
            return ExitCode::from(2);
        }
    }
    if rows == 0 || reps == 0 || slowest_n == 0 {
        eprintln!("obsctl ops: need nonzero rows, reps, and --slowest");
        return ExitCode::from(2);
    }
    let trace_out = trace_out.unwrap_or_else(|| format!("{}.optrace.json", workload));

    // Reset both rings so op seq windows and exemplars cover exactly
    // this run (cursor 0 below relies on this).
    journal().reset();
    aarray_obs::oplog().reset();
    let before = ObsReport::capture();
    run_named_workload(&workload, rows, reps);
    let report = ObsReport::capture().since(&before);

    if report.journal.dropped > 0 {
        eprintln!(
            "obsctl ops: WARNING: ring wraparound dropped {} journal event(s) (capacity {}) — \
             stage breakdowns of early ops may undercount; raise {}",
            report.journal.dropped,
            report.journal.capacity,
            aarray_obs::JOURNAL_EVENTS_ENV
        );
    }

    println!(
        "op ledger for {}@{} x{} rep(s): {} op(s) recorded, {} dropped (capacity {})",
        workload, rows, reps, report.ops.recorded, report.ops.dropped, report.ops.capacity
    );
    print!("{}", ops_table(&report.ops));

    let snap = aarray_obs::oplog().snapshot();
    let slow = snap.slowest(slowest_n, 0);
    if slow.is_empty() {
        eprintln!("obsctl ops: internal error: workload completed without recording any op");
        return ExitCode::from(2);
    }
    println!();
    println!("slowest {} op(s):", slow.len());
    for r in &slow {
        let sum = r.stage_sum_ns();
        let pct = if r.wall_ns == 0 {
            0.0
        } else {
            sum as f64 * 100.0 / r.wall_ns as f64
        };
        let label = snap.label_name(r.label);
        println!(
            "  op {:<5} {:<13} label {:<8} wall {:>10.3} ms  {}  lanes {}  flops {}  \
             out_nnz {}  fallback {}  scratch {} B",
            r.id,
            r.kind.name(),
            if label.is_empty() { "-" } else { label },
            r.wall_ns as f64 / 1e6,
            if r.parallel {
                format!("parallel x{}", r.pool_threads)
            } else {
                "serial".to_string()
            },
            r.lanes,
            r.flops,
            r.out_nnz,
            r.fallback_name(),
            r.scratch_peak
        );
        println!(
            "    stages: align {} + transpose {} + symbolic {} + numeric {} + delta-apply {} \
             = {} ns ({:.1}% of wall); journal window [{}, {})",
            r.align_ns,
            r.transpose_ns,
            r.symbolic_ns,
            r.numeric_ns,
            r.delta_ns,
            sum,
            pct,
            r.seq_start,
            r.seq_end
        );
    }

    // Cut the slowest op's journal window into its own Chrome trace so
    // the one bad operation can be inspected on a timeline.
    let top = slow[0];
    let cut = journal()
        .snapshot()
        .cut_op(top.id, top.seq_start, top.seq_end);
    let text = cut.to_chrome_trace_by_op();
    let valid = parse(&text)
        .map_err(|e| e.to_string())
        .and_then(|d| chrome_trace::validate(&d));
    if let Err(e) = valid {
        eprintln!(
            "obsctl ops: internal error: per-op export fails validation: {}",
            e
        );
        return ExitCode::from(2);
    }
    if let Err(e) = std::fs::write(&trace_out, &text) {
        eprintln!("obsctl ops: cannot write {:?}: {}", trace_out, e);
        return ExitCode::from(2);
    }
    println!();
    println!(
        "per-op trace of op {} ({} journal event(s)) written to {}",
        top.id,
        cut.events.len(),
        trace_out
    );
    ExitCode::SUCCESS
}

fn cmd_top(args: &[String]) -> ExitCode {
    let mut workload = "fig3".to_string();
    let mut rows = 4_000usize;
    let mut reps = 20usize;
    let mut interval_ms = 200u64;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "fig3" | "fig5" | "stream" => {
                workload = a.clone();
                Ok(())
            }
            "--rows" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| rows = n)
                    .map_err(|_| format!("--rows: bad count {:?}", v))
            }),
            "--reps" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| reps = n)
                    .map_err(|_| format!("--reps: bad count {:?}", v))
            }),
            "--interval-ms" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| interval_ms = n)
                    .map_err(|_| format!("--interval-ms: bad count {:?}", v))
            }),
            _ => Err(format!("unknown workload or flag {:?}", a)),
        };
        if let Err(e) = r {
            eprintln!("obsctl top: {}\n{}", e, USAGE);
            return ExitCode::from(2);
        }
    }
    if rows == 0 || reps == 0 || interval_ms == 0 {
        eprintln!("obsctl top: need nonzero rows, reps, and interval");
        return ExitCode::from(2);
    }

    println!(
        "obsctl top: sampling every {} ms while {}@{} x{} rep(s) runs",
        interval_ms, workload, rows, reps
    );
    let start = ObsReport::capture();
    let wl = workload.clone();
    let handle = std::thread::spawn(move || run_named_workload(&wl, rows, reps));

    let mut last = start.clone();
    let mut tick = 0u64;
    loop {
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        let now = ObsReport::capture();
        let d = now.since(&last);
        tick += 1;
        let mut parts = Vec::new();
        for (i, &(_, name)) in aarray_obs::OP_KIND_NAMES.iter().enumerate() {
            let t = &d.ops.tails[i];
            if t.count() > 0 {
                parts.push(format!(
                    "{} +{} p95 {} ns",
                    name,
                    t.count(),
                    t.quantile(0.95)
                ));
            }
        }
        println!(
            "tick {:>3}: ops +{}{}  journal +{} event(s){}",
            tick,
            d.ops.recorded,
            if parts.is_empty() {
                String::new()
            } else {
                format!("  [{}]", parts.join(", "))
            },
            d.journal.recorded,
            if d.ops.dropped > 0 || d.journal.dropped > 0 {
                format!(
                    "  ({} op / {} journal record(s) dropped)",
                    d.ops.dropped, d.journal.dropped
                )
            } else {
                String::new()
            }
        );
        last = now;
        if handle.is_finished() {
            break;
        }
    }
    if handle.join().is_err() {
        eprintln!("obsctl top: workload thread panicked");
        return ExitCode::from(2);
    }

    let total = ObsReport::capture().since(&start);
    println!();
    println!(
        "workload finished after {} tick(s): {} op(s) recorded, {} dropped",
        tick, total.ops.recorded, total.ops.dropped
    );
    print!("{}", ops_table(&total.ops));
    ExitCode::SUCCESS
}

fn cmd_watch(args: &[String]) -> ExitCode {
    let mut workload = "fig3".to_string();
    let mut rows = 4_000usize;
    let mut reps = 20usize;
    let mut interval_ms: Option<u64> = None;
    let mut listen: Option<String> = None;
    let mut port_file: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "fig3" | "fig5" | "stream" => {
                workload = a.clone();
                Ok(())
            }
            "--listen" => take_value(&mut it, a).map(|v| listen = Some(v)),
            "--port-file" => take_value(&mut it, a).map(|v| port_file = Some(v)),
            "--rows" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| rows = n)
                    .map_err(|_| format!("--rows: bad count {:?}", v))
            }),
            "--reps" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| reps = n)
                    .map_err(|_| format!("--reps: bad count {:?}", v))
            }),
            "--interval-ms" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| interval_ms = Some(n))
                    .map_err(|_| format!("--interval-ms: bad count {:?}", v))
            }),
            _ => Err(format!("unknown workload or flag {:?}", a)),
        };
        if let Err(e) = r {
            eprintln!("obsctl watch: {}\n{}", e, USAGE);
            return ExitCode::from(2);
        }
    }
    if rows == 0 || reps == 0 || interval_ms == Some(0) {
        eprintln!("obsctl watch: need nonzero rows, reps, and interval");
        return ExitCode::from(2);
    }
    if port_file.is_some() && listen.is_none() {
        eprintln!("obsctl watch: --port-file only makes sense with --listen");
        return ExitCode::from(2);
    }

    let start = ObsReport::capture();
    // The pre-sample hook bridges pending thread-pool tallies into the
    // shared registry so every frame sees pool.tasks-* mid-workload.
    let collector = aarray_obs::Collector::start_with(aarray_obs::CollectorConfig {
        interval_ms,
        capacity: None,
        pre_sample: Some(Box::new(aarray_core::publish_pool_stats)),
    });
    let ring = std::sync::Arc::clone(collector.ring());
    let tick_ms = collector.interval_ms();

    let server = match &listen {
        Some(addr) => {
            let handler = telemetry_handler(std::sync::Arc::clone(&ring), collector.probe());
            match Httpd::serve(addr, handler) {
                Ok(s) => {
                    println!(
                        "obsctl watch: serving /metrics /report.json /series.json /healthz \
                         on http://{}",
                        s.addr()
                    );
                    if let Some(pf) = &port_file {
                        // Write-then-rename so a poller never reads a
                        // truncated address.
                        let tmp = format!("{}.tmp", pf);
                        let w = std::fs::write(&tmp, format!("{}\n", s.addr()))
                            .and_then(|()| std::fs::rename(&tmp, pf));
                        if let Err(e) = w {
                            eprintln!("obsctl watch: cannot write {:?}: {}", pf, e);
                            return ExitCode::from(2);
                        }
                    }
                    Some(s)
                }
                Err(e) => {
                    eprintln!("obsctl watch: cannot bind {:?}: {}", addr, e);
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };

    println!(
        "obsctl watch: sampling every {} ms while {}@{} x{} rep(s) runs",
        tick_ms, workload, rows, reps
    );
    let wl = workload.clone();
    let handle = std::thread::spawn(move || run_named_workload(&wl, rows, reps));

    // Tick loop: with a server the frames speak for themselves; without
    // one, render top-style interval diffs derived from frame *pairs*
    // (never by mutating the live registries).
    let mut prev: Option<aarray_obs::Frame> = None;
    let mut tick = 0u64;
    loop {
        std::thread::sleep(std::time::Duration::from_millis(tick_ms));
        if server.is_none() {
            if let Some(cur) = ring.latest() {
                if prev.as_ref().is_none_or(|p| p.seq != cur.seq) {
                    tick += 1;
                    let d = match &prev {
                        Some(p) => cur.delta(p),
                        None => cur.report.since(&start),
                    };
                    let mut parts = Vec::new();
                    for (i, &(_, name)) in aarray_obs::OP_KIND_NAMES.iter().enumerate() {
                        let t = &d.ops.tails[i];
                        if t.count() > 0 {
                            parts.push(format!(
                                "{} +{} p95 {} ns",
                                name,
                                t.count(),
                                t.quantile(0.95)
                            ));
                        }
                    }
                    println!(
                        "frame {:>3}: ops +{}{}  journal +{} event(s)",
                        cur.seq,
                        d.ops.recorded,
                        if parts.is_empty() {
                            String::new()
                        } else {
                            format!("  [{}]", parts.join(", "))
                        },
                        d.journal.recorded
                    );
                    prev = Some(cur);
                }
            }
        }
        if handle.is_finished() {
            break;
        }
    }
    let panicked = handle.join().is_err();
    // One last frame so the series covers the workload's end.
    ring.sample_now();
    let stats = ring.stats();
    if let Some(s) = server {
        s.stop();
    }
    collector.stop();
    if panicked {
        eprintln!("obsctl watch: workload thread panicked");
        return ExitCode::from(2);
    }

    let total = ObsReport::capture().since(&start);
    println!();
    println!(
        "workload finished after {} rendered tick(s): {} frame(s) sampled ({} dropped, \
         capacity {}), {} op(s) recorded",
        tick, stats.recorded, stats.dropped, stats.capacity, total.ops.recorded
    );
    print!("{}", ops_table(&total.ops));
    ExitCode::SUCCESS
}

fn cmd_fetch(args: &[String]) -> ExitCode {
    let mut url: Option<String> = None;
    let mut out: Option<String> = None;
    let mut timeout_ms = 5_000u64;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "--out" => take_value(&mut it, a).map(|v| out = Some(v)),
            "--timeout-ms" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| timeout_ms = n)
                    .map_err(|_| format!("--timeout-ms: bad count {:?}", v))
            }),
            _ if !a.starts_with("--") && url.is_none() => {
                url = Some(a.clone());
                Ok(())
            }
            _ => Err(format!("unknown flag {:?}", a)),
        };
        if let Err(e) = r {
            eprintln!("obsctl fetch: {}\n{}", e, USAGE);
            return ExitCode::from(2);
        }
    }
    let url = match url {
        Some(u) => u,
        None => {
            eprintln!("obsctl fetch: need a URL\n{}", USAGE);
            return ExitCode::from(2);
        }
    };
    if timeout_ms == 0 {
        eprintln!("obsctl fetch: need a nonzero timeout");
        return ExitCode::from(2);
    }
    let rest = url.strip_prefix("http://").unwrap_or(&url);
    let (addr, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };

    match http_get(addr, path, std::time::Duration::from_millis(timeout_ms)) {
        Ok((status, body)) => {
            if let Some(p) = &out {
                if let Err(e) = std::fs::write(p, &body) {
                    eprintln!("obsctl fetch: cannot write {:?}: {}", p, e);
                    return ExitCode::from(2);
                }
            } else {
                print!("{}", body);
            }
            if status == 200 {
                ExitCode::SUCCESS
            } else {
                eprintln!("obsctl fetch: {} answered HTTP {}", url, status);
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("obsctl fetch: {}: {}", url, e);
            ExitCode::from(1)
        }
    }
}

fn load_classified(path: &str) -> Result<(aarray_harness::json::Value, BenchKind), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {}", path, e))?;
    let doc = parse(&text).map_err(|e| format!("{}: {}", path, e))?;
    let kind = classify(&doc).map_err(|e| format!("{}: {}", path, e))?;
    Ok((doc, kind))
}

fn cmd_check(args: &[String]) -> ExitCode {
    let mut current_path = "BENCH_pr3.json".to_string();
    let mut against: Vec<String> = Vec::new();
    let mut cfg = CheckConfig::default();
    let mut allow_new = false;
    let mut json_path: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "--current" => take_value(&mut it, a).map(|v| current_path = v),
            "--against" => take_value(&mut it, a).map(|v| against.push(v)),
            "--json" => take_value(&mut it, a).map(|v| json_path = Some(v)),
            "--allow-new" => {
                allow_new = true;
                Ok(())
            }
            "--lat-tol" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| cfg.lat_tol_pct = n)
                    .map_err(|_| format!("--lat-tol: bad percent {:?}", v))
            }),
            "--mem-tol" => take_value(&mut it, a).and_then(|v| {
                v.parse()
                    .map(|n| cfg.mem_tol_pct = n)
                    .map_err(|_| format!("--mem-tol: bad percent {:?}", v))
            }),
            "--stages" => take_value(&mut it, a)
                .and_then(|v| CheckConfig::parse_stage_mask(&v).map(|m| cfg.stage_mask = m)),
            _ => Err(format!("unknown flag {:?}", a)),
        };
        if let Err(e) = r {
            eprintln!("obsctl check: {}\n{}", e, USAGE);
            return ExitCode::from(2);
        }
    }
    if against.is_empty() {
        against = vec!["BENCH_pr1.json".into(), "BENCH_pr2.json".into()];
    }

    let (current, current_kind) = match load_classified(&current_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obsctl check: {}", e);
            return ExitCode::from(2);
        }
    };
    if current_kind != BenchKind::V3 {
        eprintln!(
            "obsctl check: {} is a legacy file; the current run must be a v3 observatory file",
            current_path
        );
        return ExitCode::from(2);
    }

    // A run that dropped journal events may have mis-attributed stage
    // time, so its numbers deserve suspicion even when they pass.
    let journal_dropped = current
        .get("report")
        .and_then(|r| r.get("journal"))
        .and_then(|j| j.get("dropped"))
        .and_then(|d| d.as_u64())
        .unwrap_or(0);
    if journal_dropped > 0 {
        eprintln!(
            "obsctl check: WARNING: current run dropped {} journal event(s) to ring \
             wraparound; its stage attribution may undercount (raise {})",
            journal_dropped,
            aarray_obs::JOURNAL_EVENTS_ENV
        );
    }

    let mut regressions = 0usize;
    let mut new_metrics = 0usize;
    // Current-run summary for per-regression attribution in the JSON
    // verdict (the current doc is already validated v3, so this
    // normalization cannot fail).
    let cur_summary = aarray_harness::diff::summarize(&current).ok();
    let mut comparisons: Vec<Comparison> = Vec::new();
    for path in &against {
        let (doc, kind) = match load_classified(path) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("obsctl check: {}", e);
                return ExitCode::from(2);
            }
        };
        let verdict = compare(&current, &doc, &kind, &cfg);
        println!("== {} vs {} ==", current_path, path);
        for f in &verdict.findings {
            if f.new_metric {
                println!(
                    "  NEW       {:<40} {:>14} -> {:>14.0}  (no baseline)",
                    f.metric, "-", f.current
                );
                continue;
            }
            println!(
                "  {} {:<40} {:>14.0} -> {:>14.0}  {:>+7.1}% (limit +{:.0}%)",
                if f.regressed {
                    "REGRESSED"
                } else {
                    "ok       "
                },
                f.metric,
                f.baseline,
                f.current,
                f.pct,
                f.limit_pct
            );
        }
        for s in &verdict.skipped {
            println!("  skipped   {}", s);
        }
        regressions += verdict.regressions().count();
        new_metrics += verdict.new_metrics().count();
        // Satellite attribution: for each regressed metric, the top
        // same-workload stage deltas between this baseline pair (empty
        // for legacy baselines, which carry no stage breakdown).
        let mut attribution: Vec<(String, Vec<aarray_harness::diff::Contributor>)> = Vec::new();
        if let (Some(cs), Ok(bs)) = (&cur_summary, aarray_harness::diff::summarize(&doc)) {
            for f in verdict.regressions() {
                attribution.push((
                    f.metric.clone(),
                    aarray_harness::diff::attribute_metric(&f.metric, &bs, cs, 3),
                ));
            }
        }
        comparisons.push(Comparison {
            against: path.clone(),
            verdict,
            attribution,
        });
    }

    let exit_code: u8 = if regressions > 0 {
        1
    } else if new_metrics > 0 && !allow_new {
        3
    } else {
        0
    };

    if let Some(p) = &json_path {
        let doc = check_json(
            &current_path,
            &comparisons,
            allow_new,
            journal_dropped,
            exit_code,
        );
        if let Err(e) = std::fs::write(p, doc) {
            eprintln!("obsctl check: cannot write {:?}: {}", p, e);
            return ExitCode::from(2);
        }
        println!("verdict written to {}", p);
    }

    if regressions > 0 {
        println!(
            "perf observatory: {} regression(s) beyond tolerance",
            regressions
        );
        ExitCode::FAILURE
    } else if new_metrics > 0 && !allow_new {
        println!(
            "perf observatory: no regressions, but {} new metric(s) without a baseline \
             (pass --allow-new to accept)",
            new_metrics
        );
        ExitCode::from(3)
    } else {
        if new_metrics > 0 {
            println!(
                "perf observatory: {} new metric(s) accepted via --allow-new",
                new_metrics
            );
        }
        println!("perf observatory: no regressions beyond tolerance");
        ExitCode::SUCCESS
    }
}

/// Schema version stamped into `obsctl check --json` verdict files.
const CHECK_SCHEMA_VERSION: u64 = 1;

/// One baseline's verdict plus the attribution of its regressions,
/// carried from the comparison loop into the JSON rendering.
struct Comparison {
    against: String,
    verdict: aarray_harness::compare::Verdict,
    /// `(regressed metric, top same-workload stage contributors)`.
    attribution: Vec<(String, Vec<aarray_harness::diff::Contributor>)>,
}

/// Render the machine-readable verdict document for `check --json`.
/// Per finding: `status` is `"ok"`, `"regressed"`, or `"new"`; numeric
/// fields mirror the human table. `journal_dropped` surfaces ring
/// wraparound in the current run (0 when its report recorded no
/// drops). `exit_code` records the process verdict (0 ok, 1 regressed,
/// 3 new metrics without `--allow-new`).
fn check_json(
    current_path: &str,
    comparisons: &[Comparison],
    allow_new: bool,
    journal_dropped: u64,
    exit_code: u8,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"schema_version\": {},\n  \"tool\": \"obsctl-check\",\n  \"current\": \"{}\",\n  \"allow_new\": {},\n  \"journal_dropped\": {},\n",
        CHECK_SCHEMA_VERSION, current_path, allow_new, journal_dropped
    ));
    out.push_str("  \"comparisons\": [");
    for (i, cmp) in comparisons.iter().enumerate() {
        let (path, verdict) = (&cmp.against, &cmp.verdict);
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"against\": \"{}\",\n     \"findings\": [",
            path
        ));
        for (j, f) in verdict.findings.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let status = if f.new_metric {
                "new"
            } else if f.regressed {
                "regressed"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "\n      {{\"metric\": \"{}\", \"status\": \"{}\", \"baseline\": {}, \
                 \"current\": {}, \"pct\": {:.2}, \"limit_pct\": {}}}",
                f.metric, status, f.baseline, f.current, f.pct, f.limit_pct
            ));
        }
        out.push_str("\n     ],\n     \"skipped\": [");
        for (j, s) in verdict.skipped.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", s.replace('"', "'")));
        }
        out.push_str("],\n     \"attribution\": {");
        for (j, (metric, contributors)) in cmp.attribution.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n      \"{}\": [", metric));
            for (k, c) in contributors.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"metric\": \"{}\", \"delta_ns\": {}, \"share_pct\": {:.2}}}",
                    c.metric, c.delta_ns, c.share_pct
                ));
            }
            out.push(']');
        }
        if !cmp.attribution.is_empty() {
            out.push_str("\n     ");
        }
        out.push_str(&format!(
            "}},\n     \"regressions\": {}, \"new_metrics\": {}}}",
            verdict.regressions().count(),
            verdict.new_metrics().count()
        ));
    }
    out.push_str(&format!("\n  ],\n  \"exit_code\": {}\n}}\n", exit_code));
    out
}

fn load_doc(path: &str) -> Result<aarray_harness::json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {}", path, e))?;
    parse(&text).map_err(|e| format!("{}: {}", path, e))
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "--json" => take_value(&mut it, a).map(|v| json_path = Some(v)),
            _ if a.starts_with('-') => Err(format!("unknown flag {:?}", a)),
            _ => {
                files.push(a.clone());
                Ok(())
            }
        };
        if let Err(e) = r {
            eprintln!("obsctl diff: {}\n{}", e, USAGE);
            return ExitCode::from(2);
        }
    }
    if files.len() != 2 {
        eprintln!(
            "obsctl diff: need exactly two run documents (profile or bench files), got {}\n{}",
            files.len(),
            USAGE
        );
        return ExitCode::from(2);
    }

    let mut summaries = Vec::new();
    for path in &files {
        let summary = load_doc(path).and_then(|doc| {
            aarray_harness::diff::summarize(&doc).map_err(|e| format!("{}: {}", path, e))
        });
        match summary {
            Ok(s) => summaries.push(s),
            Err(e) => {
                eprintln!("obsctl diff: {}", e);
                return ExitCode::from(2);
            }
        }
    }

    let report = aarray_harness::diff::diff(&summaries[0], &summaries[1]);
    print!(
        "{}",
        aarray_harness::diff::render_text(&files[0], &files[1], &report)
    );
    if let Some(p) = json_path {
        let doc = aarray_harness::diff::render_json(&files[0], &files[1], &report);
        if let Err(e) = parse(&doc) {
            eprintln!(
                "obsctl diff: internal error: emitted verdict is not valid JSON: {}",
                e
            );
            return ExitCode::from(2);
        }
        if let Err(e) = std::fs::write(&p, &doc) {
            eprintln!("obsctl diff: cannot write {:?}: {}", p, e);
            return ExitCode::from(2);
        }
        println!("diff verdict written to {}", p);
    }
    ExitCode::SUCCESS
}

fn cmd_history(args: &[String]) -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "--out" => take_value(&mut it, a).map(|v| out_path = Some(v)),
            _ if a.starts_with('-') => Err(format!("unknown flag {:?}", a)),
            _ => {
                files.push(a.clone());
                Ok(())
            }
        };
        if let Err(e) = r {
            eprintln!("obsctl history: {}\n{}", e, USAGE);
            return ExitCode::from(2);
        }
    }
    if files.is_empty() {
        eprintln!("obsctl history: need at least one baseline file\n{}", USAGE);
        return ExitCode::from(2);
    }

    let mut entries = Vec::new();
    for path in &files {
        let label = path.rsplit('/').next().unwrap_or(path).to_string();
        let entry = load_doc(path).and_then(|doc| aarray_harness::history::ingest(&label, &doc));
        match entry {
            Ok(e) => entries.push(e),
            Err(e) => {
                eprintln!("obsctl history: {}", e);
                return ExitCode::from(2);
            }
        }
    }

    let cfg = CheckConfig::default();
    let rows = aarray_harness::history::trends(&entries, &cfg);
    print!("{}", aarray_harness::history::render_text(&entries, &rows));
    if let Some(p) = out_path {
        let doc = aarray_harness::history::render_json(&entries, &rows);
        if let Err(e) = parse(&doc) {
            eprintln!(
                "obsctl history: internal error: emitted trend table is not valid JSON: {}",
                e
            );
            return ExitCode::from(2);
        }
        if let Err(e) = std::fs::write(&p, &doc) {
            eprintln!("obsctl history: cannot write {:?}: {}", p, e);
            return ExitCode::from(2);
        }
        println!("trend table written to {}", p);
    }
    ExitCode::SUCCESS
}
