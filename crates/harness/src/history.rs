//! Baseline history: trend tables across every committed `BENCH_pr*.json`.
//!
//! `obsctl history <files…>` ingests the full lineage of committed
//! baselines — legacy PR1 (`fused_ms`) and PR2 (`workload_ms`)
//! single-figure files, v3/v4 observatory files, and the parbench
//! scaling matrix (which `classify` deliberately rejects as a check
//! baseline but whose 1-thread cells are honest serial medians) — and
//! normalizes each to `workload@rows/stage → ns` points. The output is
//! one metric×file trend table with a per-metric slope flag:
//!
//! * `↑` — last ≥ first × (1 + 15%): a sustained regression;
//! * `↓` — last ≤ first ÷ (1 + 15%): a sustained improvement;
//! * `·` — within the band: flat;
//! * `~` — every point below the 50 µs noise floor: unjudgeable.
//!
//! Thresholds reuse the `check` defaults so "history says ↑" and
//! "check would have failed" mean the same thing.

use crate::compare::CheckConfig;
use crate::json::Value;
use crate::schema::{classify, BenchKind, STAGE_KEYS};

/// Schema version stamped into `obsctl history --out` documents.
pub const HISTORY_SCHEMA_VERSION: u64 = 1;

/// One baseline file's normalized points.
#[derive(Clone, Debug)]
pub struct HistoryEntry {
    /// File label (basename of the path as given).
    pub label: String,
    /// Shape the file was recognized as.
    pub shape: &'static str,
    /// `workload@rows/stage → ns` points.
    pub points: Vec<(String, u64)>,
}

/// Trend verdict for one metric across the lineage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slope {
    /// Last point ≥ first × (1 + tolerance): sustained regression.
    Up,
    /// Last point ≤ first ÷ (1 + tolerance): sustained improvement.
    Down,
    /// Within the tolerance band.
    Flat,
    /// All points below the noise floor; slope is meaningless.
    Noise,
}

impl Slope {
    /// One-character table flag.
    pub fn flag(self) -> &'static str {
        match self {
            Slope::Up => "↑",
            Slope::Down => "↓",
            Slope::Flat => "·",
            Slope::Noise => "~",
        }
    }

    /// Stable machine name for the JSON rendering.
    pub fn name(self) -> &'static str {
        match self {
            Slope::Up => "up",
            Slope::Down => "down",
            Slope::Flat => "flat",
            Slope::Noise => "noise",
        }
    }
}

/// One row of the trend table.
#[derive(Clone, Debug)]
pub struct Trend {
    /// `workload@rows/stage`.
    pub metric: String,
    /// One optional ns value per ingested file, in file order.
    pub values: Vec<Option<u64>>,
    /// Slope over the first and last present values.
    pub slope: Slope,
}

/// Normalize one parsed baseline document.
///
/// Accepts every shape ever committed as `BENCH_pr*.json`; a document
/// no recognizer accepts is an error naming both rejections.
pub fn ingest(label: &str, doc: &Value) -> Result<HistoryEntry, String> {
    match classify(doc) {
        Ok(BenchKind::V3) => {
            let mut points = Vec::new();
            if let Some(ws) = doc.get("workloads").and_then(Value::as_arr) {
                for w in ws {
                    let (Some(name), Some(rows)) = (
                        w.get("name").and_then(Value::as_str),
                        w.get("rows").and_then(Value::as_u64),
                    ) else {
                        continue;
                    };
                    for stage in STAGE_KEYS {
                        if let Some(ns) = w
                            .path(&["stages", stage])
                            .and_then(|e| e.get("median_ns"))
                            .and_then(Value::as_u64)
                        {
                            points.push((format!("{}@{}/{}", name, rows, stage), ns));
                        }
                    }
                }
            }
            Ok(HistoryEntry {
                label: label.to_string(),
                shape: "observatory",
                points,
            })
        }
        Ok(BenchKind::LegacyFused { tracks, fused_ms }) => Ok(HistoryEntry {
            label: label.to_string(),
            shape: "legacy-fused",
            points: vec![(format!("fig3@{}/total", tracks), (fused_ms * 1e6) as u64)],
        }),
        Ok(BenchKind::LegacyOverhead {
            tracks,
            workload_ms,
        }) => Ok(HistoryEntry {
            label: label.to_string(),
            shape: "legacy-overhead",
            points: vec![(format!("fig3@{}/wall", tracks), (workload_ms * 1e6) as u64)],
        }),
        Err(classify_err) => {
            // The parbench matrix is rejected as a *check* baseline
            // (its cells are not observatory workloads) but its
            // 1-thread cells are honest serial medians worth trending.
            if doc.get("bench").and_then(Value::as_str) == Some("parbench")
                && doc.get("schema_version").and_then(Value::as_u64) == Some(1)
            {
                return ingest_parbench(label, doc);
            }
            Err(format!(
                "{}: not a recognized baseline ({})",
                label, classify_err
            ))
        }
    }
}

fn ingest_parbench(label: &str, doc: &Value) -> Result<HistoryEntry, String> {
    let cells = doc
        .get("cells")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{}: parbench file has no cells array", label))?;
    let mut points = Vec::new();
    for c in cells {
        if c.get("threads").and_then(Value::as_u64) != Some(1) {
            continue;
        }
        let (Some(name), Some(rows)) = (
            c.get("name").and_then(Value::as_str),
            c.get("rows").and_then(Value::as_u64),
        ) else {
            continue;
        };
        for key in ["numeric", "total", "wall"] {
            if let Some(ns) = c.get(&format!("{}_ns", key)).and_then(Value::as_u64) {
                points.push((format!("{}@{}/{}", name, rows, key), ns));
            }
        }
    }
    if points.is_empty() {
        return Err(format!("{}: parbench file has no 1-thread cells", label));
    }
    Ok(HistoryEntry {
        label: label.to_string(),
        shape: "parbench",
        points,
    })
}

/// Build the metric×file trend table from ingested entries (file order
/// is preserved — pass files oldest-first for meaningful slopes).
pub fn trends(entries: &[HistoryEntry], cfg: &CheckConfig) -> Vec<Trend> {
    let mut metrics: Vec<String> = Vec::new();
    for e in entries {
        for (m, _) in &e.points {
            if !metrics.contains(m) {
                metrics.push(m.clone());
            }
        }
    }
    metrics.sort();

    let tol = 1.0 + cfg.lat_tol_pct / 100.0;
    metrics
        .into_iter()
        .map(|metric| {
            let values: Vec<Option<u64>> = entries
                .iter()
                .map(|e| {
                    e.points
                        .iter()
                        .find(|(m, _)| *m == metric)
                        .map(|&(_, ns)| ns)
                })
                .collect();
            let present: Vec<u64> = values.iter().filter_map(|v| *v).collect();
            let slope = if present.iter().all(|&ns| ns < cfg.lat_floor_ns) {
                Slope::Noise
            } else if present.len() < 2 {
                Slope::Flat
            } else {
                let (first, last) = (present[0] as f64, *present.last().unwrap() as f64);
                if last >= first * tol {
                    Slope::Up
                } else if last <= first / tol {
                    Slope::Down
                } else {
                    Slope::Flat
                }
            };
            Trend {
                metric,
                values,
                slope,
            }
        })
        .collect()
}

fn fmt_cell(v: Option<u64>) -> String {
    match v {
        Some(ns) if ns >= 1_000_000 => format!("{:.2}ms", ns as f64 / 1e6),
        Some(ns) if ns >= 1_000 => format!("{:.0}µs", ns as f64 / 1e3),
        Some(ns) => format!("{}ns", ns),
        None => "—".to_string(),
    }
}

/// Render the human-facing trend table.
pub fn render_text(entries: &[HistoryEntry], rows: &[Trend]) -> String {
    let mut out = String::new();
    out.push_str(&format!("baseline history ({} files)\n", entries.len()));
    out.push_str(&format!("{:<30}", "metric"));
    for e in entries {
        out.push_str(&format!(" {:>12}", e.label));
    }
    out.push_str("  slope\n");
    for t in rows {
        out.push_str(&format!("{:<30}", t.metric));
        for v in &t.values {
            out.push_str(&format!(" {:>12}", fmt_cell(*v)));
        }
        out.push_str(&format!("  {}\n", t.slope.flag()));
    }
    let ups = rows.iter().filter(|t| t.slope == Slope::Up).count();
    let downs = rows.iter().filter(|t| t.slope == Slope::Down).count();
    out.push_str(&format!(
        "\n{} metrics: {} trending up, {} trending down\n",
        rows.len(),
        ups,
        downs
    ));
    out
}

/// Render the machine document (`obsctl history --out`).
pub fn render_json(entries: &[HistoryEntry], rows: &[Trend]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        "{{\n  \"schema_version\": {},\n  \"tool\": \"obsctl-history\",\n  \"files\": [",
        HISTORY_SCHEMA_VERSION
    ));
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"label\": \"{}\", \"shape\": \"{}\", \"points\": {}}}",
            e.label,
            e.shape,
            e.points.len()
        ));
    }
    out.push_str("\n  ],\n  \"trends\": [");
    for (i, t) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let vals: Vec<String> = t
            .values
            .iter()
            .map(|v| match v {
                Some(ns) => ns.to_string(),
                None => "null".to_string(),
            })
            .collect();
        out.push_str(&format!(
            "\n    {{\"metric\": \"{}\", \"values\": [{}], \"slope\": \"{}\"}}",
            t.metric,
            vals.join(", "),
            t.slope.name()
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn entry(label: &str, points: &[(&str, u64)]) -> HistoryEntry {
        HistoryEntry {
            label: label.to_string(),
            shape: "observatory",
            points: points.iter().map(|&(m, ns)| (m.to_string(), ns)).collect(),
        }
    }

    #[test]
    fn ingests_every_committed_shape() {
        let pr1 =
            parse(r#"{"bench":"fused_vs_sequential","workload":{"tracks":20000},"fused_ms":4.2}"#)
                .unwrap();
        let e = ingest("BENCH_pr1.json", &pr1).unwrap();
        assert_eq!(e.shape, "legacy-fused");
        assert_eq!(e.points, vec![("fig3@20000/total".to_string(), 4_200_000)]);

        let pr2 =
            parse(r#"{"bench":"obs_overhead","workload":{"tracks":20000},"workload_ms":3.9}"#)
                .unwrap();
        assert_eq!(
            ingest("BENCH_pr2.json", &pr2).unwrap().points,
            vec![("fig3@20000/wall".to_string(), 3_900_000)]
        );

        let pr6 = parse(
            r#"{"schema_version":1,"bench":"parbench","cells":[
              {"name":"fig3","rows":2000,"threads":1,"numeric_ns":300,"total_ns":400,"wall_ns":500,
               "tasks_local":0,"tasks_stolen":0},
              {"name":"fig3","rows":2000,"threads":4,"numeric_ns":100,"total_ns":200,"wall_ns":300,
               "tasks_local":9,"tasks_stolen":1}]}"#,
        )
        .unwrap();
        let e = ingest("BENCH_pr6.json", &pr6).unwrap();
        assert_eq!(e.shape, "parbench");
        // Only the 1-thread cells are trended.
        assert_eq!(e.points.len(), 3);
        assert!(e.points.contains(&("fig3@2000/wall".to_string(), 500)));

        let junk = parse(r#"{"bench":"mystery"}"#).unwrap();
        assert!(ingest("x.json", &junk).is_err());
    }

    #[test]
    fn slopes_flag_sustained_moves_and_noise() {
        let cfg = CheckConfig::default();
        let entries = [
            entry(
                "pr1",
                &[
                    ("a/total", 1_000_000),
                    ("b/wall", 100),
                    ("c/numeric", 2_000_000),
                ],
            ),
            entry("pr2", &[("a/total", 1_100_000), ("b/wall", 120)]),
            entry(
                "pr3",
                &[
                    ("a/total", 1_200_000),
                    ("b/wall", 90),
                    ("c/numeric", 1_500_000),
                ],
            ),
        ];
        let rows = trends(&entries, &cfg);
        let slope_of = |m: &str| rows.iter().find(|t| t.metric == m).unwrap().slope;
        // 1.0 ms → 1.2 ms is +20% > 15%: up.
        assert_eq!(slope_of("a/total"), Slope::Up);
        // Sub-floor throughout: noise, regardless of the ±20% wiggle.
        assert_eq!(slope_of("b/wall"), Slope::Noise);
        // 2.0 ms → 1.5 ms is −25%: down; the pr2 gap renders as None.
        assert_eq!(slope_of("c/numeric"), Slope::Down);
        let c = rows.iter().find(|t| t.metric == "c/numeric").unwrap();
        assert_eq!(c.values, vec![Some(2_000_000), None, Some(1_500_000)]);
    }

    #[test]
    fn renderings_are_complete_and_json_round_trips() {
        let cfg = CheckConfig::default();
        let entries = [
            entry("pr1", &[("a/total", 1_000_000)]),
            entry("pr2", &[("a/total", 2_000_000)]),
        ];
        let rows = trends(&entries, &cfg);
        let text = render_text(&entries, &rows);
        assert!(text.contains("a/total") && text.contains("↑"), "{}", text);
        assert!(text.contains("1 trending up"), "{}", text);

        let doc = parse(&render_json(&entries, &rows)).expect("history json must parse");
        assert_eq!(
            doc.get("schema_version").unwrap().as_u64(),
            Some(HISTORY_SCHEMA_VERSION)
        );
        assert_eq!(doc.get("tool").unwrap().as_str(), Some("obsctl-history"));
        let trends_arr = doc.get("trends").unwrap().as_arr().unwrap();
        assert_eq!(trends_arr[0].get("slope").unwrap().as_str(), Some("up"));
        let files = doc.get("files").unwrap().as_arr().unwrap();
        assert_eq!(files.len(), 2);
    }
}
