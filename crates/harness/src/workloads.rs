//! Canonical figure workloads at bench scale.
//!
//! `obsctl run` replays the paper's Figure 3 pipeline (six fused NN
//! adjacency lanes plus the tropical max.+ lane on its own plan) and
//! the Figure 5 variant (same shape over a re-weighted E1) against
//! [`aarray_bench::synthetic_e1_e2`] tables at several scales. Stage
//! timings come from each plan's [`StageReport`](aarray_core::StageReport)
//! rather than ad-hoc stopwatches, so the numbers in `BENCH_pr3.json`
//! are the same ones `repro --profile` prints.

use aarray_algebra::pairs::{MaxMin, MaxPlus, MaxTimes, MinMax, MinPlus, MinTimes, PlusTimes};
use aarray_algebra::values::nn::{nn, NN};
use aarray_algebra::values::tropical::{trop, Tropical};
use aarray_algebra::DynOpPair;
use aarray_bench::synthetic_e1_e2;
use aarray_core::incremental::{AdjacencyView, IncidenceBuilder};
use aarray_core::{adjacency_plan, AArray};
use std::time::Instant;

/// Which canonical figure a workload replays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Figure {
    /// Unit-weight adjacency construction (paper Figure 3).
    Fig3,
    /// Re-weighted E1 (paper Figures 4–5): every E1 value doubled
    /// before the traversal, exercising the weighted numeric path.
    Fig5,
}

impl Figure {
    /// The workload name recorded in bench files.
    pub fn name(self) -> &'static str {
        match self {
            Figure::Fig3 => "fig3",
            Figure::Fig5 => "fig5",
        }
    }
}

/// Median nanoseconds per stage across the reps of one workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageMedians {
    /// Key-alignment stage of the NN plan.
    pub align_ns: u64,
    /// Transpose construction (plan build) of the NN plan.
    pub transpose_ns: u64,
    /// Symbolic (pattern) pass of the NN plan.
    pub symbolic_ns: u64,
    /// Sum of numeric passes of the NN plan (the 6 fused lanes).
    pub numeric_ns: u64,
    /// NN-plan total (align + transpose + symbolic + numeric) — the
    /// figure comparable to legacy `fused_ms`.
    pub total_ns: u64,
    /// Mean wall time per rep for the whole workload (both plans),
    /// measured bench-style — one clock window around a loop of bare
    /// reps, no per-rep profile reads — so it is directly comparable
    /// to the legacy `workload_ms` figure of `obs_overhead`.
    pub wall_ns: u64,
}

/// One workload's measurements, ready for JSON emission.
#[derive(Clone, Debug)]
pub struct WorkloadRun {
    /// `fig3` or `fig5`.
    pub name: &'static str,
    /// Track count fed to the synthetic generator.
    pub rows: usize,
    /// Nonzeros in the (possibly re-weighted) E1 operand.
    pub e1_nnz: usize,
    /// Nonzeros in the E2 operand.
    pub e2_nnz: usize,
    /// Nonzeros of the +.× adjacency product.
    pub product_nnz: usize,
    /// Reps actually timed.
    pub reps: usize,
    /// Per-stage medians across reps.
    pub stages: StageMedians,
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    if xs.is_empty() {
        0
    } else {
        xs[xs.len() / 2]
    }
}

/// Run one figure workload at one scale, `reps` timed iterations after
/// one warmup. Each rep rebuilds both plans so plan construction
/// (transpose, symbolic) is measured, not amortised away.
pub fn run_workload(figure: Figure, rows: usize, reps: usize) -> WorkloadRun {
    // Every op the reps record carries this workload label in the
    // ledger, so `obsctl ops` can attribute tails per workload.
    let _label = aarray_obs::workload_label(figure.name());
    let (e1_raw, e2) = synthetic_e1_e2(rows, 8, 100, 7);
    let e1 = match figure {
        Figure::Fig3 => e1_raw,
        Figure::Fig5 => e1_raw.map_prune(&PlusTimes::<NN>::new(), |v| nn(v.get() * 2.0)),
    };
    let mp = MaxPlus::<Tropical>::new();
    let e1t = e1.map_prune(&mp, |v| trop(v.get()));
    let e2t = e2.map_prune(&mp, |v| trop(v.get()));

    let plus_times = PlusTimes::<NN>::new();
    let max_times = MaxTimes::<NN>::new();
    let min_times = MinTimes::<NN>::new();
    let min_plus = MinPlus::<NN>::new();
    let max_min = MaxMin::<NN>::new();
    let min_max = MinMax::<NN>::new();
    let pairs: [&dyn DynOpPair<NN>; 6] = [
        &plus_times,
        &max_times,
        &min_times,
        &min_plus,
        &max_min,
        &min_max,
    ];

    let rep_once = |record: Option<&mut Vec<StageMedians>>| -> usize {
        let plan = adjacency_plan(&e1, &e2);
        let outs = plan.execute_all(&pairs);
        let _trop = adjacency_plan(&e1t, &e2t).execute(&mp);
        if let Some(samples) = record {
            let profile = plan.profile();
            let numeric_ns: u64 = profile.numeric.iter().map(|p| p.ns).sum();
            samples.push(StageMedians {
                align_ns: profile.align_ns,
                transpose_ns: profile.transpose_ns,
                symbolic_ns: profile.symbolic_ns,
                numeric_ns,
                total_ns: profile.total_ns(),
                wall_ns: 0, // filled from the bench-style pass below
            });
        }
        outs[0].nnz()
    };

    rep_once(None); // warmup
    let reps = reps.max(1);

    // Pass 1: per-rep stage profiles → medians.
    let mut samples = Vec::with_capacity(reps);
    let mut product_nnz = 0;
    for _ in 0..reps {
        product_nnz = rep_once(Some(&mut samples));
    }

    // Pass 2: bench-shaped wall clock — the same loop the legacy
    // `obs_overhead`/`fused_vs_sequential` benches time, so the
    // `wall` stage compares cleanly against their committed figures.
    let start = Instant::now();
    for _ in 0..reps {
        rep_once(None);
    }
    let wall_ns = (start.elapsed().as_nanos() as u64) / reps as u64;

    let stages = StageMedians {
        align_ns: median(samples.iter().map(|s| s.align_ns).collect()),
        transpose_ns: median(samples.iter().map(|s| s.transpose_ns).collect()),
        symbolic_ns: median(samples.iter().map(|s| s.symbolic_ns).collect()),
        numeric_ns: median(samples.iter().map(|s| s.numeric_ns).collect()),
        total_ns: median(samples.iter().map(|s| s.total_ns).collect()),
        wall_ns,
    };

    WorkloadRun {
        name: figure.name(),
        rows,
        e1_nnz: e1.nnz(),
        e2_nnz: e2.nnz(),
        product_nnz,
        reps: reps.max(1),
        stages,
    }
}

/// One streaming-ingest measurement at one scale: the last 10% of the
/// synthetic edge rows arrive as an appended batch, and the same five
/// associative-`⊕` NN lanes (`max.×`, `min.×`, `min.+`, `max.min`,
/// `min.max`) are brought current twice — once incrementally
/// (`IncidenceBuilder::append_batch` + `AdjacencyView::refresh`, the
/// delta-SpGEMM path) and once by a full fused rebuild of the
/// cumulative incidence. Both are returned as workload entries
/// (`stream-incr`, `stream-rebuild`); the acceptance figure is the
/// ratio of their `total` medians.
///
/// Stage mapping for `stream-incr`: `align` = batch append (key-set
/// union growth) plus any alignment the refresh ops recorded;
/// `transpose`/`symbolic`/`numeric` come from the op ledger's
/// union-of-interval stage slots summed over the refresh's own ops
/// (delta-apply time folds into `numeric` — it is numeric work on the
/// delta product); `total` = the refresh stopwatch; `wall` = append +
/// refresh. For `stream-rebuild` the stages are the rebuild plan's own
/// [`StageReport`](aarray_core::StageReport) (`total` = its stage sum,
/// `wall` = the rebuild stopwatch), so `numeric`, `total`, and `wall`
/// are each independently measured rather than aliases of one number.
/// Every rep cross-checks that the incremental lanes are
/// **bit-identical** to the rebuilt ones — the latency comparison is
/// only meaningful because the results agree exactly.
pub fn run_streaming(rows: usize, reps: usize) -> (WorkloadRun, WorkloadRun) {
    let _label = aarray_obs::workload_label("stream");
    let pair = PlusTimes::<NN>::new();
    let (e1, e2) = synthetic_e1_e2(rows, 8, 100, 7);
    let n = e1.row_keys().len();
    let batch_rows = (n / 10).max(1);
    let cut_key = e1.row_keys().key(n - batch_rows).to_string();
    let split = |a: &AArray<NN>| -> (AArray<NN>, AArray<NN>) {
        let (mut base, mut batch) = (Vec::new(), Vec::new());
        for (r, c, v) in a.iter() {
            let t = (r.to_string(), c.to_string(), *v);
            if r < cut_key.as_str() {
                base.push(t);
            } else {
                batch.push(t);
            }
        }
        (
            AArray::from_triples(&pair, base),
            AArray::from_triples(&pair, batch),
        )
    };
    let (base_e1, batch_e1) = split(&e1);
    let (base_e2, batch_e2) = split(&e2);

    let max_times = MaxTimes::<NN>::new();
    let min_times = MinTimes::<NN>::new();
    let min_plus = MinPlus::<NN>::new();
    let max_min = MaxMin::<NN>::new();
    let min_max = MinMax::<NN>::new();
    let lanes: Vec<&dyn DynOpPair<NN>> =
        vec![&max_times, &min_times, &min_plus, &max_min, &min_max];

    let reps = reps.max(1);
    let mut incr_samples: Vec<StageMedians> = Vec::with_capacity(reps);
    let mut rebuild_samples: Vec<StageMedians> = Vec::with_capacity(reps);
    let mut product_nnz = 0usize;
    // Refresh ops carry this label (set by `workload_label` above), so
    // the ledger window can be filtered down to our own records even if
    // something else runs ops concurrently in the process.
    let stream_label = aarray_obs::intern_label("stream");

    for rep in 0..=reps {
        let warmup = rep == 0;
        let mut builder = IncidenceBuilder::new(base_e1.clone(), base_e2.clone())
            .expect("synthetic incidence blocks share edge rows");
        let mut view = AdjacencyView::new(&builder, lanes.clone());

        let t0 = Instant::now();
        builder
            .append_batch(batch_e1.clone(), batch_e2.clone())
            .expect("row-split batch has fresh, ordered edge keys");
        let append_ns = t0.elapsed().as_nanos() as u64;

        // The refresh's stage breakdown comes from the op ledger: every
        // op it records lands at a sequence past this cursor, with
        // union-of-interval stage slots derived from its journal spans.
        let ops_cursor = aarray_obs::oplog().cursor();
        let t1 = Instant::now();
        let report = view.refresh(&builder);
        let refresh_ns = t1.elapsed().as_nanos() as u64;
        assert_eq!(
            (report.incremental_lanes, report.rebuilt_lanes),
            (lanes.len(), 0),
            "all five streaming lanes are associative-⊕ and must take the delta path"
        );
        let snap = aarray_obs::oplog().snapshot();
        let (mut r_align, mut r_transpose, mut r_symbolic, mut r_numeric) =
            (0u64, 0u64, 0u64, 0u64);
        for r in snap.since(ops_cursor) {
            if r.label != stream_label {
                continue;
            }
            r_align += r.align_ns;
            r_transpose += r.transpose_ns;
            r_symbolic += r.symbolic_ns;
            // Delta-apply is the numeric work of the incremental path.
            r_numeric += r.numeric_ns + r.delta_ns;
        }

        let t2 = Instant::now();
        let plan = adjacency_plan(builder.eout(), builder.ein());
        let full = plan.execute_all(&lanes);
        let rebuild_ns = t2.elapsed().as_nanos() as u64;
        let rb = plan.profile();
        let rb_numeric: u64 = rb.numeric.iter().map(|p| p.ns).sum();

        for (i, lane) in full.iter().enumerate() {
            assert_eq!(
                view.lane(i),
                lane,
                "incremental lane {} must be bit-identical to the rebuild",
                i
            );
        }
        if warmup {
            continue;
        }
        product_nnz = full[0].nnz();
        incr_samples.push(StageMedians {
            align_ns: append_ns + r_align,
            transpose_ns: r_transpose,
            symbolic_ns: r_symbolic,
            numeric_ns: r_numeric,
            total_ns: refresh_ns,
            wall_ns: append_ns + refresh_ns,
        });
        rebuild_samples.push(StageMedians {
            align_ns: rb.align_ns,
            transpose_ns: rb.transpose_ns,
            symbolic_ns: rb.symbolic_ns,
            numeric_ns: rb_numeric,
            total_ns: rb.total_ns(),
            wall_ns: rebuild_ns,
        });
    }

    // Both maintenance strategies pay the same incidence accumulation
    // (`append_batch`), so the totals compare only the maintenance
    // work itself: delta apply (refresh) vs full rebuild. The shared
    // append cost is still visible in stream-incr's `align` and `wall`.
    let median_stages = |samples: &[StageMedians]| StageMedians {
        align_ns: median(samples.iter().map(|s| s.align_ns).collect()),
        transpose_ns: median(samples.iter().map(|s| s.transpose_ns).collect()),
        symbolic_ns: median(samples.iter().map(|s| s.symbolic_ns).collect()),
        numeric_ns: median(samples.iter().map(|s| s.numeric_ns).collect()),
        total_ns: median(samples.iter().map(|s| s.total_ns).collect()),
        wall_ns: median(samples.iter().map(|s| s.wall_ns).collect()),
    };

    let mk = |name: &'static str, stages: StageMedians| WorkloadRun {
        name,
        rows,
        e1_nnz: e1.nnz(),
        e2_nnz: e2.nnz(),
        product_nnz,
        reps,
        stages,
    };
    (
        mk("stream-incr", median_stages(&incr_samples)),
        mk("stream-rebuild", median_stages(&rebuild_samples)),
    )
}

/// The flight recorder's cost figure for one observatory run: how many
/// events the workloads journaled, what one record costs (measured
/// in-process right after the workloads), and the resulting estimated
/// overhead against the workloads' wall time. Recorded in the bench
/// file (`"journal"` key) so the ≤ 2% always-on budget has a committed
/// figure next to the numbers it protects.
#[derive(Clone, Copy, Debug)]
pub struct JournalNote {
    /// Journal records appended during the measured workloads.
    pub recorded: u64,
    /// Records overwritten by ring wraparound in the same window.
    pub dropped: u64,
    /// Measured nanoseconds per [`aarray_obs::Journal::record`] call.
    pub ns_per_record: f64,
    /// `recorded × ns_per_record` against the workloads' summed wall
    /// time, as a percentage.
    pub est_overhead_pct: f64,
}

/// Microbenchmark one journal record and convert the run's journal
/// delta into a [`JournalNote`]. `total_wall_ns` should be the summed
/// wall time of every measured rep.
pub fn measure_journal_note(report: &aarray_obs::ObsReport, total_wall_ns: u64) -> JournalNote {
    use aarray_obs::{EventKind, Journal};
    let scratch = Journal::with_capacity(1 << 14);
    let n = 100_000u64;
    let t0 = Instant::now();
    for i in 0..n {
        scratch.record(EventKind::RowShape, i, i);
    }
    let ns_per_record = t0.elapsed().as_nanos() as f64 / n as f64;
    let recorded = report.journal.recorded;
    JournalNote {
        recorded,
        dropped: report.journal.dropped,
        ns_per_record,
        est_overhead_pct: if total_wall_ns == 0 {
            0.0
        } else {
            recorded as f64 * ns_per_record / total_wall_ns as f64 * 100.0
        },
    }
}

/// Emit the schema-versioned observatory document for one `obsctl run`.
/// `report` should be the [`aarray_obs::ObsReport`] delta covering all
/// the runs (counters/histograms since the first warmup; memory peaks
/// are process-lifetime last-values). `journal_note`, when present, is
/// recorded as an informational `"journal"` block (v3 validators
/// ignore unknown top-level keys).
pub fn bench_json(
    runs: &[WorkloadRun],
    report: &aarray_obs::ObsReport,
    reps: usize,
    histograms_enabled: bool,
    journal_note: Option<&JournalNote>,
) -> String {
    let mut out = String::with_capacity(8192);
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"schema_version\": {},\n  \"bench\": \"perf-observatory\",\n  \"tool\": \"obsctl\",\n  \"reps\": {},\n  \"histograms_enabled\": {},\n",
        crate::schema::BENCH_SCHEMA_VERSION,
        reps,
        histograms_enabled
    ));
    out.push_str("  \"workloads\": [");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"rows\": {}, \"reps\": {}, \"e1_nnz\": {}, \"e2_nnz\": {}, \"product_nnz\": {},\n     \"stages\": {{",
            r.name, r.rows, r.reps, r.e1_nnz, r.e2_nnz, r.product_nnz
        ));
        for (j, (key, ns)) in [
            ("align", r.stages.align_ns),
            ("transpose", r.stages.transpose_ns),
            ("symbolic", r.stages.symbolic_ns),
            ("numeric", r.stages.numeric_ns),
            ("total", r.stages.total_ns),
            ("wall", r.stages.wall_ns),
        ]
        .iter()
        .enumerate()
        {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {{\"median_ns\": {}}}", key, ns));
        }
        out.push_str("}}");
    }
    out.push_str("\n  ],\n");

    if let Some(n) = journal_note {
        out.push_str(&format!(
            "  \"journal\": {{\"recorded\": {}, \"dropped\": {}, \"ns_per_record\": {:.2}, \
             \"est_overhead_pct\": {:.4}}},\n",
            n.recorded, n.dropped, n.ns_per_record, n.est_overhead_pct
        ));
    }

    // Embed the ObsReport verbatim, re-indented two spaces.
    out.push_str("  \"report\": ");
    let report_json = report.to_json();
    for (i, line) in report_json.trim_end().lines().enumerate() {
        if i > 0 {
            out.push_str("\n  ");
        }
        out.push_str(line);
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::schema::{classify, BenchKind};

    #[test]
    fn tiny_run_emits_schema_valid_document() {
        let runs = [
            run_workload(Figure::Fig3, 300, 2),
            run_workload(Figure::Fig5, 300, 2),
        ];
        assert!(runs[0].product_nnz > 0);
        assert!(runs[0].e1_nnz > 0 && runs[0].e2_nnz > 0);
        // Stage medians are live (numeric covers 6 lanes of real work).
        assert!(runs[0].stages.numeric_ns > 0);
        assert!(runs[0].stages.wall_ns >= runs[0].stages.total_ns);

        let report = aarray_obs::ObsReport::capture();
        let note = measure_journal_note(&report, runs.iter().map(|r| r.stages.wall_ns).sum());
        assert!(note.ns_per_record > 0.0);
        let doc = bench_json(
            &runs,
            &report,
            2,
            aarray_obs::histograms_enabled(),
            Some(&note),
        );
        let parsed = parse(&doc).expect("bench_json must emit valid JSON");
        let jn = parsed
            .get("journal")
            .expect("journal note must be embedded");
        assert_eq!(jn.get("recorded").unwrap().as_u64(), Some(note.recorded));
        assert_eq!(classify(&parsed).unwrap(), BenchKind::V3);
        // Both figures present with their stage tables.
        let wl = parsed.get("workloads").unwrap().as_arr().unwrap();
        assert_eq!(wl.len(), 2);
        assert_eq!(wl[0].get("name").unwrap().as_str(), Some("fig3"));
        assert_eq!(wl[1].get("name").unwrap().as_str(), Some("fig5"));
    }

    #[test]
    fn streaming_run_is_schema_valid_and_cross_checked() {
        // run_streaming itself asserts per-rep bit-identity between the
        // incremental and rebuilt lanes; here we check the emitted shape.
        let (incr, rebuild) = run_streaming(300, 2);
        assert_eq!(incr.name, "stream-incr");
        assert_eq!(rebuild.name, "stream-rebuild");
        assert_eq!(incr.product_nnz, rebuild.product_nnz);
        assert!(incr.product_nnz > 0);
        assert!(incr.stages.numeric_ns > 0 && rebuild.stages.numeric_ns > 0);
        assert!(incr.stages.total_ns >= incr.stages.numeric_ns);

        let report = aarray_obs::ObsReport::capture();
        let doc = bench_json(
            &[incr, rebuild],
            &report,
            2,
            aarray_obs::histograms_enabled(),
            None,
        );
        let parsed = parse(&doc).expect("valid JSON");
        assert_eq!(classify(&parsed).unwrap(), BenchKind::V3);
    }

    #[test]
    fn fig5_reweighting_changes_values_not_pattern() {
        let a = run_workload(Figure::Fig3, 200, 1);
        let b = run_workload(Figure::Fig5, 200, 1);
        // Doubling strictly positive weights prunes nothing.
        assert_eq!(a.e1_nnz, b.e1_nnz);
        assert_eq!(a.product_nnz, b.product_nnz);
    }
}
