//! Chrome-trace validation and flight-recorder summaries.
//!
//! `obsctl trace` exports the journal as Chrome Trace Event Format
//! JSON ([`aarray_obs::JournalSnapshot::to_chrome_trace`]). Before
//! writing the file — and again in CI against the written artifact —
//! the document is validated here with the same hand-rolled [`crate::json`]
//! parser the observatory uses: the shape Perfetto and
//! `chrome://tracing` require (`name`/`ph`/`ts`/`pid`/`tid` fields,
//! known phase letters, per-thread balanced `B`/`E` nesting) is
//! checked structurally, not by eyeballing a viewer.
//!
//! The module also renders the human summaries `obsctl trace` prints:
//! the per-stage timeline rollup and the decision audit table whose
//! tallies are, by construction, the same figures the counter registry
//! accumulates (asserted end-to-end by the `journal_audit` test in
//! `aarray-core`).

use crate::json::Value;
use aarray_obs::journal::{accumulator_name, fallback_reason, STAGE_NAMES};
use aarray_obs::{Event, EventKind, JournalSnapshot, Stage};
use std::collections::BTreeMap;

/// Figures extracted while validating a chrome-trace document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// `ph: "B"` span-begin records.
    pub begins: usize,
    /// `ph: "E"` span-end records.
    pub ends: usize,
    /// `ph: "i"` instant (explain) records.
    pub instants: usize,
    /// `ph: "M"` metadata records (thread names).
    pub meta: usize,
    /// Distinct `tid` tracks carrying events.
    pub threads: usize,
}

/// Validate one parsed chrome-trace document.
///
/// Requirements, per the Trace Event Format every Chrome-trace
/// consumer expects:
///
/// * top level is an object with a `traceEvents` array;
/// * every event is an object with a string `name`, a string `ph`
///   drawn from `B`/`E`/`X`/`i`/`M`, and integer `pid`/`tid`;
/// * every non-metadata event carries a numeric `ts`;
/// * within each `(pid, tid)` track, `B`/`E` records nest: every `E`
///   closes the most recent open `B` with the same name, and nothing
///   stays open. Tracks are keyed by the pid/tid *pair* because the
///   op-grouped export reuses tids across per-op pids — one OS thread
///   interleaving two ops is balanced per op-track, not per thread.
pub fn validate(doc: &Value) -> Result<TraceStats, String> {
    let events = doc
        .get("traceEvents")
        .ok_or("chrome trace: missing \"traceEvents\"")?
        .as_arr()
        .ok_or("chrome trace: \"traceEvents\" must be an array")?;

    let mut stats = TraceStats {
        events: events.len(),
        ..TraceStats::default()
    };
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut threads: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();

    for (i, e) in events.iter().enumerate() {
        let what = format!("traceEvents[{}]", i);
        if e.as_obj().is_none() {
            return Err(format!("{}: must be an object", what));
        }
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{}: missing string \"name\"", what))?;
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{}: missing string \"ph\"", what))?;
        let tid = e
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{}: missing integer \"tid\"", what))?;
        let pid = e
            .get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{}: missing integer \"pid\"", what))?;
        if ph != "M" {
            e.get("ts")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{}: missing numeric \"ts\"", what))?;
            threads.insert(tid);
        }
        match ph {
            "B" => {
                stats.begins += 1;
                stacks.entry((pid, tid)).or_default().push(name.to_string());
            }
            "E" => {
                stats.ends += 1;
                match stacks.entry((pid, tid)).or_default().pop() {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(format!(
                            "{}: \"E\" for {:?} closes open span {:?} on pid {} tid {}",
                            what, name, open, pid, tid
                        ));
                    }
                    None => {
                        return Err(format!(
                            "{}: \"E\" for {:?} with no open span on pid {} tid {}",
                            what, name, pid, tid
                        ));
                    }
                }
            }
            "X" => {}
            "i" => stats.instants += 1,
            "M" => stats.meta += 1,
            other => {
                return Err(format!("{}: unknown phase {:?}", what, other));
            }
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "chrome trace: span {:?} on pid {} tid {} is never closed",
                open, pid, tid
            ));
        }
    }
    stats.threads = threads.len();
    Ok(stats)
}

/// Per-stage rollup of matched begin/end pairs in one journal slice:
/// how many spans each stage contributed and their summed duration.
#[derive(Clone, Debug, Default)]
pub struct TimelineSummary {
    /// `(stage label, span count, total nanoseconds)` in stage order,
    /// stages with no spans omitted.
    pub stages: Vec<(&'static str, u64, u64)>,
    /// Begin/end records that could not be paired (wraparound losses).
    pub unpaired: u64,
}

/// Pair up `StageBegin`/`StageEnd` records per thread (same LIFO
/// discipline as the chrome-trace exporter) and roll the matched spans
/// up per stage.
pub fn timeline_summary(events: &[Event]) -> TimelineSummary {
    let mut stacks: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    let mut count = [0u64; STAGE_NAMES.len()];
    let mut total_ns = [0u64; STAGE_NAMES.len()];
    let mut unpaired = 0u64;
    for e in events {
        match e.kind {
            EventKind::StageBegin => stacks.entry(e.tid).or_default().push(e),
            EventKind::StageEnd => match stacks.entry(e.tid).or_default().pop() {
                Some(b) if b.a == e.a => {
                    if let Some(stage) = Stage::from_u64(e.a) {
                        count[stage as usize] += 1;
                        total_ns[stage as usize] += e.ts_ns.saturating_sub(b.ts_ns);
                    }
                }
                Some(_) => unpaired += 2,
                None => unpaired += 1,
            },
            _ => {}
        }
    }
    unpaired += stacks.values().map(|s| s.len() as u64).sum::<u64>();
    let stages = STAGE_NAMES
        .iter()
        .enumerate()
        .filter(|&(i, _)| count[i] > 0)
        .map(|(i, &(_, label))| (label, count[i], total_ns[i]))
        .collect();
    TimelineSummary { stages, unpaired }
}

impl TimelineSummary {
    /// Render the rollup as the table `obsctl trace` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("stage timeline (matched spans):\n");
        if self.stages.is_empty() {
            out.push_str("  (no stage spans recorded)\n");
        }
        for &(label, count, ns) in &self.stages {
            out.push_str(&format!(
                "  {:<12} {:>6} span(s)  {:>12.3} ms total\n",
                label,
                count,
                ns as f64 / 1e6
            ));
        }
        if self.unpaired > 0 {
            out.push_str(&format!(
                "  ({} unpaired begin/end record(s) lost to wraparound)\n",
                self.unpaired
            ));
        }
        out
    }
}

/// Decision tallies extracted from one journal slice. Each field
/// corresponds one-to-one to a counter in the registry, so a capture
/// that covers the same window must agree exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecisionTallies {
    /// One-pair kernels by accumulator: `[spa, hash, esc]`.
    pub kernel: [u64; 3],
    /// Fused traversals by accumulator: `[spa, hash]`.
    pub fused: [u64; 2],
    /// Serial dispatch verdicts.
    pub dispatch_serial: u64,
    /// Parallel dispatch verdicts.
    pub dispatch_parallel: u64,
    /// Plan symbolic-cache hits.
    pub plan_hits: u64,
    /// Plan symbolic-cache misses.
    pub plan_misses: u64,
    /// Lanes brought current via delta apply (sum of `a` payloads).
    pub delta_lanes: u64,
    /// Batches folded by delta applies (sum of `b` payloads).
    pub delta_batches: u64,
    /// Lanes rebuilt by fallback, per reason: `[non-associative, barrier]`.
    pub fallback_lanes: [u64; 2],
}

/// Tally every explain event in one journal slice.
pub fn decision_tallies(events: &[Event]) -> DecisionTallies {
    let mut t = DecisionTallies::default();
    for e in events {
        match e.kind {
            EventKind::KernelChoice => {
                if let Some(k) = t.kernel.get_mut(e.a as usize) {
                    *k += 1;
                }
            }
            EventKind::FusedChoice => {
                if let Some(f) = t.fused.get_mut(e.a as usize) {
                    *f += 1;
                }
            }
            EventKind::DispatchSerial => t.dispatch_serial += 1,
            EventKind::DispatchParallel => t.dispatch_parallel += 1,
            EventKind::PlanCacheHit => t.plan_hits += 1,
            EventKind::PlanCacheMiss => t.plan_misses += 1,
            EventKind::DeltaApply => {
                t.delta_lanes += e.a;
                t.delta_batches += e.b;
            }
            EventKind::IncrementalFallback => {
                if let Some(f) = t.fallback_lanes.get_mut(e.b as usize) {
                    *f += e.a;
                }
            }
            EventKind::StageBegin | EventKind::StageEnd | EventKind::RowShape => {}
        }
    }
    t
}

impl DecisionTallies {
    /// Render the decision audit table `obsctl trace` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("decision audit (explain events):\n");
        for (code, &n) in self.kernel.iter().enumerate() {
            if n > 0 {
                out.push_str(&format!(
                    "  kernel accumulator {:<24} {:>8}\n",
                    accumulator_name(code as u64),
                    n
                ));
            }
        }
        for (code, &n) in self.fused.iter().enumerate() {
            if n > 0 {
                out.push_str(&format!(
                    "  fused accumulator {:<25} {:>8}\n",
                    accumulator_name(code as u64),
                    n
                ));
            }
        }
        out.push_str(&format!(
            "  dispatch serial / parallel          {:>8} / {}\n",
            self.dispatch_serial, self.dispatch_parallel
        ));
        out.push_str(&format!(
            "  plan cache hit / miss               {:>8} / {}\n",
            self.plan_hits, self.plan_misses
        ));
        if self.delta_lanes > 0 {
            out.push_str(&format!(
                "  delta-applied lanes ({} batch(es))   {:>8}\n",
                self.delta_batches, self.delta_lanes
            ));
        }
        for (code, &n) in self.fallback_lanes.iter().enumerate() {
            if n > 0 {
                out.push_str(&format!(
                    "  rebuilt lanes ({:<22}) {:>8}\n",
                    fallback_reason(code as u64),
                    n
                ));
            }
        }
        out
    }
}

/// Concurrency evidence extracted from the numeric spans of one
/// journal slice.
///
/// With a real worker pool behind the rayon stub, a parallel numeric
/// pass splits into per-chunk spans recorded from whichever thread ran
/// each chunk. Genuine multi-core execution therefore shows up as
/// **leaf** numeric spans (spans with no nested numeric span inside
/// them on the same thread — chunk work, not the enclosing plan-level
/// pass) on two or more threads whose `[start, end)` windows overlap
/// in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NumericOverlap {
    /// Distinct threads carrying at least one leaf numeric span.
    pub tracks: usize,
    /// Leaf numeric spans found.
    pub leaf_spans: usize,
    /// Whether some pair of leaf spans on different threads overlapped
    /// in time (strict: shared endpoints do not count).
    pub overlap: bool,
}

/// Scan one journal slice for temporally overlapping leaf numeric
/// spans on distinct threads (same per-thread LIFO pairing as the
/// exporter).
pub fn numeric_overlap(events: &[Event]) -> NumericOverlap {
    struct Open {
        start: u64,
        has_child: bool,
    }
    let mut stacks: BTreeMap<u64, Vec<Open>> = BTreeMap::new();
    let mut leaves: Vec<(u64, u64, u64)> = Vec::new(); // (tid, start, end)
    for e in events {
        match e.kind {
            EventKind::StageBegin if e.a == Stage::Numeric as u64 => {
                let stack = stacks.entry(e.tid).or_default();
                if let Some(top) = stack.last_mut() {
                    top.has_child = true;
                }
                stack.push(Open {
                    start: e.ts_ns,
                    has_child: false,
                });
            }
            EventKind::StageEnd if e.a == Stage::Numeric as u64 => {
                if let Some(open) = stacks.entry(e.tid).or_default().pop() {
                    if !open.has_child {
                        leaves.push((e.tid, open.start, e.ts_ns));
                    }
                }
            }
            _ => {}
        }
    }
    let mut tracks: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for &(tid, _, _) in &leaves {
        tracks.insert(tid);
    }
    let overlap = leaves.iter().enumerate().any(|(i, &(ta, sa, ea))| {
        leaves[i + 1..]
            .iter()
            .any(|&(tb, sb, eb)| ta != tb && sa < eb && sb < ea)
    });
    NumericOverlap {
        tracks: tracks.len(),
        leaf_spans: leaves.len(),
        overlap,
    }
}

/// Validate the chrome-trace export of a snapshot end to end: render,
/// reparse with [`crate::json::parse`], and structurally [`validate`].
pub fn self_check(snapshot: &JournalSnapshot) -> Result<TraceStats, String> {
    let text = snapshot.to_chrome_trace();
    let doc = crate::json::parse(&text).map_err(|e| format!("export is not valid JSON: {}", e))?;
    validate(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use aarray_obs::Journal;

    fn sample_journal() -> Journal {
        let j = Journal::with_capacity(256);
        j.begin(Stage::Align, 10);
        j.end(Stage::Align, 10);
        j.begin(Stage::Numeric, 99);
        j.record(EventKind::KernelChoice, 0, 0);
        j.record(EventKind::FusedChoice, 0, (6 << 1) | 1);
        j.record(EventKind::DispatchParallel, 200_000, 131_072);
        j.record(EventKind::DispatchSerial, 0, 131_072);
        j.record(EventKind::PlanCacheMiss, 42, 7);
        j.record(EventKind::PlanCacheHit, 42, 7);
        j.record(EventKind::DeltaApply, 5, 2);
        j.record(EventKind::IncrementalFallback, 1, 0);
        j.record(EventKind::IncrementalFallback, 2, 1);
        j.end(Stage::Numeric, 99);
        j
    }

    #[test]
    fn exported_trace_validates() {
        let j = sample_journal();
        let snap = j.snapshot();
        let stats = self_check(&snap).expect("export must validate");
        assert_eq!(stats.begins, 2);
        assert_eq!(stats.ends, 2);
        assert_eq!(stats.instants, 9);
        assert!(stats.meta >= 1);
        assert_eq!(stats.threads, 1);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for (doc, needle) in [
            (r#"{"foo": 1}"#, "missing \"traceEvents\""),
            (r#"{"traceEvents": 3}"#, "must be an array"),
            (
                r#"{"traceEvents": [{"ph": "B"}]}"#,
                "missing string \"name\"",
            ),
            (
                r#"{"traceEvents": [{"name":"x","ph":"Q","ts":1,"pid":1,"tid":1}]}"#,
                "unknown phase",
            ),
            (
                r#"{"traceEvents": [{"name":"x","ph":"B","pid":1,"tid":1}]}"#,
                "missing numeric \"ts\"",
            ),
            (
                r#"{"traceEvents": [{"name":"x","ph":"B","ts":1,"pid":1,"tid":1}]}"#,
                "never closed",
            ),
            (
                r#"{"traceEvents": [{"name":"x","ph":"E","ts":1,"pid":1,"tid":1}]}"#,
                "no open span",
            ),
            (
                r#"{"traceEvents": [
                    {"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
                    {"name":"b","ph":"E","ts":2,"pid":1,"tid":1}]}"#,
                "closes open span",
            ),
        ] {
            let err = validate(&parse(doc).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{:?} → {:?}", doc, err);
        }
    }

    #[test]
    fn validator_accepts_interleaved_threads() {
        // Spans that would be unbalanced on one track are fine on two.
        let doc = parse(
            r#"{"traceEvents": [
                {"name":"numeric","ph":"B","ts":1,"pid":1,"tid":1},
                {"name":"numeric","ph":"B","ts":2,"pid":1,"tid":2},
                {"name":"numeric","ph":"E","ts":3,"pid":1,"tid":1},
                {"name":"numeric","ph":"E","ts":4,"pid":1,"tid":2},
                {"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"t1"}}]}"#,
        )
        .unwrap();
        let stats = validate(&doc).unwrap();
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.meta, 1);
    }

    #[test]
    fn timeline_pairs_spans_per_stage() {
        let j = sample_journal();
        let snap = j.snapshot();
        let tl = timeline_summary(&snap.events);
        assert_eq!(tl.unpaired, 0);
        let labels: Vec<&str> = tl.stages.iter().map(|&(l, _, _)| l).collect();
        assert_eq!(labels, ["align", "numeric"]);
        assert!(tl.render().contains("align"));
    }

    fn ev(seq: u64, ts_ns: u64, tid: u64, kind: EventKind, a: u64) -> Event {
        Event {
            seq,
            ts_ns,
            tid,
            kind,
            a,
            b: 0,
            op: 0,
        }
    }

    #[test]
    fn numeric_overlap_requires_distinct_threads_in_time() {
        use EventKind::{StageBegin, StageEnd};
        let num = Stage::Numeric as u64;

        // One thread, nested plan-level + chunk span: the chunk is the
        // only leaf, and a single track can never overlap.
        let nested = [
            ev(0, 10, 1, StageBegin, num),
            ev(1, 20, 1, StageBegin, num),
            ev(2, 30, 1, StageEnd, num),
            ev(3, 40, 1, StageEnd, num),
        ];
        let ov = numeric_overlap(&nested);
        assert_eq!((ov.tracks, ov.leaf_spans, ov.overlap), (1, 1, false));

        // Two threads, interleaved in time: [10,30) on tid 1 overlaps
        // [20,40) on tid 2.
        let overlapping = [
            ev(0, 10, 1, StageBegin, num),
            ev(1, 20, 2, StageBegin, num),
            ev(2, 30, 1, StageEnd, num),
            ev(3, 40, 2, StageEnd, num),
        ];
        let ov = numeric_overlap(&overlapping);
        assert_eq!((ov.tracks, ov.leaf_spans, ov.overlap), (2, 2, true));

        // Two threads but strictly sequential (shared endpoint): no
        // temporal overlap.
        let sequential = [
            ev(0, 10, 1, StageBegin, num),
            ev(1, 20, 1, StageEnd, num),
            ev(2, 20, 2, StageBegin, num),
            ev(3, 30, 2, StageEnd, num),
        ];
        let ov = numeric_overlap(&sequential);
        assert_eq!((ov.tracks, ov.leaf_spans, ov.overlap), (2, 2, false));

        // Non-numeric stages never count.
        let align = [
            ev(0, 10, 1, StageBegin, Stage::Align as u64),
            ev(1, 20, 1, StageEnd, Stage::Align as u64),
        ];
        assert_eq!(numeric_overlap(&align), NumericOverlap::default());
    }

    fn evo(seq: u64, ts_ns: u64, tid: u64, kind: EventKind, a: u64, op: u64) -> Event {
        Event {
            seq,
            ts_ns,
            tid,
            kind,
            a,
            b: 0,
            op,
        }
    }

    fn snap_of(events: Vec<Event>) -> JournalSnapshot {
        JournalSnapshot {
            recorded: events.len() as u64,
            dropped: 0,
            capacity: 256,
            torn: 0,
            events,
        }
    }

    #[test]
    fn ring_wrap_truncated_span_still_exports_balanced_trace() {
        // A begin recorded long ago is overwritten by ring wraparound;
        // its end survives. The exporter must drop the orphan half
        // (counted in otherData) and still emit a validating document.
        let j = Journal::with_capacity(8);
        j.begin(Stage::Numeric, 7);
        for i in 0..9 {
            j.record(EventKind::RowShape, i, 1);
        }
        j.end(Stage::Numeric, 7);
        let snap = j.snapshot();
        assert!(snap.dropped > 0, "wraparound must have dropped events");
        let stats = self_check(&snap).expect("truncated export must validate");
        assert_eq!((stats.begins, stats.ends), (0, 0), "orphan E dropped");
        assert!(j
            .snapshot()
            .to_chrome_trace()
            .contains("\"truncated_spans\": 1"));
    }

    #[test]
    fn op_grouped_export_untangles_interleaved_ops_on_one_tid() {
        use EventKind::{StageBegin, StageEnd};
        let sym = Stage::Symbolic as u64;
        let num = Stage::Numeric as u64;
        // One OS thread interleaves two ops non-LIFO: op 1's symbolic
        // span closes while op 2's numeric span is still open.
        let snap = snap_of(vec![
            evo(0, 10, 5, StageBegin, sym, 1),
            evo(1, 20, 5, StageBegin, num, 2),
            evo(2, 30, 5, StageEnd, sym, 1),
            evo(3, 40, 5, StageEnd, num, 2),
        ]);

        // The flat export cannot pair across the interleave: all four
        // halves are truncated, but the document still validates.
        let flat = snap.to_chrome_trace();
        assert!(flat.contains("\"truncated_spans\": 4"), "{}", flat);
        let stats = validate(&parse(&flat).unwrap()).unwrap();
        assert_eq!((stats.begins, stats.ends), (0, 0));

        // The op-grouped export separates the ops onto pid 1 and pid 2
        // tracks where both spans pair cleanly.
        let by_op = snap.to_chrome_trace_by_op();
        assert!(by_op.contains("\"truncated_spans\": 0"), "{}", by_op);
        let stats = validate(&parse(&by_op).unwrap()).unwrap();
        assert_eq!((stats.begins, stats.ends), (2, 2));
        assert!(by_op.contains("\"name\": \"op-1\""));
        assert!(by_op.contains("\"name\": \"op-2\""));
    }

    #[test]
    fn empty_journal_exports_validate() {
        let snap = Journal::with_capacity(8).snapshot();
        assert!(snap.events.is_empty());
        for text in [snap.to_chrome_trace(), snap.to_chrome_trace_by_op()] {
            let stats = validate(&parse(&text).expect("empty export parses")).unwrap();
            assert_eq!(stats.events, 0);
            assert!(text.contains("\"truncated_spans\": 0"));
        }
    }

    #[test]
    fn tallies_fold_every_explain_kind() {
        let j = sample_journal();
        let snap = j.snapshot();
        let t = decision_tallies(&snap.events);
        assert_eq!(t.kernel, [1, 0, 0]);
        assert_eq!(t.fused, [1, 0]);
        assert_eq!((t.dispatch_serial, t.dispatch_parallel), (1, 1));
        assert_eq!((t.plan_hits, t.plan_misses), (1, 1));
        assert_eq!((t.delta_lanes, t.delta_batches), (5, 2));
        assert_eq!(t.fallback_lanes, [1, 2]);
        let table = t.render();
        assert!(table.contains("spa"));
        assert!(table.contains("non-associative"));
        assert!(table.contains("barrier"));
    }
}
