//! Bench-file schema recognition and validation.
//!
//! The observatory compares the current run against every committed
//! `BENCH_*.json` at the workspace root. Three shapes are recognised:
//!
//! * **versioned observatory files** (`BENCH_pr3.json` and later) —
//!   stamped `"schema_version": 3` or `4`, with per-workload stage
//!   medians and an embedded [`aarray_obs::ObsReport`] JSON object
//!   (v4 reports additionally carry the op-ledger `ops` section);
//! * **legacy PR1** (`fused_vs_sequential`) — a single `fused_ms`
//!   figure for the 6-lane fused traversal at bench scale;
//! * **legacy PR2** (`obs_overhead`) — a single `workload_ms` figure
//!   for the full seven-pair workload.
//!
//! Anything else — including a v3 file with missing sections or a
//! file carrying an unknown `schema_version` — is a hard validation
//! error; `obsctl check` exits with status 2 on it rather than
//! silently skipping a corrupt baseline.

use crate::json::Value;

/// The schema stamped into files `obsctl run` writes. Matches
/// [`aarray_obs::REPORT_SCHEMA_VERSION`] by construction (asserted in
/// tests) so one bump covers both layers.
pub const BENCH_SCHEMA_VERSION: u64 = 4;

/// The oldest versioned schema `obsctl check` still accepts as a
/// baseline. v3 files predate the op ledger (no `ops` section in the
/// embedded report) but their stage medians and regions are still
/// comparable, so committed v3 baselines keep working after the v4
/// bump.
pub const MIN_BENCH_SCHEMA_VERSION: u64 = 3;

/// The stage keys every v3 workload entry must carry medians for.
pub const STAGE_KEYS: [&str; 6] = ["align", "transpose", "symbolic", "numeric", "total", "wall"];

/// A successfully classified baseline file.
#[derive(Clone, Debug, PartialEq)]
pub enum BenchKind {
    /// v3 observatory file; compare stage-by-stage and region-by-region.
    V3,
    /// Legacy PR1 `fused_vs_sequential`: `fused_ms` maps to the NN
    /// plan `total` stage of the matching fig3 workload.
    LegacyFused {
        /// Track count of the legacy workload (matches `rows`).
        tracks: u64,
        /// Milliseconds per fused traversal.
        fused_ms: f64,
    },
    /// Legacy PR2 `obs_overhead`: `workload_ms` maps to the `wall`
    /// stage of the matching fig3 workload.
    LegacyOverhead {
        /// Track count of the legacy workload (matches `rows`).
        tracks: u64,
        /// Milliseconds per full seven-pair rep.
        workload_ms: f64,
    },
}

fn require<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a Value, String> {
    v.get(key)
        .ok_or_else(|| format!("{}: missing required field {:?}", what, key))
}

fn require_u64(v: &Value, key: &str, what: &str) -> Result<u64, String> {
    require(v, key, what)?
        .as_u64()
        .ok_or_else(|| format!("{}: field {:?} must be a non-negative integer", what, key))
}

fn require_finite(v: &Value, key: &str, what: &str) -> Result<f64, String> {
    require(v, key, what)?
        .as_f64()
        .ok_or_else(|| format!("{}: field {:?} must be a number", what, key))
}

/// Classify and validate one bench document. Returns the kind on
/// success; a diagnostic naming the offending field on failure.
pub fn classify(doc: &Value) -> Result<BenchKind, String> {
    if doc.as_obj().is_none() {
        return Err("bench file: top level must be a JSON object".into());
    }
    if let Some(sv) = doc.get("schema_version") {
        let sv = sv
            .as_u64()
            .ok_or("bench file: schema_version must be an integer")?;
        if !(MIN_BENCH_SCHEMA_VERSION..=BENCH_SCHEMA_VERSION).contains(&sv) {
            return Err(format!(
                "bench file: unsupported schema_version {} (this obsctl understands {}..={})",
                sv, MIN_BENCH_SCHEMA_VERSION, BENCH_SCHEMA_VERSION
            ));
        }
        validate_v3(doc)?;
        return Ok(BenchKind::V3);
    }
    // No schema_version: must be one of the two known legacy shapes.
    match require(doc, "bench", "legacy bench file")?.as_str() {
        Some("fused_vs_sequential") => {
            let w = require(doc, "workload", "legacy PR1 file")?;
            Ok(BenchKind::LegacyFused {
                tracks: require_u64(w, "tracks", "legacy PR1 workload")?,
                fused_ms: require_finite(doc, "fused_ms", "legacy PR1 file")?,
            })
        }
        Some("obs_overhead") => {
            let w = require(doc, "workload", "legacy PR2 file")?;
            Ok(BenchKind::LegacyOverhead {
                tracks: require_u64(w, "tracks", "legacy PR2 workload")?,
                workload_ms: require_finite(doc, "workload_ms", "legacy PR2 file")?,
            })
        }
        Some(other) => Err(format!(
            "legacy bench file: unknown bench kind {:?} (and no schema_version)",
            other
        )),
        None => Err("legacy bench file: \"bench\" must be a string".into()),
    }
}

/// Structural validation of a v3 observatory file.
pub fn validate_v3(doc: &Value) -> Result<(), String> {
    require(doc, "bench", "v3 file")?
        .as_str()
        .ok_or("v3 file: \"bench\" must be a string")?;
    require_u64(doc, "reps", "v3 file")?;
    let hist_on = match require(doc, "histograms_enabled", "v3 file")? {
        Value::Bool(b) => *b,
        _ => return Err("v3 file: \"histograms_enabled\" must be a boolean".into()),
    };

    let workloads = require(doc, "workloads", "v3 file")?
        .as_arr()
        .ok_or("v3 file: \"workloads\" must be an array")?;
    if workloads.is_empty() {
        return Err("v3 file: \"workloads\" must not be empty".into());
    }
    for (i, w) in workloads.iter().enumerate() {
        let what = format!("workloads[{}]", i);
        require(w, "name", &what)?
            .as_str()
            .ok_or_else(|| format!("{}: \"name\" must be a string", what))?;
        require_u64(w, "rows", &what)?;
        require_u64(w, "product_nnz", &what)?;
        let stages = require(w, "stages", &what)?;
        for key in STAGE_KEYS {
            let s = require(stages, key, &format!("{}.stages", what))?;
            require_u64(s, "median_ns", &format!("{}.stages.{}", what, key))?;
        }
    }

    let report = require(doc, "report", "v3 file")?;
    let rsv = require_u64(report, "schema_version", "v3 report")?;
    // Per-file agreement: the embedded ObsReport must carry the same
    // version the file claims (a v3 baseline embeds a v3 report).
    let sv = require_u64(doc, "schema_version", "v3 file")?;
    if rsv != sv {
        return Err(format!(
            "v3 report: embedded schema_version {} disagrees with file version {}",
            rsv, sv
        ));
    }
    let hists = require(report, "histograms", "v3 report")?
        .as_obj()
        .ok_or("v3 report: \"histograms\" must be an object")?;
    let non_empty = hists
        .values()
        .filter(|h| h.get("count").and_then(Value::as_u64).unwrap_or(0) > 0)
        .count();
    if hist_on && non_empty < 4 {
        return Err(format!(
            "v3 report: only {} non-empty histograms (need ≥ 4 with histograms enabled)",
            non_empty
        ));
    }
    let mem = require(report, "mem", "v3 report")?
        .as_obj()
        .ok_or("v3 report: \"mem\" must be an object")?;
    for (region, entry) in mem {
        require_u64(entry, "current", &format!("v3 report mem[{:?}]", region))?;
        require_u64(entry, "peak", &format!("v3 report mem[{:?}]", region))?;
    }
    if !mem
        .values()
        .any(|e| e.get("peak").and_then(Value::as_u64).unwrap_or(0) > 0)
    {
        return Err("v3 report: every mem region has peak 0 — accounting is dark".into());
    }
    require(report, "counters", "v3 report")?
        .as_obj()
        .ok_or("v3 report: \"counters\" must be an object")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn schema_version_matches_obs_report() {
        assert_eq!(BENCH_SCHEMA_VERSION, aarray_obs::REPORT_SCHEMA_VERSION);
    }

    #[test]
    fn classifies_committed_legacy_shapes() {
        let pr1 =
            parse(r#"{"bench":"fused_vs_sequential","workload":{"tracks":20000},"fused_ms":4.2}"#)
                .unwrap();
        assert_eq!(
            classify(&pr1).unwrap(),
            BenchKind::LegacyFused {
                tracks: 20000,
                fused_ms: 4.2
            }
        );
        let pr2 =
            parse(r#"{"bench":"obs_overhead","workload":{"tracks":20000},"workload_ms":3.9}"#)
                .unwrap();
        assert_eq!(
            classify(&pr2).unwrap(),
            BenchKind::LegacyOverhead {
                tracks: 20000,
                workload_ms: 3.9
            }
        );
    }

    #[test]
    fn rejects_unknown_and_malformed_files() {
        for (doc, needle) in [
            (r#"[1,2]"#, "must be a JSON object"),
            (r#"{"bench":"mystery"}"#, "unknown bench kind"),
            (r#"{"schema_version":99}"#, "unsupported schema_version"),
            (r#"{"schema_version":"three"}"#, "must be an integer"),
            (
                r#"{"bench":"fused_vs_sequential","workload":{"tracks":20000}}"#,
                "fused_ms",
            ),
            (r#"{"schema_version":3,"bench":"x"}"#, "reps"),
        ] {
            let err = classify(&parse(doc).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{:?} → {:?}", doc, err);
        }
    }

    #[test]
    fn v4_files_classify_and_embedded_version_must_agree_per_file() {
        let v4 = r#"{
          "schema_version": 4, "bench": "perf-observatory", "reps": 2,
          "histograms_enabled": true,
          "workloads": [{"name":"fig3","rows":100,"product_nnz":5,"stages":{
            "align":{"median_ns":1},"transpose":{"median_ns":1},
            "symbolic":{"median_ns":1},"numeric":{"median_ns":1},
            "total":{"median_ns":4},"wall":{"median_ns":5}}}],
          "report": {"schema_version": 4,
            "counters": {"a": 1},
            "histograms": {"h1":{"count":1},"h2":{"count":1},"h3":{"count":2},"h4":{"count":9}},
            "mem": {"r":{"current":0,"peak":10}}}
        }"#;
        assert_eq!(classify(&parse(v4).unwrap()).unwrap(), BenchKind::V3);
        // A v4 file embedding a v3 report is torn, and vice versa.
        let torn = v4.replace(
            r#""report": {"schema_version": 4"#,
            r#""report": {"schema_version": 3"#,
        );
        let err = classify(&parse(&torn).unwrap()).unwrap_err();
        assert!(err.contains("disagrees"), "{}", err);
    }

    #[test]
    fn v3_requires_stage_medians_and_live_histograms() {
        // Minimal valid v3 document, then break it one field at a time.
        let valid = r#"{
          "schema_version": 3, "bench": "perf-observatory", "reps": 2,
          "histograms_enabled": true,
          "workloads": [{"name":"fig3","rows":100,"product_nnz":5,"stages":{
            "align":{"median_ns":1},"transpose":{"median_ns":1},
            "symbolic":{"median_ns":1},"numeric":{"median_ns":1},
            "total":{"median_ns":4},"wall":{"median_ns":5}}}],
          "report": {"schema_version": 3,
            "counters": {"a": 1},
            "histograms": {"h1":{"count":1},"h2":{"count":1},"h3":{"count":2},"h4":{"count":9}},
            "mem": {"r":{"current":0,"peak":10}}}
        }"#;
        assert_eq!(classify(&parse(valid).unwrap()).unwrap(), BenchKind::V3);

        let missing_stage = valid.replace(r#""wall":{"median_ns":5}"#, r#""wall":{}"#);
        let err = classify(&parse(&missing_stage).unwrap()).unwrap_err();
        assert!(err.contains("median_ns"), "{}", err);

        let few_hists = valid.replace(r#","h4":{"count":9}"#, "");
        let err = classify(&parse(&few_hists).unwrap()).unwrap_err();
        assert!(err.contains("non-empty histograms"), "{}", err);

        // With histograms disabled the same report is acceptable.
        let disabled = few_hists.replace(
            r#""histograms_enabled": true"#,
            r#""histograms_enabled": false"#,
        );
        assert_eq!(classify(&parse(&disabled).unwrap()).unwrap(), BenchKind::V3);

        let dark_mem = valid.replace(
            r#""mem": {"r":{"current":0,"peak":10}}"#,
            r#""mem": {"r":{"current":0,"peak":0}}"#,
        );
        let err = classify(&parse(&dark_mem).unwrap()).unwrap_err();
        assert!(err.contains("accounting is dark"), "{}", err);

        let bad_embedded = valid.replace(
            r#""report": {"schema_version": 3"#,
            r#""report": {"schema_version": 2"#,
        );
        let err = classify(&parse(&bad_embedded).unwrap()).unwrap_err();
        assert!(err.contains("disagrees"), "{}", err);
    }
}
