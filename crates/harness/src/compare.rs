//! Regression verdicts: current observatory run vs committed baselines.
//!
//! Policy (ISSUE defaults, overridable from the CLI):
//!
//! * a **stage latency** regression is median > baseline × (1 + 15%);
//! * a **peak memory** regression is peak > baseline × (1 + 20%);
//! * comparisons below the noise floor are skipped — stages whose
//!   baseline median is under 50 µs and regions whose baseline peak is
//!   under 1 MiB jitter far beyond any useful tolerance;
//! * legacy single-figure baselines (PR1 `fused_ms`, PR2
//!   `workload_ms`) map onto the `total` / `wall` stage of the fig3
//!   workload with matching row count; if no workload matches the
//!   legacy track count, the comparison is skipped with a note rather
//!   than silently dropped.

use crate::json::Value;
use crate::schema::{BenchKind, STAGE_KEYS};

/// Tolerances and noise floors for one check invocation.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// Allowed median-latency growth, percent (default 15).
    pub lat_tol_pct: f64,
    /// Allowed peak-memory growth, percent (default 20).
    pub mem_tol_pct: f64,
    /// Stages with a baseline median below this are not compared.
    pub lat_floor_ns: u64,
    /// Regions with a baseline peak below this are not compared.
    pub mem_floor_bytes: u64,
    /// Mask over [`STAGE_KEYS`]: which stage medians are compared.
    /// Defaults to all six. `obsctl check --stages` narrows it when a
    /// baseline predates a stage's measurement semantics — e.g. stream
    /// `wall` covered only the refresh before the op-ledger PR widened
    /// it to append + refresh, so pre-ledger baselines compare every
    /// stage except `wall`.
    pub stage_mask: [bool; STAGE_KEYS.len()],
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            lat_tol_pct: 15.0,
            mem_tol_pct: 20.0,
            lat_floor_ns: 50_000,
            mem_floor_bytes: 1 << 20,
            stage_mask: [true; STAGE_KEYS.len()],
        }
    }
}

impl CheckConfig {
    /// True when `stage` survives the `--stages` mask. Unknown stage
    /// names are compared (the mask only ever narrows known keys).
    pub fn stage_enabled(&self, stage: &str) -> bool {
        STAGE_KEYS
            .iter()
            .position(|&k| k == stage)
            .is_none_or(|i| self.stage_mask[i])
    }

    /// Parse a `--stages` comma list (e.g. `align,numeric,total`) into
    /// a mask over [`STAGE_KEYS`]. Rejects unknown names and an empty
    /// selection rather than silently comparing nothing.
    pub fn parse_stage_mask(list: &str) -> Result<[bool; STAGE_KEYS.len()], String> {
        let mut mask = [false; STAGE_KEYS.len()];
        for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let i = STAGE_KEYS
                .iter()
                .position(|&k| k == name)
                .ok_or_else(|| format!("--stages: unknown stage {:?}", name))?;
            mask[i] = true;
        }
        if mask.iter().all(|&m| !m) {
            return Err("--stages: empty selection".into());
        }
        Ok(mask)
    }
}

/// Outcome of one metric comparison.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Metric path, e.g. `fig3@20000/numeric` or `mem/spa-scratch`.
    pub metric: String,
    /// Baseline value (ns or bytes).
    pub baseline: f64,
    /// Current value (ns or bytes).
    pub current: f64,
    /// Signed growth percentage.
    pub pct: f64,
    /// The tolerance this metric was held to.
    pub limit_pct: f64,
    /// True when `pct > limit_pct` — a regression.
    pub regressed: bool,
    /// True when the metric has **no** baseline (absent, or stored as
    /// zero) yet the current run reports a value above the noise
    /// floor. A growth percentage against zero is meaningless, so this
    /// is neither a pass nor a regression — it is a *new metric*,
    /// reported distinctly and subject to its own exit-code policy in
    /// `obsctl check`.
    pub new_metric: bool,
}

impl Finding {
    fn evaluate(metric: String, baseline: f64, current: f64, limit_pct: f64) -> Finding {
        // A zero baseline cannot be compared by percentage; callers
        // route that case through `Finding::new_metric` instead, so a
        // metric springing into existence is never silently reported
        // as 0% growth (the historical bug this replaces).
        debug_assert!(baseline > 0.0, "zero baselines take the new-metric path");
        let pct = if baseline > 0.0 {
            (current - baseline) / baseline * 100.0
        } else {
            0.0
        };
        Finding {
            metric,
            baseline,
            current,
            pct,
            limit_pct,
            regressed: pct > limit_pct,
            new_metric: false,
        }
    }

    fn new_metric(metric: String, current: f64, limit_pct: f64) -> Finding {
        Finding {
            metric,
            baseline: 0.0,
            current,
            pct: 0.0,
            limit_pct,
            regressed: false,
            new_metric: true,
        }
    }
}

/// Result of comparing the current run against one baseline file.
#[derive(Clone, Debug, Default)]
pub struct Verdict {
    /// Every comparison performed (regressed or not).
    pub findings: Vec<Finding>,
    /// Comparisons skipped (noise floor, missing counterpart), with
    /// reasons — printed so a silently-shrinking check is visible.
    pub skipped: Vec<String>,
}

impl Verdict {
    /// True when no compared metric regressed.
    pub fn pass(&self) -> bool {
        self.findings.iter().all(|f| !f.regressed)
    }

    /// The regressed subset.
    pub fn regressions(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.regressed)
    }

    /// Metrics present in the current run with no (nonzero) baseline.
    pub fn new_metrics(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.new_metric)
    }
}

fn stage_median(doc: &Value, name: &str, rows: u64, stage: &str) -> Option<u64> {
    let workloads = doc.get("workloads")?.as_arr()?;
    let w = workloads.iter().find(|w| {
        w.get("name").and_then(Value::as_str) == Some(name)
            && w.get("rows").and_then(Value::as_u64) == Some(rows)
    })?;
    w.path(&["stages", stage])?.get("median_ns")?.as_u64()
}

/// All `(name, rows)` workload identities in a v3 document.
fn workload_ids(doc: &Value) -> Vec<(String, u64)> {
    doc.get("workloads")
        .and_then(Value::as_arr)
        .map(|ws| {
            ws.iter()
                .filter_map(|w| {
                    Some((
                        w.get("name")?.as_str()?.to_string(),
                        w.get("rows")?.as_u64()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Compare the current (already schema-validated v3) document against
/// one classified baseline.
pub fn compare(
    current: &Value,
    baseline_doc: &Value,
    kind: &BenchKind,
    cfg: &CheckConfig,
) -> Verdict {
    let mut v = Verdict::default();
    match kind {
        BenchKind::LegacyFused { tracks, fused_ms } => {
            legacy_compare(
                current, &mut v, *tracks, *fused_ms, "total", "fused_ms", cfg,
            );
        }
        BenchKind::LegacyOverhead {
            tracks,
            workload_ms,
        } => {
            legacy_compare(
                current,
                &mut v,
                *tracks,
                *workload_ms,
                "wall",
                "workload_ms",
                cfg,
            );
        }
        BenchKind::V3 => {
            let base_ids = workload_ids(baseline_doc);
            for (name, rows) in &base_ids {
                for stage in STAGE_KEYS {
                    let Some(base) = stage_median(baseline_doc, name, *rows, stage) else {
                        continue;
                    };
                    let metric = format!("{}@{}/{}", name, rows, stage);
                    if !cfg.stage_enabled(stage) {
                        v.skipped.push(format!("{}: excluded by --stages", metric));
                        continue;
                    }
                    if base == 0 {
                        // Stored-as-zero baseline: percentage growth is
                        // undefined. If the current run has real signal
                        // here, surface it as a new metric.
                        match stage_median(current, name, *rows, stage) {
                            Some(cur) if cur >= cfg.lat_floor_ns => v
                                .findings
                                .push(Finding::new_metric(metric, cur as f64, cfg.lat_tol_pct)),
                            _ => v
                                .skipped
                                .push(format!("{}: zero baseline, current in noise", metric)),
                        }
                        continue;
                    }
                    if base < cfg.lat_floor_ns {
                        v.skipped.push(format!(
                            "{}: baseline {} ns below {} ns noise floor",
                            metric, base, cfg.lat_floor_ns
                        ));
                        continue;
                    }
                    match stage_median(current, name, *rows, stage) {
                        Some(cur) => v.findings.push(Finding::evaluate(
                            metric,
                            base as f64,
                            cur as f64,
                            cfg.lat_tol_pct,
                        )),
                        None => v
                            .skipped
                            .push(format!("{}: no matching workload in current run", metric)),
                    }
                }
            }
            // Workloads the baseline has never seen: every stage above
            // the noise floor is a new metric, not a silent pass.
            for (name, rows) in workload_ids(current) {
                if base_ids.contains(&(name.clone(), rows)) {
                    continue;
                }
                for stage in STAGE_KEYS {
                    let Some(cur) = stage_median(current, &name, rows, stage) else {
                        continue;
                    };
                    let metric = format!("{}@{}/{}", name, rows, stage);
                    if !cfg.stage_enabled(stage) {
                        v.skipped.push(format!("{}: excluded by --stages", metric));
                        continue;
                    }
                    if cur >= cfg.lat_floor_ns {
                        v.findings
                            .push(Finding::new_metric(metric, cur as f64, cfg.lat_tol_pct));
                    } else {
                        v.skipped
                            .push(format!("{}: new workload, current in noise", metric));
                    }
                }
            }
            compare_mem(current, baseline_doc, &mut v, cfg);
        }
    }
    v
}

fn legacy_compare(
    current: &Value,
    v: &mut Verdict,
    tracks: u64,
    baseline_ms: f64,
    stage: &str,
    what: &str,
    cfg: &CheckConfig,
) {
    let baseline_ns = baseline_ms * 1e6;
    let metric = format!("fig3@{}/{} (legacy {})", tracks, stage, what);
    if (baseline_ns as u64) < cfg.lat_floor_ns {
        v.skipped
            .push(format!("{}: baseline below noise floor", metric));
        return;
    }
    match stage_median(current, "fig3", tracks, stage) {
        Some(cur) => v.findings.push(Finding::evaluate(
            metric,
            baseline_ns,
            cur as f64,
            cfg.lat_tol_pct,
        )),
        None => v.skipped.push(format!(
            "{}: current run has no fig3 workload at {} rows",
            metric, tracks
        )),
    }
}

fn compare_mem(current: &Value, baseline: &Value, v: &mut Verdict, cfg: &CheckConfig) {
    let Some(base_mem) = baseline.path(&["report", "mem"]).and_then(Value::as_obj) else {
        v.skipped.push("mem: baseline has no report.mem".into());
        return;
    };
    let cur_peak_of = |region: &str| {
        current
            .path(&["report", "mem", region])
            .and_then(|e| e.get("peak"))
            .and_then(Value::as_u64)
    };
    for (region, entry) in base_mem {
        let Some(base_peak) = entry.get("peak").and_then(Value::as_u64) else {
            continue;
        };
        let metric = format!("mem/{}", region);
        if base_peak == 0 {
            match cur_peak_of(region) {
                Some(cur) if cur >= cfg.mem_floor_bytes => {
                    v.findings
                        .push(Finding::new_metric(metric, cur as f64, cfg.mem_tol_pct));
                }
                _ => v
                    .skipped
                    .push(format!("{}: zero baseline, current in noise", metric)),
            }
            continue;
        }
        if base_peak < cfg.mem_floor_bytes {
            v.skipped.push(format!(
                "{}: baseline peak {} B below {} B noise floor",
                metric, base_peak, cfg.mem_floor_bytes
            ));
            continue;
        }
        match cur_peak_of(region) {
            Some(cur) => v.findings.push(Finding::evaluate(
                metric,
                base_peak as f64,
                cur as f64,
                cfg.mem_tol_pct,
            )),
            None => v
                .skipped
                .push(format!("{}: region absent from current run", metric)),
        }
    }
    // Regions the baseline has never accounted: a region springing
    // into existence above the noise floor is a new metric.
    if let Some(cur_mem) = current.path(&["report", "mem"]).and_then(Value::as_obj) {
        for (region, entry) in cur_mem {
            if base_mem.contains_key(region) {
                continue;
            }
            let Some(cur) = entry.get("peak").and_then(Value::as_u64) else {
                continue;
            };
            let metric = format!("mem/{}", region);
            if cur >= cfg.mem_floor_bytes {
                v.findings
                    .push(Finding::new_metric(metric, cur as f64, cfg.mem_tol_pct));
            } else {
                v.skipped
                    .push(format!("{}: new region, current in noise", metric));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn v3_doc(total_ns: u64, wall_ns: u64, peak: u64) -> Value {
        parse(&format!(
            r#"{{
              "schema_version": 3, "bench": "perf-observatory", "reps": 3,
              "histograms_enabled": true,
              "workloads": [{{"name":"fig3","rows":20000,"product_nnz":7,"stages":{{
                "align":{{"median_ns":10000}},"transpose":{{"median_ns":600000}},
                "symbolic":{{"median_ns":900000}},"numeric":{{"median_ns":2000000}},
                "total":{{"median_ns":{total}}},"wall":{{"median_ns":{wall}}}}}}}],
              "report": {{"schema_version": 3, "counters": {{"a":1}},
                "histograms": {{"h1":{{"count":1}},"h2":{{"count":1}},"h3":{{"count":1}},"h4":{{"count":1}}}},
                "mem": {{"spa-scratch":{{"current":0,"peak":{peak}}},
                         "tiny":{{"current":0,"peak":64}}}}}}
            }}"#,
            total = total_ns,
            wall = wall_ns,
            peak = peak
        ))
        .unwrap()
    }

    #[test]
    fn passes_when_within_tolerance_and_flags_regressions() {
        let cfg = CheckConfig::default();
        let base = v3_doc(4_000_000, 5_000_000, 8 << 20);

        // 10% slower: inside the 15% budget.
        let ok = compare(
            &v3_doc(4_400_000, 5_500_000, 8 << 20),
            &base,
            &BenchKind::V3,
            &cfg,
        );
        assert!(ok.pass(), "{:?}", ok.findings);
        assert!(!ok.findings.is_empty());

        // 50% slower on total: regression.
        let slow = compare(
            &v3_doc(6_000_000, 5_000_000, 8 << 20),
            &base,
            &BenchKind::V3,
            &cfg,
        );
        assert!(!slow.pass());
        let reg: Vec<_> = slow.regressions().collect();
        assert!(reg.iter().any(|f| f.metric.contains("/total")), "{:?}", reg);

        // 30% more peak memory: regression under the 20% budget.
        let fat = compare(
            &v3_doc(4_000_000, 5_000_000, (8 << 20) + (3 << 20)),
            &base,
            &BenchKind::V3,
            &cfg,
        );
        assert!(!fat.pass());
        assert!(fat.regressions().any(|f| f.metric == "mem/spa-scratch"));
    }

    #[test]
    fn noise_floors_skip_tiny_baselines() {
        let cfg = CheckConfig::default();
        let base = v3_doc(4_000_000, 5_000_000, 8 << 20);
        let v = compare(
            &v3_doc(4_000_000, 5_000_000, 8 << 20),
            &base,
            &BenchKind::V3,
            &cfg,
        );
        // align (10 µs) is under the 50 µs floor; the 64-byte region is
        // under the 1 MiB floor — both skipped with visible reasons.
        assert!(
            v.skipped.iter().any(|s| s.contains("/align")),
            "{:?}",
            v.skipped
        );
        assert!(
            v.skipped.iter().any(|s| s.contains("mem/tiny")),
            "{:?}",
            v.skipped
        );
        assert!(!v.findings.iter().any(|f| f.metric.contains("/align")));
    }

    #[test]
    fn zero_or_missing_baselines_surface_as_new_metrics() {
        let cfg = CheckConfig::default();
        let base = v3_doc(4_000_000, 5_000_000, 8 << 20);

        // Current run grows a workload and a memory region the baseline
        // has never seen, plus one below-noise region.
        let cur = parse(
            r#"{
              "schema_version": 3, "bench": "perf-observatory", "reps": 3,
              "histograms_enabled": true,
              "workloads": [
                {"name":"fig3","rows":20000,"product_nnz":7,"stages":{
                  "align":{"median_ns":10000},"transpose":{"median_ns":600000},
                  "symbolic":{"median_ns":900000},"numeric":{"median_ns":2000000},
                  "total":{"median_ns":4000000},"wall":{"median_ns":5000000}}},
                {"name":"stream","rows":20000,"product_nnz":7,"stages":{
                  "align":{"median_ns":100},"transpose":{"median_ns":600000},
                  "symbolic":{"median_ns":900000},"numeric":{"median_ns":2000000},
                  "total":{"median_ns":4000000},"wall":{"median_ns":5000000}}}],
              "report": {"schema_version": 3, "counters": {"a":1},
                "histograms": {"h1":{"count":1},"h2":{"count":1},"h3":{"count":1},"h4":{"count":1}},
                "mem": {"spa-scratch":{"current":0,"peak":8388608},
                        "tiny":{"current":0,"peak":64},
                        "delta-scratch":{"current":0,"peak":4194304},
                        "tiny-new":{"current":0,"peak":128}}}
            }"#,
        )
        .unwrap();

        let v = compare(&cur, &base, &BenchKind::V3, &cfg);
        assert!(
            v.pass(),
            "new metrics are not regressions: {:?}",
            v.findings
        );
        let new: Vec<_> = v.new_metrics().map(|f| f.metric.clone()).collect();
        assert!(
            new.iter().any(|m| m.starts_with("stream@20000/")),
            "{:?}",
            new
        );
        assert!(new.contains(&"mem/delta-scratch".to_string()), "{:?}", new);
        // Below the noise floor: skipped with a visible reason, not new.
        assert!(!new.iter().any(|m| m.contains("stream@20000/align")));
        assert!(!new.contains(&"mem/tiny-new".to_string()));
        assert!(
            v.skipped.iter().any(|s| s.contains("mem/tiny-new")),
            "{:?}",
            v.skipped
        );

        // A baseline *storing* zero is the same situation.
        let zero_base = v3_doc(0, 5_000_000, 8 << 20);
        let v = compare(
            &v3_doc(4_000_000, 5_000_000, 8 << 20),
            &zero_base,
            &BenchKind::V3,
            &cfg,
        );
        assert!(v.new_metrics().any(|f| f.metric == "fig3@20000/total"));
        assert!(v.pass());
    }

    #[test]
    fn stage_mask_excludes_stages_visibly() {
        let cfg = CheckConfig {
            stage_mask: CheckConfig::parse_stage_mask("align, transpose,symbolic,numeric,total")
                .unwrap(),
            ..CheckConfig::default()
        };
        assert!(cfg.stage_enabled("align") && !cfg.stage_enabled("wall"));

        // Wall doubles — a clear regression — but the mask excludes it
        // with a visible skip line instead of comparing.
        let base = v3_doc(4_000_000, 5_000_000, 8 << 20);
        let v = compare(
            &v3_doc(4_000_000, 10_000_000, 8 << 20),
            &base,
            &BenchKind::V3,
            &cfg,
        );
        assert!(v.pass(), "{:?}", v.findings);
        assert!(!v.findings.iter().any(|f| f.metric.ends_with("/wall")));
        assert!(
            v.skipped
                .iter()
                .any(|s| s.contains("/wall") && s.contains("--stages")),
            "{:?}",
            v.skipped
        );
        // Unmasked stages are still compared.
        assert!(v.findings.iter().any(|f| f.metric.ends_with("/total")));

        // Unknown names and empty selections are rejected.
        assert!(CheckConfig::parse_stage_mask("align,bogus").is_err());
        assert!(CheckConfig::parse_stage_mask(" , ").is_err());
    }

    #[test]
    fn tolerance_boundaries_are_exclusive() {
        let cfg = CheckConfig::default();
        let base = v3_doc(2_000_000, 5_000_000, 10 << 20);

        // Exactly +15% latency: `pct > limit_pct` is strict, so this
        // is the last passing value.
        let at = compare(
            &v3_doc(2_300_000, 5_000_000, 10 << 20),
            &base,
            &BenchKind::V3,
            &cfg,
        );
        let total = at
            .findings
            .iter()
            .find(|f| f.metric == "fig3@20000/total")
            .unwrap();
        assert_eq!(total.pct, 15.0);
        assert!(!total.regressed);

        // One nanosecond past the boundary regresses.
        let over = compare(
            &v3_doc(2_300_001, 5_000_000, 10 << 20),
            &base,
            &BenchKind::V3,
            &cfg,
        );
        assert!(over.regressions().any(|f| f.metric == "fig3@20000/total"));

        // Exactly +20% memory passes; one byte past regresses.
        let mem_at = compare(
            &v3_doc(2_000_000, 5_000_000, 12 << 20),
            &base,
            &BenchKind::V3,
            &cfg,
        );
        let spa = mem_at
            .findings
            .iter()
            .find(|f| f.metric == "mem/spa-scratch")
            .unwrap();
        assert_eq!(spa.pct, 20.0);
        assert!(mem_at.pass(), "{:?}", mem_at.findings);
        let mem_over = compare(
            &v3_doc(2_000_000, 5_000_000, (12 << 20) + 1),
            &base,
            &BenchKind::V3,
            &cfg,
        );
        assert!(mem_over
            .regressions()
            .any(|f| f.metric == "mem/spa-scratch"));
    }

    #[test]
    fn noise_floors_are_inclusive_at_the_boundary() {
        let cfg = CheckConfig::default();

        // A baseline total exactly at the 50 µs floor IS compared
        // (skip condition is `base < floor`): doubled, it regresses.
        let base = v3_doc(50_000, 5_000_000, 1 << 20);
        let v = compare(
            &v3_doc(100_000, 5_000_000, 1 << 20),
            &base,
            &BenchKind::V3,
            &cfg,
        );
        assert!(v.regressions().any(|f| f.metric == "fig3@20000/total"));
        // A peak exactly at the 1 MiB floor is likewise compared.
        assert!(
            v.findings.iter().any(|f| f.metric == "mem/spa-scratch"),
            "{:?}",
            v.findings
        );

        // One unit below either floor: skipped with a visible reason,
        // never compared, even against an egregious current value.
        let below = v3_doc(49_999, 5_000_000, (1 << 20) - 1);
        let v = compare(
            &v3_doc(5_000_000, 5_000_000, 100 << 20),
            &below,
            &BenchKind::V3,
            &cfg,
        );
        assert!(v.pass(), "{:?}", v.findings);
        assert!(!v.findings.iter().any(|f| f.metric == "fig3@20000/total"));
        assert!(!v.findings.iter().any(|f| f.metric == "mem/spa-scratch"));
        assert!(v.skipped.iter().any(|s| s.contains("fig3@20000/total")));
        assert!(v.skipped.iter().any(|s| s.contains("mem/spa-scratch")));

        // The floor also gates NEW classification: a zero-baseline
        // metric needs current signal at or above the floor to count.
        let zero = v3_doc(0, 5_000_000, 1 << 20);
        let v = compare(
            &v3_doc(50_000, 5_000_000, 1 << 20),
            &zero,
            &BenchKind::V3,
            &cfg,
        );
        assert!(v.new_metrics().any(|f| f.metric == "fig3@20000/total"));
        let v = compare(
            &v3_doc(49_999, 5_000_000, 1 << 20),
            &zero,
            &BenchKind::V3,
            &cfg,
        );
        assert!(!v.new_metrics().any(|f| f.metric == "fig3@20000/total"));
        assert!(v.skipped.iter().any(|s| s.contains("fig3@20000/total")));
    }

    #[test]
    fn legacy_baselines_map_to_fig3_stages() {
        let cfg = CheckConfig::default();
        let cur = v3_doc(4_000_000, 5_000_000, 8 << 20);

        // fused_ms 4.0 → total 4_000_000 ns: flat, passes.
        let kind = BenchKind::LegacyFused {
            tracks: 20000,
            fused_ms: 4.0,
        };
        let v = compare(&cur, &Value::Null, &kind, &cfg);
        assert!(v.pass() && v.findings.len() == 1, "{:?}", v);

        // workload_ms 3.0 vs wall 5 ms: +66%, regression.
        let kind = BenchKind::LegacyOverhead {
            tracks: 20000,
            workload_ms: 3.0,
        };
        let v = compare(&cur, &Value::Null, &kind, &cfg);
        assert!(!v.pass());

        // Track count with no matching workload: skipped, not failed.
        let kind = BenchKind::LegacyFused {
            tracks: 777,
            fused_ms: 4.0,
        };
        let v = compare(&cur, &Value::Null, &kind, &cfg);
        assert!(v.pass() && v.findings.is_empty() && v.skipped.len() == 1);
    }
}
