//! Differential profiling: attribute a wall-time delta between two
//! runs to stages and decision flips.
//!
//! `obsctl diff A.json B.json` accepts any mix of `--profile-out`
//! documents and v3/v4 bench files. Both normalize to a
//! [`RunSummary`] — per-workload stage nanoseconds plus decision
//! tallies — and the diff then:
//!
//! 1. computes the signed wall-time delta over workloads present in
//!    both runs;
//! 2. ranks per-workload stage deltas by magnitude and accumulates
//!    them (signed) until ≥ 90% of the wall delta is explained or the
//!    contributors run out;
//! 3. inspects decision-counter pairs (serial↔parallel dispatch,
//!    plan-cache hit rates, Spa↔Hash accumulator selection,
//!    delta-apply↔rebuild fallback, pool task placement) for *flips* —
//!    rate shifts ≥ 10 points — and annotates the stages they land in.
//!
//! The human rendering is a ranked table; `--json` emits the same
//! verdict as a schema-versioned machine document.

use crate::json::Value;
use crate::profile::{DECISION_COUNTERS, PROFILE_SCHEMA_VERSION};
use crate::schema::{classify, BenchKind, STAGE_KEYS};

/// Schema version stamped into `obsctl diff --json` documents.
pub const DIFF_SCHEMA_VERSION: u64 = 1;

/// Attribution stops once this share of the wall delta is explained.
pub const EXPLAIN_TARGET_PCT: f64 = 90.0;

/// A decision-pair rate shift must move at least this many percentage
/// points to be called a flip.
pub const FLIP_THRESHOLD_PCT: f64 = 10.0;

/// One run (profile or bench document) normalized for diffing.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Per-workload stage nanoseconds: `(workload@rows, stage, ns)`.
    /// Stage keys follow [`STAGE_KEYS`]; legacy baselines carry only
    /// the stage their single figure maps onto.
    pub stages: Vec<(String, &'static str, u64)>,
    /// Decision tallies by counter name (empty when the document
    /// carries no counter section).
    pub decisions: Vec<(String, u64)>,
}

impl RunSummary {
    fn stage_ns(&self, workload: &str, stage: &str) -> Option<u64> {
        self.stages
            .iter()
            .find(|(w, s, _)| w == workload && *s == stage)
            .map(|&(_, _, ns)| ns)
    }

    fn workloads(&self) -> Vec<String> {
        let mut ws: Vec<String> = Vec::new();
        for (w, _, _) in &self.stages {
            if !ws.contains(w) {
                ws.push(w.clone());
            }
        }
        ws
    }

    fn decision(&self, name: &str) -> u64 {
        self.decisions
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }
}

fn stage_key(stage: &str) -> Option<&'static str> {
    STAGE_KEYS.iter().find(|&&k| k == stage).copied()
}

/// Normalize one parsed document into a [`RunSummary`].
///
/// Accepts `obsctl-profile` documents and anything
/// [`classify`] accepts (v3/v4 observatory files, legacy PR1/PR2
/// single-figure files). Anything else is an error naming the shape.
pub fn summarize(doc: &Value) -> Result<RunSummary, String> {
    if doc.get("tool").and_then(Value::as_str) == Some("obsctl-profile") {
        let sv = doc
            .get("schema_version")
            .and_then(Value::as_u64)
            .ok_or("profile: missing schema_version")?;
        if sv != PROFILE_SCHEMA_VERSION {
            return Err(format!(
                "profile: unsupported schema_version {} (this obsctl understands {})",
                sv, PROFILE_SCHEMA_VERSION
            ));
        }
        let mut s = RunSummary::default();
        collect_workload_stages(doc, &mut s)?;
        if let Some(decisions) = doc.get("decisions").and_then(Value::as_obj) {
            for (name, entry) in decisions {
                if let Some(count) = entry.get("count").and_then(Value::as_u64) {
                    s.decisions.push((name.clone(), count));
                }
            }
        }
        return Ok(s);
    }
    match classify(doc)? {
        BenchKind::V3 => {
            let mut s = RunSummary::default();
            collect_workload_stages(doc, &mut s)?;
            // v3/v4 files embed an ObsReport whose counters section is
            // keyed by the same names the profile's decision tallies
            // use, so bench baselines still support flip detection.
            if let Some(counters) = doc.path(&["report", "counters"]).and_then(Value::as_obj) {
                for &(_, name, _) in DECISION_COUNTERS.iter() {
                    if let Some(v) = counters.get(name).and_then(Value::as_u64) {
                        s.decisions.push((name.to_string(), v));
                    }
                }
            }
            Ok(s)
        }
        BenchKind::LegacyFused { tracks, fused_ms } => Ok(RunSummary {
            stages: vec![(format!("fig3@{}", tracks), "total", (fused_ms * 1e6) as u64)],
            decisions: Vec::new(),
        }),
        BenchKind::LegacyOverhead {
            tracks,
            workload_ms,
        } => Ok(RunSummary {
            stages: vec![(
                format!("fig3@{}", tracks),
                "wall",
                (workload_ms * 1e6) as u64,
            )],
            decisions: Vec::new(),
        }),
    }
}

fn collect_workload_stages(doc: &Value, s: &mut RunSummary) -> Result<(), String> {
    let workloads = doc
        .get("workloads")
        .and_then(Value::as_arr)
        .ok_or("run document: \"workloads\" must be an array")?;
    for w in workloads {
        let name = w
            .get("name")
            .and_then(Value::as_str)
            .ok_or("workload: missing name")?;
        let rows = w
            .get("rows")
            .and_then(Value::as_u64)
            .ok_or("workload: missing rows")?;
        let id = format!("{}@{}", name, rows);
        for stage in STAGE_KEYS {
            if let Some(ns) = w
                .path(&["stages", stage])
                .and_then(|e| e.get("median_ns"))
                .and_then(Value::as_u64)
            {
                s.stages.push((id.clone(), stage_key(stage).unwrap(), ns));
            }
        }
    }
    Ok(())
}

/// One ranked stage contributor to the wall delta.
#[derive(Clone, Debug)]
pub struct Contributor {
    /// `workload@rows/stage`.
    pub metric: String,
    /// The stage's nanoseconds in run A.
    pub a_ns: u64,
    /// The stage's nanoseconds in run B.
    pub b_ns: u64,
    /// Signed delta (B − A).
    pub delta_ns: i64,
    /// This contributor's signed share of the wall delta, percent.
    pub share_pct: f64,
    /// Running signed share after including this contributor.
    pub cum_pct: f64,
    /// True for the ranked prefix that reaches the ≥ 90% target (the
    /// "attribution set"); the remainder is reported for completeness.
    pub included: bool,
    /// Decision flips whose cost lands in this contributor's stage.
    pub flips: Vec<String>,
}

/// A decision-pair rate shift between the two runs.
#[derive(Clone, Debug)]
pub struct Flip {
    /// Human label, e.g. `dispatch serial↔parallel`.
    pub what: String,
    /// Stage the flipped decision's cost lands in.
    pub stage: &'static str,
    /// Rate of the first pair member in run A, percent of the pair.
    pub a_pct: f64,
    /// Rate of the first pair member in run B, percent of the pair.
    pub b_pct: f64,
}

/// The full diff verdict.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Signed wall-time delta (B − A) summed over matched workloads, ns.
    pub wall_delta_ns: i64,
    /// Share of the wall delta the included contributors explain,
    /// percent (0 when the wall delta itself is zero).
    pub explained_pct: f64,
    /// All stage contributors, ranked by |delta|.
    pub contributors: Vec<Contributor>,
    /// Detected decision flips.
    pub flips: Vec<Flip>,
    /// Workloads present in only one run (named, never silently
    /// dropped).
    pub unmatched: Vec<String>,
}

/// The decision pairs flip detection inspects: first member, second
/// member, human label. Stage attribution comes from
/// [`DECISION_COUNTERS`].
const FLIP_PAIRS: [(&str, &str, &str); 6] = [
    (
        "dispatch.serial",
        "dispatch.parallel",
        "dispatch serial↔parallel",
    ),
    (
        "plan.symbolic-hit",
        "plan.symbolic-miss",
        "plan-cache symbolic hit-rate",
    ),
    (
        "plan.transpose-reused",
        "plan.transpose-built",
        "plan-cache transpose reuse-rate",
    ),
    ("fused.spa", "fused.hash", "accumulator Spa↔Hash"),
    (
        "incremental.apply",
        "incremental.fallback",
        "incremental delta-apply↔rebuild",
    ),
    ("intern.hits", "intern.misses", "key-dict intern hit-rate"),
];

fn pair_stage(first: &str) -> &'static str {
    DECISION_COUNTERS
        .iter()
        .find(|&&(_, name, _)| name == first)
        .map_or("numeric", |&(_, _, stage)| stage)
}

/// Diff two normalized runs.
pub fn diff(a: &RunSummary, b: &RunSummary) -> DiffReport {
    let a_workloads = a.workloads();
    let b_workloads = b.workloads();
    let matched: Vec<&String> = a_workloads
        .iter()
        .filter(|w| b_workloads.contains(w))
        .collect();
    let mut unmatched: Vec<String> = Vec::new();
    for w in &a_workloads {
        if !b_workloads.contains(w) {
            unmatched.push(format!("{} (only in A)", w));
        }
    }
    for w in &b_workloads {
        if !a_workloads.contains(w) {
            unmatched.push(format!("{} (only in B)", w));
        }
    }

    // Wall delta over matched workloads; a legacy run without a wall
    // figure falls back to its total.
    let mut wall_delta: i64 = 0;
    for w in &matched {
        let a_ns = a.stage_ns(w, "wall").or_else(|| a.stage_ns(w, "total"));
        let b_ns = b.stage_ns(w, "wall").or_else(|| b.stage_ns(w, "total"));
        if let (Some(a_ns), Some(b_ns)) = (a_ns, b_ns) {
            wall_delta += b_ns as i64 - a_ns as i64;
        }
    }

    // Rank the per-stage deltas. `total` and `wall` aggregate the
    // other four, so only the component stages contribute.
    let mut contributors: Vec<Contributor> = Vec::new();
    for w in &matched {
        for stage in ["align", "transpose", "symbolic", "numeric"] {
            let (Some(a_ns), Some(b_ns)) = (a.stage_ns(w, stage), b.stage_ns(w, stage)) else {
                continue;
            };
            let delta = b_ns as i64 - a_ns as i64;
            let share = if wall_delta != 0 {
                delta as f64 / wall_delta as f64 * 100.0
            } else {
                0.0
            };
            contributors.push(Contributor {
                metric: format!("{}/{}", w, stage),
                a_ns,
                b_ns,
                delta_ns: delta,
                share_pct: share,
                cum_pct: 0.0,
                included: false,
                flips: Vec::new(),
            });
        }
    }
    contributors.sort_by_key(|c| std::cmp::Reverse(c.delta_ns.abs()));

    let mut cum = 0.0;
    let mut explained = 0.0;
    for c in &mut contributors {
        let done = wall_delta != 0 && cum >= EXPLAIN_TARGET_PCT;
        cum += c.share_pct;
        c.cum_pct = cum;
        if wall_delta != 0 && !done {
            c.included = true;
            explained = cum;
        }
    }

    // Decision flips: rate of the pair's first member, A vs B.
    let mut flips: Vec<Flip> = Vec::new();
    for &(first, second, label) in FLIP_PAIRS.iter() {
        let (af, asnd) = (a.decision(first), a.decision(second));
        let (bf, bsnd) = (b.decision(first), b.decision(second));
        if af + asnd == 0 || bf + bsnd == 0 {
            continue;
        }
        let a_pct = af as f64 / (af + asnd) as f64 * 100.0;
        let b_pct = bf as f64 / (bf + bsnd) as f64 * 100.0;
        if (b_pct - a_pct).abs() >= FLIP_THRESHOLD_PCT {
            flips.push(Flip {
                what: label.to_string(),
                stage: pair_stage(first),
                a_pct,
                b_pct,
            });
        }
    }
    for c in &mut contributors {
        let stage = c.metric.rsplit('/').next().unwrap_or("");
        for f in &flips {
            if f.stage == stage {
                c.flips.push(f.what.clone());
            }
        }
    }

    DiffReport {
        wall_delta_ns: wall_delta,
        explained_pct: explained,
        contributors,
        flips,
        unmatched,
    }
}

fn fmt_ns(ns: f64) -> String {
    let abs = ns.abs();
    if abs >= 1e6 {
        format!("{:+.2} ms", ns / 1e6)
    } else if abs >= 1e3 {
        format!("{:+.1} µs", ns / 1e3)
    } else {
        format!("{:+.0} ns", ns)
    }
}

/// Render the human-facing diff table.
pub fn render_text(a_label: &str, b_label: &str, r: &DiffReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("diff: {} → {}\n", a_label, b_label));
    out.push_str(&format!(
        "wall delta {} ({}); attribution target {:.0}%, explained {:.1}%\n\n",
        fmt_ns(r.wall_delta_ns as f64),
        if r.wall_delta_ns >= 0 {
            "slower"
        } else {
            "faster"
        },
        EXPLAIN_TARGET_PCT,
        r.explained_pct
    ));
    out.push_str(&format!(
        "{:<28} {:>12} {:>12} {:>12} {:>8} {:>8}  flips\n",
        "contributor", "A", "B", "delta", "share%", "cum%"
    ));
    for c in &r.contributors {
        out.push_str(&format!(
            "{:<28} {:>12} {:>12} {:>12} {:>7.1}% {:>7.1}%  {}{}\n",
            c.metric,
            c.a_ns,
            c.b_ns,
            fmt_ns(c.delta_ns as f64),
            c.share_pct,
            c.cum_pct,
            if c.included { "" } else { "(tail) " },
            c.flips.join("; ")
        ));
    }
    if !r.flips.is_empty() {
        out.push_str("\ndecision flips:\n");
        for f in &r.flips {
            out.push_str(&format!(
                "  {} ({}): {:.1}% → {:.1}%\n",
                f.what, f.stage, f.a_pct, f.b_pct
            ));
        }
    }
    if !r.unmatched.is_empty() {
        out.push_str("\nunmatched workloads:\n");
        for u in &r.unmatched {
            out.push_str(&format!("  {}\n", u));
        }
    }
    out
}

/// Render the machine verdict (`obsctl diff --json`).
pub fn render_json(a_label: &str, b_label: &str, r: &DiffReport) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(&format!(
        "{{\n  \"schema_version\": {},\n  \"tool\": \"obsctl-diff\",\n  \
         \"a\": \"{}\",\n  \"b\": \"{}\",\n  \"wall_delta_ns\": {},\n  \
         \"explain_target_pct\": {},\n  \"explained_pct\": {:.3},\n",
        DIFF_SCHEMA_VERSION, a_label, b_label, r.wall_delta_ns, EXPLAIN_TARGET_PCT, r.explained_pct
    ));
    out.push_str("  \"contributors\": [");
    for (i, c) in r.contributors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"metric\": \"{}\", \"a_ns\": {}, \"b_ns\": {}, \"delta_ns\": {}, \
             \"share_pct\": {:.3}, \"cum_pct\": {:.3}, \"included\": {}, \"flips\": [{}]}}",
            c.metric,
            c.a_ns,
            c.b_ns,
            c.delta_ns,
            c.share_pct,
            c.cum_pct,
            c.included,
            c.flips
                .iter()
                .map(|f| format!("\"{}\"", f))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    out.push_str("\n  ],\n  \"flips\": [");
    for (i, f) in r.flips.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"what\": \"{}\", \"stage\": \"{}\", \"a_pct\": {:.3}, \"b_pct\": {:.3}}}",
            f.what, f.stage, f.a_pct, f.b_pct
        ));
    }
    out.push_str("\n  ],\n  \"unmatched\": [");
    for (i, u) in r.unmatched.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", u));
    }
    out.push_str("]\n}\n");
    out
}

/// Top contributors to one regressed bench metric, for the
/// `attribution` field of `obsctl check --json` (satellite 6). The
/// metric names a `workload@rows/stage`; the answer is the largest
/// same-workload stage deltas between the two documents in hand.
pub fn attribute_metric(
    metric: &str,
    baseline: &RunSummary,
    current: &RunSummary,
    top: usize,
) -> Vec<Contributor> {
    let workload = metric.split('/').next().unwrap_or(metric);
    let r = diff(baseline, current);
    r.contributors
        .into_iter()
        .filter(|c| c.metric.starts_with(workload))
        .take(top)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn profile_doc(numeric: u64, symbolic: u64, serial: u64, parallel: u64) -> Value {
        let wall = 10_000 + 200_000 + symbolic + numeric;
        parse(&format!(
            r#"{{
              "schema_version": 1, "tool": "obsctl-profile", "bench": "profile",
              "workloads": [{{"name":"fig3","rows":4000,"stages":{{
                "align":{{"median_ns":10000}},"transpose":{{"median_ns":200000}},
                "symbolic":{{"median_ns":{symbolic}}},"numeric":{{"median_ns":{numeric}}},
                "total":{{"median_ns":{wall}}},"wall":{{"median_ns":{wall}}}}}}}],
              "decisions": {{
                "dispatch.serial": {{"count": {serial}, "stage": "numeric"}},
                "dispatch.parallel": {{"count": {parallel}, "stage": "numeric"}}
              }},
              "pool": {{"threads": 1, "tasks_local": 0, "tasks_stolen": 0, "tasks_inline": 4}}
            }}"#,
        ))
        .unwrap()
    }

    #[test]
    fn attribution_reaches_target_and_ranks_by_magnitude() {
        // B's numeric doubles (+2 ms) and symbolic grows 0.1 ms; wall
        // grows by exactly their sum, so numeric alone explains ~95%.
        let a = summarize(&profile_doc(2_000_000, 900_000, 10, 0)).unwrap();
        let b = summarize(&profile_doc(4_000_000, 1_000_000, 0, 10)).unwrap();
        let r = diff(&a, &b);
        assert_eq!(r.wall_delta_ns, 2_100_000);
        assert!(r.explained_pct >= EXPLAIN_TARGET_PCT, "{:?}", r);
        assert_eq!(r.contributors[0].metric, "fig3@4000/numeric");
        assert!(r.contributors[0].included);
        // numeric explains > 90% alone; symbolic is tail.
        assert!(
            !r.contributors
                .iter()
                .any(|c| c.metric.ends_with("/symbolic") && c.included),
            "{:?}",
            r.contributors
        );
        // All-serial → all-parallel is a dispatch flip on numeric.
        assert_eq!(r.flips.len(), 1);
        assert_eq!(r.flips[0].stage, "numeric");
        assert!(
            r.contributors[0].flips[0].contains("dispatch"),
            "{:?}",
            r.flips
        );
    }

    #[test]
    fn zero_delta_and_unmatched_workloads_are_explicit() {
        let a = summarize(&profile_doc(2_000_000, 900_000, 5, 5)).unwrap();
        let r = diff(&a, &a.clone());
        assert_eq!(r.wall_delta_ns, 0);
        assert_eq!(r.explained_pct, 0.0);
        assert!(r.contributors.iter().all(|c| !c.included));
        assert!(r.flips.is_empty());

        let mut b = a.clone();
        b.stages.retain(|(w, _, _)| w != "fig3@4000");
        b.stages.push(("fig5@4000".to_string(), "wall", 1));
        let r = diff(&a, &b);
        assert_eq!(r.unmatched.len(), 2, "{:?}", r.unmatched);
    }

    #[test]
    fn legacy_and_v3_documents_normalize() {
        let pr1 =
            parse(r#"{"bench":"fused_vs_sequential","workload":{"tracks":20000},"fused_ms":4.0}"#)
                .unwrap();
        let s = summarize(&pr1).unwrap();
        assert_eq!(
            s.stages,
            vec![("fig3@20000".to_string(), "total", 4_000_000)]
        );

        let pr2 =
            parse(r#"{"bench":"obs_overhead","workload":{"tracks":20000},"workload_ms":3.0}"#)
                .unwrap();
        let s2 = summarize(&pr2).unwrap();
        assert_eq!(s2.stages[0].1, "wall");

        // Legacy total falls back as the wall figure in a diff.
        let r = diff(&s, &s);
        assert_eq!(r.wall_delta_ns, 0);
    }

    #[test]
    fn diff_json_round_trips_through_own_parser() {
        let a = summarize(&profile_doc(2_000_000, 900_000, 10, 0)).unwrap();
        let b = summarize(&profile_doc(4_000_000, 1_000_000, 0, 10)).unwrap();
        let r = diff(&a, &b);
        let doc = parse(&render_json("a.json", "b.json", &r)).expect("diff json must parse");
        assert_eq!(
            doc.get("schema_version").unwrap().as_u64(),
            Some(DIFF_SCHEMA_VERSION)
        );
        assert_eq!(doc.get("tool").unwrap().as_str(), Some("obsctl-diff"));
        assert_eq!(doc.get("wall_delta_ns").unwrap().as_u64(), Some(2_100_000));
        let contributors = doc.get("contributors").unwrap().as_arr().unwrap();
        assert!(!contributors.is_empty());
        let text = render_text("a.json", "b.json", &r);
        assert!(text.contains("fig3@4000/numeric"), "{}", text);
    }

    #[test]
    fn attribute_metric_names_same_workload_stages() {
        let a = summarize(&profile_doc(2_000_000, 900_000, 10, 0)).unwrap();
        let b = summarize(&profile_doc(4_000_000, 1_000_000, 0, 10)).unwrap();
        let top = attribute_metric("fig3@4000/wall", &a, &b, 3);
        assert!(!top.is_empty() && top.len() <= 3);
        assert_eq!(top[0].metric, "fig3@4000/numeric");
    }
}
