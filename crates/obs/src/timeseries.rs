//! Bounded time-series ring of observability frames.
//!
//! The post-mortem layers (counters, histograms, journal, op ledger)
//! answer "what happened" after a workload exits. The time-series ring
//! is the live half: a background sampler ([`crate::collector`])
//! captures one [`Frame`] — a timestamped [`ObsReport`] covering
//! counters, gauges, memstats, histogram tails, pool stats, and the
//! op-ledger per-kind figures — every interval and pushes it here, so
//! an HTTP endpoint or terminal view can read p50/p99 and pool
//! behavior *while the workload runs*.
//!
//! Design notes, and where this deliberately differs from the
//! journal's seqlock ring:
//!
//! * **Bounded ring, overwrite-oldest, exact drop accounting.** Like
//!   the journal, the ring keeps the newest `capacity` frames and
//!   counts what wraparound evicted: `dropped = recorded − capacity`
//!   when positive, exactly. Capacity comes from `AARRAY_OBS_FRAMES`
//!   (default 1024 ≈ a few MiB of frames), with the shared warn-once
//!   parse-failure contract (`Counter::EnvParseError` + one stderr
//!   warning, keep the default).
//!
//! * **Mutex'd slots, not a seqlock.** Journal records are five words
//!   written on ns-scale hot paths — they need the lock-free seqlock.
//!   A frame is a heap-carrying [`ObsReport`] (full histogram bucket
//!   arrays, so `/metrics` served from the latest frame loses no
//!   fidelity) written by exactly **one** sampler thread at a few Hz;
//!   a per-ring mutex is simpler, safe under `forbid(unsafe_code)`,
//!   and can never contend meaningfully. Nothing on a workload path
//!   ever touches this lock.
//!
//! * **Rates are derived read-side.** A frame stores only cumulative
//!   figures. Windowed `delta()`/`rate_per_sec()` come from *pairs* of
//!   frames at read time ([`Frame::delta`], [`TimeSeriesSnapshot`]) —
//!   the live registries are never reset or otherwise mutated to
//!   manufacture a rate, so the sampler cannot skew the workload's own
//!   post-mortem capture.

use crate::counters::Counter;
use crate::oplog::OpKind;
use crate::report::ObsReport;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Name of the environment variable setting the frame-ring capacity.
/// Unset means [`DEFAULT_FRAMES`]; anything that does not parse as a
/// positive integer is an env-parse error (warn once, keep the
/// default).
pub const FRAMES_ENV: &str = "AARRAY_OBS_FRAMES";

/// Default ring capacity in frames when `AARRAY_OBS_FRAMES` is unset.
pub const DEFAULT_FRAMES: usize = 1024;

/// Parse the capacity knob. `Ok` for unset (default) or a positive
/// integer; `Err` for anything else, including `0` — a ring that can
/// hold nothing is a misconfiguration, not a mode. Frames are heavier
/// than journal records, so the cap is correspondingly lower.
pub(crate) fn parse_capacity(raw: Option<&str>) -> Result<usize, ()> {
    match raw.map(str::trim) {
        None => Ok(DEFAULT_FRAMES),
        Some(s) => match s.parse::<u64>() {
            Ok(n) if n > 0 => Ok(n.min(1 << 20) as usize),
            _ => Err(()),
        },
    }
}

/// Resolve `AARRAY_OBS_FRAMES` with the shared warn-once contract.
pub fn frames_from_env() -> usize {
    let raw = std::env::var(FRAMES_ENV).ok();
    parse_capacity(raw.as_deref()).unwrap_or_else(|()| {
        static WARNED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
        crate::counters::env_parse_error(
            &WARNED,
            FRAMES_ENV,
            raw.as_deref().unwrap_or(""),
            "the default capacity",
        );
        DEFAULT_FRAMES
    })
}

/// One sample: a full [`ObsReport`] capture with its position in the
/// series. Everything derivable (histogram p50/p95/p99 tails, per-kind
/// op rates, pool task deltas) is computed from frames at read time.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Global sample number (claim order; survives eviction gaps).
    pub seq: u64,
    /// Nanoseconds since the ring was created (monotonic).
    pub ts_ns: u64,
    /// The capture itself — cumulative counters/gauges, full histogram
    /// snapshots, memstats, journal and op-ledger figures.
    pub report: ObsReport,
}

impl Frame {
    /// Report-shaped difference since an `earlier` frame (counters,
    /// histogram buckets, and ledger tails diff; gauges and memory
    /// figures carry over as last-values).
    pub fn delta(&self, earlier: &Frame) -> ObsReport {
        self.report.since(&earlier.report)
    }

    /// Window length against an earlier frame, in seconds.
    pub fn window_secs(&self, earlier: &Frame) -> f64 {
        self.ts_ns.saturating_sub(earlier.ts_ns) as f64 / 1e9
    }

    /// Windowed per-second rate of one counter, derived from the frame
    /// pair (0.0 when the window is empty or degenerate).
    pub fn rate_per_sec(&self, earlier: &Frame, c: Counter) -> f64 {
        let dt = self.window_secs(earlier);
        if dt <= 0.0 {
            return 0.0;
        }
        self.report
            .counters
            .get(c)
            .saturating_sub(earlier.report.counters.get(c)) as f64
            / dt
    }

    /// Windowed per-second completion rate of one op kind.
    pub fn ops_rate_per_sec(&self, earlier: &Frame, kind: OpKind) -> f64 {
        let dt = self.window_secs(earlier);
        if dt <= 0.0 {
            return 0.0;
        }
        let later = self.report.ops.tails[kind as usize].count();
        let before = earlier.report.ops.tails[kind as usize].count();
        later.saturating_sub(before) as f64 / dt
    }
}

/// Summary figures of the ring, mirroring [`crate::JournalStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeriesStats {
    /// Frames ever pushed (including evicted ones).
    pub recorded: u64,
    /// Frames evicted by ring wraparound.
    pub dropped: u64,
    /// Ring capacity in frames.
    pub capacity: u64,
}

/// The bounded frame ring. One instance per [`crate::Collector`];
/// tests can build private rings with [`TimeSeriesRing::with_capacity`].
pub struct TimeSeriesRing {
    frames: Mutex<VecDeque<Frame>>,
    capacity: usize,
    /// Frames ever pushed; also readable lock-free for liveness checks.
    recorded: AtomicU64,
    base: Instant,
}

impl TimeSeriesRing {
    /// A ring sized from `AARRAY_OBS_FRAMES` (warn-once default 1024).
    pub fn from_env() -> TimeSeriesRing {
        TimeSeriesRing::with_capacity(frames_from_env())
    }

    /// A private ring with an explicit capacity (tests, embedders).
    pub fn with_capacity(capacity: usize) -> TimeSeriesRing {
        let capacity = capacity.max(1);
        TimeSeriesRing {
            frames: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            recorded: AtomicU64::new(0),
            base: Instant::now(),
        }
    }

    /// Ring capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames ever pushed.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Acquire)
    }

    /// Frames evicted by wraparound so far — always exactly
    /// `recorded − capacity` when positive.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity as u64)
    }

    /// Capture the current state of every obs layer and push it as the
    /// newest frame, evicting the oldest when full. Returns the
    /// frame's sequence number. Intended for a **single** sampler
    /// writer; concurrent pushes stay correct (the mutex serializes
    /// them), they just interleave claim order.
    pub fn sample_now(&self) -> u64 {
        self.push_report(ObsReport::capture())
    }

    /// Push an already-captured report (the bench uses this to time
    /// capture and push separately).
    pub fn push_report(&self, report: ObsReport) -> u64 {
        let ts_ns = self.base.elapsed().as_nanos() as u64;
        let mut frames = self.frames.lock().unwrap_or_else(|e| e.into_inner());
        let seq = self.recorded.fetch_add(1, Ordering::AcqRel);
        if frames.len() == self.capacity {
            frames.pop_front();
        }
        frames.push_back(Frame { seq, ts_ns, report });
        seq
    }

    /// Summary figures without copying frames.
    pub fn stats(&self) -> SeriesStats {
        SeriesStats {
            recorded: self.recorded(),
            dropped: self.dropped(),
            capacity: self.capacity as u64,
        }
    }

    /// Copy out the surviving frames, oldest first, with the drop
    /// accounting that makes eviction visible to readers.
    pub fn snapshot(&self) -> TimeSeriesSnapshot {
        let frames: Vec<Frame> = {
            let g = self.frames.lock().unwrap_or_else(|e| e.into_inner());
            g.iter().cloned().collect()
        };
        TimeSeriesSnapshot {
            stats: self.stats(),
            frames,
        }
    }

    /// The newest frame, if any was ever pushed.
    pub fn latest(&self) -> Option<Frame> {
        let g = self.frames.lock().unwrap_or_else(|e| e.into_inner());
        g.back().cloned()
    }
}

/// A drained copy of the ring: surviving frames oldest-first plus drop
/// accounting.
#[derive(Clone, Debug)]
pub struct TimeSeriesSnapshot {
    /// Recorded/dropped/capacity at snapshot time.
    pub stats: SeriesStats,
    /// Surviving frames, oldest first.
    pub frames: Vec<Frame>,
}

impl TimeSeriesSnapshot {
    /// Render the series as a stable JSON document for `/series.json`:
    /// drop accounting, one timestamp per frame, and windowed metric
    /// columns (each value at index `i` is derived from the frame pair
    /// `(i−1, i)`; index 0 is 0). Sparkline-ready: every column has
    /// exactly `frames.len()` entries.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema_version\": 1,\n  \"tool\": \"aarray-series\",\n");
        out.push_str(&format!(
            "  \"frames\": {{\"recorded\": {}, \"dropped\": {}, \"capacity\": {}}},\n",
            self.stats.recorded, self.stats.dropped, self.stats.capacity
        ));

        out.push_str("  \"t_ms\": [");
        for (i, f) in self.frames.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{:.3}", f.ts_ns as f64 / 1e6));
        }
        out.push_str("],\n  \"series\": {");

        let mut first_col = true;
        let mut column = |name: &str, values: Vec<String>| {
            if !first_col {
                out.push(',');
            }
            first_col = false;
            out.push_str(&format!("\n    \"{}\": [{}]", name, values.join(", ")));
        };

        // Windowed rates from frame pairs — never from the registry.
        let pair_rate = |f: &dyn Fn(&Frame, &Frame) -> f64| -> Vec<String> {
            self.frames
                .iter()
                .enumerate()
                .map(|(i, later)| {
                    if i == 0 {
                        "0".to_string()
                    } else {
                        format!("{:.3}", f(later, &self.frames[i - 1]))
                    }
                })
                .collect()
        };
        let counter_rate = |c: Counter| pair_rate(&|l: &Frame, e: &Frame| l.rate_per_sec(e, c));

        column(
            "ops.rate_per_s",
            pair_rate(&|l: &Frame, e: &Frame| {
                let dt = l.window_secs(e);
                if dt <= 0.0 {
                    0.0
                } else {
                    l.report.ops.recorded.saturating_sub(e.report.ops.recorded) as f64 / dt
                }
            }),
        );
        for &(kind, name) in crate::oplog::OP_KIND_NAMES.iter() {
            // Only kinds that ever completed get columns, so idle
            // workloads stay compact.
            let total = self
                .frames
                .last()
                .map_or(0, |f| f.report.ops.tails[kind as usize].count());
            if total == 0 {
                continue;
            }
            column(
                &format!("ops.{}.rate_per_s", name),
                pair_rate(&|l: &Frame, e: &Frame| l.ops_rate_per_sec(e, kind)),
            );
            column(
                &format!("ops.{}.p95_ns", name),
                self.frames
                    .iter()
                    .enumerate()
                    .map(|(i, later)| {
                        if i == 0 {
                            "0".to_string()
                        } else {
                            let w = later.report.ops.tails[kind as usize]
                                .since(&self.frames[i - 1].report.ops.tails[kind as usize]);
                            w.quantile(0.95).to_string()
                        }
                    })
                    .collect(),
            );
        }
        column(
            "journal.rate_per_s",
            pair_rate(&|l: &Frame, e: &Frame| {
                let dt = l.window_secs(e);
                if dt <= 0.0 {
                    0.0
                } else {
                    l.report
                        .journal
                        .recorded
                        .saturating_sub(e.report.journal.recorded) as f64
                        / dt
                }
            }),
        );
        column("flops.rate_per_s", counter_rate(Counter::FlopsTotal));
        column(
            "pool.tasks.rate_per_s",
            pair_rate(&|l: &Frame, e: &Frame| {
                l.rate_per_sec(e, Counter::PoolTasksLocal)
                    + l.rate_per_sec(e, Counter::PoolTasksStolen)
                    + l.rate_per_sec(e, Counter::PoolTasksInline)
            }),
        );
        column(
            "pool.threads",
            self.frames
                .iter()
                .map(|f| {
                    f.report
                        .counters
                        .gauge(crate::counters::Gauge::PoolThreads)
                        .to_string()
                })
                .collect(),
        );
        column(
            "mem.current_bytes",
            self.frames
                .iter()
                .map(|f| {
                    crate::memstats::MEM_REGION_NAMES
                        .iter()
                        .map(|&(r, _)| f.report.mem.current(r))
                        .sum::<u64>()
                        .to_string()
                })
                .collect(),
        );

        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::counters;

    #[test]
    fn parse_capacity_accepts_positive_and_defaults_unset() {
        assert_eq!(parse_capacity(None), Ok(DEFAULT_FRAMES));
        assert_eq!(parse_capacity(Some("16")), Ok(16));
        assert_eq!(parse_capacity(Some(" 64 ")), Ok(64));
        // The cap protects against absurd frame allocations.
        assert_eq!(parse_capacity(Some("99999999999")), Ok(1 << 20));
    }

    #[test]
    fn parse_capacity_rejects_zero_junk_and_negatives() {
        assert_eq!(parse_capacity(Some("0")), Err(()));
        assert_eq!(parse_capacity(Some("-5")), Err(()));
        assert_eq!(parse_capacity(Some("lots")), Err(()));
        assert_eq!(parse_capacity(Some("")), Err(()));
    }

    #[test]
    fn env_fallback_counts_a_parse_error() {
        // Both branches of the warn-once contract: a bad value falls
        // back to the default and bumps `Counter::EnvParseError`. The
        // env var itself cannot be set process-wide from a parallel
        // test, so exercise the fallback path directly.
        let before = counters().get(Counter::EnvParseError);
        static WARNED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
        let cap = parse_capacity(Some("not-a-number")).unwrap_or_else(|()| {
            crate::counters::env_parse_error(&WARNED, FRAMES_ENV, "not-a-number", "the default");
            DEFAULT_FRAMES
        });
        assert_eq!(cap, DEFAULT_FRAMES);
        assert!(counters().get(Counter::EnvParseError) > before);
    }

    #[test]
    fn ring_keeps_newest_and_accounts_drops_exactly() {
        let ring = TimeSeriesRing::with_capacity(4);
        for _ in 0..10 {
            ring.sample_now();
        }
        let snap = ring.snapshot();
        assert_eq!(snap.stats.recorded, 10);
        assert_eq!(snap.stats.capacity, 4);
        // Exact accounting, like the journal: dropped = recorded − capacity.
        assert_eq!(snap.stats.dropped, 6);
        assert_eq!(snap.frames.len(), 4);
        // Survivors are the newest, in order.
        let seqs: Vec<u64> = snap.frames.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert!(snap.frames.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn no_drops_before_wraparound() {
        let ring = TimeSeriesRing::with_capacity(8);
        for _ in 0..8 {
            ring.sample_now();
        }
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.recorded(), 8);
    }

    #[test]
    fn rates_are_derived_from_frame_pairs_not_the_registry() {
        let ring = TimeSeriesRing::with_capacity(8);
        ring.sample_now();
        let registry_before = counters().get(Counter::IntersectMerge);
        counters().add(Counter::IntersectMerge, 5);
        std::thread::sleep(std::time::Duration::from_millis(5));
        ring.sample_now();
        let snap = ring.snapshot();
        let (a, b) = (&snap.frames[0], &snap.frames[1]);
        let d = b.delta(a);
        assert!(d.counters.get(Counter::IntersectMerge) >= 5);
        assert!(b.rate_per_sec(a, Counter::IntersectMerge) > 0.0);
        // Deriving the rate did not mutate the live registry.
        assert!(counters().get(Counter::IntersectMerge) >= registry_before + 5);
        // Degenerate window: rate against itself is 0, not NaN/inf.
        assert_eq!(b.rate_per_sec(b, Counter::IntersectMerge), 0.0);
    }

    #[test]
    fn series_json_is_balanced_and_column_lengths_match() {
        let ring = TimeSeriesRing::with_capacity(8);
        for _ in 0..3 {
            counters().incr(Counter::IntersectMerge);
            ring.sample_now();
        }
        let j = ring.snapshot().to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{}", j);
        assert_eq!(j.matches('[').count(), j.matches(']').count(), "{}", j);
        assert!(j.contains("\"recorded\": 3"));
        assert!(j.contains("\"journal.rate_per_s\""));
        assert!(j.contains("\"mem.current_bytes\""));
        // Every column carries exactly one value per frame.
        for line in j.lines().filter(|l| l.contains("rate_per_s\": [")) {
            let vals = line.split('[').nth(1).unwrap().split(']').next().unwrap();
            assert_eq!(vals.split(", ").count(), 3, "{}", line);
        }
    }

    #[test]
    fn latest_returns_newest_frame() {
        let ring = TimeSeriesRing::with_capacity(2);
        assert!(ring.latest().is_none());
        ring.sample_now();
        ring.sample_now();
        ring.sample_now();
        assert_eq!(ring.latest().unwrap().seq, 2);
    }
}
