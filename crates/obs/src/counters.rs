//! The always-on kernel counter registry.
//!
//! One process-wide table of relaxed atomic counters ([`Counter`]) and
//! last-value gauges ([`Gauge`]). Kernels record events with
//! [`Registry::incr`] / [`Registry::add`] / [`Registry::store`];
//! analysis code takes [`Snapshot`]s and diffs them around a workload:
//!
//! ```
//! use aarray_obs::{counters, Counter};
//!
//! let before = aarray_obs::snapshot();
//! counters().incr(Counter::FusedTraversals);
//! counters().add(Counter::FusedLanes, 7);
//! let delta = aarray_obs::snapshot().since(&before);
//! assert_eq!(delta.get(Counter::FusedTraversals), 1);
//! assert_eq!(delta.get(Counter::FusedLanes), 7);
//! println!("{}", delta);
//! ```
//!
//! All operations are `Ordering::Relaxed`: the registry observes
//! monotone event totals, never synchronizes data, so no fence is
//! needed and the cost is a single uncontended atomic RMW (~1–5 ns).
//! Counts from concurrently running work interleave — diff-based
//! assertions should use `>=` unless the process is otherwise quiet.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone event counters, one per kernel decision the execution
/// layer can take.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// `KeySet::intersect` served by the shared-`Arc` identity path.
    IntersectArcIdentity,
    /// `KeySet::intersect` served by the contiguous-prefix path
    /// (subsumes equal-but-distinct storage).
    IntersectPrefix,
    /// `KeySet::intersect` short-circuited by disjoint key ranges.
    IntersectDisjointRange,
    /// `KeySet::intersect` fell through to the general merge walk.
    IntersectMerge,
    /// A plan's symbolic pattern was computed (cold `OnceLock`).
    PlanSymbolicMiss,
    /// A plan execute reused the memoized symbolic pattern.
    PlanSymbolicHit,
    /// A plan materialized an operand transpose at construction.
    PlanTransposeBuilt,
    /// A plan execute was served by an already-materialized transpose
    /// (work a planless `transpose().matmul(..)` would redo).
    PlanTransposeReused,
    /// Serial kernel chosen by the flops-based dispatch.
    DispatchSerial,
    /// Row-parallel kernel chosen by the flops-based dispatch.
    DispatchParallel,
    /// One-pair SpGEMM ran with the SPA accumulator.
    KernelSpa,
    /// One-pair SpGEMM ran with the hash accumulator.
    KernelHash,
    /// One-pair SpGEMM ran with the expand-sort-compress accumulator.
    KernelEsc,
    /// One-pair SpGEMM ran row-parallel.
    KernelParallel,
    /// Fused multi-semiring numeric traversals executed.
    FusedTraversals,
    /// Total accumulator lanes across fused traversals.
    FusedLanes,
    /// Fused traversals using the SPA slot lookup.
    FusedSpa,
    /// Fused traversals using the hash slot lookup.
    FusedHash,
    /// Fused traversals that ran row-parallel.
    FusedParallel,
    /// Cumulative `⊗`-term count of executed products (where the
    /// dispatch estimate was computed).
    FlopsTotal,
    /// An observability/dispatch environment variable was set but
    /// unparsable; the documented default was used instead (warned once
    /// per variable on stderr).
    EnvParseError,
    /// Incremental adjacency update applied a delta product in place.
    IncrementalApply,
    /// Incremental update degraded to a full rebuild (non-associative
    /// `⊕`, or a batch that violated the append-only key contract).
    IncrementalFallback,
    /// Edge batches appended through an `IncidenceBuilder`.
    IncrementalBatches,
    /// Edges appended across all batches.
    IncrementalEdges,
    /// Delta SpGEMM traversals executed (one per refresh that took the
    /// incremental path, covering all fused lanes).
    DeltaTraversals,
    /// Thread-pool chunks executed by the worker owning their deque
    /// slot (or inline when no fan-out happened).
    PoolTasksLocal,
    /// Thread-pool chunks claimed by a different thread than the one
    /// they were queued for (work-stealing, including the submitter
    /// helping while it waits).
    PoolTasksStolen,
    /// Work executed inline on the submitting thread without the pool:
    /// parallel regions that degraded to a loop (pool size ≤ 1, nested
    /// fan-out on a worker) plus serial kernel/fused traversals that
    /// never consulted the pool at all. Nonzero here is the proof that
    /// single-thread runs did real work even when `pool.tasks-local`
    /// stays 0.
    PoolTasksInline,
    /// `KeyDict::intern_sorted` resolved a key already in the
    /// dictionary.
    InternHit,
    /// `KeyDict::intern_sorted` assigned a fresh id (dictionary grew).
    InternMiss,
    /// `KeySet::intersect` ran the integer rank-merge walk (same
    /// dictionary, zero string comparisons).
    IntersectIdSpace,
    /// `KeySet::from_sorted_unique` received keys that were not sorted
    /// and deduplicated, and repaired them (contract violation by the
    /// caller; warned once on stderr).
    KeysSortRepair,
}

/// Last-value gauges (stores, not sums).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// The flops estimate that drove the most recent dispatch decision.
    DispatchLastFlops,
    /// The parallel-dispatch flops threshold in effect at the most
    /// recent decision.
    DispatchThreshold,
    /// Size of the rayon pool observed at the most recent parallel
    /// kernel (threads, including the submitting one).
    PoolThreads,
    /// Heap bytes held by the process-global key dictionary (interned
    /// strings plus id tables), published after each growth.
    InternDictBytes,
}

const N_COUNTERS: usize = Counter::KeysSortRepair as usize + 1;
const N_GAUGES: usize = Gauge::InternDictBytes as usize + 1;

/// Every counter with its report label, in display order.
pub const COUNTER_NAMES: [(Counter, &str); N_COUNTERS] = [
    (Counter::IntersectArcIdentity, "intersect.arc-identity"),
    (Counter::IntersectPrefix, "intersect.prefix"),
    (Counter::IntersectDisjointRange, "intersect.disjoint-range"),
    (Counter::IntersectMerge, "intersect.merge"),
    (Counter::PlanSymbolicMiss, "plan.symbolic-miss"),
    (Counter::PlanSymbolicHit, "plan.symbolic-hit"),
    (Counter::PlanTransposeBuilt, "plan.transpose-built"),
    (Counter::PlanTransposeReused, "plan.transpose-reused"),
    (Counter::DispatchSerial, "dispatch.serial"),
    (Counter::DispatchParallel, "dispatch.parallel"),
    (Counter::KernelSpa, "kernel.spa"),
    (Counter::KernelHash, "kernel.hash"),
    (Counter::KernelEsc, "kernel.esc"),
    (Counter::KernelParallel, "kernel.parallel"),
    (Counter::FusedTraversals, "fused.traversals"),
    (Counter::FusedLanes, "fused.lanes"),
    (Counter::FusedSpa, "fused.spa"),
    (Counter::FusedHash, "fused.hash"),
    (Counter::FusedParallel, "fused.parallel"),
    (Counter::FlopsTotal, "flops.total"),
    (Counter::EnvParseError, "env.parse-error"),
    (Counter::IncrementalApply, "incremental.apply"),
    (Counter::IncrementalFallback, "incremental.fallback"),
    (Counter::IncrementalBatches, "incremental.batches"),
    (Counter::IncrementalEdges, "incremental.edges"),
    (Counter::DeltaTraversals, "delta.traversals"),
    (Counter::PoolTasksLocal, "pool.tasks-local"),
    (Counter::PoolTasksStolen, "pool.tasks-stolen"),
    (Counter::PoolTasksInline, "pool.tasks-inline"),
    (Counter::InternHit, "intern.hits"),
    (Counter::InternMiss, "intern.misses"),
    (Counter::IntersectIdSpace, "intersect.id-space"),
    (Counter::KeysSortRepair, "keys.sort-repair"),
];

/// Every gauge with its report label, in display order.
pub const GAUGE_NAMES: [(Gauge, &str); N_GAUGES] = [
    (Gauge::DispatchLastFlops, "dispatch.last-flops"),
    (Gauge::DispatchThreshold, "dispatch.threshold"),
    (Gauge::PoolThreads, "pool.threads"),
    (Gauge::InternDictBytes, "intern.dict-bytes"),
];

/// The process-wide counter table. Obtain via [`counters`].
pub struct Registry {
    cells: [AtomicU64; N_COUNTERS],
    gauges: [AtomicU64; N_GAUGES],
}

impl Registry {
    const fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the arrays element-wise.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Registry {
            cells: [ZERO; N_COUNTERS],
            gauges: [ZERO; N_GAUGES],
        }
    }

    /// Increment `c` by one.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.cells[c as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Increment `c` by `n`.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        self.cells[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Store `v` into gauge `g` (last write wins).
    #[inline]
    pub fn store(&self, g: Gauge, v: u64) {
        self.gauges[g as usize].store(v, Ordering::Relaxed);
    }

    /// Current value of counter `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.cells[c as usize].load(Ordering::Relaxed)
    }

    /// Current value of gauge `g`.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize].load(Ordering::Relaxed)
    }

    /// Capture every counter and gauge.
    pub fn snapshot(&self) -> Snapshot {
        let mut s = Snapshot::default();
        for i in 0..N_COUNTERS {
            s.counters[i] = self.cells[i].load(Ordering::Relaxed);
        }
        for i in 0..N_GAUGES {
            s.gauges[i] = self.gauges[i].load(Ordering::Relaxed);
        }
        s
    }

    /// Zero every counter and gauge. Counts recorded by concurrently
    /// running threads between the constituent stores may survive;
    /// prefer snapshot diffs for measurements.
    pub fn reset(&self) {
        for c in &self.cells {
            c.store(0, Ordering::Relaxed);
        }
        for g in &self.gauges {
            g.store(0, Ordering::Relaxed);
        }
    }
}

static REGISTRY: Registry = Registry::new();

/// The process-wide [`Registry`].
#[inline]
pub fn counters() -> &'static Registry {
    &REGISTRY
}

/// Record a failed environment-variable parse: bumps
/// [`Counter::EnvParseError`] and emits a stderr warning **once** per
/// call site — `once` is a `static AtomicBool` owned by the caller, one
/// per variable, so repeated re-reads of the same bad value stay quiet
/// after the first report while the counter keeps the true event count.
pub fn env_parse_error(
    once: &'static std::sync::atomic::AtomicBool,
    var: &str,
    raw: &str,
    fallback: &str,
) {
    counters().incr(Counter::EnvParseError);
    if !once.swap(true, Ordering::Relaxed) {
        eprintln!(
            "aarray: warning: ignoring unparsable {}={:?}; using {}",
            var, raw, fallback
        );
    }
}

/// Shorthand for `counters().snapshot()`.
pub fn snapshot() -> Snapshot {
    REGISTRY.snapshot()
}

/// A point-in-time copy of the registry — also the *diff* type
/// ([`Snapshot::since`]) and the report type (`Display`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    counters: [u64; N_COUNTERS],
    gauges: [u64; N_GAUGES],
}

// Manual: `[u64; N]` only derives `Default` up to N = 32 on this
// toolchain, and the counter table has outgrown that.
impl Default for Snapshot {
    fn default() -> Self {
        Snapshot {
            counters: [0; N_COUNTERS],
            gauges: [0; N_GAUGES],
        }
    }
}

impl Snapshot {
    /// Value of counter `c` in this snapshot.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Value of gauge `g` in this snapshot.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// Counter-wise difference `self − earlier` (saturating, so a
    /// concurrent [`Registry::reset`] cannot underflow). Gauges carry
    /// over from `self` — they are last-values, not sums.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let mut d = self.clone();
        for i in 0..N_COUNTERS {
            d.counters[i] = self.counters[i].saturating_sub(earlier.counters[i]);
        }
        d
    }

    /// Sum of all counters (total recorded events; gauges excluded).
    pub fn total_events(&self) -> u64 {
        self.counters.iter().sum()
    }

    /// Difference `self − earlier` packaged for display: rendering
    /// skips zero-delta counters and gauges unless `full` is set, so a
    /// figure's delta shows only the events it actually caused.
    pub fn diff(&self, earlier: &Snapshot, full: bool) -> SnapshotDiff {
        SnapshotDiff {
            delta: self.since(earlier),
            full,
        }
    }
}

/// A displayable [`Snapshot::diff`]: the same numbers as
/// [`Snapshot::since`], rendered name-sorted and (unless `full`)
/// without zero-delta entries.
#[derive(Clone, Debug)]
pub struct SnapshotDiff {
    /// The counter-wise delta (gauges carried from the later snapshot).
    pub delta: Snapshot,
    full: bool,
}

impl fmt::Display for SnapshotDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_registry(f, &self.delta, self.full)
    }
}

/// Shared renderer: name-sorted counters then gauges, optionally
/// eliding zero entries.
fn write_registry(f: &mut fmt::Formatter<'_>, snap: &Snapshot, full: bool) -> fmt::Result {
    writeln!(f, "counter registry")?;
    let mut counters: Vec<(&str, u64)> = COUNTER_NAMES
        .iter()
        .map(|&(c, name)| (name, snap.get(c)))
        .collect();
    counters.sort_by_key(|&(name, _)| name);
    let mut shown = 0usize;
    for (name, v) in counters {
        if full || v != 0 {
            writeln!(f, "  {:<26} {:>12}", name, v)?;
            shown += 1;
        }
    }
    let mut gauges: Vec<(&str, u64)> = GAUGE_NAMES
        .iter()
        .map(|&(g, name)| (name, snap.gauge(g)))
        .collect();
    gauges.sort_by_key(|&(name, _)| name);
    for (name, v) in gauges {
        if full || v != 0 {
            writeln!(f, "  {:<26} {:>12}  (gauge)", name, v)?;
            shown += 1;
        }
    }
    if shown == 0 {
        writeln!(f, "  (no nonzero entries)")?;
    }
    Ok(())
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_registry(f, self, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incr_add_and_diff() {
        let before = snapshot();
        counters().incr(Counter::IntersectMerge);
        counters().add(Counter::FlopsTotal, 41);
        counters().incr(Counter::FlopsTotal);
        let delta = snapshot().since(&before);
        assert_eq!(delta.get(Counter::IntersectMerge), 1);
        assert_eq!(delta.get(Counter::FlopsTotal), 42);
        assert!(delta.total_events() >= 43);
    }

    #[test]
    fn gauges_store_last_value() {
        counters().store(Gauge::DispatchLastFlops, 7);
        counters().store(Gauge::DispatchLastFlops, 9);
        assert_eq!(snapshot().gauge(Gauge::DispatchLastFlops), 9);
    }

    #[test]
    fn display_lists_every_counter() {
        let report = snapshot().to_string();
        for (_, name) in COUNTER_NAMES {
            assert!(report.contains(name), "report missing {}", name);
        }
        assert!(report.contains("dispatch.threshold"));
    }

    #[test]
    fn diff_saturates_instead_of_underflowing() {
        let mut later = Snapshot::default();
        let mut earlier = Snapshot::default();
        later.counters[0] = 1;
        earlier.counters[0] = 5;
        assert_eq!(later.since(&earlier).counters[0], 0);
    }

    #[test]
    fn names_are_in_enum_order() {
        for (i, (c, _)) in COUNTER_NAMES.iter().enumerate() {
            assert_eq!(*c as usize, i, "COUNTER_NAMES[{}] out of order", i);
        }
    }

    #[test]
    fn display_is_name_sorted() {
        let report = snapshot().to_string();
        let lines: Vec<&str> = report
            .lines()
            .skip(1)
            .filter(|l| !l.contains("(gauge)"))
            .map(|l| l.trim_start())
            .collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "counters must render name-sorted");
    }

    #[test]
    fn diff_skips_zero_deltas_unless_full() {
        let before = snapshot();
        counters().incr(Counter::PlanTransposeBuilt);
        let after = snapshot();
        let compact = after.diff(&before, false).to_string();
        assert!(compact.contains("plan.transpose-built"), "{}", compact);
        // Pin a counter this test binary never touches: with a
        // process-quiet registry its delta is zero and must be elided.
        let d = after.since(&before);
        if d.get(Counter::KernelEsc) == 0 {
            assert!(!compact.contains("kernel.esc"), "{}", compact);
        }
        let full = after.diff(&before, true).to_string();
        for (_, name) in COUNTER_NAMES {
            assert!(full.contains(name), "full diff missing {}", name);
        }
    }

    #[test]
    fn env_parse_error_counts_every_event_and_warns_once() {
        use std::sync::atomic::AtomicBool;
        static ONCE: AtomicBool = AtomicBool::new(false);
        let before = snapshot();
        env_parse_error(&ONCE, "AARRAY_TEST_VAR", "128k", "the default");
        env_parse_error(&ONCE, "AARRAY_TEST_VAR", "128k", "the default");
        let delta = snapshot().since(&before);
        assert!(delta.get(Counter::EnvParseError) >= 2);
        assert!(ONCE.load(Ordering::Relaxed), "warning flag must latch");
    }

    #[test]
    fn all_zero_diff_renders_placeholder() {
        let s = Snapshot::default();
        let compact = s.diff(&Snapshot::default(), false).to_string();
        assert!(compact.contains("(no nonzero entries)"), "{}", compact);
    }
}
