//! Pluggable export of the full observability state.
//!
//! [`ObsReport::capture`] snapshots all three always-on layers —
//! counters + gauges, histograms, memory accounting — into one value
//! with two textual exporters:
//!
//! * [`ObsReport::to_json`] — a stable, diffable JSON object (keys
//!   sorted by metric name, zero-count histogram buckets elided) that
//!   the `obsctl` harness embeds in schema-versioned `BENCH_*.json`
//!   files;
//! * [`ObsReport::to_prometheus`] — Prometheus text exposition format
//!   (`# TYPE` comments, cumulative `_bucket{le=...}` histogram
//!   series), ready to serve from a `/metrics` endpoint or scrape via
//!   the node-exporter textfile collector.
//!
//! Both formats are produced without any serialization dependency —
//! the offline `serde_json` stub is empty, and hand-emission keeps the
//! obs crate dependency-free.

use crate::counters::{Counter, Gauge, Snapshot, COUNTER_NAMES, GAUGE_NAMES};
use crate::histogram::{bucket_upper, histograms, HistogramSnapshot, HIST_NAMES};
use crate::journal::JournalStats;
use crate::memstats::{memstats, MemSnapshot, MEM_REGION_NAMES};
use crate::oplog::{OpsReport, OP_KIND_NAMES};

/// Schema version stamped into every JSON export; bumped whenever the
/// shape of the report changes incompatibly. v4 added the `ops`
/// section (per-operation ledger summary + per-kind tail percentiles).
pub const REPORT_SCHEMA_VERSION: u64 = 4;

/// A point-in-time capture of counters, gauges, histograms, and memory
/// accounting. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct ObsReport {
    /// Counter + gauge snapshot.
    pub counters: Snapshot,
    /// One snapshot per registry histogram, in [`HIST_NAMES`] order.
    pub histograms: Vec<HistogramSnapshot>,
    /// Memory accounting snapshot.
    pub mem: MemSnapshot,
    /// Flight-recorder summary (recorded/dropped/capacity).
    pub journal: JournalStats,
    /// Operation-ledger summary (per-kind wall-time tails and
    /// per-label completion counts).
    pub ops: OpsReport,
}

impl ObsReport {
    /// Capture the current state of every layer.
    pub fn capture() -> Self {
        ObsReport {
            counters: crate::counters::snapshot(),
            histograms: histograms().snapshot_all(),
            mem: memstats().snapshot(),
            journal: crate::journal::journal().stats(),
            ops: crate::oplog::oplog().report(),
        }
    }

    /// Report containing the *difference* since an earlier capture:
    /// counters, histogram buckets, and ledger tails diff; gauges,
    /// watermarks, and memory figures carry over from `self` (they are
    /// last-values).
    pub fn since(&self, earlier: &ObsReport) -> ObsReport {
        ObsReport {
            counters: self.counters.since(&earlier.counters),
            histograms: self
                .histograms
                .iter()
                .zip(earlier.histograms.iter())
                .map(|(a, b)| a.since(b))
                .collect(),
            mem: self.mem.clone(),
            journal: JournalStats {
                recorded: self
                    .journal
                    .recorded
                    .saturating_sub(earlier.journal.recorded),
                dropped: self.journal.dropped.saturating_sub(earlier.journal.dropped),
                capacity: self.journal.capacity,
            },
            ops: self.ops.since(&earlier.ops),
        }
    }

    /// Stable JSON object: metric names sorted within each section,
    /// zero-count buckets elided, `min` reported as 0 when empty.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {},\n",
            REPORT_SCHEMA_VERSION
        ));

        out.push_str("  \"counters\": {");
        append_sorted_u64(
            &mut out,
            COUNTER_NAMES
                .iter()
                .map(|&(c, name)| (name, self.counters.get(c))),
        );
        out.push_str("},\n");

        out.push_str("  \"gauges\": {");
        append_sorted_u64(
            &mut out,
            GAUGE_NAMES
                .iter()
                .map(|&(g, name)| (name, self.counters.gauge(g))),
        );
        out.push_str("},\n");

        out.push_str("  \"histograms\": {");
        let mut hists: Vec<(&str, &HistogramSnapshot)> = HIST_NAMES
            .iter()
            .zip(self.histograms.iter())
            .map(|(&(_, name), s)| (name, s))
            .collect();
        hists.sort_by_key(|&(name, _)| name);
        for (i, (name, s)) in hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&format!("\"{}\": {}", name, histogram_json(s)));
        }
        out.push_str("\n  },\n");

        out.push_str("  \"mem\": {");
        let mut regions: Vec<(&str, u64, u64)> = MEM_REGION_NAMES
            .iter()
            .map(|&(r, name)| (name, self.mem.current(r), self.mem.peak(r)))
            .collect();
        regions.sort_by_key(|&(name, _, _)| name);
        for (i, (name, cur, peak)) in regions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"current\": {}, \"peak\": {}}}",
                name, cur, peak
            ));
        }
        out.push_str("\n  },\n");

        out.push_str(&format!(
            "  \"ops\": {{\"recorded\": {}, \"dropped\": {}, \"capacity\": {},\n    \
             \"pool\": {{\"tasks_local\": {}, \"tasks_stolen\": {}, \"tasks_inline\": {}, \
             \"threads\": {}}},\n    \"kinds\": {{",
            self.ops.recorded,
            self.ops.dropped,
            self.ops.capacity,
            self.counters.get(Counter::PoolTasksLocal),
            self.counters.get(Counter::PoolTasksStolen),
            self.counters.get(Counter::PoolTasksInline),
            self.counters.gauge(Gauge::PoolThreads)
        ));
        let mut kinds: Vec<(&str, &HistogramSnapshot)> = OP_KIND_NAMES
            .iter()
            .zip(self.ops.tails.iter())
            .map(|(&(_, name), s)| (name, s))
            .collect();
        kinds.sort_by_key(|&(name, _)| name);
        for (i, (name, s)) in kinds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}",
                name,
                s.count(),
                s.median(),
                s.quantile(0.95),
                s.quantile(0.99)
            ));
        }
        out.push_str("\n  }},\n");

        out.push_str(&format!(
            "  \"journal\": {{\"recorded\": {}, \"dropped\": {}, \"capacity\": {}}}\n}}\n",
            self.journal.recorded, self.journal.dropped, self.journal.capacity
        ));
        out
    }

    /// Prometheus text exposition format. Metric names are the report
    /// labels with `.`/`-` mapped to `_` and an `aarray_` prefix;
    /// histogram series are cumulative with a `+Inf` bucket, as the
    /// format requires. Every metric family is announced by exactly
    /// one `# HELP` + `# TYPE` pair before its first sample.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);

        let mut counters: Vec<(&str, u64)> = COUNTER_NAMES
            .iter()
            .map(|&(c, name)| (name, self.counters.get(c)))
            .collect();
        counters.sort_by_key(|&(name, _)| name);
        family(
            &mut out,
            "aarray_events_total",
            "Monotone kernel-decision event counters, one series per event kind.",
            "counter",
        );
        for (name, v) in counters {
            out.push_str(&format!(
                "aarray_events_total{{event=\"{}\"}} {}\n",
                escape_label_value(name),
                v
            ));
        }

        let mut gauges: Vec<(&str, u64)> = GAUGE_NAMES
            .iter()
            .map(|&(g, name)| (name, self.counters.gauge(g)))
            .collect();
        gauges.sort_by_key(|&(name, _)| name);
        for (name, v) in gauges {
            let pname = format!("aarray_{}", prom_name(name));
            family(
                &mut out,
                &pname,
                &format!("Last-value gauge `{}`.", name),
                "gauge",
            );
            out.push_str(&format!("{} {}\n", pname, v));
        }

        let mut regions: Vec<(&str, u64, u64)> = MEM_REGION_NAMES
            .iter()
            .map(|&(r, name)| (name, self.mem.current(r), self.mem.peak(r)))
            .collect();
        regions.sort_by_key(|&(name, _, _)| name);
        family(
            &mut out,
            "aarray_mem_current_bytes",
            "Currently accounted bytes per working-set region.",
            "gauge",
        );
        for &(name, cur, _) in &regions {
            out.push_str(&format!(
                "aarray_mem_current_bytes{{region=\"{}\"}} {}\n",
                escape_label_value(name),
                cur
            ));
        }
        family(
            &mut out,
            "aarray_mem_peak_bytes",
            "Peak accounted bytes per working-set region.",
            "gauge",
        );
        for &(name, _, peak) in &regions {
            out.push_str(&format!(
                "aarray_mem_peak_bytes{{region=\"{}\"}} {}\n",
                escape_label_value(name),
                peak
            ));
        }

        family(
            &mut out,
            "aarray_journal_recorded_total",
            "Flight-recorder events ever recorded (including overwritten ones).",
            "counter",
        );
        out.push_str(&format!(
            "aarray_journal_recorded_total {}\n",
            self.journal.recorded
        ));
        family(
            &mut out,
            "aarray_journal_dropped_total",
            "Flight-recorder events overwritten by ring wraparound.",
            "counter",
        );
        out.push_str(&format!(
            "aarray_journal_dropped_total {}\n",
            self.journal.dropped
        ));

        family(
            &mut out,
            "aarray_ops_recorded_total",
            "Operations ever completed into the per-operation ledger.",
            "counter",
        );
        out.push_str(&format!(
            "aarray_ops_recorded_total {}\n",
            self.ops.recorded
        ));
        family(
            &mut out,
            "aarray_ops_dropped_total",
            "Ledger records overwritten by ring wraparound.",
            "counter",
        );
        out.push_str(&format!("aarray_ops_dropped_total {}\n", self.ops.dropped));

        // Per-(kind, label) completion counts. Workload labels are
        // user-influenced strings and must be escaped per the
        // exposition format; kind names are static but go through the
        // same escaper so the invariant holds by construction.
        let mut cells: Vec<(&str, &str, u64)> = Vec::new();
        for (k, &(_, kname)) in OP_KIND_NAMES.iter().enumerate() {
            if let Some(row) = self.ops.label_counts.get(k) {
                for (l, &v) in row.iter().enumerate() {
                    if v == 0 {
                        continue;
                    }
                    cells.push((kname, self.ops.labels.get(l).map_or("", String::as_str), v));
                }
            }
        }
        cells.sort();
        family(
            &mut out,
            "aarray_ops_total",
            "Completed root operations, one series per (kind, workload label).",
            "counter",
        );
        for (kname, label, v) in cells {
            out.push_str(&format!(
                "aarray_ops_total{{kind=\"{}\",label=\"{}\"}} {}\n",
                escape_label_value(kname),
                escape_label_value(label),
                v
            ));
        }

        // Per-kind wall-time tails. Each kind gets its own metric name
        // (rather than a shared name with a `kind` label) because the
        // cumulative bucket series would restart at each kind boundary
        // under one name.
        let mut kinds: Vec<(&str, &HistogramSnapshot)> = OP_KIND_NAMES
            .iter()
            .zip(self.ops.tails.iter())
            .map(|(&(_, name), s)| (name, s))
            .collect();
        kinds.sort_by_key(|&(name, _)| name);
        for (name, s) in kinds {
            let pname = format!("aarray_ops_wall_ns_{}", prom_name(name));
            family(
                &mut out,
                &pname,
                &format!("Wall-clock ns distribution for `{}` operations.", name),
                "histogram",
            );
            let mut cumulative = 0u64;
            for (i, &c) in s.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                out.push_str(&format!(
                    "{}_bucket{{le=\"{}\"}} {}\n",
                    pname,
                    bucket_upper(i),
                    cumulative
                ));
            }
            out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", pname, cumulative));
            out.push_str(&format!("{}_sum {}\n", pname, s.sum));
            out.push_str(&format!("{}_count {}\n", pname, cumulative));
        }

        let mut hists: Vec<(&str, &HistogramSnapshot)> = HIST_NAMES
            .iter()
            .zip(self.histograms.iter())
            .map(|(&(_, name), s)| (name, s))
            .collect();
        hists.sort_by_key(|&(name, _)| name);
        for (name, s) in hists {
            let pname = format!("aarray_{}", prom_name(name));
            family(
                &mut out,
                &pname,
                &format!("Log2-bucketed distribution `{}`.", name),
                "histogram",
            );
            let mut cumulative = 0u64;
            for (i, &c) in s.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                out.push_str(&format!(
                    "{}_bucket{{le=\"{}\"}} {}\n",
                    pname,
                    bucket_upper(i),
                    cumulative
                ));
            }
            out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", pname, cumulative));
            out.push_str(&format!("{}_sum {}\n", pname, s.sum));
            out.push_str(&format!("{}_count {}\n", pname, cumulative));
        }
        out
    }
}

/// Escape a label *value* per the Prometheus text exposition format:
/// backslash, double-quote, and newline must be written as `\\`, `\"`,
/// and `\n`. Everything that lands between `label="…"` quotes —
/// user-influenced workload labels in particular — must pass through
/// here.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Announce one metric family: `# HELP` then `# TYPE`, in that order,
/// exactly once per family (callers emit each family in one place).
/// HELP text follows the exposition-format escaping rule for comments:
/// backslash and newline only.
fn family(out: &mut String, name: &str, help: &str, ty: &str) {
    let mut escaped = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            _ => escaped.push(c),
        }
    }
    out.push_str(&format!("# HELP {} {}\n", name, escaped));
    out.push_str(&format!("# TYPE {} {}\n", name, ty));
}

/// `latency.plan-build-ns` → `latency_plan_build_ns`.
fn prom_name(label: &str) -> String {
    label
        .chars()
        .map(|c| if c == '.' || c == '-' { '_' } else { c })
        .collect()
}

fn histogram_json(s: &HistogramSnapshot) -> String {
    let count = s.count();
    let min = if count == 0 { 0 } else { s.min };
    let mut buckets = String::new();
    let mut first = true;
    for (i, &c) in s.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            buckets.push_str(", ");
        }
        first = false;
        buckets.push_str(&format!("[{}, {}]", bucket_upper(i), c));
    }
    format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": [{}]}}",
        count,
        s.sum,
        min,
        s.max,
        s.median(),
        s.quantile(0.99),
        buckets
    )
}

fn append_sorted_u64<'a>(out: &mut String, entries: impl Iterator<Item = (&'a str, u64)>) {
    let mut v: Vec<(&str, u64)> = entries.collect();
    v.sort_by_key(|&(name, _)| name);
    for (i, (name, val)) in v.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", name, val));
    }
    out.push('\n');
    out.push_str("  ");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn sample_report() -> ObsReport {
        let h = Histogram::new();
        h.record(0);
        h.record(5);
        h.record(900);
        let mut r = ObsReport::capture();
        // Pin one known histogram so format assertions are stable.
        r.histograms[0] = h.snapshot();
        r
    }

    #[test]
    fn json_is_sorted_and_parsable_shape() {
        let j = sample_report().to_json();
        assert!(j.contains("\"schema_version\": 4"));
        // The ops section precedes the journal section and carries a
        // percentile entry per op kind.
        let ops = j.find("\"ops\"").unwrap();
        let journal = j.find("\"journal\"").unwrap();
        assert!(ops < journal, "ops section must precede journal");
        assert!(j.contains("\"plan-execute\": {\"count\": "));
        assert!(j.contains("\"p95_ns\": "));
        // Sorted counters: dispatch.parallel before dispatch.serial,
        // both before fused.*.
        let dp = j.find("\"dispatch.parallel\"").unwrap();
        let ds = j.find("\"dispatch.serial\"").unwrap();
        let ft = j.find("\"fused.traversals\"").unwrap();
        assert!(dp < ds && ds < ft, "counters must be name-sorted");
        // Braces balance (cheap well-formedness check; full parsing is
        // exercised by the harness crate's JSON round-trip test).
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces:\n{}",
            j
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"mem\""));
        assert!(j.contains("\"peak\""));
    }

    #[test]
    fn json_histogram_section_elides_empty_buckets() {
        let j = sample_report().to_json();
        // The pinned histogram: 0 → bucket 0 (upper 0), 5 → [4,7]
        // (upper 7), 900 → [512,1023] (upper 1023).
        assert!(
            j.contains("\"buckets\": [[0, 1], [7, 1], [1023, 1]]"),
            "{}",
            j
        );
        assert!(j.contains("\"count\": 3"));
        assert!(j.contains("\"sum\": 905"));
    }

    #[test]
    fn prometheus_format_invariants() {
        let p = sample_report().to_prometheus();
        let mut last_cumulative: Option<u64> = None;
        let mut in_hist = false;
        let mut pending_help: Option<String> = None;
        for line in p.lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                if let Some(rest) = line.strip_prefix("# HELP ") {
                    // HELP opens a family; the matching TYPE must come
                    // next, before any sample.
                    assert!(pending_help.is_none(), "HELP without TYPE before {}", line);
                    let name = rest.split(' ').next().unwrap().to_string();
                    pending_help = Some(name);
                } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                    let name = rest.split(' ').next().unwrap();
                    assert_eq!(
                        pending_help.take().as_deref(),
                        Some(name),
                        "TYPE not preceded by its HELP: {}",
                        line
                    );
                    in_hist = line.ends_with(" histogram");
                    last_cumulative = None;
                } else {
                    panic!("bad comment: {}", line);
                }
                continue;
            }
            assert!(pending_help.is_none(), "sample between HELP and TYPE");
            // Every sample line is `name{labels} value` or `name value`.
            let (metric, value) = line.rsplit_once(' ').expect(line);
            assert!(
                value.parse::<u64>().is_ok(),
                "non-numeric value in {}",
                line
            );
            assert!(metric.starts_with("aarray_"), "unprefixed metric: {}", line);
            if in_hist && metric.contains("_bucket{") {
                let v: u64 = value.parse().unwrap();
                if let Some(prev) = last_cumulative {
                    assert!(v >= prev, "bucket series must be cumulative: {}", line);
                }
                last_cumulative = Some(v);
            }
        }
        // The +Inf bucket and _count agree for the pinned histogram.
        let hist_name = format!("aarray_{}", prom_name(HIST_NAMES[0].1));
        let inf = p
            .lines()
            .find(|l| l.starts_with(&format!("{}_bucket{{le=\"+Inf\"}}", hist_name)))
            .expect("+Inf bucket present");
        let count = p
            .lines()
            .find(|l| l.starts_with(&format!("{}_count", hist_name)))
            .expect("_count present");
        assert_eq!(
            inf.rsplit_once(' ').unwrap().1,
            count.rsplit_once(' ').unwrap().1
        );
    }

    #[test]
    fn prometheus_every_family_has_help_and_type_exactly_once() {
        // Round trip over a full v4 report: collect the declared
        // families, then check every sample line resolves to exactly
        // one declared family with the right type class.
        let p = sample_report().to_prometheus();
        let mut help_counts: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        let mut types: std::collections::HashMap<String, &str> = std::collections::HashMap::new();
        let mut type_counts: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        for line in p.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap().to_string();
                *help_counts.entry(name).or_insert(0) += 1;
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let name = it.next().unwrap().to_string();
                let ty = it.next().expect("TYPE line has a type");
                assert!(
                    matches!(ty, "counter" | "gauge" | "histogram"),
                    "unknown type: {}",
                    line
                );
                *type_counts.entry(name.clone()).or_insert(0) += 1;
                types.insert(
                    name,
                    match ty {
                        "counter" => "counter",
                        "gauge" => "gauge",
                        _ => "histogram",
                    },
                );
            }
        }
        for (name, n) in &help_counts {
            assert_eq!(*n, 1, "family {} declared HELP {} times", name, n);
        }
        for (name, n) in &type_counts {
            assert_eq!(*n, 1, "family {} declared TYPE {} times", name, n);
            assert!(
                help_counts.contains_key(name),
                "{} has TYPE but no HELP",
                name
            );
        }
        assert_eq!(help_counts.len(), types.len(), "HELP/TYPE sets differ");
        // Counters are monotone `_total` families; gauges never are.
        for (name, ty) in &types {
            match *ty {
                "counter" => assert!(
                    name.ends_with("_total"),
                    "counter family {} must end in _total",
                    name
                ),
                "gauge" => assert!(
                    !name.ends_with("_total"),
                    "gauge family {} must not end in _total",
                    name
                ),
                _ => {}
            }
        }
        // Every sample belongs to a declared family: either its bare
        // name, or — for histogram series — the name minus the
        // `_bucket`/`_sum`/`_count` suffix.
        for line in p.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (metric, _) = line.rsplit_once(' ').unwrap();
            let name = metric.split('{').next().unwrap();
            let fam = if types.contains_key(name) {
                name.to_string()
            } else {
                let base = name
                    .strip_suffix("_bucket")
                    .or_else(|| name.strip_suffix("_sum"))
                    .or_else(|| name.strip_suffix("_count"))
                    .unwrap_or(name);
                assert!(
                    types.contains_key(base),
                    "sample {} has no declared family",
                    line
                );
                assert_eq!(
                    types[base], "histogram",
                    "suffixed sample {} under non-histogram family",
                    line
                );
                base.to_string()
            };
            let _ = fam;
        }
    }

    #[test]
    fn prometheus_escapes_user_influenced_labels_round_trip() {
        // A workload label exercising every escapable character the
        // exposition format defines (no spaces, so the line-shape
        // invariant test stays valid even though this label lands in
        // the process-global table).
        let nasty = "evil\"label\\with\nnewline";
        assert_eq!(escape_label_value(nasty), "evil\\\"label\\\\with\\nnewline");
        // Round trip through an exposition-format unescape.
        fn unescape(v: &str) -> String {
            let mut out = String::new();
            let mut it = v.chars();
            while let Some(c) = it.next() {
                if c != '\\' {
                    out.push(c);
                    continue;
                }
                match it.next() {
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some('n') => out.push('\n'),
                    other => panic!("invalid escape \\{:?}", other),
                }
            }
            out
        }
        assert_eq!(unescape(&escape_label_value(nasty)), nasty);

        // End to end: a ledger record under that label renders as one
        // well-formed, parseable sample line.
        let id = crate::oplog::intern_label(nasty);
        let mut d = crate::oplog::OpDraft::new(crate::oplog::OpKind::Matmul);
        d.label = id;
        d.wall_ns = 10;
        crate::oplog::oplog().record(&d);
        let p = ObsReport::capture().to_prometheus();
        let line = p
            .lines()
            .find(|l| l.starts_with("aarray_ops_total{kind=\"matmul\"") && l.contains("evil"))
            .expect("escaped ops sample present");
        let (metric, value) = line.rsplit_once(' ').unwrap();
        assert!(value.parse::<u64>().is_ok());
        assert!(metric.contains("label=\"evil\\\"label\\\\with\\nnewline\""));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn since_diffs_counters_and_buckets() {
        let before = ObsReport::capture();
        crate::counters().incr(crate::Counter::IntersectMerge);
        histograms().get(crate::Hist::RowNnz).record(3);
        let delta = ObsReport::capture().since(&before);
        assert!(delta.counters.get(crate::Counter::IntersectMerge) >= 1);
        let idx = crate::Hist::RowNnz as usize;
        assert!(delta.histograms[idx].count() >= 1);
    }
}
