//! Flight recorder: an always-on, bounded, lock-free event journal.
//!
//! Counters say *how often* each path was taken; histograms say *how
//! big* the work was. The journal says *when* and *why*: every hot
//! decision point (accumulator choice, serial-vs-parallel dispatch,
//! plan-cache hit/miss, incremental apply vs rebuild) appends a
//! fixed-size record — monotonic timestamp, thread id, event kind,
//! two `u64` payload slots — to a process-wide ring buffer, and the
//! stage boundaries (align / transpose / symbolic / numeric /
//! delta-apply / rebuild) append begin/end pairs so a drained journal
//! doubles as a span timeline without the `trace` feature.
//!
//! Design, mirroring the counter registry's relaxed-atomic discipline:
//!
//! * **Bounded ring, overwrite-oldest.** A writer claims the next
//!   global sequence number with one relaxed `fetch_add` and writes
//!   into `slot[claim % capacity]`. When the ring wraps, the oldest
//!   records are overwritten; nothing ever blocks, and the number of
//!   overwritten (dropped) records is always `recorded − capacity`
//!   when positive.
//! * **Per-slot seqlock.** Each slot carries a sequence word: the
//!   writer stores `2·claim + 1` (odd: in progress), a release fence,
//!   the payload fields, then `2·claim + 2` (even: published).
//!   Readers load the sequence before and after copying the fields
//!   (with an acquire fence in between) and skip the record unless
//!   both loads agree on the same even value — a torn or in-flight
//!   record is never surfaced. The one unprotected interleaving —
//!   two writers whose claims are exactly `capacity` apart racing on
//!   the same slot — requires the whole ring to wrap during one
//!   ~20 ns record write and is accepted as unreachable at the
//!   default capacity.
//! * **Capacity knob.** `AARRAY_OBS_EVENTS` sets the ring capacity in
//!   records (default 65536, ~2.5 MiB); it is read once at the first
//!   record. An unparsable value warns once on stderr, bumps
//!   `Counter::EnvParseError`, and falls back to the default — the
//!   same contract as `AARRAY_OBS_HISTOGRAMS`.
//!
//! A drained [`JournalSnapshot`] exports as Chrome Trace Event Format
//! JSON ([`JournalSnapshot::to_chrome_trace`]) loadable in Perfetto or
//! `chrome://tracing`: stage pairs become `ph: "B"`/`"E"` records on
//! per-thread tracks, explain events become `ph: "i"` instants with
//! their payloads decoded into `args`.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Name of the environment variable setting the journal ring capacity
/// in records. Unset means [`DEFAULT_JOURNAL_EVENTS`]; anything that
/// does not parse as a positive integer is an env-parse error (warn
/// once, keep the default).
pub const JOURNAL_EVENTS_ENV: &str = "AARRAY_OBS_EVENTS";

/// Default ring capacity in records when `AARRAY_OBS_EVENTS` is unset.
pub const DEFAULT_JOURNAL_EVENTS: usize = 65_536;

/// Pipeline stages that emit [`EventKind::StageBegin`] /
/// [`EventKind::StageEnd`] pairs (payload slot `a` carries the stage).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum Stage {
    /// Key alignment during plan construction.
    Align,
    /// Materializing a plan-owned transpose.
    Transpose,
    /// Symbolic (sparsity discovery) pass.
    Symbolic,
    /// Numeric pass (fused traversal or one-shot kernel).
    Numeric,
    /// Incremental delta product + in-place `⊕`-fold.
    DeltaApply,
    /// Full adjacency rebuild (incremental fallback).
    Rebuild,
}

const N_STAGES: usize = Stage::Rebuild as usize + 1;

/// Every stage with its timeline label, in enum order.
pub const STAGE_NAMES: [(Stage, &str); N_STAGES] = [
    (Stage::Align, "align"),
    (Stage::Transpose, "transpose"),
    (Stage::Symbolic, "symbolic"),
    (Stage::Numeric, "numeric"),
    (Stage::DeltaApply, "delta-apply"),
    (Stage::Rebuild, "rebuild"),
];

impl Stage {
    /// The timeline label (`align`, `transpose`, …).
    pub fn name(self) -> &'static str {
        STAGE_NAMES[self as usize].1
    }

    /// Decode a payload slot back into a stage.
    pub fn from_u64(v: u64) -> Option<Stage> {
        STAGE_NAMES.get(v as usize).map(|&(s, _)| s)
    }
}

/// What a journal record describes. Payload slot meanings per kind are
/// documented on each variant as `a` / `b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum EventKind {
    /// A stage began. `a` = [`Stage`], `b` = kind-specific extra
    /// (nnz for align/symbolic, flops for numeric, batch edges for
    /// delta-apply, lanes for rebuild).
    StageBegin,
    /// A stage ended. Payloads mirror the begin record.
    StageEnd,
    /// One-pair kernel accumulator choice. `a` = accumulator code
    /// (0 = spa, 1 = hash, 2 = esc), `b` = 1 if row-parallel.
    KernelChoice,
    /// Fused multi-lane kernel accumulator choice. `a` = accumulator
    /// code (0 = spa, 1 = hash), `b` = `lanes << 1 | parallel`.
    FusedChoice,
    /// Dispatch verdict: serial. `a` = flops estimate (0 when the
    /// single-thread fast path skipped the estimate), `b` = threshold.
    DispatchSerial,
    /// Dispatch verdict: parallel. `a` = flops, `b` = threshold.
    DispatchParallel,
    /// Plan symbolic cache hit. `a` = flops, `b` = memoized nnz.
    PlanCacheHit,
    /// Plan symbolic cache miss (pattern computed). `a` = flops,
    /// `b` = computed nnz.
    PlanCacheMiss,
    /// Incremental refresh applied deltas. `a` = lanes applied,
    /// `b` = batches folded.
    DeltaApply,
    /// Incremental refresh fell back to a rebuild. `a` = lanes
    /// rebuilt, `b` = reason code (0 = non-associative `⊕`,
    /// 1 = barrier / unreplayable log).
    IncrementalFallback,
    /// Per-row kernel shape (emitted only while histograms are
    /// enabled, like the row histograms). `a` = output row index,
    /// `b` = `⊗`-term count (flops) folded for that row.
    RowShape,
}

const N_KINDS: usize = EventKind::RowShape as usize + 1;

/// Every event kind with its export label, in enum order.
pub const EVENT_KIND_NAMES: [(EventKind, &str); N_KINDS] = [
    (EventKind::StageBegin, "stage-begin"),
    (EventKind::StageEnd, "stage-end"),
    (EventKind::KernelChoice, "kernel-choice"),
    (EventKind::FusedChoice, "fused-choice"),
    (EventKind::DispatchSerial, "dispatch-serial"),
    (EventKind::DispatchParallel, "dispatch-parallel"),
    (EventKind::PlanCacheHit, "plan-cache-hit"),
    (EventKind::PlanCacheMiss, "plan-cache-miss"),
    (EventKind::DeltaApply, "delta-apply"),
    (EventKind::IncrementalFallback, "incremental-fallback"),
    (EventKind::RowShape, "row-shape"),
];

impl EventKind {
    /// The export label (`kernel-choice`, `dispatch-serial`, …).
    pub fn name(self) -> &'static str {
        EVENT_KIND_NAMES[self as usize].1
    }

    fn from_u32(v: u32) -> Option<EventKind> {
        EVENT_KIND_NAMES.get(v as usize).map(|&(k, _)| k)
    }
}

/// Accumulator code carried in [`EventKind::KernelChoice`] /
/// [`EventKind::FusedChoice`] payloads.
pub fn accumulator_name(code: u64) -> &'static str {
    match code {
        0 => "spa",
        1 => "hash",
        2 => "esc",
        _ => "unknown",
    }
}

/// One decoded, validated journal record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (claim order; gaps mark overwritten or
    /// torn records).
    pub seq: u64,
    /// Nanoseconds since the process's first journal use (monotonic).
    pub ts_ns: u64,
    /// Small dense per-thread id (assigned on each thread's first
    /// record).
    pub tid: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload slot; meaning depends on `kind`.
    pub a: u64,
    /// Second payload slot; meaning depends on `kind`.
    pub b: u64,
    /// The [`crate::oplog`] operation this record belongs to (the
    /// recording thread's current op at write time; 0 = unattributed).
    pub op: u64,
}

struct Slot {
    /// 0 = never written; `2·claim + 1` = write in progress;
    /// `2·claim + 2` = published.
    seq: AtomicU64,
    ts: AtomicU64,
    /// `tid << 32 | kind` — written as one word so the pair can never
    /// tear against each other.
    tid_kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    /// Originating operation id (0 = none).
    op: AtomicU64,
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            ts: AtomicU64::new(0),
            tid_kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            op: AtomicU64::new(0),
        }
    }
}

fn base_instant() -> &'static Instant {
    static BASE: OnceLock<Instant> = OnceLock::new();
    BASE.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    base_instant().elapsed().as_nanos() as u64
}

fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Parse the capacity knob. `Ok` for unset (default) or a positive
/// integer; `Err` for anything else, including `0` — a journal that
/// can hold nothing is a misconfiguration, not a mode.
fn parse_capacity(raw: Option<&str>) -> Result<usize, ()> {
    match raw.map(str::trim) {
        None => Ok(DEFAULT_JOURNAL_EVENTS),
        Some(s) => match s.parse::<u64>() {
            Ok(n) if n > 0 => Ok(n.min(1 << 28) as usize),
            _ => Err(()),
        },
    }
}

fn capacity_from_env() -> usize {
    let raw = std::env::var(JOURNAL_EVENTS_ENV).ok();
    parse_capacity(raw.as_deref()).unwrap_or_else(|()| {
        static WARNED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
        crate::counters::env_parse_error(
            &WARNED,
            JOURNAL_EVENTS_ENV,
            raw.as_deref().unwrap_or(""),
            "the default capacity",
        );
        DEFAULT_JOURNAL_EVENTS
    })
}

/// Summary figures of the journal, embedded in [`crate::ObsReport`]
/// exports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Events ever recorded (including overwritten ones).
    pub recorded: u64,
    /// Events overwritten by ring wraparound.
    pub dropped: u64,
    /// Ring capacity in records.
    pub capacity: u64,
}

/// The flight recorder. One process-wide instance is reachable via
/// [`journal`]; tests can build private rings with
/// [`Journal::with_capacity`].
pub struct Journal {
    ring: OnceLock<Vec<Slot>>,
    /// Capacity forced at construction; 0 means "resolve from the
    /// environment at first use".
    fixed_cap: usize,
    head: AtomicU64,
}

impl Journal {
    const fn new_env() -> Journal {
        Journal {
            ring: OnceLock::new(),
            fixed_cap: 0,
            head: AtomicU64::new(0),
        }
    }

    /// A private journal with an explicit capacity (tests, embedders).
    pub fn with_capacity(capacity: usize) -> Journal {
        Journal {
            ring: OnceLock::new(),
            fixed_cap: capacity.max(1),
            head: AtomicU64::new(0),
        }
    }

    fn ring(&self) -> &[Slot] {
        self.ring.get_or_init(|| {
            let cap = if self.fixed_cap > 0 {
                self.fixed_cap
            } else {
                capacity_from_env()
            };
            let mut v = Vec::with_capacity(cap);
            v.resize_with(cap, Slot::new);
            v
        })
    }

    /// Ring capacity in records (resolves the environment on first
    /// use).
    pub fn capacity(&self) -> usize {
        self.ring().len()
    }

    /// Total events ever recorded. Also serves as a drain cursor:
    /// capture before a workload, then keep only events with
    /// `seq >= cursor` from a later snapshot.
    #[inline]
    pub fn cursor(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events overwritten by wraparound so far.
    pub fn dropped(&self) -> u64 {
        self.cursor().saturating_sub(self.capacity() as u64)
    }

    /// Append one record. Lock-free, allocation-free after the first
    /// call; a handful of relaxed stores plus two fences.
    #[inline]
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        let ring = self.ring();
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &ring[(claim % ring.len() as u64) as usize];
        slot.seq.store(2 * claim + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.ts.store(now_ns(), Ordering::Relaxed);
        slot.tid_kind
            .store((thread_id() << 32) | kind as u64, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.op.store(crate::oplog::current_op(), Ordering::Relaxed);
        slot.seq.store(2 * claim + 2, Ordering::Release);
    }

    /// Begin-of-stage marker; pair with [`Journal::end`].
    #[inline]
    pub fn begin(&self, stage: Stage, extra: u64) {
        self.record(EventKind::StageBegin, stage as u64, extra);
    }

    /// End-of-stage marker.
    #[inline]
    pub fn end(&self, stage: Stage, extra: u64) {
        self.record(EventKind::StageEnd, stage as u64, extra);
    }

    /// Copy out every validated record, oldest first. Concurrent
    /// writers are safe: in-flight or overwritten-mid-read records are
    /// skipped (counted in [`JournalSnapshot::torn`]), never surfaced
    /// torn.
    pub fn snapshot(&self) -> JournalSnapshot {
        let ring = self.ring();
        let recorded = self.head.load(Ordering::Acquire);
        let mut events = Vec::with_capacity(ring.len().min(recorded as usize));
        let mut torn = 0u64;
        for slot in ring {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 {
                continue; // never written
            }
            if s1 % 2 == 1 {
                torn += 1; // write in progress
                continue;
            }
            let ts = slot.ts.load(Ordering::Relaxed);
            let tid_kind = slot.tid_kind.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            let op = slot.op.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s2 != s1 {
                torn += 1; // overwritten while reading
                continue;
            }
            let Some(kind) = EventKind::from_u32((tid_kind & 0xFFFF_FFFF) as u32) else {
                torn += 1;
                continue;
            };
            events.push(Event {
                seq: (s1 - 2) / 2,
                ts_ns: ts,
                tid: tid_kind >> 32,
                kind,
                a,
                b,
                op,
            });
        }
        events.sort_by_key(|e| e.seq);
        JournalSnapshot {
            events,
            recorded,
            dropped: recorded.saturating_sub(ring.len() as u64),
            capacity: ring.len() as u64,
            torn,
        }
    }

    /// Decode the surviving records whose claims fall in
    /// `[from, to)` — at most the newest `capacity` of them — without
    /// walking the whole ring. Records overwritten by wraparound or
    /// caught mid-write are silently skipped, so the result can be
    /// shorter than the window; callers needing drop accounting use
    /// [`Journal::snapshot`]. This is the op-ledger's stage-extraction
    /// primitive: an [`crate::oplog::OpToken`] brackets its journal
    /// window with two [`Journal::cursor`] reads and scans only that
    /// slice on completion.
    pub fn scan_window(&self, from: u64, to: u64) -> Vec<Event> {
        let ring = self.ring();
        let cap = ring.len() as u64;
        let lo = from.max(to.saturating_sub(cap));
        let mut events = Vec::with_capacity((to.saturating_sub(lo)) as usize);
        for claim in lo..to {
            let slot = &ring[(claim % cap) as usize];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != 2 * claim + 2 {
                continue; // overwritten, in-flight, or never written
            }
            let ts = slot.ts.load(Ordering::Relaxed);
            let tid_kind = slot.tid_kind.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            let op = slot.op.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // overwritten while reading
            }
            let Some(kind) = EventKind::from_u32((tid_kind & 0xFFFF_FFFF) as u32) else {
                continue;
            };
            events.push(Event {
                seq: claim,
                ts_ns: ts,
                tid: tid_kind >> 32,
                kind,
                a,
                b,
                op,
            });
        }
        events
    }

    /// Report-level summary without copying the ring.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            recorded: self.cursor(),
            dropped: self.dropped(),
            capacity: self.capacity() as u64,
        }
    }

    /// Clear every record and the sequence counter. **Not safe against
    /// concurrent writers** — a tool-boundary and test hook, like the
    /// registry resets.
    pub fn reset(&self) {
        for slot in self.ring() {
            slot.seq.store(0, Ordering::Relaxed);
        }
        self.head.store(0, Ordering::Release);
    }
}

impl Default for Journal {
    fn default() -> Self {
        Journal::with_capacity(DEFAULT_JOURNAL_EVENTS)
    }
}

/// The process-wide flight recorder.
pub fn journal() -> &'static Journal {
    static JOURNAL: Journal = Journal::new_env();
    &JOURNAL
}

/// A drained copy of the journal: validated records oldest-first plus
/// the drop accounting.
#[derive(Clone, Debug)]
pub struct JournalSnapshot {
    /// Validated records, sorted by sequence number.
    pub events: Vec<Event>,
    /// Events ever recorded at snapshot time.
    pub recorded: u64,
    /// Events overwritten by wraparound (`recorded − capacity` when
    /// positive).
    pub dropped: u64,
    /// Ring capacity in records.
    pub capacity: u64,
    /// Records skipped at drain time because a writer was mid-flight.
    pub torn: u64,
}

impl JournalSnapshot {
    /// The subset recorded at or after `cursor` (see
    /// [`Journal::cursor`]).
    pub fn since(&self, cursor: u64) -> &[Event] {
        let start = self.events.partition_point(|e| e.seq < cursor);
        &self.events[start..]
    }

    /// Count of explain events of `kind` in the snapshot.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.events.iter().filter(|e| e.kind == kind).count() as u64
    }

    /// Cut the per-operation view: only events stamped with `op`
    /// inside the journal window `[seq_start, seq_end)` — the window a
    /// ledger record carries. Drop/torn accounting is zeroed (the cut
    /// is a derived view, not a drain), so trace exports of a cut
    /// never report ring-level drops that predate the op.
    pub fn cut_op(&self, op: u64, seq_start: u64, seq_end: u64) -> JournalSnapshot {
        let events: Vec<Event> = self
            .events
            .iter()
            .filter(|e| e.op == op && e.seq >= seq_start && e.seq < seq_end)
            .copied()
            .collect();
        JournalSnapshot {
            recorded: events.len() as u64,
            dropped: 0,
            capacity: self.capacity,
            torn: 0,
            events,
        }
    }

    /// Export as Chrome Trace Event Format JSON (Perfetto /
    /// `chrome://tracing` loadable).
    ///
    /// Stage pairs become `ph: "B"` / `"E"` records on per-thread
    /// tracks; explain events become `ph: "i"` thread-scoped instants
    /// with decoded `args`. Pairs are matched per thread before
    /// emission, so the output always has balanced `B`/`E` even when
    /// ring wraparound swallowed one side of a pair; the number of
    /// half-pairs dropped that way is reported under
    /// `otherData.truncated_spans`.
    pub fn to_chrome_trace(&self) -> String {
        self.render_trace(false)
    }

    /// Export as Chrome Trace JSON grouped by operation: each
    /// [`Event::op`] becomes its own process track (`pid` = op id,
    /// named `op-N`), so interleaved operations sharing a worker
    /// thread separate into per-op lanes. Span pairing runs per
    /// `(op, tid)`, keeping the output balanced even when two ops'
    /// spans interleave on one thread. Unattributed events stay on
    /// `pid` 0.
    pub fn to_chrome_trace_by_op(&self) -> String {
        self.render_trace(true)
    }

    fn render_trace(&self, by_op: bool) -> String {
        // First pass: stage stacks pair up B/E indices, keyed per
        // thread (and per op when grouping by op, so interleaved ops on
        // one tid cannot cross-match).
        let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<usize>> =
            std::collections::BTreeMap::new();
        let pid_of = |e: &Event| if by_op { e.op } else { 1 };
        let mut matched = vec![false; self.events.len()];
        let mut truncated = 0u64;
        for (i, e) in self.events.iter().enumerate() {
            let key = (pid_of(e), e.tid);
            match e.kind {
                EventKind::StageBegin => stacks.entry(key).or_default().push(i),
                EventKind::StageEnd => {
                    let stack = stacks.entry(key).or_default();
                    match stack.pop() {
                        Some(j) if self.events[j].a == e.a => {
                            matched[i] = true;
                            matched[j] = true;
                        }
                        Some(j) => {
                            // Mismatched nesting (a begin was lost to
                            // wraparound): drop both halves.
                            truncated += 2;
                            let _ = j;
                        }
                        None => truncated += 1,
                    }
                }
                _ => {}
            }
        }
        truncated += stacks.values().map(|s| s.len() as u64).sum::<u64>();

        let mut out = String::with_capacity(256 + self.events.len() * 96);
        out.push_str("{\"traceEvents\": [\n");
        let mut first = true;
        let mut tracks: std::collections::BTreeSet<(u64, u64)> = std::collections::BTreeSet::new();
        for (i, e) in self.events.iter().enumerate() {
            let body = match e.kind {
                EventKind::StageBegin | EventKind::StageEnd => {
                    if !matched[i] {
                        continue;
                    }
                    let stage = Stage::from_u64(e.a).map_or("stage", Stage::name);
                    let ph = if e.kind == EventKind::StageBegin {
                        "B"
                    } else {
                        "E"
                    };
                    format!(
                        "\"name\": \"{}\", \"ph\": \"{}\", \"args\": {{\"extra\": {}, \"op\": {}}}",
                        stage, ph, e.b, e.op
                    )
                }
                _ => format!(
                    "\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"args\": {{{}, \"op\": {}}}",
                    e.kind.name(),
                    explain_args(e),
                    e.op
                ),
            };
            if !first {
                out.push_str(",\n");
            }
            first = false;
            tracks.insert((pid_of(e), e.tid));
            out.push_str(&format!(
                "  {{{}, \"ts\": {}.{:03}, \"pid\": {}, \"tid\": {}}}",
                body,
                e.ts_ns / 1_000,
                e.ts_ns % 1_000,
                pid_of(e),
                e.tid
            ));
        }
        if by_op {
            let pids: std::collections::BTreeSet<u64> = tracks.iter().map(|&(p, _)| p).collect();
            for p in pids {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                out.push_str(&format!(
                    "  {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {}, \"tid\": 0, \
                     \"args\": {{\"name\": \"op-{}\"}}}}",
                    p, p
                ));
            }
        }
        for (p, t) in tracks {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {}, \"tid\": {}, \
                 \"args\": {{\"name\": \"aarray-{}\"}}}}",
                p, t, t
            ));
        }
        out.push_str(&format!(
            "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {{\"recorded\": {}, \
             \"dropped\": {}, \"capacity\": {}, \"truncated_spans\": {}}}}}\n",
            self.recorded, self.dropped, self.capacity, truncated
        ));
        out
    }
}

fn explain_args(e: &Event) -> String {
    match e.kind {
        EventKind::KernelChoice => format!(
            "\"accumulator\": \"{}\", \"parallel\": {}",
            accumulator_name(e.a),
            e.b & 1
        ),
        EventKind::FusedChoice => format!(
            "\"accumulator\": \"{}\", \"lanes\": {}, \"parallel\": {}",
            accumulator_name(e.a),
            e.b >> 1,
            e.b & 1
        ),
        EventKind::DispatchSerial | EventKind::DispatchParallel => {
            let verdict = if e.kind == EventKind::DispatchSerial {
                "serial"
            } else {
                "parallel"
            };
            format!(
                "\"flops\": {}, \"threshold\": {}, \"verdict\": \"{}\"",
                e.a, e.b, verdict
            )
        }
        EventKind::PlanCacheHit | EventKind::PlanCacheMiss => {
            format!("\"flops\": {}, \"nnz\": {}", e.a, e.b)
        }
        EventKind::DeltaApply => format!("\"lanes\": {}, \"batches\": {}", e.a, e.b),
        EventKind::IncrementalFallback => format!(
            "\"lanes\": {}, \"reason\": \"{}\"",
            e.a,
            fallback_reason(e.b)
        ),
        EventKind::RowShape => format!("\"row\": {}, \"flops\": {}", e.a, e.b),
        EventKind::StageBegin | EventKind::StageEnd => format!("\"extra\": {}", e.b),
    }
}

/// Reason code carried in [`EventKind::IncrementalFallback`] payloads.
pub fn fallback_reason(code: u64) -> &'static str {
    match code {
        0 => "non-associative-plus",
        1 => "barrier",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_in_order() {
        let j = Journal::with_capacity(128);
        j.record(EventKind::DispatchSerial, 37, 131072);
        j.begin(Stage::Symbolic, 9);
        j.end(Stage::Symbolic, 9);
        let snap = j.snapshot();
        assert_eq!(snap.recorded, 3);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.torn, 0);
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.events[0].kind, EventKind::DispatchSerial);
        assert_eq!((snap.events[0].a, snap.events[0].b), (37, 131072));
        assert_eq!(snap.events[1].kind, EventKind::StageBegin);
        assert_eq!(Stage::from_u64(snap.events[1].a), Some(Stage::Symbolic));
        assert!(snap.events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(snap.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_drops() {
        let j = Journal::with_capacity(8);
        for i in 0..20 {
            j.record(EventKind::RowShape, i, i * 2);
        }
        let snap = j.snapshot();
        assert_eq!(snap.recorded, 20);
        assert_eq!(snap.dropped, 12);
        assert_eq!(snap.capacity, 8);
        assert_eq!(snap.events.len(), 8);
        // The survivors are exactly the newest eight, in order.
        let rows: Vec<u64> = snap.events.iter().map(|e| e.a).collect();
        assert_eq!(rows, (12..20).collect::<Vec<u64>>());
        assert_eq!(j.dropped(), 12);
    }

    #[test]
    fn since_cursor_slices_a_workload() {
        let j = Journal::with_capacity(64);
        j.record(EventKind::PlanCacheMiss, 1, 1);
        let cursor = j.cursor();
        j.record(EventKind::PlanCacheHit, 2, 2);
        j.record(EventKind::PlanCacheHit, 3, 3);
        let snap = j.snapshot();
        let tail = snap.since(cursor);
        assert_eq!(tail.len(), 2);
        assert!(tail.iter().all(|e| e.kind == EventKind::PlanCacheHit));
        assert_eq!(snap.count(EventKind::PlanCacheHit), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let j = Journal::with_capacity(16);
        j.record(EventKind::DeltaApply, 5, 1);
        j.reset();
        let snap = j.snapshot();
        assert_eq!(snap.recorded, 0);
        assert!(snap.events.is_empty());
    }

    #[test]
    fn capacity_knob_parses_like_the_other_env_knobs() {
        assert_eq!(parse_capacity(None), Ok(DEFAULT_JOURNAL_EVENTS));
        assert_eq!(parse_capacity(Some("1024")), Ok(1024));
        assert_eq!(parse_capacity(Some(" 32 ")), Ok(32));
        assert_eq!(parse_capacity(Some("0")), Err(()));
        assert_eq!(parse_capacity(Some("lots")), Err(()));
        assert_eq!(parse_capacity(Some("-5")), Err(()));
    }

    #[test]
    fn chrome_trace_is_balanced_and_shaped() {
        let j = Journal::with_capacity(64);
        j.begin(Stage::Align, 3);
        j.end(Stage::Align, 3);
        j.begin(Stage::Numeric, 7);
        j.record(EventKind::KernelChoice, 1, 0);
        j.record(EventKind::DispatchSerial, 37, 131072);
        j.end(Stage::Numeric, 7);
        // An end whose begin was "lost": must not unbalance the export.
        j.record(EventKind::StageEnd, Stage::Symbolic as u64, 0);
        let trace = j.snapshot().to_chrome_trace();
        assert_eq!(trace.matches("\"ph\": \"B\"").count(), 2);
        assert_eq!(trace.matches("\"ph\": \"E\"").count(), 2);
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"verdict\": \"serial\""));
        assert!(trace.contains("\"accumulator\": \"hash\""));
        assert!(trace.contains("\"truncated_spans\": 1"));
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
        assert_eq!(trace.matches('[').count(), trace.matches(']').count());
    }

    #[test]
    fn kind_and_stage_tables_are_in_enum_order() {
        for (i, &(k, _)) in EVENT_KIND_NAMES.iter().enumerate() {
            assert_eq!(k as usize, i);
            assert_eq!(EventKind::from_u32(i as u32), Some(k));
        }
        for (i, &(s, _)) in STAGE_NAMES.iter().enumerate() {
            assert_eq!(s as usize, i);
            assert_eq!(Stage::from_u64(i as u64), Some(s));
        }
        assert_eq!(EventKind::from_u32(N_KINDS as u32), None);
    }

    #[test]
    fn scan_window_decodes_only_the_claim_range() {
        let j = Journal::with_capacity(8);
        for i in 0..6 {
            j.record(EventKind::RowShape, i, i);
        }
        let mid = j.scan_window(2, 5);
        assert_eq!(mid.iter().map(|e| e.a).collect::<Vec<u64>>(), vec![2, 3, 4]);
        assert_eq!(
            mid.iter().map(|e| e.seq).collect::<Vec<u64>>(),
            vec![2, 3, 4]
        );
        // Wrap the ring: claims older than head − capacity are gone and
        // the scan skips them instead of surfacing stale slots.
        for i in 6..20 {
            j.record(EventKind::RowShape, i, i);
        }
        let survivors = j.scan_window(0, j.cursor());
        assert_eq!(
            survivors.iter().map(|e| e.a).collect::<Vec<u64>>(),
            (12..20).collect::<Vec<u64>>()
        );
        assert!(j.scan_window(0, 4).is_empty());
    }

    #[test]
    fn op_stamp_cut_and_by_op_export() {
        let j = Journal::with_capacity(64);
        j.record(EventKind::PlanCacheMiss, 1, 1); // unattributed
        {
            let _op = crate::oplog::enter_op(41);
            j.begin(Stage::Numeric, 7);
            {
                let _inner = crate::oplog::enter_op(42);
                j.begin(Stage::Numeric, 8);
                j.end(Stage::Numeric, 8);
            }
            j.end(Stage::Numeric, 7);
        }
        let snap = j.snapshot();
        assert_eq!(snap.events[0].op, 0);
        assert_eq!(snap.events[1].op, 41);
        assert_eq!(snap.events[2].op, 42);
        // The cut keeps only op-42 events inside the window.
        let cut = snap.cut_op(42, 0, j.cursor());
        assert_eq!(cut.events.len(), 2);
        assert!(cut.events.iter().all(|e| e.op == 42));
        assert_eq!(cut.dropped, 0);
        // By-op grouping: each op becomes its own pid track, spans stay
        // balanced even though both ops share one tid.
        let trace = snap.to_chrome_trace_by_op();
        assert_eq!(trace.matches("\"ph\": \"B\"").count(), 2);
        assert_eq!(trace.matches("\"ph\": \"E\"").count(), 2);
        assert!(trace.contains("\"name\": \"op-41\""));
        assert!(trace.contains("\"name\": \"op-42\""));
        assert!(trace.contains("\"pid\": 41"));
        assert!(trace.contains("\"truncated_spans\": 0"));
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    }

    #[test]
    fn concurrent_recording_yields_no_torn_records() {
        use std::sync::Arc;
        let j = Arc::new(Journal::with_capacity(1 << 14));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let j = Arc::clone(&j);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        // Payloads encode the same value twice so a
                        // cross-record field mix would be visible.
                        let v = (t << 32) | i;
                        j.record(EventKind::RowShape, v, v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = j.snapshot();
        assert_eq!(snap.recorded, 4000);
        assert_eq!(snap.events.len(), 4000);
        assert_eq!(snap.torn, 0);
        for e in &snap.events {
            assert_eq!(e.a, e.b, "mixed-field record at seq {}", e.seq);
        }
        // Timestamps are monotone within each recording thread.
        let mut last: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for e in &snap.events {
            let prev = last.insert(e.tid, e.ts_ns).unwrap_or(0);
            assert!(e.ts_ns >= prev, "non-monotone ts on tid {}", e.tid);
        }
    }
}
