//! Lock-free log2-bucketed histograms.
//!
//! Counters answer "how often"; histograms answer "how big". Each
//! [`Histogram`] is a fixed array of 65 relaxed atomic buckets — one
//! for the value `0`, then one per leading-bit position, so bucket `i`
//! (for `i ≥ 1`) covers `[2^(i-1), 2^i − 1]` and `u64::MAX` lands in
//! bucket 64 — plus a running sum and min/max watermarks. Recording is
//! a handful of uncontended relaxed RMWs (no locks, no allocation), so
//! the process-wide [`histograms`] registry stays on in release builds
//! alongside the counter registry; the `obs_overhead` bench folds its
//! cost into the same ≤ 2% budget.
//!
//! Recording through the registry can be disabled at runtime with
//! `AARRAY_OBS_HISTOGRAMS=0` (mirroring `AARRAY_PAR_FLOPS_THRESHOLD`):
//! [`HistRegistry::record`] becomes a single cached atomic load and
//! callers that precompute a value to record should gate on
//! [`histograms_enabled`]. Direct [`Histogram::record`] calls (owned
//! histograms, tests) are never gated.
//!
//! ```
//! use aarray_obs::{histograms, Hist};
//!
//! let before = histograms().get(Hist::RowNnz).snapshot();
//! histograms().record(Hist::RowNnz, 12);
//! let delta = histograms().get(Hist::RowNnz).snapshot().since(&before);
//! assert!(delta.count() >= 1);
//! ```

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Number of buckets: one for zero plus one per leading-bit position.
pub const N_BUCKETS: usize = 65;

/// Kernel value distributions tracked by the process-wide registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Plan construction wall-clock (alignment + transpose), ns.
    PlanBuildNs,
    /// Symbolic (sparsity discovery) pass wall-clock, ns.
    SymbolicPassNs,
    /// Numeric pass wall-clock (one fused traversal or one-shot
    /// kernel), ns.
    NumericPassNs,
    /// Stored entries per emitted output row.
    RowNnz,
    /// `⊗`-terms folded per output row.
    RowFlops,
    /// Occupied accumulator slots per lane-row of the fused kernel
    /// (entries surviving the lane's own zero-pruning).
    AccOccupancy,
    /// Flops estimate per dispatch decision / plan construction.
    DispatchFlops,
    /// Incremental adjacency refresh wall-clock (delta product plus
    /// in-place `⊕`-fold), ns.
    DeltaApplyNs,
    /// Full adjacency rebuild wall-clock (from-scratch SpGEMM, whether
    /// chosen directly or as the incremental fallback), ns.
    RebuildNs,
    /// Edges per appended batch at `IncidenceBuilder::append_batch`.
    DeltaBatchEdges,
}

const N_HISTS: usize = Hist::DeltaBatchEdges as usize + 1;

/// Every histogram with its report label, in enum order.
pub const HIST_NAMES: [(Hist, &str); N_HISTS] = [
    (Hist::PlanBuildNs, "latency.plan-build-ns"),
    (Hist::SymbolicPassNs, "latency.symbolic-pass-ns"),
    (Hist::NumericPassNs, "latency.numeric-pass-ns"),
    (Hist::RowNnz, "row.nnz"),
    (Hist::RowFlops, "row.flops"),
    (Hist::AccOccupancy, "accumulator.occupancy"),
    (Hist::DispatchFlops, "dispatch.flops"),
    (Hist::DeltaApplyNs, "latency.delta-apply-ns"),
    (Hist::RebuildNs, "latency.rebuild-ns"),
    (Hist::DeltaBatchEdges, "delta.batch-edges"),
];

/// Name of the environment variable controlling registry histogram
/// recording: `0` disables, `1` enables, unset means enabled. Any
/// other value is an env-parse error — recording stays on, a one-time
/// warning is printed, and `Counter::EnvParseError` is bumped.
pub const HISTOGRAMS_ENV: &str = "AARRAY_OBS_HISTOGRAMS";

/// Cached enablement: 0 = disabled, 1 = enabled, 2 = unset (re-read
/// the environment on next use).
static HIST_ENABLED: AtomicU8 = AtomicU8::new(2);

/// Parse the histogram knob. `Ok` for the recognized tokens (`0`/`1`,
/// unset means on); `Err` when the variable is set to anything else —
/// the caller falls back to the default (on) and reports the bad value
/// instead of silently absorbing it.
fn parse_enabled(raw: Option<&str>) -> Result<bool, ()> {
    match raw.map(str::trim) {
        None => Ok(true),
        Some("0") => Ok(false),
        Some("1") => Ok(true),
        Some(_) => Err(()),
    }
}

/// Whether registry histogram recording is currently enabled. Callers
/// that do extra work *just* to record (e.g. summing per-row flops)
/// should gate that work on this.
#[inline]
pub fn histograms_enabled() -> bool {
    match HIST_ENABLED.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let raw = std::env::var(HISTOGRAMS_ENV).ok();
            let on = parse_enabled(raw.as_deref()).unwrap_or_else(|()| {
                static WARNED: std::sync::atomic::AtomicBool =
                    std::sync::atomic::AtomicBool::new(false);
                crate::counters::env_parse_error(
                    &WARNED,
                    HISTOGRAMS_ENV,
                    raw.as_deref().unwrap_or(""),
                    "the default (histograms enabled)",
                );
                true
            });
            HIST_ENABLED.store(u8::from(on), Ordering::Relaxed);
            on
        }
    }
}

/// Override registry histogram recording for this process (`Some(on)`),
/// or drop back to the environment/default (`None`). Thread-safe; a
/// tuning hook for embedders and tests.
pub fn set_histograms_enabled(on: Option<bool>) {
    HIST_ENABLED.store(on.map_or(2, u8::from), Ordering::Relaxed);
}

/// Bucket index of a value: 0 for 0, else `floor(log2 v) + 1`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (the value reported for
/// quantiles that land in it).
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A lock-free log2-bucketed histogram. See the [module docs](self).
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A fresh, empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; N_BUCKETS],
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Always records — registry-level gating
    /// lives in [`HistRegistry::record`].
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        // Wrapping on overflow: a sum past 2^64 ns is ~584 years.
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Fold another histogram's current contents into this one, as if
    /// every observation recorded there had been recorded here too.
    pub fn merge(&self, other: &Histogram) {
        self.merge_snapshot(&other.snapshot());
    }

    /// [`Histogram::merge`] from an already-taken snapshot.
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        for (i, &n) in snap.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        if snap.count() > 0 {
            self.sum.fetch_add(snap.sum, Ordering::Relaxed);
            self.min.fetch_min(snap.min, Ordering::Relaxed);
            self.max.fetch_max(snap.max, Ordering::Relaxed);
        }
    }

    /// Zero every bucket and watermark. As with the counter registry,
    /// concurrent recording may survive a reset; prefer snapshot diffs.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Capture bucket counts, sum, and watermarks.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::default();
        for i in 0..N_BUCKETS {
            s.buckets[i] = self.buckets[i].load(Ordering::Relaxed);
        }
        s.sum = self.sum.load(Ordering::Relaxed);
        s.min = self.min.load(Ordering::Relaxed);
        s.max = self.max.load(Ordering::Relaxed);
        s
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Point-in-time copy of a [`Histogram`] — also the diff type
/// ([`HistogramSnapshot::since`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_upper`]).
    pub buckets: [u64; N_BUCKETS],
    /// Sum of all recorded values (wrapping).
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (`0` when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; N_BUCKETS],
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Bucket-wise difference `self − earlier` (saturating). Watermarks
    /// carry over from `self` — they are not differentiable.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut d = self.clone();
        for i in 0..N_BUCKETS {
            d.buckets[i] = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        d.sum = self.sum.wrapping_sub(earlier.sum);
        d
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ≤ q ≤ 1.0`):
    /// the inclusive upper edge of the bucket holding the rank-`⌈qN⌉`
    /// observation. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(N_BUCKETS - 1)
    }

    /// Upper-bound estimate of the median.
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }
}

/// The process-wide histogram table. Obtain via [`histograms`].
pub struct HistRegistry {
    hists: [Histogram; N_HISTS],
}

impl HistRegistry {
    const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const EMPTY: Histogram = Histogram::new();
        HistRegistry {
            hists: [EMPTY; N_HISTS],
        }
    }

    /// Record `v` into histogram `h` — a no-op (one cached atomic
    /// load) when recording is disabled via [`HISTOGRAMS_ENV`].
    #[inline]
    pub fn record(&self, h: Hist, v: u64) {
        if histograms_enabled() {
            self.hists[h as usize].record(v);
        }
    }

    /// The underlying histogram for `h` (reads are never gated).
    pub fn get(&self, h: Hist) -> &Histogram {
        &self.hists[h as usize]
    }

    /// Snapshot every histogram, in [`HIST_NAMES`] order.
    pub fn snapshot_all(&self) -> Vec<HistogramSnapshot> {
        self.hists.iter().map(Histogram::snapshot).collect()
    }

    /// Zero every histogram.
    pub fn reset(&self) {
        for h in &self.hists {
            h.reset();
        }
    }
}

static HISTOGRAMS: HistRegistry = HistRegistry::new();

/// The process-wide [`HistRegistry`].
#[inline]
pub fn histograms() -> &'static HistRegistry {
    &HISTOGRAMS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of((1 << 16) - 1), 16);
        assert_eq!(bucket_of(1 << 16), 17);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn zero_and_max_round_trip() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        // Sum wraps: 0 + MAX = MAX.
        assert_eq!(s.sum, u64::MAX);
    }

    #[test]
    fn boundary_values_split_buckets() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 7, 8] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets[1], 1, "[1,1]");
        assert_eq!(s.buckets[2], 2, "[2,3]");
        assert_eq!(s.buckets[3], 2, "[4,7]");
        assert_eq!(s.buckets[4], 1, "[8,15]");
        assert_eq!(s.sum, 25);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 8);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let h1 = Histogram::new();
        let h2 = Histogram::new();
        let union = Histogram::new();
        let a = [0u64, 1, 5, 1 << 20, u64::MAX];
        let b = [3u64, 3, 900, 1 << 40];
        for &v in &a {
            h1.record(v);
            union.record(v);
        }
        for &v in &b {
            h2.record(v);
            union.record(v);
        }
        h1.merge(&h2);
        assert_eq!(h1.snapshot(), union.snapshot());
        // Merging an empty histogram is the identity (and must not
        // corrupt the min watermark with the empty sentinel).
        h1.merge(&Histogram::new());
        assert_eq!(h1.snapshot(), union.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), threads * per_thread);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, threads * per_thread - 1);
        // Sum of 0..N-1.
        let n = threads * per_thread;
        assert_eq!(s.sum, n * (n - 1) / 2);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Rank 50 lands in bucket [32,63].
        assert_eq!(s.median(), 63);
        assert_eq!(s.quantile(1.0), 127);
        assert_eq!(s.quantile(0.0), 1, "rank clamps to the first value");
        assert_eq!(HistogramSnapshot::default().median(), 0);
    }

    #[test]
    fn since_diffs_buckets() {
        let h = Histogram::new();
        h.record(7);
        let before = h.snapshot();
        h.record(7);
        h.record(9);
        let d = h.snapshot().since(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.buckets[3], 1); // 7 ∈ [4,7]
        assert_eq!(d.buckets[4], 1); // 9 ∈ [8,15]
        assert_eq!(d.sum, 16);
    }

    #[test]
    fn env_knob_gates_registry_recording_both_branches() {
        // The only test in this binary that toggles the global knob:
        // others use standalone histograms to stay race-free.
        let before = histograms().get(Hist::RowFlops).snapshot();
        set_histograms_enabled(Some(false));
        assert!(!histograms_enabled());
        histograms().record(Hist::RowFlops, 41);
        let off = histograms().get(Hist::RowFlops).snapshot().since(&before);
        assert_eq!(off.count(), 0, "disabled recording must be a no-op");

        set_histograms_enabled(Some(true));
        assert!(histograms_enabled());
        histograms().record(Hist::RowFlops, 41);
        let on = histograms().get(Hist::RowFlops).snapshot().since(&before);
        assert_eq!(on.count(), 1);
        set_histograms_enabled(None);
    }

    #[test]
    fn env_parsing() {
        assert_eq!(parse_enabled(None), Ok(true));
        assert_eq!(parse_enabled(Some("0")), Ok(false));
        assert_eq!(parse_enabled(Some(" 0 ")), Ok(false));
        assert_eq!(parse_enabled(Some("1")), Ok(true));
        assert_eq!(parse_enabled(Some(" 1 ")), Ok(true));
        // Anything else is a parse error, not a silent "on": the caller
        // falls back to enabled *and* reports it (warning + counter,
        // covered end-to-end by the obsctl e2e suite).
        assert_eq!(parse_enabled(Some("yes")), Err(()));
        assert_eq!(parse_enabled(Some("2")), Err(()));
        assert_eq!(parse_enabled(Some("")), Err(()));
    }

    #[test]
    fn names_are_in_enum_order() {
        for (i, (h, _)) in HIST_NAMES.iter().enumerate() {
            assert_eq!(*h as usize, i, "HIST_NAMES[{}] out of order", i);
        }
    }
}
